"""Tests for hardware device models."""

import pytest

from repro.errors import SimulationError
from repro.sim.devices import QueuedDevice
from repro.sim.engine import Engine
from repro.sim.tracer import Tracer


def make_device(capacity=1):
    engine = Engine(tracer=Tracer("t"))
    return QueuedDevice(engine, "Disk", capacity=capacity)


class TestQueuedDevice:
    def test_requires_capacity(self):
        engine = Engine(tracer=Tracer("t"))
        with pytest.raises(SimulationError):
            QueuedDevice(engine, "Bad", capacity=0)

    def test_idle_device_serves_immediately(self):
        device = make_device()
        assert device.service_window(100, 50) == (100, 150)

    def test_busy_device_queues(self):
        device = make_device()
        device.service_window(0, 1_000)
        start, end = device.service_window(500, 200)
        assert start == 1_000
        assert end == 1_200

    def test_parallel_servers(self):
        device = make_device(capacity=2)
        assert device.service_window(0, 1_000) == (0, 1_000)
        assert device.service_window(0, 1_000) == (0, 1_000)
        # Third request queues behind the earliest-free server.
        assert device.service_window(0, 500) == (1_000, 1_500)

    def test_negative_duration_rejected(self):
        device = make_device()
        with pytest.raises(SimulationError):
            device.service_window(0, -1)

    def test_statistics(self):
        device = make_device()
        device.service_window(0, 100)
        device.service_window(0, 200)
        assert device.request_count == 2
        assert device.total_service_time == 300

    def test_pseudo_thread_registered(self):
        tracer = Tracer("t")
        engine = Engine(tracer=tracer)
        device = QueuedDevice(engine, "Gpu")
        stream = tracer.finalize()
        info = stream.thread_info(device.pseudo_tid)
        assert info.process == "Hardware"
        assert info.name == "Gpu"

    def test_completion_stack_names_device(self):
        device = make_device()
        assert device.completion_stack == ("Hardware!DiskService",)
