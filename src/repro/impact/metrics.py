"""Impact-analysis metrics (paper §3.2).

The basic metrics are accumulated over every scenario instance's Wait
Graph:

* ``D_scn`` — total duration: summed time periods of top-level events;
* ``D_wait`` — summed duration of *top-level wait events of the chosen
  components* (a matching wait's descendants are not counted again);
* ``D_run`` — summed duration of matching running events anywhere in the
  graphs (overlaps with ``D_wait`` by construction);
* ``D_waitdist`` — like ``D_wait`` but counting each distinct trace event
  once across all graphs, deduplicated by ``(stream_id, seq)``.

Derived outputs: ``IA_run = D_run / D_scn``, ``IA_wait = D_wait / D_scn``,
``IA_opt = (D_wait - D_waitdist) / D_scn`` — the extra share introduced by
cost propagation and an upper bound on its optimization potential.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.trace.binary import (
    KIND_RUNNING,
    KIND_WAIT,
    ColumnarTraceStream,
)
from repro.trace.events import Event, EventKind
from repro.trace.signatures import ComponentFilter
from repro.waitgraph.graph import IndexedWaitGraph, WaitGraph


@dataclass
class ImpactAccumulator:
    """Mutable accumulator over many Wait Graphs."""

    component_filter: ComponentFilter
    d_scn: int = 0
    d_wait: int = 0
    d_run: int = 0
    graphs: int = 0
    counted_waits: int = 0
    _distinct: Dict[Tuple[str, int], int] = field(default_factory=dict)
    _distinct_run: Dict[Tuple[str, int], int] = field(default_factory=dict)

    def add_graph(self, graph: WaitGraph) -> None:
        """Accumulate one scenario instance's Wait Graph.

        Indexed graphs over columnar streams take an array-backed path
        reading the ``kind``/``cost``/``stack_id`` columns directly;
        totals and distinct-event tables are identical to the
        object-based walk (``seq`` equals the column index).
        """
        if isinstance(graph, IndexedWaitGraph) and isinstance(
            graph.instance.stream, ColumnarTraceStream
        ):
            self._add_graph_indexed(graph)
            return
        self.graphs += 1
        self.d_scn += graph.top_level_duration
        component = self.component_filter
        stream_id = graph.stream_id

        # Iterative DFS carrying whether we are under an already-counted
        # component wait (whose duration must not be double counted).
        stack = [(event, False) for event in reversed(graph.roots)]
        visited_under: Set[Tuple[int, bool]] = set()
        counted_runs: Set[int] = set()
        while stack:
            event, under_counted = stack.pop()
            state = (event.seq, under_counted)
            if state in visited_under:
                continue
            visited_under.add(state)
            matches = component.matches_stack(event.stack)
            if event.kind is EventKind.RUNNING:
                # Once per graph, even when the DAG reaches the sample
                # both under and not under a counted wait.
                if matches and event.seq not in counted_runs:
                    counted_runs.add(event.seq)
                    self.d_run += event.cost
                    self._distinct_run[(stream_id, event.seq)] = event.cost
                continue
            if event.kind is not EventKind.WAIT:
                continue
            child_under = under_counted
            if matches and not under_counted:
                self.d_wait += event.cost
                self.counted_waits += 1
                self._distinct[(stream_id, event.seq)] = event.cost
                child_under = True
            for child in reversed(graph.children(event)):
                stack.append((child, child_under))

    def _add_graph_indexed(self, graph: IndexedWaitGraph) -> None:
        """Column-index twin of :meth:`add_graph` for columnar streams."""
        self.graphs += 1
        self.d_scn += graph.top_level_duration
        stream = graph.instance.stream
        matcher = stream.stack_matcher(self.component_filter)
        kinds = stream.kind_col
        costs = stream.cost_col
        stack_ids = stream.stack_id_col
        children_of = graph.children_indices
        stream_id = stream.stream_id

        stack = [(index, False) for index in reversed(graph.root_indices)]
        visited_under: Set[Tuple[int, bool]] = set()
        counted_runs: Set[int] = set()
        while stack:
            index, under_counted = stack.pop()
            state = (index, under_counted)
            if state in visited_under:
                continue
            visited_under.add(state)
            kind = kinds[index]
            matches = matcher.matches(stack_ids[index])
            if kind == KIND_RUNNING:
                if matches and index not in counted_runs:
                    counted_runs.add(index)
                    self.d_run += costs[index]
                    self._distinct_run[(stream_id, index)] = costs[index]
                continue
            if kind != KIND_WAIT:
                continue
            child_under = under_counted
            if matches and not under_counted:
                self.d_wait += costs[index]
                self.counted_waits += 1
                self._distinct[(stream_id, index)] = costs[index]
                child_under = True
            for child in reversed(children_of.get(index, ())):
                stack.append((child, child_under))

    def merge(self, other: "ImpactAccumulator") -> None:
        """Fold another accumulator's totals into this one.

        Used by the map–reduce pipeline: each worker accumulates one
        corpus chunk and the parent merges the partials.  Distinct-event
        tables are keyed by ``(stream_id, seq)`` with the event cost as
        value, so a dictionary union deduplicates across chunks exactly
        like a single accumulator over the whole corpus would.
        """
        self.d_scn += other.d_scn
        self.d_wait += other.d_wait
        self.d_run += other.d_run
        self.graphs += other.graphs
        self.counted_waits += other.counted_waits
        self._distinct.update(other._distinct)
        self._distinct_run.update(other._distinct_run)

    @property
    def d_waitdist(self) -> int:
        """Total distinct-wait duration across all accumulated graphs."""
        return sum(self._distinct.values())

    @property
    def d_rundist(self) -> int:
        """Total distinct running duration (each sample counted once)."""
        return sum(self._distinct_run.values())

    @property
    def distinct_waits(self) -> int:
        """Number of distinct counted wait events."""
        return len(self._distinct)

    def result(self) -> "ImpactResult":
        """Freeze the accumulated metrics into an :class:`ImpactResult`."""
        return ImpactResult(
            d_scn=self.d_scn,
            d_wait=self.d_wait,
            d_run=self.d_run,
            d_waitdist=self.d_waitdist,
            d_rundist=self.d_rundist,
            graphs=self.graphs,
            counted_waits=self.counted_waits,
            distinct_waits=self.distinct_waits,
            patterns=tuple(self.component_filter.patterns),
        )


@dataclass(frozen=True)
class ImpactResult:
    """The three output metrics of impact analysis plus their inputs."""

    d_scn: int
    d_wait: int
    d_run: int
    d_waitdist: int
    d_rundist: int
    graphs: int
    counted_waits: int
    distinct_waits: int
    patterns: Tuple[str, ...]

    @property
    def ia_wait(self) -> float:
        """Wait percentage: how much the components block executions."""
        return self.d_wait / self.d_scn if self.d_scn else 0.0

    @property
    def ia_run(self) -> float:
        """Running percentage: CPU-time share of the components."""
        return self.d_run / self.d_scn if self.d_scn else 0.0

    @property
    def ia_opt(self) -> float:
        """Extra wait share introduced by cost propagation (upper bound)."""
        if not self.d_scn:
            return 0.0
        return (self.d_wait - self.d_waitdist) / self.d_scn

    @property
    def wait_multiplicity(self) -> float:
        """``D_wait / D_waitdist``: average scenario instances sharing a wait."""
        return self.d_wait / self.d_waitdist if self.d_waitdist else 0.0

    def summary(self) -> str:
        """One-paragraph human-readable summary (§5.1 style)."""
        return (
            f"components {', '.join(self.patterns)} over {self.graphs} "
            f"instances: IA_wait={self.ia_wait:.1%}, IA_run={self.ia_run:.1%}, "
            f"IA_opt={self.ia_opt:.1%}, "
            f"D_wait/D_waitdist={self.wait_multiplicity:.2f}"
        )
