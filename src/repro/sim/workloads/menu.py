"""MenuDisplay scenario: populate a menu whose items come from a server.

Table 4 shows network drivers in 7 of this scenario's top-10 patterns —
a menu that synchronously fetches remote items propagates every network
hiccup straight to the user interface (the paper's second observation,
with the advice to fetch asynchronously or prefetch).

Menus are displayed by the shell's menu thread; the MenuDisplay workload
triggers them, and so do other applications (``AppNonResponsive`` opens
menus during its UI bursts), overlapping the scenarios.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.distributions import bernoulli, exponential_us, skewed_file_id, uniform_us
from repro.sim.engine import ThreadContext
from repro.sim.machine import Machine
from repro.sim.ops import render_batch
from repro.sim.services import RequestFactory, ScenarioWorkerService
from repro.sim.workloads.base import ScenarioSpec, Workload
from repro.units import MILLISECONDS


def menu_host(machine: Machine) -> ScenarioWorkerService:
    """The shell's menu thread; each handled request is a MenuDisplay."""
    service = getattr(machine, "_menu_host", None)
    if service is None:
        service = ScenarioWorkerService(
            machine.engine,
            "Shell",
            name_prefix="Menu",
            workers=1,
            handler_frame="Shell!MenuDisplay",
            scenario="MenuDisplay",
        )
        machine._menu_host = service
    return service


def menu_display_request(machine: Machine, intensity: float = 0.5) -> RequestFactory:
    """One menu display executed on the shell's menu thread."""

    def factory(ctx: ThreadContext) -> Generator:
        rng = machine.rng
        yield from machine.mouse.process_input(ctx)
        if bernoulli(rng, 0.7 + 0.25 * intensity):
            # Items come from a remote server, fetched synchronously on
            # the menu thread — the anti-pattern the paper calls out.
            for _ in range(rng.randint(1, 2)):
                with ctx.frame("Shell!FetchRemoteItems"):
                    yield from machine.net.transfer(
                        ctx, size_factor=rng.uniform(0.3, 1.2)
                    )
        for _ in range(rng.randint(1, 2)):
            with ctx.frame("kernel!OpenFile"):
                yield from machine.fs.read_file(
                    ctx,
                    skewed_file_id(rng, cold_range=1 << 10),
                    size_factor=0.3,
                    cached=bernoulli(rng, 0.9),
                )
        yield from ctx.compute(uniform_us(rng, 8_000, 25_000))
        yield from machine.render_service.submit(
            ctx, render_batch(machine, 0.3), "Shell!WaitForRender"
        )

    return factory


class MenuDisplay(Workload):
    """Open an application menu: remote items, icon files, a small paint."""

    spec = ScenarioSpec(
        name="MenuDisplay",
        t_fast=28 * MILLISECONDS,
        t_slow=60 * MILLISECONDS,
        description="user opens a menu until all items display",
    )

    def install(self, machine: Machine) -> None:
        host = menu_host(machine)
        workload = self

        def ui_program(ctx: ThreadContext) -> Generator:
            yield from ctx.delay(workload.start_offset_us)
            with ctx.frame("Shell!InputLoop"):
                for _ in range(workload.repeats):
                    yield from host.submit(
                        ctx,
                        menu_display_request(machine, workload.intensity),
                        "Shell!WaitForMenu",
                    )
                    think = round(
                        workload.think_median_us
                        * workload.activity_factor(ctx.now)
                    )
                    yield from ctx.delay(
                        exponential_us(machine.rng, max(think, 1))
                    )

        machine.spawn(ui_program, "Shell", "UI")
