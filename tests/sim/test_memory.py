"""Tests for pageable memory and hard faults."""

from repro.sim.machine import Machine, MachineConfig
from repro.trace.events import EventKind
from repro.trace.signatures import module_of


def run_touches(fault_rate, touches=5, seed=3):
    config = MachineConfig(seed=seed, hard_fault_rate=fault_rate)
    machine = Machine("test", config)
    machine.memory.fault_rate = fault_rate

    def program(ctx):
        with ctx.frame("graphics.sys!InitializeSurface"):
            for _ in range(touches):
                yield from machine.memory.touch(ctx)

    machine.spawn(program, "App", "Main")
    return machine.run_and_trace(), machine


class TestHardFaults:
    def test_no_fault_costs_nothing(self):
        stream, machine = run_touches(fault_rate=0.0)
        assert machine.memory.fault_count == 0
        assert machine.disk.request_count == 0
        assert stream.events == []

    def test_fault_spawns_pager_and_blocks(self):
        stream, machine = run_touches(fault_rate=1.0, touches=1)
        assert machine.memory.fault_count == 1
        assert machine.disk.request_count == 1
        waits = stream.events_of_kind(EventKind.WAIT)
        # The faulting thread waits on the page-in completion.
        fault_waits = [
            event for event in waits if "kernel!PageFault" in event.stack
        ]
        assert len(fault_waits) == 1
        # The pager thread runs the fs.sys paging path.
        assert any(
            "fs.sys!PagingRead" in event.stack for event in stream.events
        )

    def test_fault_wait_keeps_driver_frame(self):
        # §5.2.4: the fault wait's stack shows the driver that faulted.
        stream, _ = run_touches(fault_rate=1.0, touches=1)
        fault_wait = next(
            event
            for event in stream.events_of_kind(EventKind.WAIT)
            if "kernel!PageFault" in event.stack
        )
        assert "graphics.sys!InitializeSurface" in fault_wait.stack

    def test_pager_threads_registered(self):
        stream, _ = run_touches(fault_rate=1.0, touches=2)
        pagers = [
            info
            for info in stream.threads.values()
            if info.name.startswith("Pager")
        ]
        assert len(pagers) == 2
        assert all(info.process == "System" for info in pagers)

    def test_page_in_goes_through_encryption_when_enabled(self):
        stream, _ = run_touches(fault_rate=1.0, touches=1)
        modules = {
            module_of(frame)
            for event in stream.events
            for frame in event.stack
        }
        assert "se.sys" in modules
