"""Additional scenarios beyond the paper's eight selected ones.

The paper's data set spans 1,364 usage scenarios; its evaluation selects
eight.  These extra workloads broaden the corpus the same way the
unselected scenarios do in the real data: more concurrent initiators,
more lock traffic, more instance-window overlap — without entering the
Table 1–4 evaluation (the registry's ``SCENARIO_NAMES`` stays the
selected eight; extras register separately).
"""

from __future__ import annotations

from typing import Generator

from repro.sim.distributions import bernoulli, skewed_file_id, uniform_us
from repro.sim.engine import ThreadContext
from repro.sim.machine import Machine
from repro.sim.ops import fetch_resources, open_virtual_files
from repro.sim.workloads.base import ScenarioSpec, Workload
from repro.units import MILLISECONDS


class FileCopy(Workload):
    """Copy a batch of files: read through fv.sys, write through fs.sys."""

    spec = ScenarioSpec(
        name="FileCopy",
        t_fast=200 * MILLISECONDS,
        t_slow=450 * MILLISECONDS,
        description="explorer copies a small batch of files",
    )

    def install(self, machine: Machine) -> None:
        workload = self

        def body(ctx: ThreadContext, iteration: int) -> Generator:
            rng = machine.rng
            with ctx.frame("Explorer!FileCopy"):
                for _ in range(rng.randint(2, 4)):
                    source = skewed_file_id(rng)
                    with ctx.frame("kernel!ReadFile"):
                        yield from machine.fs.read_file(
                            ctx, source, size_factor=rng.uniform(0.5, 2.0),
                            cached=bernoulli(rng, 0.3),
                        )
                    with ctx.frame("kernel!WriteFile"):
                        yield from machine.fs.write_file(
                            ctx, source + 1, size_factor=rng.uniform(0.5, 2.0)
                        )
                yield from ctx.compute(uniform_us(rng, 2_000, 8_000))

        def program(ctx: ThreadContext) -> Generator:
            yield from workload._iterate(ctx, machine, body)

        machine.spawn(program, "Explorer", "Copy")


class AppLaunch(Workload):
    """Launch an application: many opens, a security check, first paint."""

    spec = ScenarioSpec(
        name="AppLaunch",
        t_fast=400 * MILLISECONDS,
        t_slow=900 * MILLISECONDS,
        description="double-click until the app's first window paints",
    )

    def install(self, machine: Machine) -> None:
        workload = self

        def body(ctx: ThreadContext, iteration: int) -> Generator:
            rng = machine.rng
            with ctx.frame("Shell!LaunchApp"):
                file_ids = [skewed_file_id(rng) for _ in range(rng.randint(3, 6))]
                yield from machine.browser_io_service.submit(
                    ctx,
                    open_virtual_files(
                        machine, file_ids, resolve_prob=0.7, cache_prob=0.4
                    ),
                    "Shell!WaitForImages",
                )
                from repro.sim.workloads.security import (
                    access_check_request,
                    access_control_host,
                )

                yield from access_control_host(machine).submit(
                    ctx,
                    access_check_request(machine, workload.intensity),
                    "Shell!WaitAccessCheck",
                )
                # Loader and first-frame CPU.
                yield from ctx.compute(uniform_us(rng, 30_000, 90_000))
                yield from machine.graphics.render(ctx, complexity=0.8)

        def program(ctx: ThreadContext) -> Generator:
            yield from workload._iterate(ctx, machine, body)

        machine.spawn(program, "Shell", "Launcher")


class DocumentSave(Workload):
    """Save a document: serialize (CPU), write, update recents."""

    spec = ScenarioSpec(
        name="DocumentSave",
        t_fast=150 * MILLISECONDS,
        t_slow=350 * MILLISECONDS,
        description="ctrl-s until the title bar clears the dirty marker",
    )

    def install(self, machine: Machine) -> None:
        workload = self

        def body(ctx: ThreadContext, iteration: int) -> Generator:
            rng = machine.rng
            with ctx.frame("Office!SaveDocument"):
                yield from ctx.compute(uniform_us(rng, 10_000, 40_000))
                with ctx.frame("kernel!WriteFile"):
                    yield from machine.fs.write_file(
                        ctx, skewed_file_id(rng),
                        size_factor=rng.uniform(1.0, 3.0),
                    )
                with ctx.frame("kernel!OpenFile"):
                    yield from machine.fv.query_file_table(
                        ctx, skewed_file_id(rng), resolve=False, cached=True
                    )

        def program(ctx: ThreadContext) -> Generator:
            yield from workload._iterate(ctx, machine, body)

        machine.spawn(program, "Office", "UI")


class SearchQuery(Workload):
    """Desktop search: index lookup plus remote suggestions."""

    spec = ScenarioSpec(
        name="SearchQuery",
        t_fast=120 * MILLISECONDS,
        t_slow=300 * MILLISECONDS,
        description="keystroke until the result list refreshes",
    )

    def install(self, machine: Machine) -> None:
        workload = self

        def body(ctx: ThreadContext, iteration: int) -> Generator:
            rng = machine.rng
            with ctx.frame("Search!Query"):
                for _ in range(rng.randint(1, 2)):
                    with ctx.frame("kernel!OpenFile"):
                        yield from machine.fs.read_file(
                            ctx,
                            skewed_file_id(rng),
                            size_factor=0.5,
                            cached=bernoulli(rng, 0.7),
                        )
                if bernoulli(rng, 0.5):
                    yield from machine.fetch_service.submit(
                        ctx,
                        fetch_resources(machine, 1, 0.2, 0.6),
                        "Search!WaitForSuggestions",
                    )
                yield from ctx.compute(uniform_us(rng, 5_000, 15_000))

        def program(ctx: ThreadContext) -> Generator:
            yield from workload._iterate(ctx, machine, body)

        machine.spawn(program, "Search", "UI")


EXTRA_WORKLOAD_CLASSES = [FileCopy, AppLaunch, DocumentSave, SearchQuery]
