"""RTB — the binary columnar trace format, and its zero-copy reader.

JSONL (``repro.trace.serialization``) is the interop format: flat,
greppable, line-oriented.  It is also what dominates the map phase —
``json.loads`` plus one :class:`~repro.trace.events.Event` object per
event.  RTB stores the *same logical stream* column-wise so analyses can
run on fixed-width integer arrays instead:

* a small preamble (magic, format version) and a JSON meta block
  (stream id, canonical content hash, counts, section directory);
* interned string and callstack tables — every frame, resource name,
  thread label and scenario name is stored once and referenced by id;
* fixed-width little-endian event columns (``kind``/``timestamp``/
  ``cost``/``tid``/``wtid``/``stack_id``/``resource_id``), one slot per
  event in ``seq`` order, plus equally flat thread and instance tables.

:func:`load_stream_binary` maps the file and exposes the columns as
:class:`memoryview` casts over the mapping — no bytes are copied and no
``Event`` is materialized until something asks for one.  The returned
:class:`ColumnarTraceStream` is a drop-in :class:`TraceStream`: the
object-based API (``events``, ``events_of_thread`` …) materializes
events lazily with per-index caching, while the ``*_indices`` kernels
let the wait-graph builder and the aggregation/impact accumulators work
on column indices alone (``docs/FORMAT.md`` documents the layout,
``repro trace convert`` converts losslessly in both directions).
"""

from __future__ import annotations

import bisect
import hashlib
import io
import json
import mmap
import os
import sys
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import SerializationError, TraceError, TraceSalvageError
from repro.trace.events import Event, EventKind
from repro.trace.stream import HARDWARE_PROCESS, ThreadInfo, TraceStream

#: First bytes of every RTB file.
RTB_MAGIC = b"RTB\x01"

#: On-disk layout version.  Participates in the store's analysis
#: fingerprint (``repro.store.fingerprint``) so cached partials never
#: outlive a codec change.
RTB_FORMAT_VERSION = 1

#: Preferred file suffix; ``iter_corpus_paths`` treats ``*.rtb`` files
#: as corpus members next to ``*.jsonl``.
RTB_SUFFIX = ".rtb"

#: Stable event-kind codes of the ``kind`` column (u8).
KIND_CODES: Dict[EventKind, int] = {
    EventKind.RUNNING: 0,
    EventKind.WAIT: 1,
    EventKind.UNWAIT: 2,
    EventKind.HW_SERVICE: 3,
}
KIND_BY_CODE: Tuple[EventKind, ...] = tuple(
    kind for kind, _ in sorted(KIND_CODES.items(), key=lambda item: item[1])
)
KIND_RUNNING = KIND_CODES[EventKind.RUNNING]
KIND_WAIT = KIND_CODES[EventKind.WAIT]
KIND_UNWAIT = KIND_CODES[EventKind.UNWAIT]
KIND_HW_SERVICE = KIND_CODES[EventKind.HW_SERVICE]

#: ``resource_id`` sentinel for events without a resource label.
NO_RESOURCE = 0xFFFFFFFF

#: Section names in on-disk order.  Each section is zero-padded to an
#: 8-byte boundary; the meta block records ``[offset, length]`` per
#: section relative to the body start.
_SECTIONS = (
    ("string_offsets", "I"),
    ("string_blob", None),
    ("stack_offsets", "I"),
    ("stack_frames", "I"),
    ("kind", "B"),
    ("timestamp", "q"),
    ("cost", "q"),
    ("tid", "q"),
    ("wtid", "q"),
    ("stack_id", "I"),
    ("resource_id", "I"),
    ("thread_tid", "q"),
    ("thread_process", "I"),
    ("thread_name", "I"),
    ("inst_scenario", "I"),
    ("inst_tid", "q"),
    ("inst_t0", "q"),
    ("inst_t1", "q"),
)
_TYPECODE_OF = dict(_SECTIONS)

_LITTLE_ENDIAN = sys.byteorder == "little"

PathOrFile = Union[str, os.PathLike]


def _pack(typecode: str, values) -> bytes:
    """Little-endian bytes of an integer sequence."""
    import array as _array

    arr = _array.array(typecode, values)
    if not _LITTLE_ENDIAN:
        arr.byteswap()
    return arr.tobytes()


class _Interner:
    """First-use-ordered value → id table (strings or stack tuples)."""

    __slots__ = ("ids", "values")

    def __init__(self) -> None:
        self.ids: Dict = {}
        self.values: List = []

    def intern(self, value) -> int:
        index = self.ids.get(value)
        if index is None:
            index = len(self.values)
            self.ids[value] = index
            self.values.append(value)
        return index


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


def logical_content_hash(stream: TraceStream) -> str:
    """SHA-256 of the stream's *canonical JSONL* serialization.

    This is the format-independent content identity used by the artifact
    store: an RTB file records this digest in its header at encode time,
    and a canonically written ``*.jsonl`` file's raw bytes hash to the
    same value, so a converted trace hits the same store entries.
    """
    from repro.trace.serialization import dumps_stream

    text = dumps_stream(stream)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def dumps_stream_binary(
    stream: TraceStream, content_hash: Optional[str] = None
) -> bytes:
    """Serialize one trace stream to RTB bytes.

    ``content_hash`` lets callers that already computed the canonical
    :func:`logical_content_hash` skip recomputing it.
    """
    strings = _Interner()
    stacks = _Interner()

    n = len(stream.events)
    kinds = bytearray(n)
    timestamps: List[int] = [0] * n
    costs: List[int] = [0] * n
    tids: List[int] = [0] * n
    wtids: List[int] = [0] * n
    stack_ids: List[int] = [0] * n
    resource_ids: List[int] = [NO_RESOURCE] * n

    for index, event in enumerate(stream.events):
        kinds[index] = KIND_CODES[event.kind]
        timestamps[index] = event.timestamp
        costs[index] = event.cost
        tids[index] = event.tid
        if event.wtid is not None:
            wtids[index] = event.wtid
        stack_ids[index] = stacks.intern(event.stack)
        if event.resource is not None:
            resource_ids[index] = strings.intern(event.resource)

    # Frame strings are interned while flattening the (already deduped)
    # stack tuples, so the string table stays first-use ordered.
    stack_offsets: List[int] = [0]
    stack_frames: List[int] = []
    for stack in stacks.values:
        stack_frames.extend(strings.intern(frame) for frame in stack)
        stack_offsets.append(len(stack_frames))

    thread_tids: List[int] = []
    thread_processes: List[int] = []
    thread_names: List[int] = []
    for info in stream.threads.values():
        thread_tids.append(info.tid)
        thread_processes.append(strings.intern(info.process))
        thread_names.append(strings.intern(info.name))

    inst_scenarios: List[int] = []
    inst_tids: List[int] = []
    inst_t0s: List[int] = []
    inst_t1s: List[int] = []
    for instance in stream.instances:
        inst_scenarios.append(strings.intern(instance.scenario))
        inst_tids.append(instance.tid)
        inst_t0s.append(instance.t0)
        inst_t1s.append(instance.t1)

    string_offsets: List[int] = [0]
    blob = io.BytesIO()
    for value in strings.values:
        blob.write(value.encode("utf-8"))
        string_offsets.append(blob.tell())

    payloads: Dict[str, bytes] = {
        "string_offsets": _pack("I", string_offsets),
        "string_blob": blob.getvalue(),
        "stack_offsets": _pack("I", stack_offsets),
        "stack_frames": _pack("I", stack_frames),
        "kind": bytes(kinds),
        "timestamp": _pack("q", timestamps),
        "cost": _pack("q", costs),
        "tid": _pack("q", tids),
        "wtid": _pack("q", wtids),
        "stack_id": _pack("I", stack_ids),
        "resource_id": _pack("I", resource_ids),
        "thread_tid": _pack("q", thread_tids),
        "thread_process": _pack("I", thread_processes),
        "thread_name": _pack("I", thread_names),
        "inst_scenario": _pack("I", inst_scenarios),
        "inst_tid": _pack("q", inst_tids),
        "inst_t0": _pack("q", inst_t0s),
        "inst_t1": _pack("q", inst_t1s),
    }

    body = io.BytesIO()
    sections: Dict[str, List[int]] = {}
    for name, _ in _SECTIONS:
        data = payloads[name]
        padding = -body.tell() % 8
        body.write(b"\x00" * padding)
        sections[name] = [body.tell(), len(data)]
        body.write(data)

    meta = {
        "stream_id": stream.stream_id,
        "content_hash": content_hash or logical_content_hash(stream),
        "counts": {
            "events": n,
            "strings": len(strings.values),
            "stacks": len(stacks.values),
            "threads": len(thread_tids),
            "instances": len(inst_scenarios),
        },
        "sections": sections,
    }
    meta_bytes = json.dumps(meta, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )

    out = io.BytesIO()
    out.write(RTB_MAGIC)
    out.write(_pack("H", [RTB_FORMAT_VERSION, 0]))  # version, flags
    out.write(_pack("I", [len(meta_bytes)]))
    out.write(meta_bytes)
    out.write(b"\x00" * (-out.tell() % 8))
    out.write(body.getvalue())
    return out.getvalue()


def dump_stream_binary(stream: TraceStream, destination: PathOrFile) -> None:
    """Write one trace stream to an RTB file."""
    data = dumps_stream_binary(stream)
    with open(os.fspath(destination), "wb") as handle:
        handle.write(data)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def is_rtb_bytes(prefix: bytes) -> bool:
    """Return True when ``prefix`` starts with the RTB magic."""
    return prefix[: len(RTB_MAGIC)] == RTB_MAGIC


def is_rtb_file(path: PathOrFile) -> bool:
    """Return True when the file at ``path`` is an RTB trace."""
    try:
        with open(os.fspath(path), "rb") as handle:
            return is_rtb_bytes(handle.read(len(RTB_MAGIC)))
    except OSError:
        return False


class _Header:
    """Parsed preamble + meta block of an RTB buffer."""

    __slots__ = ("version", "meta", "body_start")

    def __init__(self, buffer) -> None:
        view = memoryview(buffer)
        if len(view) < 12 or bytes(view[:4]) != RTB_MAGIC:
            raise SerializationError(
                "not an RTB trace file (bad magic in the first 4 bytes; "
                f"file is {len(view)} bytes)"
            )
        version = int.from_bytes(view[4:6], "little")
        if version != RTB_FORMAT_VERSION:
            raise SerializationError(
                f"unsupported RTB format version: {version}"
            )
        meta_len = int.from_bytes(view[8:12], "little")
        meta_end = 12 + meta_len
        if meta_end > len(view):
            raise SerializationError(
                f"truncated RTB meta block: need {meta_len} bytes at "
                f"offset 12, file holds {len(view) - 12}"
            )
        try:
            meta = json.loads(bytes(view[12:meta_end]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(
                f"malformed RTB meta block at offset 12..{meta_end}"
            ) from exc
        if not isinstance(meta, dict):
            raise SerializationError(
                f"malformed RTB meta block at offset 12..{meta_end}: "
                "not a JSON object"
            )
        self.version = version
        self.meta = meta
        self.body_start = meta_end + (-meta_end % 8)


def read_content_hash(path: PathOrFile) -> str:
    """The canonical logical content hash stored in an RTB header.

    Reads only the preamble and meta block — addressing a trace for the
    artifact store costs one small read, never a full parse.
    """
    with open(os.fspath(path), "rb") as handle:
        prefix = handle.read(12)
        if not is_rtb_bytes(prefix) or len(prefix) < 12:
            raise SerializationError(f"{path!r} is not an RTB trace file")
        meta_len = int.from_bytes(prefix[8:12], "little")
        data = prefix + handle.read(meta_len)
    header = _Header(data)
    content_hash = header.meta.get("content_hash")
    if not isinstance(content_hash, str):
        raise SerializationError(f"RTB file {path!r} has no content hash")
    return content_hash


def _column(view: memoryview, sections: Dict, name: str):
    """A zero-copy typed view (or raw bytes view) of one body section.

    On big-endian hosts the little-endian file bytes are byteswapped
    into an ``array`` copy instead — correctness over zero-copy there.
    """
    try:
        offset, length = sections[name]
    except (KeyError, TypeError, ValueError):
        raise SerializationError(f"RTB section table is missing {name!r}")
    if not isinstance(offset, int) or not isinstance(length, int):
        raise SerializationError(
            f"RTB section {name!r} has non-integer bounds "
            f"[{offset!r}, {length!r}]"
        )
    if offset < 0 or length < 0 or offset + length > len(view):
        raise SerializationError(
            f"RTB section {name!r} is out of bounds: "
            f"[offset {offset}, length {length}] does not fit the "
            f"{len(view)}-byte body"
        )
    raw = view[offset : offset + length]
    typecode = _TYPECODE_OF[name]
    if typecode is None or typecode == "B":
        return raw
    if _LITTLE_ENDIAN:
        try:
            return raw.cast(typecode)
        except TypeError as exc:
            raise SerializationError(
                f"RTB section {name!r} has a misaligned length"
            ) from exc
    import array as _array

    arr = _array.array(typecode)
    arr.frombytes(raw)
    arr.byteswap()
    return arr


class _LazyEventList(Sequence):
    """Read-only ``Sequence[Event]`` view over a columnar stream."""

    __slots__ = ("_stream",)

    def __init__(self, stream: "ColumnarTraceStream") -> None:
        self._stream = stream

    def __len__(self) -> int:
        return self._stream.event_count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                self._stream.event_at(i)
                for i in range(*index.indices(self._stream.event_count))
            ]
        if index < 0:
            index += self._stream.event_count
        if not 0 <= index < self._stream.event_count:
            raise IndexError(index)
        return self._stream.event_at(index)

    def __iter__(self) -> Iterator[Event]:
        event_at = self._stream.event_at
        return (event_at(i) for i in range(self._stream.event_count))

    def __eq__(self, other) -> bool:
        # Drop-in parity with the object path, where ``stream.events``
        # is a plain list and compares structurally.
        if isinstance(other, (list, tuple, _LazyEventList)):
            return len(self) == len(other) and all(
                mine == theirs for mine, theirs in zip(self, other)
            )
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result


class ColumnarTraceStream(TraceStream):
    """A :class:`TraceStream` backed by RTB columns instead of objects.

    The object API is fully supported — ``events`` is a lazy sequence
    that materializes (and caches) one :class:`Event` per index on
    demand — but the analysis kernels never use it: the ``*_indices``
    queries and raw column attributes let wait-graph construction and
    aggregation run on integers alone.
    """

    def __init__(self, buffer, *, source_path: Optional[str] = None):
        header = _Header(buffer)
        self._buffer = buffer  # keeps an mmap (if any) alive
        view = memoryview(buffer)[header.body_start :]
        meta = header.meta
        counts = meta.get("counts", {})
        sections = meta.get("sections", {})
        self.source_path = source_path
        self.content_hash: str = meta.get("content_hash", "")
        self.stream_id = meta.get("stream_id", "")

        self.event_count = int(counts.get("events", 0))
        self.kind_col = _column(view, sections, "kind")
        self.timestamp_col = _column(view, sections, "timestamp")
        self.cost_col = _column(view, sections, "cost")
        self.tid_col = _column(view, sections, "tid")
        self.wtid_col = _column(view, sections, "wtid")
        self.stack_id_col = _column(view, sections, "stack_id")
        self.resource_id_col = _column(view, sections, "resource_id")
        for name in (
            "kind_col",
            "timestamp_col",
            "cost_col",
            "tid_col",
            "wtid_col",
            "stack_id_col",
            "resource_id_col",
        ):
            if len(getattr(self, name)) != self.event_count:
                raise SerializationError(
                    f"RTB column {name!r} does not match the event count"
                )

        # String table: the vocabulary is tiny relative to the event
        # columns (that is the point of interning), so decode it eagerly
        # and intern every string exactly like the JSONL loader does.
        string_offsets = _column(view, sections, "string_offsets")
        blob = _column(view, sections, "string_blob")
        if len(string_offsets) != int(counts.get("strings", 0)) + 1:
            raise SerializationError("RTB string table is inconsistent")
        try:
            self.strings: List[str] = [
                sys.intern(
                    str(
                        blob[string_offsets[i] : string_offsets[i + 1]],
                        "utf-8",
                    )
                )
                for i in range(len(string_offsets) - 1)
            ]
        except UnicodeDecodeError as exc:
            raise SerializationError("RTB string blob is corrupt") from exc

        stack_offsets = _column(view, sections, "stack_offsets")
        stack_frames = _column(view, sections, "stack_frames")
        if len(stack_offsets) != int(counts.get("stacks", 0)) + 1:
            raise SerializationError("RTB stack table is inconsistent")
        strings = self.strings
        try:
            self.stacks: List[Tuple[str, ...]] = [
                tuple(
                    strings[frame]
                    for frame in stack_frames[
                        stack_offsets[i] : stack_offsets[i + 1]
                    ]
                )
                for i in range(len(stack_offsets) - 1)
            ]
        except IndexError as exc:
            raise SerializationError("RTB stack table is corrupt") from exc

        thread_tids = _column(view, sections, "thread_tid")
        thread_processes = _column(view, sections, "thread_process")
        thread_names = _column(view, sections, "thread_name")
        try:
            self.threads = {
                thread_tids[i]: ThreadInfo(
                    tid=thread_tids[i],
                    process=strings[thread_processes[i]],
                    name=strings[thread_names[i]],
                )
                for i in range(len(thread_tids))
            }
        except IndexError as exc:
            raise SerializationError("RTB thread table is corrupt") from exc

        self.instances = []
        inst_scenarios = _column(view, sections, "inst_scenario")
        inst_tids = _column(view, sections, "inst_tid")
        inst_t0s = _column(view, sections, "inst_t0")
        inst_t1s = _column(view, sections, "inst_t1")
        try:
            for i in range(len(inst_scenarios)):
                self.add_instance(
                    scenario=strings[inst_scenarios[i]],
                    tid=inst_tids[i],
                    t0=inst_t0s[i],
                    t1=inst_t1s[i],
                )
        except IndexError as exc:
            raise SerializationError("RTB instance table is corrupt") from exc

        self._event_cache: List[Optional[Event]] = [None] * self.event_count
        self._events_view = _LazyEventList(self)
        self._span: Optional[Tuple[int, int]] = None
        self._by_thread_idx: Optional[Dict[int, Tuple[List[int], List[int]]]] = None
        self._unwaits_idx: Optional[Dict[int, Tuple[List[int], List[int]]]] = None
        self._hardware_tids: Optional[frozenset] = None
        self._matchers: Dict[Tuple[str, ...], object] = {}

        timestamps = self.timestamp_col
        for i in range(1, self.event_count):
            if timestamps[i] < timestamps[i - 1]:
                raise SerializationError(
                    f"RTB events are not sorted by timestamp at index {i}"
                )

    # -- lazy event materialization ------------------------------------

    @property
    def events(self):  # type: ignore[override]
        return self._events_view

    @events.setter
    def events(self, value) -> None:  # pragma: no cover - defensive
        raise AttributeError("ColumnarTraceStream events are read-only")

    def event_at(self, index: int) -> Event:
        """The :class:`Event` at one column index, built and cached lazily.

        Materialized events are identical — field for field, with
        interned frames — to what the JSONL loader would produce.
        """
        event = self._event_cache[index]
        if event is None:
            kind_code = self.kind_col[index]
            resource_id = self.resource_id_col[index]
            event = Event(
                kind=KIND_BY_CODE[kind_code],
                stack=self.stacks[self.stack_id_col[index]],
                timestamp=self.timestamp_col[index],
                cost=self.cost_col[index],
                tid=self.tid_col[index],
                seq=index,
                wtid=(
                    self.wtid_col[index]
                    if kind_code == KIND_UNWAIT
                    else None
                ),
                resource=(
                    self.strings[resource_id]
                    if resource_id != NO_RESOURCE
                    else None
                ),
            )
            self._event_cache[index] = event
        return event

    # -- column-index kernels ------------------------------------------

    @property
    def hardware_tids(self) -> frozenset:
        """Tids of device pseudo-threads (process == ``Hardware``)."""
        if self._hardware_tids is None:
            self._hardware_tids = frozenset(
                tid
                for tid, info in self.threads.items()
                if info.process == HARDWARE_PROCESS
            )
        return self._hardware_tids

    def _index_tables(self):
        """One pass over the tid/kind columns building both index tables."""
        if self._by_thread_idx is None:
            by_thread: Dict[int, Tuple[List[int], List[int]]] = {}
            unwaits: Dict[int, Tuple[List[int], List[int]]] = {}
            kinds = self.kind_col
            tids = self.tid_col
            wtids = self.wtid_col
            timestamps = self.timestamp_col
            for index in range(self.event_count):
                timestamp = timestamps[index]
                bucket = by_thread.get(tids[index])
                if bucket is None:
                    bucket = ([], [])
                    by_thread[tids[index]] = bucket
                bucket[0].append(index)
                bucket[1].append(timestamp)
                if kinds[index] == KIND_UNWAIT:
                    target = unwaits.get(wtids[index])
                    if target is None:
                        target = ([], [])
                        unwaits[wtids[index]] = target
                    target[0].append(index)
                    target[1].append(timestamp)
            self._by_thread_idx = by_thread
            self._unwaits_idx = unwaits
        return self._by_thread_idx, self._unwaits_idx

    def thread_event_indices(self, tid: int, t0: int, t1: int) -> List[int]:
        """Indices of ``tid``'s events whose span intersects ``[t0, t1)``.

        Column-index twin of ``TraceStream.events_of_thread``: events
        starting inside the window, preceded by any earlier event of the
        thread that reaches into it, in stream order.
        """
        by_thread, _ = self._index_tables()
        bucket = by_thread.get(tid)
        if bucket is None:
            return []
        indices, starts = bucket
        costs = self.cost_col
        lo = bisect.bisect_left(starts, t0)
        out: List[int] = []
        for position in range(lo, len(indices)):
            if starts[position] >= t1:
                break
            out.append(indices[position])
        reach_back: List[int] = []
        for position in range(lo - 1, -1, -1):
            index = indices[position]
            if starts[position] + costs[index] > t0:
                reach_back.append(index)
        reach_back.reverse()
        return reach_back + out

    def unwait_index_at(self, tid: int, timestamp: int) -> Optional[int]:
        """First unwait targeting ``tid`` at exactly ``timestamp``."""
        _, unwaits = self._index_tables()
        bucket = unwaits.get(tid)
        if bucket is None:
            return None
        indices, starts = bucket
        position = bisect.bisect_left(starts, timestamp)
        if position < len(starts) and starts[position] == timestamp:
            return indices[position]
        return None

    def stack_matcher(self, component_filter):
        """A memoized :class:`~repro.trace.signatures.StackTableMatcher`.

        Cached per component-pattern tuple: every graph of this stream
        aggregated under the same filter shares one stack-id memo.
        """
        from repro.trace.signatures import StackTableMatcher

        key = component_filter.patterns
        matcher = self._matchers.get(key)
        if matcher is None:
            matcher = StackTableMatcher(component_filter, self.stacks)
            self._matchers[key] = matcher
        return matcher

    # -- TraceStream API overrides -------------------------------------

    def __len__(self) -> int:
        return self.event_count

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events_view)

    @property
    def span(self) -> Tuple[int, int]:
        if self._span is None:
            if not self.event_count:
                self._span = (0, 0)
            else:
                timestamps = self.timestamp_col
                costs = self.cost_col
                last = max(
                    timestamps[i] + costs[i] for i in range(self.event_count)
                )
                self._span = (timestamps[0], last)
        return self._span

    def events_of_thread(
        self, tid: int, t0: Optional[int] = None, t1: Optional[int] = None
    ) -> List[Event]:
        if t0 is None and t1 is None:
            by_thread, _ = self._index_tables()
            bucket = by_thread.get(tid)
            if bucket is None:
                return []
            return [self.event_at(i) for i in bucket[0]]
        start, end = self.span
        window_start = start if t0 is None else t0
        window_end = end if t1 is None else t1
        return [
            self.event_at(i)
            for i in self.thread_event_indices(tid, window_start, window_end)
        ]

    def unwaits_targeting(
        self, tid: int, t0: Optional[int] = None, t1: Optional[int] = None
    ) -> List[Event]:
        _, unwaits = self._index_tables()
        bucket = unwaits.get(tid)
        if bucket is None:
            return []
        indices, starts = bucket
        out: List[Event] = []
        for position, index in enumerate(indices):
            if t0 is not None and starts[position] < t0:
                continue
            if t1 is not None and starts[position] > t1:
                continue
            out.append(self.event_at(index))
        return out

    def events_of_kind(self, kind: EventKind) -> List[Event]:
        code = KIND_CODES[kind]
        kinds = self.kind_col
        return [
            self.event_at(i)
            for i in range(self.event_count)
            if kinds[i] == code
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarTraceStream(id={self.stream_id!r}, "
            f"events={self.event_count}, threads={len(self.threads)}, "
            f"instances={len(self.instances)})"
        )


def _parse_columnar(buffer, source_path: Optional[str], where: str):
    """Strict parse with every residual decode error mapped to the library.

    A hostile meta block can steer the reader into ``TypeError``/
    ``ValueError``/``IndexError`` territory (non-integer counts, list
    where a dict belongs, offsets used as slice bounds).  Callers must
    never see a bare builtin exception for a corrupt *file*, so anything
    the targeted checks miss is wrapped here, with the source named.
    """
    try:
        return ColumnarTraceStream(buffer, source_path=source_path)
    except SerializationError as exc:
        raise SerializationError(f"{where}: {exc}") from None
    except (
        ValueError,
        TypeError,
        IndexError,
        KeyError,
        AttributeError,
        OverflowError,
        UnicodeDecodeError,
    ) as exc:
        raise SerializationError(
            f"{where}: RTB body is corrupt "
            f"({exc.__class__.__name__}: {exc})"
        ) from exc


def loads_stream_binary(data: bytes, on_error: str = "strict"):
    """Parse a columnar stream from RTB bytes (round-trip convenience)."""
    if on_error == "salvage":
        try:
            return _parse_columnar(data, None, "<bytes>")
        except SerializationError:
            return _salvage_binary(data, "<bytes>")
    return _parse_columnar(data, None, "<bytes>")


def load_stream_binary(source: PathOrFile, on_error: str = "strict"):
    """Memory-map one RTB file into a zero-copy columnar stream.

    The mapping stays alive for the lifetime of the returned stream; the
    column views read straight from the page cache, so loading costs a
    header parse plus string/stack-table decode regardless of how many
    events the file holds.

    With ``on_error="salvage"`` a file the strict reader rejects is
    re-read leniently: section bounds are clamped to the bytes actually
    present, rows referencing damaged table entries are dropped, and the
    surviving events/instances are returned as a plain (object-backed)
    :class:`TraceStream` carrying ``.salvaged = True`` — provided the
    result still passes validation.  Raises
    :class:`~repro.errors.TraceSalvageError` when nothing recoverable
    remains.
    """
    path = os.fspath(source)
    with open(path, "rb") as handle:
        try:
            buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            # Empty files cannot be mapped; zero-length is malformed anyway.
            buffer = handle.read()
    if on_error == "salvage":
        try:
            return _parse_columnar(buffer, path, path)
        except SerializationError:
            return _salvage_binary(buffer, path)
    return _parse_columnar(buffer, path, path)


# ---------------------------------------------------------------------------
# Salvage (lenient decoding of damaged RTB files)
# ---------------------------------------------------------------------------

_ITEM_SIZE = {"B": 1, "I": 4, "q": 8}


def _lenient_column(view: memoryview, sections, name: str):
    """Best-effort typed view of one section; ``None`` when unreadable.

    Unlike :func:`_column` this never raises: bounds are clamped to the
    bytes actually present (a truncated file keeps its complete rows)
    and structurally hopeless entries — missing, non-integer, starting
    past the end — yield ``None`` so the caller treats the section as
    empty.
    """
    entry = sections.get(name) if isinstance(sections, dict) else None
    if (
        not isinstance(entry, (list, tuple))
        or len(entry) != 2
        or not all(isinstance(value, int) for value in entry)
    ):
        return None
    offset, length = entry
    if offset < 0 or length < 0 or offset > len(view):
        return None
    length = min(length, len(view) - offset)
    typecode = _TYPECODE_OF[name]
    raw = view[offset : offset + length]
    if typecode is None or typecode == "B":
        return raw
    usable = len(raw) - (len(raw) % _ITEM_SIZE[typecode])
    raw = raw[:usable]
    if _LITTLE_ENDIAN:
        return raw.cast(typecode)
    import array as _array

    arr = _array.array(typecode)
    arr.frombytes(raw)
    arr.byteswap()
    return arr


def _salvage_binary(buffer, source: str) -> TraceStream:
    """Decode the recoverable portion of a damaged RTB buffer.

    The salvage contract mirrors the JSONL side: the preamble and meta
    block must still parse (a stream with no identity or no section
    directory is unrecoverable); past that, every table is read with
    clamped bounds, every row is kept only when all of its references
    resolve, dangling waits are trimmed by
    :func:`repro.trace.validate.salvage_events`, and the result must
    pass the full validator.  Returns a plain object-backed
    :class:`TraceStream` — zero-copy column access is a property of
    intact files.
    """
    from repro.trace.validate import is_valid_stream, salvage_events

    try:
        header = _Header(buffer)
    except SerializationError as exc:
        raise TraceSalvageError(
            f"cannot salvage {source!r}: RTB header is unreadable ({exc})"
        ) from exc
    meta = header.meta
    stream_id = meta.get("stream_id")
    if not isinstance(stream_id, str):
        raise TraceSalvageError(
            f"cannot salvage {source!r}: RTB meta block has no stream id"
        )
    view = memoryview(buffer)[header.body_start :]
    sections = meta.get("sections")
    columns = {name: _lenient_column(view, sections, name) for name, _ in _SECTIONS}

    def rows(*names: str) -> int:
        return min(
            len(columns[name]) if columns[name] is not None else 0
            for name in names
        )

    dropped = 0

    # String table: entries with broken offsets become ``None`` holes;
    # anything referencing a hole is dropped, not guessed at.
    strings: List[Optional[str]] = []
    string_offsets = columns["string_offsets"]
    blob = columns["string_blob"]
    if string_offsets is not None and blob is not None:
        for i in range(len(string_offsets) - 1):
            start, end = string_offsets[i], string_offsets[i + 1]
            if 0 <= start <= end <= len(blob):
                strings.append(
                    sys.intern(str(blob[start:end], "utf-8", "replace"))
                )
            else:
                strings.append(None)

    stacks: List[Optional[Tuple[str, ...]]] = []
    stack_offsets = columns["stack_offsets"]
    stack_frames = columns["stack_frames"]
    if stack_offsets is not None:
        frame_count = len(stack_frames) if stack_frames is not None else 0
        for i in range(len(stack_offsets) - 1):
            start, end = stack_offsets[i], stack_offsets[i + 1]
            if not 0 <= start <= end <= frame_count:
                stacks.append(None)
                continue
            frames: List[str] = []
            for position in range(start, end):
                frame_id = stack_frames[position]
                if frame_id < len(strings) and strings[frame_id] is not None:
                    frames.append(strings[frame_id])
                else:
                    frames = []
                    break
            else:
                stacks.append(tuple(frames))
                continue
            stacks.append(None)

    events: List[Event] = []
    event_rows = rows(
        "kind", "timestamp", "cost", "tid", "wtid", "stack_id", "resource_id"
    )
    for i in range(event_rows):
        kind_code = columns["kind"][i]
        if not 0 <= kind_code < len(KIND_BY_CODE):
            dropped += 1
            continue
        stack_id = columns["stack_id"][i]
        if stack_id >= len(stacks) or stacks[stack_id] is None:
            dropped += 1
            continue
        resource_id = columns["resource_id"][i]
        resource = None
        if resource_id != NO_RESOURCE:
            if resource_id >= len(strings) or strings[resource_id] is None:
                dropped += 1
                continue
            resource = strings[resource_id]
        try:
            events.append(
                Event(
                    kind=KIND_BY_CODE[kind_code],
                    stack=stacks[stack_id],
                    timestamp=columns["timestamp"][i],
                    cost=columns["cost"][i],
                    tid=columns["tid"][i],
                    seq=len(events),
                    wtid=(
                        columns["wtid"][i]
                        if kind_code == KIND_UNWAIT
                        else None
                    ),
                    resource=resource,
                )
            )
        except TraceError:
            dropped += 1

    kept, dropped_events = salvage_events(events)

    threads: List[ThreadInfo] = []
    for i in range(rows("thread_tid", "thread_process", "thread_name")):
        process_id = columns["thread_process"][i]
        name_id = columns["thread_name"][i]
        if (
            process_id < len(strings)
            and name_id < len(strings)
            and strings[process_id] is not None
            and strings[name_id] is not None
        ):
            threads.append(
                ThreadInfo(
                    tid=columns["thread_tid"][i],
                    process=strings[process_id],
                    name=strings[name_id],
                )
            )
        else:
            dropped += 1

    stream = TraceStream(stream_id, kept, threads)

    for i in range(rows("inst_scenario", "inst_tid", "inst_t0", "inst_t1")):
        scenario_id = columns["inst_scenario"][i]
        tid = columns["inst_tid"][i]
        t0 = columns["inst_t0"][i]
        t1 = columns["inst_t1"][i]
        if (
            scenario_id >= len(strings)
            or strings[scenario_id] is None
            or not stream.admits_instance(tid, t0, t1)
        ):
            dropped += 1
            continue
        stream.add_instance(
            scenario=strings[scenario_id], tid=tid, t0=t0, t1=t1
        )

    if not stream.events and not stream.instances:
        raise TraceSalvageError(
            f"cannot salvage {source!r}: no events or instances survive"
        )
    if not is_valid_stream(stream):
        raise TraceSalvageError(
            f"cannot salvage {source!r}: surviving content still fails "
            "validation"
        )
    stream.salvaged = True
    stream.salvage_dropped = dropped + dropped_events
    return stream
