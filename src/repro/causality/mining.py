"""Contrast-pattern mining over Aggregated Wait Graphs (paper §4.2.3).

Three steps:

1. **Meta-pattern enumeration** — enumerate every path segment of length
   1..k in each class's AWG (k bounds the cost; the paper uses 5) and
   collect Signature Set Tuples, aggregating ``P.C`` and ``P.N`` over
   segments sharing an SST.
2. **Meta-pattern contrast discovery** — a meta-pattern is a contrast if
   it appears only in the slow class, or if it is common but its average
   cost ratio exceeds ``T_slow / T_fast``.
3. **Contrast-pattern extraction** — compute the SST of every full
   root-to-leaf path of the slow AWG; select paths containing any
   contrast meta-pattern; merge identical SSTs (different propagation
   orders of the same problem) and rank by average cost ``P.C / P.N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.causality.sst import SignatureSetTuple
from repro.errors import AnalysisError
from repro.waitgraph.aggregate import AggregatedWaitGraph, AwgNode

DEFAULT_SEGMENT_BOUND = 5


@dataclass
class PatternStats:
    """Aggregated cost/occurrence statistics for one SST."""

    cost: int = 0
    count: int = 0
    max_single: int = 0

    def add(self, cost: int, count: int, max_single: int) -> None:
        self.cost += cost
        self.count += count
        if max_single > self.max_single:
            self.max_single = max_single

    @property
    def mean_cost(self) -> float:
        """``P.C / P.N`` — the paper's pattern impact measure."""
        return self.cost / self.count if self.count else 0.0


MetaPatterns = Dict[SignatureSetTuple, PatternStats]


def _ancestor_chain(node: AwgNode, length: int) -> List[AwgNode]:
    """The path segment of ``length`` nodes ending at ``node`` (or fewer
    when the trie is shallower)."""
    chain: List[AwgNode] = []
    current: AwgNode = node
    while current is not None and len(chain) < length:
        chain.append(current)
        current = current.parent
    chain.reverse()
    return chain


def enumerate_meta_patterns(
    awg: AggregatedWaitGraph, k: int = DEFAULT_SEGMENT_BOUND
) -> MetaPatterns:
    """Collect meta-patterns from all path segments of length 1..k.

    A segment's metric is its end node's (Definition 4), so for each node
    we enumerate the k segments ending there — one per length — and add
    the node's ``C``/``N`` under each resulting SST.
    """
    if k < 1:
        raise AnalysisError("segment length bound k must be >= 1")
    patterns: MetaPatterns = {}
    for node in awg.nodes():
        chain = _ancestor_chain(node, k)
        # Segments ending at `node`, shortest first: chain[-1:], chain[-2:], ...
        for length in range(1, len(chain) + 1):
            segment = chain[len(chain) - length :]
            sst = SignatureSetTuple.from_segment(segment)
            stats = patterns.get(sst)
            if stats is None:
                stats = PatternStats()
                patterns[sst] = stats
            stats.add(node.cost, node.count, node.max_single)
    return patterns


@dataclass(frozen=True)
class ContrastCriteria:
    """Why a meta-pattern was selected as a contrast."""

    slow_only: bool
    cost_ratio: float


def discover_contrast_meta_patterns(
    slow_patterns: MetaPatterns,
    fast_patterns: MetaPatterns,
    t_fast: int,
    t_slow: int,
) -> Dict[SignatureSetTuple, ContrastCriteria]:
    """Select contrast meta-patterns by the paper's two criteria.

    1. the pattern appears in the slow class but not in the fast class;
    2. it appears in both, but its average cost in the slow class exceeds
       the fast class's by more than ``T_slow / T_fast``.
    """
    threshold_ratio = t_slow / t_fast
    contrasts: Dict[SignatureSetTuple, ContrastCriteria] = {}
    for sst, slow_stats in slow_patterns.items():
        fast_stats = fast_patterns.get(sst)
        if fast_stats is None or fast_stats.count == 0:
            contrasts[sst] = ContrastCriteria(
                slow_only=True, cost_ratio=float("inf")
            )
            continue
        fast_mean = fast_stats.mean_cost
        if fast_mean <= 0:
            continue
        ratio = slow_stats.mean_cost / fast_mean
        if ratio > threshold_ratio:
            contrasts[sst] = ContrastCriteria(slow_only=False, cost_ratio=ratio)
    return contrasts


@dataclass
class ContrastPattern:
    """A discovered contrast pattern: a full-path SST with its metrics."""

    sst: SignatureSetTuple
    cost: int
    count: int
    max_single: int
    matched_meta_patterns: int

    @property
    def impact(self) -> float:
        """Average execution cost ``P.C / P.N`` (the ranking key)."""
        return self.cost / self.count if self.count else 0.0

    def is_high_impact(self, t_slow: int) -> bool:
        """The §5.2.1 automated rule: some single execution exceeded T_slow."""
        return self.max_single > t_slow


class _MetaIndex:
    """Inverted index over contrast meta-patterns for fast containment.

    A full-path SST can only contain a meta-pattern whose signatures all
    appear in the path's signature union; indexing each meta-pattern by
    one of its signatures shrinks the candidate set from thousands to the
    handful sharing a signature with the path.
    """

    def __init__(self, metas: Iterable[SignatureSetTuple]):
        self._by_signature: Dict[str, List[SignatureSetTuple]] = {}
        self._empty: List[SignatureSetTuple] = []
        for meta in metas:
            union = meta.all_signatures
            if not union:
                self._empty.append(meta)
                continue
            anchor = min(union)  # deterministic representative
            self._by_signature.setdefault(anchor, []).append(meta)

    def candidates(
        self, path_sst: SignatureSetTuple
    ) -> Iterable[SignatureSetTuple]:
        seen: Set[int] = set()
        for signature in path_sst.all_signatures:
            for meta in self._by_signature.get(signature, ()):
                if id(meta) not in seen:
                    seen.add(id(meta))
                    yield meta
        yield from self._empty


def extract_contrast_patterns(
    slow_awg: AggregatedWaitGraph,
    contrast_metas: Dict[SignatureSetTuple, ContrastCriteria],
) -> List[ContrastPattern]:
    """Lift contrast meta-patterns to full-path contrast patterns.

    Every root-to-leaf path of the slow AWG is one trie leaf; identical
    SSTs from different leaves merge their ``P.C``/``P.N`` — multiple
    cost-propagation orders of the same underlying problem collapse into
    one pattern (Definition 5 rationale).
    """
    index = _MetaIndex(contrast_metas.keys())
    merged: Dict[SignatureSetTuple, ContrastPattern] = {}
    for leaf in slow_awg.leaves():
        chain = _ancestor_chain(leaf, 1 << 30)  # full path to the root
        path_sst = SignatureSetTuple.from_segment(chain)
        matches = sum(
            1
            for meta in index.candidates(path_sst)
            if path_sst.contains(meta)
        )
        if not matches:
            continue
        # A single "execution" of the pattern is one occurrence of the
        # path; its observed delay is the root node's cost (wait costs
        # nest their children), which is what the §5.2.1 high-impact
        # rule compares against T_slow.
        root_max_single = chain[0].max_single
        existing = merged.get(path_sst)
        if existing is None:
            merged[path_sst] = ContrastPattern(
                sst=path_sst,
                cost=leaf.cost,
                count=leaf.count,
                max_single=root_max_single,
                matched_meta_patterns=matches,
            )
        else:
            existing.cost += leaf.cost
            existing.count += leaf.count
            existing.max_single = max(existing.max_single, root_max_single)
            existing.matched_meta_patterns = max(
                existing.matched_meta_patterns, matches
            )
    return list(merged.values())
