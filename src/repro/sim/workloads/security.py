"""AppAccessControl scenario: an access-controlled application operation.

Every protected open is inspected by the shared security service — a
single worker with a single signature database, the architecture §5.2.4
blames for bottlenecks under load.  Table 4 shows this scenario dominated
by file-system and filter drivers (9 + 9 of the top-10 patterns).

Access checks run on the application's access-control thread; the
workload triggers them, and so do tab creations and office applications,
overlapping this scenario with the others.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.distributions import exponential_us, skewed_file_id, uniform_us
from repro.sim.engine import ThreadContext
from repro.sim.machine import Machine
from repro.sim.ops import security_inspection
from repro.sim.services import RequestFactory, ScenarioWorkerService
from repro.sim.workloads.base import ScenarioSpec, Workload
from repro.units import MILLISECONDS


def access_control_host(machine: Machine) -> ScenarioWorkerService:
    """The app's access-control thread; each request is an AppAccessControl."""
    service = getattr(machine, "_access_host", None)
    if service is None:
        service = ScenarioWorkerService(
            machine.engine,
            "App",
            name_prefix="AccessCtl",
            workers=1,
            handler_frame="App!AccessProtectedResource",
            scenario="AppAccessControl",
        )
        machine._access_host = service
    return service


def access_check_request(
    machine: Machine, intensity: float = 0.5
) -> RequestFactory:
    """One protected open through the full security filter stack."""

    def factory(ctx: ThreadContext) -> Generator:
        rng = machine.rng
        file_id = skewed_file_id(rng)
        yield from machine.security_service.submit(
            ctx,
            security_inspection(
                machine, file_id, resolve_prob=0.3 + 0.4 * intensity
            ),
            "App!WaitAccessCheck",
        )
        for _ in range(rng.randint(1, 2)):
            with ctx.frame("kernel!QueryAttributes"):
                yield from machine.fs.query_metadata(ctx, skewed_file_id(rng))
        yield from ctx.compute(uniform_us(rng, 15_000, 50_000))

    return factory


class AppAccessControl(Workload):
    """Open a protected resource through the full security filter stack."""

    spec = ScenarioSpec(
        name="AppAccessControl",
        t_fast=30 * MILLISECONDS,
        t_slow=55 * MILLISECONDS,
        description="application opens a protected file until access is granted",
    )

    def install(self, machine: Machine) -> None:
        host = access_control_host(machine)
        workload = self

        def app_program(ctx: ThreadContext) -> Generator:
            yield from ctx.delay(workload.start_offset_us)
            with ctx.frame("App!WorkLoop"):
                for _ in range(workload.repeats):
                    yield from host.submit(
                        ctx,
                        access_check_request(machine, workload.intensity),
                        "App!WaitForAccess",
                    )
                    think = round(
                        workload.think_median_us
                        * workload.activity_factor(ctx.now)
                    )
                    yield from ctx.delay(
                        exponential_us(machine.rng, max(think, 1))
                    )

        machine.spawn(app_program, "App", "Main")
