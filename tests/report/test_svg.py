"""Tests for SVG rendering of Aggregated Wait Graphs."""

import xml.etree.ElementTree as ET

from repro.report.svg import awg_to_svg, save_awg_svg
from repro.trace.signatures import ALL_DRIVERS
from repro.waitgraph.aggregate import aggregate_wait_graphs
from repro.waitgraph.builder import build_wait_graph


def build_awg(propagation_stream):
    graph = build_wait_graph(propagation_stream.instances[0])
    return aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)


class TestSvgRendering:
    def test_is_well_formed_xml(self, propagation_stream):
        svg = awg_to_svg(build_awg(propagation_stream))
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_node_boxes_and_labels(self, propagation_stream):
        awg = build_awg(propagation_stream)
        svg = awg_to_svg(awg)
        assert svg.count("<rect") >= awg.node_count()  # boxes + background
        assert "fv.sys!Query" in svg
        assert "C=" in svg

    def test_edges_drawn(self, propagation_stream):
        svg = awg_to_svg(build_awg(propagation_stream))
        assert "<line" in svg
        assert "marker-end" in svg

    def test_min_cost_elides(self, propagation_stream):
        awg = build_awg(propagation_stream)
        full = awg_to_svg(awg)
        elided = awg_to_svg(awg, min_cost=10**9)
        assert len(elided) < len(full)

    def test_custom_title_escaped(self, propagation_stream):
        svg = awg_to_svg(build_awg(propagation_stream), title="a <b> & c")
        assert "a &lt;b&gt; &amp; c" in svg

    def test_save_to_file(self, propagation_stream, tmp_path):
        path = tmp_path / "awg.svg"
        save_awg_svg(build_awg(propagation_stream), str(path))
        assert path.read_text().startswith("<svg")

    def test_empty_awg(self):
        from repro.trace.signatures import ALL_DRIVERS
        from repro.waitgraph.aggregate import AggregatedWaitGraph

        svg = awg_to_svg(AggregatedWaitGraph(ALL_DRIVERS))
        ET.fromstring(svg)

    def test_on_simulated_corpus(self, small_corpus):
        stream = small_corpus[0]
        graphs = [build_wait_graph(i) for i in stream.instances[:10]]
        awg = aggregate_wait_graphs(graphs, ALL_DRIVERS)
        svg = awg_to_svg(awg, min_cost=1000)
        ET.fromstring(svg)
