"""Driver-type taxonomy (paper Table 4).

Maps driver modules to the categories of the paper's Table 4 and
categorizes discovered contrast patterns by the driver types their
signatures touch.  The paper anonymizes driver names; our simulator uses
stable synthetic names, so the mapping is exact.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Sequence, Set

from repro.causality.mining import ContrastPattern
from repro.causality.sst import SignatureSetTuple
from repro.trace.signatures import module_of

#: Table 4 column order.
DRIVER_TYPE_ORDER: List[str] = [
    "FileSystem/GeneralStorage",
    "FileSystemFilter",
    "Network",
    "StorageEncryption",
    "DiskProtection",
    "Graphics",
    "StorageBackup",
    "IOCache",
    "Mouse",
    "ACPI",
]

#: Module → Table 4 driver type.
DRIVER_TYPES: Dict[str, str] = {
    "fs.sys": "FileSystem/GeneralStorage",
    "stor.sys": "FileSystem/GeneralStorage",
    "fv.sys": "FileSystemFilter",
    "av.sys": "FileSystemFilter",
    "net.sys": "Network",
    "tcpip.sys": "Network",
    "se.sys": "StorageEncryption",
    "dp.sys": "DiskProtection",
    "graphics.sys": "Graphics",
    "bkup.sys": "StorageBackup",
    "iocache.sys": "IOCache",
    "mouse.sys": "Mouse",
    "acpi.sys": "ACPI",
}


def driver_type_of(module: str) -> str:
    """The Table 4 type of a driver module ('' when not a known driver)."""
    return DRIVER_TYPES.get(module.lower(), "")


def types_in_sst(sst: SignatureSetTuple) -> Set[str]:
    """The set of driver types appearing anywhere in an SST."""
    types: Set[str] = set()
    for signature in sst.all_signatures:
        driver_type = driver_type_of(module_of(signature))
        if driver_type:
            types.add(driver_type)
    return types


def categorize_top_patterns(
    patterns: Sequence[ContrastPattern], top_n: int = 10
) -> Counter:
    """Count how many of the top-``top_n`` patterns touch each type.

    This is one row of Table 4: each cell is the number of top patterns
    containing the corresponding type of drivers (a pattern can touch
    several types, so the row may sum to more than ``top_n``).
    """
    counts: Counter = Counter()
    for pattern in patterns[:top_n]:
        for driver_type in types_in_sst(pattern.sst):
            counts[driver_type] += 1
    return counts


def driver_modules(signatures: Iterable[str]) -> Set[str]:
    """The driver modules (known types only) among a set of signatures."""
    return {
        module_of(signature)
        for signature in signatures
        if driver_type_of(module_of(signature))
    }
