"""Causality analysis: contrast data mining over Aggregated Wait Graphs (§4)."""

from repro.causality.analyzer import (
    CausalityAnalysis,
    CausalityReport,
    assemble_report,
)
from repro.causality.classes import ContrastClasses, classify_instances
from repro.causality.filtering import (
    ByDesignKnowledge,
    FilteredPatterns,
    filter_by_design,
)
from repro.causality.mining import (
    ContrastCriteria,
    ContrastPattern,
    DEFAULT_SEGMENT_BOUND,
    PatternStats,
    discover_contrast_meta_patterns,
    enumerate_meta_patterns,
    extract_contrast_patterns,
)
from repro.causality.ranking import coverage_curve, coverage_of_top, rank_patterns
from repro.causality.sst import SignatureSetTuple
from repro.causality.thresholds import (
    ThresholdSuggestion,
    suggest_for_corpus,
    suggest_for_instances,
    suggest_thresholds,
)

__all__ = [
    "ByDesignKnowledge",
    "CausalityAnalysis",
    "CausalityReport",
    "ContrastClasses",
    "ContrastCriteria",
    "ContrastPattern",
    "DEFAULT_SEGMENT_BOUND",
    "FilteredPatterns",
    "filter_by_design",
    "PatternStats",
    "SignatureSetTuple",
    "ThresholdSuggestion",
    "suggest_for_corpus",
    "suggest_for_instances",
    "suggest_thresholds",
    "assemble_report",
    "classify_instances",
    "coverage_curve",
    "coverage_of_top",
    "discover_contrast_meta_patterns",
    "enumerate_meta_patterns",
    "extract_contrast_patterns",
    "rank_patterns",
]
