"""Command-line interface.

Subcommands cover the full workflow a performance analyst would run:

* ``repro generate`` — synthesize a trace corpus to JSONL;
* ``repro validate`` — check trace files against the schema invariants;
* ``repro impact``   — impact analysis over a corpus (§3);
* ``repro causality``— causality analysis of one scenario (§4);
* ``repro study``    — the full evaluation: Tables 1–4 (§5);
* ``repro thresholds`` — suggest T_fast/T_slow from observed durations;
* ``repro compare``  — diff two corpora's patterns (regression check);
* ``repro case``     — replay a paper case study (figure1 / hardfault);
* ``repro store``    — artifact-store maintenance (stats/verify/gc/prewarm);
* ``repro trace``    — trace-file utilities (convert between formats, info);
* ``repro corpus``   — corpus health tools (doctor triages damaged traces,
  fuzz injects deterministic corruption for resilience testing).

Traces are directories of ``*.jsonl`` and/or ``*.rtb`` streams as
written by ``repro generate`` (or any producer of the documented
schema); the two encodings are losslessly interchangeable via ``repro
trace convert``.  The analysis commands accept ``--store DIR`` to cache
per-trace partials in a content-addressed artifact store
(``docs/STORE.md``): re-runs over an unchanged corpus are then nearly
free, and a grown corpus only pays for its new traces.  Output is
byte-identical with and without a store and across trace formats; cache
statistics and ``--verbose`` timing summaries go to stderr.

Hostile corpora are handled by the resilience layer
(``docs/RESILIENCE.md``): ``--on-error skip|salvage`` makes the
analysis commands tolerate damaged trace files and crashing workers,
``--max-retries`` bounds the crash-retry budget, and ``--health-json``
writes a machine-readable run-health report for CI gates.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.causality import CausalityAnalysis
from repro.causality.filtering import ByDesignKnowledge, filter_by_design
from repro.causality.thresholds import suggest_for_corpus
from repro.errors import ConfigError, ReproError
from repro.evaluation.drivertypes import DRIVER_TYPE_ORDER
from repro.evaluation.study import group_by_scenario, run_study
from repro.impact import ImpactAnalysis
from repro.report.tables import Table, fmt_pct, fmt_ratio
from repro.sim.corpus import CorpusConfig, generate_corpus
from repro.sim.sched import POLICY_NAMES
from repro.sim.workloads.registry import (
    PATHOLOGY_SCENARIO_NAMES,
    SCENARIO_NAMES,
    scenario_spec,
)
from repro.trace import (
    dump_corpus,
    iter_corpus_paths,
    load_corpus,
    load_stream,
    validate_stream,
)
from repro.units import MILLISECONDS


def _load_traces(path: str) -> List:
    import os

    if os.path.isdir(path):
        streams = list(load_corpus(path))
    else:
        streams = [load_stream(path)]
    if not streams:
        raise ReproError(f"no trace streams found at {path!r}")
    return streams


def _trace_sources(path: str) -> List[str]:
    """Corpus sources as *paths*, so pipeline workers stream their own chunks."""
    import os

    if os.path.isdir(path):
        sources = iter_corpus_paths(path)
    else:
        sources = [path]
    if not sources:
        raise ReproError(f"no trace streams found at {path!r}")
    return sources


def _add_worker_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--workers", type=int, default=1,
        help="analysis processes; >1 fans the corpus out over a "
             "map-reduce pipeline with identical output",
    )
    subparser.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="streams per pipeline chunk (default: auto)",
    )
    subparser.add_argument(
        "--store", default=None, metavar="DIR",
        help="artifact store caching per-trace partials; re-runs only "
             "recompute new or changed traces, output stays identical",
    )
    subparser.add_argument(
        "--verbose", action="store_true",
        help="print a one-line map-phase timing summary "
             "(events/sec, formats, cache hit rate) to stderr",
    )
    _add_resilience_options(subparser)


def _add_resilience_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--on-error", default="strict", metavar="POLICY",
        help="damaged-trace policy: strict (default, fail the run), "
             "skip (drop and record), or salvage (keep the valid "
             "portion; see docs/RESILIENCE.md)",
    )
    subparser.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="extra attempts per chunk after a worker crash before "
             "bisection/fallback (default: 2)",
    )
    subparser.add_argument(
        "--health-json", default=None, metavar="FILE",
        help="write a machine-readable run-health report (analyzed/"
             "skipped/salvaged/quarantined counts plus failures)",
    )


def _validate_pipeline_options(args: argparse.Namespace) -> None:
    """Reject out-of-range pipeline knobs before they reach the pool layer."""
    workers = getattr(args, "workers", 1)
    if workers < 1:
        raise ConfigError(
            f"--workers must be >= 1, got {workers} "
            "(1 = sequential, N > 1 = N analysis processes)"
        )
    chunk_size = getattr(args, "chunk_size", None)
    if chunk_size is not None and chunk_size < 1:
        raise ConfigError(
            f"--chunk-size must be >= 1, got {chunk_size} "
            "(omit the flag to size chunks automatically)"
        )
    from repro.resilience import validate_max_retries, validate_on_error

    validate_on_error(getattr(args, "on_error", "strict"))
    validate_max_retries(getattr(args, "max_retries", 0))


def _open_cli_store(args: argparse.Namespace):
    """The run's ArtifactStore handle, or None when --store wasn't given."""
    if not getattr(args, "store", None):
        return None
    from repro.pipeline import open_store

    return open_store(args.store)


def _report_store(store) -> None:
    """Print cache statistics to stderr, keeping stdout byte-identical."""
    if store is None or store.session_lookups == 0:
        return
    print(
        f"store: {store.hits} hits, {store.misses} misses "
        f"({store.hit_rate:.1%} hit rate) in {store.directory}",
        file=sys.stderr,
    )


def _map_phase_stats(args: argparse.Namespace):
    """A stats sink for the pipeline when --verbose was given, else None."""
    if not getattr(args, "verbose", False):
        return None
    from repro.pipeline import MapPhaseStats

    return MapPhaseStats()


def _report_stats(stats) -> None:
    """Print the map-phase timing summary to stderr (stdout stays clean)."""
    if stats is not None:
        print(stats.summary(), file=sys.stderr)


def _use_pipeline(args: argparse.Namespace, store) -> bool:
    """Whether an analysis command routes through the parallel pipeline.

    ``--verbose`` forces the pipeline even at ``--workers 1`` so there
    is a map phase to time; its output is identical to the sequential
    path by the pipeline's equivalence guarantee.  A non-strict
    ``--on-error`` policy or a ``--health-json`` sidecar also force it:
    fault isolation and run-health accounting live in the map phase.
    """
    return (
        args.workers > 1
        or store is not None
        or getattr(args, "verbose", False)
        or getattr(args, "on_error", "strict") != "strict"
        or getattr(args, "health_json", None) is not None
    )


def _run_health(args: argparse.Namespace):
    """A RunHealth collector for this invocation, or None when unwanted.

    Health is tracked whenever someone will see it: a non-strict
    ``--on-error`` policy, a ``--health-json`` sidecar, or ``--verbose``.
    """
    wanted = (
        getattr(args, "on_error", "strict") != "strict"
        or getattr(args, "health_json", None) is not None
        or getattr(args, "verbose", False)
    )
    if not wanted:
        return None
    from repro.resilience import RunHealth

    return RunHealth()


def _report_health(args: argparse.Namespace, health) -> None:
    """Emit the run-health summary (stderr) and sidecar (``--health-json``)."""
    if health is None:
        return
    if getattr(args, "verbose", False):
        print(health.summary(), file=sys.stderr)
    path = getattr(args, "health_json", None)
    if path:
        health.write_json(path)


# ---------------------------------------------------------------------------
# Subcommand handlers
# ---------------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    _validate_pipeline_options(args)
    config = CorpusConfig(streams=args.streams, seed=args.seed)
    print(f"Generating {args.streams} streams (seed {args.seed}) ...")
    corpus = generate_corpus(config, workers=args.workers)
    paths = dump_corpus(corpus, args.out, format=args.format)
    events = sum(len(stream.events) for stream in corpus)
    instances = sum(len(stream.instances) for stream in corpus)
    print(
        f"Wrote {len(paths)} {args.format} streams ({events} events, "
        f"{instances} scenario instances) to {args.out}"
    )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    streams = _load_traces(args.traces)
    failures = 0
    for stream in streams:
        try:
            validate_stream(stream)
            print(f"ok      {stream.stream_id} ({len(stream.events)} events)")
        except ReproError as error:
            failures += 1
            print(f"INVALID {stream.stream_id}: {error}")
    return 1 if failures else 0


def cmd_impact(args: argparse.Namespace) -> int:
    _validate_pipeline_options(args)
    scenarios = args.scenario if args.scenario else None
    store = _open_cli_store(args)
    if _use_pipeline(args, store):
        from repro.pipeline import parallel_impact

        stats = _map_phase_stats(args)
        health = _run_health(args)
        result = parallel_impact(
            _trace_sources(args.traces),
            component_patterns=args.components,
            scenarios=scenarios,
            workers=args.workers,
            chunk_size=args.chunk_size,
            store=store,
            stats=stats,
            on_error=args.on_error,
            max_retries=args.max_retries,
            health=health,
        )
        _report_stats(stats)
        _report_store(store)
        _report_health(args, health)
    else:
        streams = _load_traces(args.traces)
        result = ImpactAnalysis(args.components).analyze_corpus(
            streams, scenarios=scenarios
        )
    table = Table(
        ["Metric", "Value"],
        title=f"Impact of {', '.join(args.components)}",
    )
    table.add_row("instances", result.graphs)
    table.add_row("IA_wait", fmt_pct(result.ia_wait))
    table.add_row("IA_run", fmt_pct(result.ia_run))
    table.add_row("IA_opt", fmt_pct(result.ia_opt))
    table.add_row("D_wait/D_waitdist", fmt_ratio(result.wait_multiplicity))
    print(table.render())
    return 0


def _causality_thresholds(args: argparse.Namespace):
    """Resolve (t_fast, t_slow) from flags or the scenario registry."""
    if args.t_fast and args.t_slow:
        return args.t_fast * MILLISECONDS, args.t_slow * MILLISECONDS
    if args.scenario in SCENARIO_NAMES:
        spec = scenario_spec(args.scenario)
        return spec.t_fast, spec.t_slow
    return None


def cmd_causality(args: argparse.Namespace) -> int:
    from repro.errors import AnalysisError

    _validate_pipeline_options(args)
    store = _open_cli_store(args)
    if _use_pipeline(args, store):
        thresholds = _causality_thresholds(args)
        if thresholds is None:
            print(
                "unknown scenario: pass --t-fast and --t-slow (milliseconds)",
                file=sys.stderr,
            )
            return 1
        from repro.pipeline import parallel_causality

        stats = _map_phase_stats(args)
        health = _run_health(args)
        try:
            report = parallel_causality(
                _trace_sources(args.traces),
                args.scenario,
                *thresholds,
                component_patterns=args.components,
                segment_bound=args.k,
                workers=args.workers,
                chunk_size=args.chunk_size,
                store=store,
                stats=stats,
                on_error=args.on_error,
                max_retries=args.max_retries,
                health=health,
            )
        except AnalysisError as error:
            print(str(error), file=sys.stderr)
            return 1
        _report_stats(stats)
        _report_store(store)
        _report_health(args, health)
        t_fast, t_slow = thresholds
    else:
        streams = _load_traces(args.traces)
        instances = [
            instance
            for stream in streams
            for instance in stream.instances
            if instance.scenario == args.scenario
        ]
        if not instances:
            known = sorted(
                {i.scenario for s in streams for i in s.instances}
            )
            print(
                f"no instances of {args.scenario!r}; scenarios present: "
                + ", ".join(known),
                file=sys.stderr,
            )
            return 1

        thresholds = _causality_thresholds(args)
        if thresholds is None:
            print(
                "unknown scenario: pass --t-fast and --t-slow (milliseconds)",
                file=sys.stderr,
            )
            return 1
        t_fast, t_slow = thresholds

        analysis = CausalityAnalysis(args.components, segment_bound=args.k)
        report = analysis.analyze(
            instances, t_fast, t_slow, scenario=args.scenario
        )
    print(report.summary())
    patterns = report.patterns
    if args.filter_by_design:
        filtered = filter_by_design(patterns, ByDesignKnowledge.default())
        print(
            f"by-design filtering suppressed {filtered.suppressed_count} "
            f"patterns, flagged {len(filtered.flagged)}"
        )
        patterns = filtered.actionable
    print()
    for rank, pattern in enumerate(patterns[: args.top], start=1):
        marker = "HIGH" if pattern.is_high_impact(t_slow) else "    "
        print(
            f"#{rank} {marker} impact={pattern.impact / 1000:.1f}ms "
            f"N={pattern.count} worst={pattern.max_single / 1000:.0f}ms"
        )
        print(pattern.sst.render(indent="      "))
        print()
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    _validate_pipeline_options(args)
    store = _open_cli_store(args)
    if _use_pipeline(args, store):
        from repro.pipeline import parallel_study

        stats = _map_phase_stats(args)
        health = _run_health(args)
        study = parallel_study(
            _trace_sources(args.traces),
            workers=args.workers,
            chunk_size=args.chunk_size,
            store=store,
            stats=stats,
            on_error=args.on_error,
            max_retries=args.max_retries,
            health=health,
        )
        _report_stats(stats)
        _report_store(store)
        _report_health(args, health)
    else:
        streams = _load_traces(args.traces)
        study = run_study(streams)
    if args.markdown:
        from repro.report.markdown import save_study_markdown

        save_study_markdown(study, args.markdown)
        print(f"wrote markdown report to {args.markdown}")
    impact = study.impact

    table = Table(["Metric", "Value"], title="Impact analysis (section 5.1)")
    table.add_row("IA_wait", fmt_pct(impact.ia_wait))
    table.add_row("IA_run", fmt_pct(impact.ia_run))
    table.add_row("IA_opt", fmt_pct(impact.ia_opt))
    table.add_row("D_wait/D_waitdist", fmt_ratio(impact.wait_multiplicity))
    print(table.render())
    print()

    table = Table(["Scenario", "#Inst", "fast", "slow", "Driver", "ITC",
                   "TTC", "#Pat", "top10%", "top30%"],
                  title="Tables 1-3 combined")
    for name, study_item in sorted(study.scenarios.items()):
        classes = study_item.report.classes
        coverage = study_item.coverage
        top10, _, top30 = study_item.ranking_coverage
        table.add_row(
            name, classes.total, len(classes.fast), len(classes.slow),
            fmt_pct(coverage.driver_cost_share), fmt_pct(coverage.itc),
            fmt_pct(coverage.ttc), study_item.report.pattern_count,
            fmt_pct(top10), fmt_pct(top30),
        )
    print(table.render())
    print()

    headers = ["Scenario"] + [t.split("/")[0][:8] for t in DRIVER_TYPE_ORDER]
    table = Table(headers, title="Table 4 - Driver types in top-10 patterns")
    for name, counts in sorted(study.table4_rows().items()):
        table.add_row(name, *(counts.get(t, 0) for t in DRIVER_TYPE_ORDER))
    print(table.render())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.evaluation.compare import compare_impact, compare_patterns

    baseline_streams = _load_traces(args.baseline)
    current_streams = _load_traces(args.current)

    def analyze(streams):
        instances = [
            instance
            for stream in streams
            for instance in stream.instances
            if instance.scenario == args.scenario
        ]
        if not instances:
            raise ReproError(
                f"no instances of {args.scenario!r} in one of the corpora"
            )
        spec = scenario_spec(args.scenario)
        report = CausalityAnalysis(args.components).analyze(
            instances, spec.t_fast, spec.t_slow, scenario=args.scenario
        )
        impact = ImpactAnalysis(args.components).analyze_instances(instances)
        return report, impact

    baseline_report, baseline_impact = analyze(baseline_streams)
    current_report, current_impact = analyze(current_streams)

    delta = compare_impact(baseline_impact, current_impact)
    print(f"Impact movement: {delta.summary()}")
    comparison = compare_patterns(
        baseline_report.patterns,
        current_report.patterns,
        regression_factor=args.factor,
    )
    print(f"Pattern diff: {comparison.summary()}")
    for pattern in comparison.emerged[: args.top]:
        print("\nEMERGED:")
        print(pattern.sst.render(indent="  "))
    for movement in comparison.regressed[: args.top]:
        print(f"\nREGRESSED x{movement.ratio:.1f}:")
        print(movement.sst.render(indent="  "))
    return 1 if comparison.has_regressions else 0


def cmd_thresholds(args: argparse.Namespace) -> int:
    streams = _load_traces(args.traces)
    suggestions = suggest_for_corpus(
        streams,
        fast_quantile=args.fast_quantile,
        slow_quantile=args.slow_quantile,
        min_samples=args.min_samples,
    )
    if not suggestions:
        print("no scenario has enough instances for a suggestion",
              file=sys.stderr)
        return 1
    table = Table(
        ["Scenario", "T_fast (ms)", "T_slow (ms)", "samples",
         "fast frac", "slow frac"],
        title="Suggested performance thresholds",
    )
    for suggestion in suggestions:
        table.add_row(
            suggestion.scenario,
            round(suggestion.t_fast / MILLISECONDS, 1),
            round(suggestion.t_slow / MILLISECONDS, 1),
            suggestion.sample_size,
            f"{suggestion.fast_fraction:.0%}",
            f"{suggestion.slow_fraction:.0%}",
        )
    print(table.render())
    return 0


def cmd_case(args: argparse.Namespace) -> int:
    from repro.report.figures import render_wait_graph
    from repro.sim import casestudy
    from repro.waitgraph.builder import build_wait_graph

    if args.name == "figure1":
        result = casestudy.run_case_study()
        t_fast, t_slow = casestudy.T_FAST, casestudy.T_SLOW
        scenario = casestudy.SCENARIO
    else:
        result = casestudy.run_hardfault_case()
        t_fast, t_slow = casestudy.HARDFAULT_T_FAST, casestudy.HARDFAULT_T_SLOW
        scenario = casestudy.HARDFAULT_SCENARIO

    print(
        f"{scenario}: slow instance took "
        f"{result.slow_instance.duration / 1000:.0f} ms\n"
    )
    print(render_wait_graph(build_wait_graph(result.slow_instance),
                            max_depth=7))
    report = CausalityAnalysis(["*.sys"]).analyze(
        result.instances, t_fast, t_slow, scenario=scenario
    )
    if report.patterns:
        print("\nTop discovered pattern:")
        print(report.patterns[0].sst.render())
    return 0


# ---------------------------------------------------------------------------
# Trace-file utilities
# ---------------------------------------------------------------------------


_FORMAT_BY_SUFFIX = {".jsonl": "jsonl", ".rtb": "rtb"}


def _write_stream_as(stream, path: str, format: str) -> None:
    from repro.trace import dump_stream, dump_stream_binary

    if format == "rtb":
        dump_stream_binary(stream, path)
    else:
        dump_stream(stream, path)


def cmd_trace_convert(args: argparse.Namespace) -> int:
    import os

    source, dest = args.source, args.out
    if os.path.isdir(source):
        # Directory mode: re-dump the whole corpus in the target format.
        # dump_corpus names files <stream_id>.<format> and skips streams
        # whose destination already holds identical logical content.
        format = args.to or "rtb"
        count = 0
        for path in _trace_sources(source):
            stream = load_stream(path)
            dump_corpus([stream], dest, format=format)
            count += 1
        print(f"converted {count} streams to {format} in {dest}")
        return 0
    format = args.to or _FORMAT_BY_SUFFIX.get(
        os.path.splitext(dest)[1].lower()
    )
    if format is None:
        raise ConfigError(
            f"cannot infer the target format from {dest!r}; "
            "pass --to jsonl or --to rtb"
        )
    stream = load_stream(source)
    _write_stream_as(stream, dest, format)
    print(f"converted {source} -> {dest} ({format})")
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    import os

    from repro.trace import is_rtb_file, stream_content_hash

    path = args.trace
    stream = load_stream(path)
    format = "rtb" if is_rtb_file(path) else "jsonl"
    table = Table(["Field", "Value"], title=f"Trace {path}")
    table.add_row("format", format)
    table.add_row("stream id", stream.stream_id)
    table.add_row("events", len(stream.events))
    table.add_row("threads", len(stream.threads))
    table.add_row("instances", len(stream.instances))
    table.add_row("file bytes", os.path.getsize(path))
    table.add_row("content hash", stream_content_hash(path))
    print(table.render())
    return 0


# ---------------------------------------------------------------------------
# Corpus health tools
# ---------------------------------------------------------------------------


def cmd_corpus_doctor(args: argparse.Namespace) -> int:
    """Triage every trace file in a corpus without failing on any of them.

    Unlike the analysis commands, ``doctor`` does its own file listing:
    a corpus holding the same stream in two formats (duplicate stems,
    which :func:`iter_corpus_paths` rejects) is reported as a finding
    instead of aborting the checkup.
    """
    import os

    from repro.errors import TraceError, TraceSalvageError
    from repro.resilience import (
        RunHealth,
        failure_from_exception,
        validate_on_error,
    )
    from repro.trace.serialization import TRACE_SUFFIXES

    validate_on_error(args.on_error)
    root = args.corpus
    if not os.path.isdir(root):
        raise ConfigError(f"corpus must be a directory, got {root!r}")
    names = sorted(
        name for name in os.listdir(root) if name.endswith(TRACE_SUFFIXES)
    )
    if not names:
        raise ReproError(f"no trace streams found at {root!r}")

    health = RunHealth()
    problems = 0
    stem_owner: dict = {}
    for name in names:
        path = os.path.join(root, name)
        stem = name.rsplit(".", 1)[0]
        if stem in stem_owner:
            problems += 1
            health.record_failure(failure_from_exception(
                path, "corpus", "skipped",
                ReproError(
                    f"duplicate stem: same stream as {stem_owner[stem]} "
                    "(analysis would count it twice; convert or remove one)"
                ),
            ))
            print(f"DUPLICATE {name}: same stream as {stem_owner[stem]}")
            continue
        stem_owner[stem] = name
        try:
            stream = load_stream(path, on_error=args.on_error)
        except (TraceError, TraceSalvageError, OSError,
                UnicodeDecodeError) as error:
            problems += 1
            health.record_failure(
                failure_from_exception(path, "ingest", "skipped", error)
            )
            print(f"BROKEN    {name}: {error}")
            continue
        health.analyzed += 1
        if getattr(stream, "salvaged", False):
            dropped = getattr(stream, "salvage_dropped", 0)
            health.record_failure(failure_from_exception(
                path, "ingest", "salvaged",
                TraceSalvageError(
                    f"recovered {len(stream.events)} events, "
                    f"{len(stream.instances)} instances "
                    f"(dropped {dropped} damaged records)"
                ),
            ))
            print(
                f"salvaged  {name}: {len(stream.events)} events recovered "
                f"({dropped} damaged records dropped)"
            )
        else:
            print(
                f"ok        {name}: {len(stream.events)} events, "
                f"{len(stream.instances)} instances"
            )
    print(health.summary(), file=sys.stderr)
    if args.health_json:
        health.write_json(args.health_json)
    return 1 if problems else 0


def cmd_corpus_fuzz(args: argparse.Namespace) -> int:
    """Deterministically corrupt part of a corpus (resilience testing)."""
    from repro.resilience import fuzz_corpus, resolve_corruptors

    corruptors = (
        resolve_corruptors(args.corruptor) if args.corruptor else None
    )
    records = fuzz_corpus(
        args.corpus,
        seed=args.seed,
        fraction=args.fraction,
        corruptors=corruptors,
    )
    for record in records:
        print(f"{record.corruptor:<14} seed={record.seed:<10} {record.path}")
    print(
        f"corrupted {len(records)} trace files in {args.corpus} "
        f"(seed {args.seed})"
    )
    return 0


# ---------------------------------------------------------------------------
# Schedule exploration
# ---------------------------------------------------------------------------


def cmd_explore(args: argparse.Namespace) -> int:
    from repro.sim.explore import (
        ExploreConfig,
        explore_schedules,
        negative_control,
        smoke_config,
        verify_all_pathologies,
    )

    if args.smoke:
        config = smoke_config()
    else:
        config = ExploreConfig(
            scenarios=tuple(args.scenarios),
            policies=tuple(args.policies),
            seeds=tuple(args.seeds),
            intensities=tuple(args.intensities),
            repeats=args.repeats,
        )
    # Unknown policy or scenario names raise ConfigError here — the CLI
    # fails loudly (exit 2 via main) instead of falling back to FIFO.
    config.validate()
    report = explore_schedules(config, workers=args.workers)
    print(report.to_json() if args.json else report.render())

    if not args.oracle:
        return 0
    oracle_seeds = (0,) if args.smoke else tuple(args.seeds)
    oracle_intensities = (0.15, 0.85) if args.smoke else (0.15, 0.5, 0.85)
    oracle_repeats = 3 if args.smoke else 6
    verdicts = verify_all_pathologies(
        seeds=oracle_seeds,
        intensities=oracle_intensities,
        repeats=oracle_repeats,
    )
    for verdict in verdicts:
        print(f"oracle: {verdict.summary()}")
    clean = negative_control(repeats=oracle_repeats)
    print(f"oracle negative control: {'clean' if clean else 'CONTAMINATED'}")
    if any(not verdict.passed for verdict in verdicts) or not clean:
        return 1
    return 0


# ---------------------------------------------------------------------------
# Artifact-store maintenance
# ---------------------------------------------------------------------------


def cmd_store_stats(args: argparse.Namespace) -> int:
    from repro.store import ArtifactStore

    stats = ArtifactStore(args.store_dir).stats()
    table = Table(["Metric", "Value"], title=f"Store {args.store_dir}")
    table.add_row("entries", stats.entries)
    table.add_row("size (bytes)", stats.total_bytes)
    table.add_row("distinct traces", stats.distinct_traces)
    table.add_row("distinct fingerprints", stats.distinct_fingerprints)
    table.add_row("quarantined", stats.quarantined)
    table.add_row("quarantined bytes", stats.quarantined_bytes)
    print(table.render())
    for fingerprint, count in sorted(stats.fingerprints.items()):
        print(f"  {fingerprint[:16]}…  {count} entries")
    return 0


def cmd_store_verify(args: argparse.Namespace) -> int:
    from repro.store import ArtifactStore

    report = ArtifactStore(args.store_dir).verify(deep=args.deep)
    print(
        f"checked {report.checked} entries: {report.ok} ok, "
        f"{len(report.corrupt)} corrupt"
    )
    for path, reason in report.corrupt:
        print(f"QUARANTINED {path}: {reason}")
    return 0 if report.all_ok else 1


def cmd_store_gc(args: argparse.Namespace) -> int:
    from repro.store import ArtifactStore
    from repro.trace import stream_content_hash

    live = None
    if args.corpus:
        live = {
            stream_content_hash(path)
            for path in _trace_sources(args.corpus)
        }
    report = ArtifactStore(args.store_dir).gc(live_content_hashes=live)
    print(
        f"gc: removed {report.removed_entries} entries "
        f"({report.removed_bytes} bytes), "
        f"{report.removed_quarantined} quarantined files; "
        f"kept {report.kept_entries}"
    )
    return 0


def cmd_store_prewarm(args: argparse.Namespace) -> int:
    _validate_pipeline_options(args)
    from repro.pipeline import prewarm_store

    store = prewarm_store(
        _trace_sources(args.traces),
        args.store_dir,
        component_patterns=args.components,
        workers=args.workers,
        chunk_size=args.chunk_size,
    )
    print(
        f"prewarmed {store.directory}: {store.misses} streams computed, "
        f"{store.hits} already warm"
    )
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Trace-based performance comprehension (ASPLOS'14 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="synthesize a corpus")
    generate.add_argument("--streams", type=int, default=16)
    generate.add_argument("--seed", type=int, default=20140301)
    generate.add_argument("--out", required=True, metavar="DIR")
    generate.add_argument(
        "--format", choices=["jsonl", "rtb"], default="jsonl",
        help="corpus encoding: jsonl (interop default) or rtb "
             "(binary columnar fast path)",
    )
    generate.add_argument(
        "--workers", type=int, default=1,
        help="generator processes (identical output for any count)",
    )
    generate.set_defaults(handler=cmd_generate)

    validate = subparsers.add_parser("validate", help="validate trace files")
    validate.add_argument("traces", metavar="DIR_OR_FILE")
    validate.set_defaults(handler=cmd_validate)

    impact = subparsers.add_parser("impact", help="impact analysis")
    impact.add_argument("traces", metavar="DIR_OR_FILE")
    impact.add_argument("--components", nargs="+", default=["*.sys"])
    impact.add_argument("--scenario", nargs="+", default=None)
    _add_worker_options(impact)
    impact.set_defaults(handler=cmd_impact)

    causality = subparsers.add_parser("causality", help="causality analysis")
    causality.add_argument("traces", metavar="DIR_OR_FILE")
    causality.add_argument("--scenario", required=True)
    causality.add_argument("--components", nargs="+", default=["*.sys"])
    causality.add_argument("--t-fast", type=int, default=0,
                           help="fast threshold in ms")
    causality.add_argument("--t-slow", type=int, default=0,
                           help="slow threshold in ms")
    causality.add_argument("--k", type=int, default=5,
                           help="segment length bound")
    causality.add_argument("--top", type=int, default=5)
    causality.add_argument("--filter-by-design", action="store_true")
    _add_worker_options(causality)
    causality.set_defaults(handler=cmd_causality)

    study = subparsers.add_parser("study", help="full evaluation tables")
    study.add_argument("traces", metavar="DIR_OR_FILE")
    study.add_argument("--markdown", metavar="FILE",
                       help="also write a markdown report")
    _add_worker_options(study)
    study.set_defaults(handler=cmd_study)

    compare = subparsers.add_parser(
        "compare", help="diff two corpora's patterns (regression check)"
    )
    compare.add_argument("baseline", metavar="BASELINE_DIR")
    compare.add_argument("current", metavar="CURRENT_DIR")
    compare.add_argument("--scenario", required=True)
    compare.add_argument("--components", nargs="+", default=["*.sys"])
    compare.add_argument("--factor", type=float, default=2.0)
    compare.add_argument("--top", type=int, default=3)
    compare.set_defaults(handler=cmd_compare)

    thresholds = subparsers.add_parser(
        "thresholds", help="suggest T_fast/T_slow from observed durations"
    )
    thresholds.add_argument("traces", metavar="DIR_OR_FILE")
    thresholds.add_argument("--fast-quantile", type=float, default=0.40)
    thresholds.add_argument("--slow-quantile", type=float, default=0.70)
    thresholds.add_argument("--min-samples", type=int, default=10)
    thresholds.set_defaults(handler=cmd_thresholds)

    case = subparsers.add_parser("case", help="replay a paper case study")
    case.add_argument("name", choices=["figure1", "hardfault"])
    case.set_defaults(handler=cmd_case)

    explore = subparsers.add_parser(
        "explore",
        help="sweep scheduler policy × seed grids (see docs/EXPLORE.md)",
    )
    explore.add_argument(
        "--scenarios", nargs="+", metavar="NAME",
        default=list(PATHOLOGY_SCENARIO_NAMES),
        help="scenarios to explore (default: the pathology scenarios)",
    )
    explore.add_argument(
        "--policies", nargs="+", metavar="NAME",
        default=list(POLICY_NAMES),
        help=f"scheduling policies (known: {', '.join(POLICY_NAMES)})",
    )
    explore.add_argument(
        "--seeds", nargs="+", type=int, default=[0, 1, 2],
        help="policy seeds forming the grid's second axis",
    )
    explore.add_argument(
        "--intensities", nargs="+", type=float, default=[0.2, 0.5, 0.8],
        help="workload intensities swept inside every cell",
    )
    explore.add_argument("--repeats", type=int, default=4,
                         help="scenario instances per cell and intensity")
    explore.add_argument(
        "--workers", type=int, default=1,
        help="parallel cell processes (identical report for any count)",
    )
    explore.add_argument(
        "--smoke", action="store_true",
        help="small fixed CI grid (overrides the grid options)",
    )
    explore.add_argument(
        "--oracle", action="store_true",
        help="also run the planted-pathology mining oracle; exit 1 on miss",
    )
    explore.add_argument(
        "--json", action="store_true",
        help="emit the canonical JSON coverage report instead of the table",
    )
    explore.set_defaults(handler=cmd_explore)

    store = subparsers.add_parser(
        "store", help="artifact-store maintenance (see docs/STORE.md)"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)

    store_stats = store_sub.add_parser(
        "stats", help="entry counts, sizes and fingerprints"
    )
    store_stats.add_argument("store_dir", metavar="STORE")
    store_stats.set_defaults(handler=cmd_store_stats)

    store_verify = store_sub.add_parser(
        "verify", help="integrity-check every entry, quarantine corrupt ones"
    )
    store_verify.add_argument("store_dir", metavar="STORE")
    store_verify.add_argument(
        "--deep", action="store_true",
        help="also deserialize each payload, not just checksum it",
    )
    store_verify.set_defaults(handler=cmd_store_verify)

    store_gc = store_sub.add_parser(
        "gc", help="drop quarantined files and dead entries"
    )
    store_gc.add_argument("store_dir", metavar="STORE")
    store_gc.add_argument(
        "--corpus", metavar="DIR_OR_FILE",
        help="also drop entries for traces no longer in this corpus",
    )
    store_gc.set_defaults(handler=cmd_store_gc)

    store_prewarm = store_sub.add_parser(
        "prewarm",
        help="populate the store with full-study partials for a corpus",
    )
    store_prewarm.add_argument("store_dir", metavar="STORE")
    store_prewarm.add_argument("traces", metavar="DIR_OR_FILE")
    store_prewarm.add_argument("--components", nargs="+", default=["*.sys"])
    store_prewarm.add_argument(
        "--workers", type=int, default=1,
        help="prewarm processes (same pipeline as repro study)",
    )
    store_prewarm.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="streams per pipeline chunk (default: auto)",
    )
    store_prewarm.set_defaults(handler=cmd_store_prewarm)

    corpus = subparsers.add_parser(
        "corpus", help="corpus health tools (see docs/RESILIENCE.md)"
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    corpus_doctor = corpus_sub.add_parser(
        "doctor",
        help="triage every trace file: ok / salvageable / broken",
    )
    corpus_doctor.add_argument("corpus", metavar="DIR")
    corpus_doctor.add_argument(
        "--on-error", default="salvage", metavar="POLICY",
        help="checkup policy: salvage (default) also attempts recovery "
             "of broken files; strict or skip just verdicts them",
    )
    corpus_doctor.add_argument(
        "--health-json", default=None, metavar="FILE",
        help="write the checkup's run-health report as JSON",
    )
    corpus_doctor.set_defaults(handler=cmd_corpus_doctor)

    corpus_fuzz = corpus_sub.add_parser(
        "fuzz",
        help="deterministically corrupt part of a corpus IN PLACE "
             "(resilience testing; run on a copy)",
    )
    corpus_fuzz.add_argument("corpus", metavar="DIR")
    corpus_fuzz.add_argument(
        "--seed", type=int, required=True,
        help="fuzzing seed; the same seed always corrupts the same "
             "files the same way",
    )
    corpus_fuzz.add_argument(
        "--fraction", type=float, default=0.5,
        help="fraction of the corpus to corrupt, in (0, 1] (default: 0.5)",
    )
    corpus_fuzz.add_argument(
        "--corruptor", nargs="+", default=None, metavar="NAME",
        help="restrict to specific corruptors (default: all); see "
             "repro.resilience.CORRUPTORS",
    )
    corpus_fuzz.set_defaults(handler=cmd_corpus_fuzz)

    trace = subparsers.add_parser(
        "trace", help="trace-file utilities (see docs/FORMAT.md)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_convert = trace_sub.add_parser(
        "convert",
        help="losslessly convert traces between JSONL and RTB",
    )
    trace_convert.add_argument("source", metavar="SRC_DIR_OR_FILE")
    trace_convert.add_argument("out", metavar="DEST_DIR_OR_FILE")
    trace_convert.add_argument(
        "--to", choices=["jsonl", "rtb"], default=None,
        help="target format (default: from the destination suffix for "
             "files, rtb for directories)",
    )
    trace_convert.set_defaults(handler=cmd_trace_convert)

    trace_info = trace_sub.add_parser(
        "info", help="summarize one trace file (format, counts, hash)"
    )
    trace_info.add_argument("trace", metavar="FILE")
    trace_info.set_defaults(handler=cmd_trace_info)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
