"""Injected contention pathologies with labeled causes.

Each workload here manufactures one classic multi-core contention
pathology — a lock convoy, a priority inversion, a near-deadlock
lock-order cycle, a wakeup storm — and *labels* it: every wait the
pathology produces carries a distinctive device-driver frame
(``convoy.sys!...``, ``inversion.sys!...``, ...) that the component
filter (pattern ``*.sys``) will pick as the wait's signature.  The
frames are published as ``planted_signatures`` (and the contended
resources as ``planted_resources``), turning each scenario into ground
truth the oracle harness (:mod:`repro.sim.explore.oracle`) can hold the
whole analysis stack against: wait-graph construction, impact metrics
and contrast-pattern mining must all rediscover the planted cause.

Severity scales with the workload ``intensity`` knob (more antagonist
threads, shorter pauses), so a corpus spanning intensities contains both
fast and slow instances of each scenario — the contrast classes mining
needs.  Scheduling-exploration policies (:mod:`repro.sim.sched`) then
widen the spread further: delay-injection amplifies the convoy, shuffled
wakeups drive storms and starvation.

All antagonist threads run bounded loops tied to ``repeats``, so an
unbounded :meth:`~repro.sim.engine.Engine.run` still drains.
"""

from __future__ import annotations

from typing import Generator, List, Type

from repro.sim.distributions import exponential_us, uniform_us
from repro.sim.engine import ThreadContext
from repro.sim.locks import Lock, Mailbox, SimEvent
from repro.sim.machine import Machine
from repro.sim.workloads.base import ScenarioSpec, Workload
from repro.units import MILLISECONDS


class LockConvoy(Workload):
    """A hot lock pounded by many short holders: the classic convoy.

    Antagonist threads acquire ``ConvoyHot`` in a tight loop with short
    hold times; the scenario batch needs the same lock four times.  Each
    handoff wakes exactly one waiter, so once the queue forms, the
    lock's service rate is one hold per wakeup — and any extra handoff
    latency (see :class:`~repro.sim.sched.ConvoyPolicy`) stalls the
    entire queue, not just the next holder.
    """

    spec = ScenarioSpec(
        name="LockConvoy",
        t_fast=20 * MILLISECONDS,
        t_slow=45 * MILLISECONDS,
        description="batch of hot-path operations behind a convoy-prone lock",
    )

    #: Frames the pathology plants on its waits (component ``*.sys``).
    planted_signatures = frozenset({"convoy.sys!AcquireHotPathLock"})
    #: Wait-graph resources the pathology contends on.
    planted_resources = frozenset({"lock:ConvoyHot"})

    def install(self, machine: Machine) -> None:
        workload = self
        lock = Lock("ConvoyHot")
        antagonists = 2 + round(6 * self.intensity)

        def antagonist_program(ctx: ThreadContext) -> Generator:
            rng = machine.rng
            yield from ctx.delay(workload.start_offset_us)
            with ctx.frame("ConvoySvc!HotLoop"):
                for _ in range(workload.repeats * 10):
                    with ctx.frame("convoy.sys!AcquireHotPathLock"):
                        yield from ctx.acquire(lock)
                        yield from ctx.compute(uniform_us(rng, 300, 900))
                        yield from ctx.release(lock)
                    pause = round(2_500 - 2_000 * workload.intensity)
                    yield from ctx.delay(
                        exponential_us(rng, max(pause, 100))
                    )

        def body(ctx: ThreadContext, iteration: int) -> Generator:
            rng = machine.rng
            with ctx.frame("App!HotPathBatch"):
                for _ in range(4):
                    with ctx.frame("convoy.sys!AcquireHotPathLock"):
                        yield from ctx.acquire(lock)
                        yield from ctx.compute(uniform_us(rng, 600, 1_600))
                        yield from ctx.release(lock)
                    yield from ctx.compute(uniform_us(rng, 800, 2_000))

        def program(ctx: ThreadContext) -> Generator:
            yield from workload._iterate(ctx, machine, body)

        for index in range(antagonists):
            machine.spawn(antagonist_program, "ConvoySvc", f"Hot{index}")
        machine.spawn(program, "App", "ConvoyMain")


class PriorityInversion(Workload):
    """A long-holding background thread starves the scenario thread.

    A housekeeping thread takes ``InversionConfig`` and then does a long
    CPU-bound pass — preemptible work that CPU-saturating "medium
    priority" decode threads stretch further (the hold grows with core
    contention, exactly the Mars-Pathfinder shape).  The scenario thread
    needs the same lock for a sub-millisecond read, so its latency is
    dominated by the inflated hold time of a thread doing unrelated
    background work.
    """

    spec = ScenarioSpec(
        name="PriorityInversion",
        t_fast=12 * MILLISECONDS,
        t_slow=30 * MILLISECONDS,
        description="config read blocked behind a long-holding background pass",
    )

    planted_signatures = frozenset({"inversion.sys!AcquireConfigLock"})
    planted_resources = frozenset({"lock:InversionConfig"})

    def install(self, machine: Machine) -> None:
        workload = self
        lock = Lock("InversionConfig")
        spinners = 2 + round(5 * self.intensity)

        hold_slices = 2 + round(4 * self.intensity)
        holder_pause = max(round(12_000 - 11_000 * self.intensity), 200)

        def holder_program(ctx: ThreadContext) -> Generator:
            rng = machine.rng
            yield from ctx.delay(workload.start_offset_us)
            with ctx.frame("HousekeepSvc!BackgroundPass"):
                for _ in range(workload.repeats * 4):
                    with ctx.frame("inversion.sys!AcquireConfigLock"):
                        yield from ctx.acquire(lock)
                        # Long preemptible hold: split into slices so CPU
                        # saturation stretches the wall-clock hold time.
                        for _ in range(hold_slices):
                            yield from ctx.compute(
                                uniform_us(rng, 1_500, 4_000)
                            )
                        yield from ctx.release(lock)
                    yield from ctx.delay(exponential_us(rng, holder_pause))

        def spinner_program(ctx: ThreadContext) -> Generator:
            rng = machine.rng
            yield from ctx.delay(workload.start_offset_us)
            with ctx.frame("MediaSvc!DecodeLoop"):
                for _ in range(workload.repeats * 12):
                    yield from ctx.compute(uniform_us(rng, 1_000, 3_000))
                    pause = round(1_200 - 1_000 * workload.intensity)
                    yield from ctx.delay(
                        exponential_us(rng, max(pause, 50))
                    )

        def body(ctx: ThreadContext, iteration: int) -> Generator:
            rng = machine.rng
            with ctx.frame("App!ReadSharedConfig"):
                with ctx.frame("inversion.sys!AcquireConfigLock"):
                    yield from ctx.acquire(lock)
                    yield from ctx.compute(uniform_us(rng, 400, 1_000))
                    yield from ctx.release(lock)
                yield from ctx.compute(uniform_us(rng, 2_000, 5_000))

        def program(ctx: ThreadContext) -> Generator:
            yield from workload._iterate(ctx, machine, body)

        machine.spawn(holder_program, "HousekeepSvc", "Background")
        for index in range(spinners):
            machine.spawn(spinner_program, "MediaSvc", f"Decode{index}")
        machine.spawn(program, "App", "InversionMain")


class DeadlockCycle(Workload):
    """Opposite lock-order paths that *almost* deadlock.

    The scenario thread takes ``CycleAlpha`` then ``CycleBeta``; index
    antagonists take them in reverse.  The reverse path uses
    trylock-with-backoff — it only commits to ``CycleAlpha`` when the
    lock is observably free, and otherwise releases ``CycleBeta`` and
    retries after a pause — so a true deadlock never forms, but the
    cycle serializes both paths and piles long waits onto both locks.
    (A real deadlock would leave *no* mining signal: a thread that never
    wakes never emits its WAIT event.)
    """

    spec = ScenarioSpec(
        name="DeadlockCycle",
        t_fast=10 * MILLISECONDS,
        t_slow=25 * MILLISECONDS,
        description="ordered two-lock update racing a reverse-order scanner",
    )

    planted_signatures = frozenset({"cycle.sys!AcquireOrderedLocks"})
    planted_resources = frozenset({"lock:CycleAlpha", "lock:CycleBeta"})

    def install(self, machine: Machine) -> None:
        workload = self
        alpha = Lock("CycleAlpha")
        beta = Lock("CycleBeta")
        antagonists = 1 + round(3 * self.intensity)

        def antagonist_program(ctx: ThreadContext) -> Generator:
            rng = machine.rng
            yield from ctx.delay(workload.start_offset_us)
            with ctx.frame("IndexSvc!ReverseScan"):
                for _ in range(workload.repeats * 6):
                    with ctx.frame("cycle.sys!AcquireOrderedLocks"):
                        yield from ctx.acquire(beta)
                        yield from ctx.compute(uniform_us(rng, 600, 1_600))
                        acquired = False
                        for _ in range(6):
                            # Trylock: the holder check and the acquire run
                            # atomically (no yield in between), so blocking
                            # on alpha while holding beta is impossible.
                            if alpha.holder is None:
                                yield from ctx.acquire(alpha)
                                acquired = True
                                break
                            yield from ctx.release(beta)
                            yield from ctx.delay(uniform_us(rng, 500, 2_000))
                            yield from ctx.acquire(beta)
                        if acquired:
                            yield from ctx.compute(uniform_us(rng, 300, 900))
                            yield from ctx.release(alpha)
                        yield from ctx.release(beta)
                    pause = round(3_000 - 2_400 * workload.intensity)
                    yield from ctx.delay(
                        exponential_us(rng, max(pause, 100))
                    )

        def body(ctx: ThreadContext, iteration: int) -> Generator:
            rng = machine.rng
            with ctx.frame("App!OrderedUpdate"):
                with ctx.frame("cycle.sys!AcquireOrderedLocks"):
                    yield from ctx.acquire(alpha)
                    yield from ctx.compute(uniform_us(rng, 500, 1_200))
                    yield from ctx.acquire(beta)
                    yield from ctx.compute(uniform_us(rng, 400, 1_000))
                    yield from ctx.release(beta)
                    yield from ctx.release(alpha)
                yield from ctx.compute(uniform_us(rng, 1_500, 3_500))

        def program(ctx: ThreadContext) -> Generator:
            yield from workload._iterate(ctx, machine, body)

        for index in range(antagonists):
            machine.spawn(antagonist_program, "IndexSvc", f"Scan{index}")
        machine.spawn(program, "App", "CycleMain")


class WakeupStorm(Workload):
    """One broadcast wakes a herd that stampedes cores and a shared lock.

    Each round hands every waiter a fresh one-shot event, fires it once,
    and collects completions.  All waiters wake at the same microsecond,
    fight for CPU cores, then serialize on the ``StormLedger`` lock —
    the thundering-herd shape.  The round's latency is the time until
    the *last* straggler publishes, so shuffled wake order
    (:class:`~repro.sim.sched.ShuffleWakeupPolicy`) directly perturbs
    the tail.
    """

    spec = ScenarioSpec(
        name="WakeupStorm",
        t_fast=8 * MILLISECONDS,
        t_slow=18 * MILLISECONDS,
        description="broadcast wakeup round-trip across a herd of waiters",
    )

    planted_signatures = frozenset(
        {
            "storm.sys!CollectCompletions",
            "storm.sys!PublishCompletion",
            "storm.sys!WaitForBroadcast",
        }
    )
    planted_resources = frozenset({"lock:StormLedger"})

    def install(self, machine: Machine) -> None:
        workload = self
        feed = Mailbox("StormFeed")
        ledger = Lock("StormLedger")
        waiters = 4 + round(8 * self.intensity)
        # Per-waiter work grows with intensity: slow rounds have a herd
        # that is both larger and heavier, so the straggler tail — which
        # is what the initiator's single collection wait measures —
        # stretches super-linearly with intensity.
        work_high = round(1_000 + 3_000 * self.intensity)
        ledger_high = round(300 + 900 * self.intensity)

        def waiter_program(ctx: ThreadContext) -> Generator:
            rng = machine.rng
            with ctx.frame("StormSvc!WaitLoop"):
                for _ in range(workload.repeats):
                    job = yield from ctx.take(feed)
                    broadcast, completion, remaining = job
                    with ctx.frame("storm.sys!WaitForBroadcast"):
                        yield from ctx.wait_for(broadcast)
                    yield from ctx.compute(
                        uniform_us(rng, work_high // 2, work_high)
                    )
                    with ctx.frame("storm.sys!PublishCompletion"):
                        yield from ctx.acquire(ledger)
                        yield from ctx.compute(
                            uniform_us(rng, ledger_high // 2, ledger_high)
                        )
                        yield from ctx.release(ledger)
                    # The last straggler completes the round.  The count
                    # update and check run atomically (no yield between).
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        yield from ctx.fire(completion)

        def body(ctx: ThreadContext, iteration: int) -> Generator:
            rng = machine.rng
            with ctx.frame("App!BroadcastRound"):
                broadcast = SimEvent(f"Storm{iteration}")
                completion = SimEvent(f"StormDone{iteration}")
                remaining = [waiters]
                for _ in range(waiters):
                    yield from ctx.post(
                        feed, (broadcast, completion, remaining)
                    )
                yield from ctx.compute(uniform_us(rng, 300, 900))
                yield from ctx.fire(broadcast)
                with ctx.frame("storm.sys!CollectCompletions"):
                    yield from ctx.wait_for(completion)

        def program(ctx: ThreadContext) -> Generator:
            yield from workload._iterate(ctx, machine, body)

        for index in range(waiters):
            machine.spawn(waiter_program, "StormSvc", f"Waiter{index}")
        machine.spawn(program, "App", "StormMain")


#: The injected-pathology scenarios, in registration order.
PATHOLOGY_WORKLOAD_CLASSES: List[Type[Workload]] = [
    LockConvoy,
    PriorityInversion,
    DeadlockCycle,
    WakeupStorm,
]
