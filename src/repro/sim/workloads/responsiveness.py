"""AppNonResponsive scenario: a UI message-pump burst that must stay fluid.

This scenario measures how long a burst of UI-thread work takes; it goes
non-responsive when the graphics driver's GPU context is held by a system
routine that hard-faults — the §5.2.4 case where ``graphics.sys`` shows
up together with ``fs.sys`` and ``se.sys`` and a page read takes seconds.
The burst occasionally opens a menu, nesting a ``MenuDisplay`` instance.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.distributions import bernoulli, skewed_file_id, uniform_us
from repro.sim.engine import ThreadContext
from repro.sim.machine import Machine
from repro.sim.workloads.base import ScenarioSpec, Workload
from repro.sim.workloads.menu import menu_display_request, menu_host
from repro.units import MILLISECONDS


class AppNonResponsive(Workload):
    """One UI pump burst: renders, surface setup, power query, file ops.

    Unlike the browser scenarios this application renders *on the UI
    thread* — it executes ``graphics.sys`` directly and takes the GPU
    context lock itself, exactly like the hanging UI thread of §5.2.4.
    """

    spec = ScenarioSpec(
        name="AppNonResponsive",
        t_fast=110 * MILLISECONDS,
        t_slow=160 * MILLISECONDS,
        description="a burst of UI-thread work that should never hang",
    )

    def install(self, machine: Machine) -> None:
        workload = self

        def body(ctx: ThreadContext, iteration: int) -> Generator:
            rng = machine.rng
            with ctx.frame("App!MessagePump"):
                for _ in range(rng.randint(2, 4)):
                    yield from machine.graphics.render(ctx, complexity=0.7)
                if bernoulli(rng, 0.4 + 0.4 * workload.intensity):
                    yield from machine.graphics.initialize_surface(ctx)
                with ctx.frame("App!PowerCheck"):
                    yield from machine.acpi.query_power_state(ctx)
                if bernoulli(rng, 0.5):
                    with ctx.frame("kernel!OpenFile"):
                        yield from machine.fs.read_file(
                            ctx,
                            skewed_file_id(rng),
                            cached=bernoulli(rng, 0.6),
                        )
                if bernoulli(rng, 0.3):
                    # The user opens a menu during the burst: a nested
                    # MenuDisplay instance on the shell's menu thread.
                    yield from menu_host(machine).submit(
                        ctx,
                        menu_display_request(machine, workload.intensity),
                        "App!WaitForMenu",
                    )
                yield from ctx.compute(uniform_us(rng, 60_000, 150_000))

        def app_program(ctx: ThreadContext) -> Generator:
            yield from workload._iterate(ctx, machine, body)

        machine.spawn(app_program, "App", "UI")
