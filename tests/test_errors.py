"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    subclasses = [
        errors.TraceError,
        errors.TraceValidationError,
        errors.SerializationError,
        errors.SimulationError,
        errors.DeadlockError,
        errors.WaitGraphError,
        errors.AnalysisError,
        errors.ConfigError,
        errors.ResilienceError,
        errors.TraceSalvageError,
        errors.WorkerCrashError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)


def test_specializations():
    assert issubclass(errors.TraceValidationError, errors.TraceError)
    assert issubclass(errors.SerializationError, errors.TraceError)
    assert issubclass(errors.DeadlockError, errors.SimulationError)
    assert issubclass(errors.TraceSalvageError, errors.ResilienceError)
    assert issubclass(errors.WorkerCrashError, errors.ResilienceError)


def test_salvage_error_is_not_a_trace_error():
    # Salvage failure is a resilience outcome, not a parse error: code
    # catching TraceError for strict ingestion must not swallow it.
    assert not issubclass(errors.TraceSalvageError, errors.TraceError)


def test_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.DeadlockError("stuck")
