"""Corpus generation: many machines, many traces, overlapping scenarios.

This replaces the paper's proprietary data set (≈19,500 ETW trace streams
from real deployment sites) with a synthetic, seeded corpus.  Each stream
comes from one :class:`~repro.sim.machine.Machine` whose configuration is
drawn from distributions spanning deployment diversity (disk speed,
encryption, disk protection, lock granularity, fault rate), running a
weighted mix of the eight evaluation scenarios concurrently with standard
background interference.  Concurrency plus shared locks/devices produce
the cost-propagation structure the analyses measure.
"""

from __future__ import annotations

import multiprocessing
import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.sim.machine import Machine, MachineConfig
from repro.sim.sched import POLICY_NAMES
from repro.sim.workloads.background import install_standard_background
from repro.sim.workloads.base import Workload
from repro.sim.workloads.registry import (
    EXTRA_SCENARIO_NAMES,
    PATHOLOGY_SCENARIO_NAMES,
    SCENARIO_NAMES,
    workload_class,
)
from repro.trace.stream import TraceStream
from repro.units import MILLISECONDS, SECONDS

#: Relative frequency of each scenario across the corpus, shaped after the
#: instance counts of the paper's Table 1 (WebPageNavigation dominates).
DEFAULT_SCENARIO_WEIGHTS: Dict[str, float] = {
    "AppAccessControl": 1.0,
    "AppNonResponsive": 0.5,
    "BrowserFrameCreate": 0.9,
    "BrowserTabClose": 0.7,
    "BrowserTabCreate": 1.6,
    "BrowserTabSwitch": 1.4,
    "MenuDisplay": 0.5,
    "WebPageNavigation": 4.2,
}


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for corpus generation.

    ``streams`` scales the corpus; tests use a handful, benches use tens
    to hundreds.  Everything is derived deterministically from ``seed``.
    """

    streams: int = 40
    seed: int = 20140301
    scenarios: Tuple[str, ...] = tuple(SCENARIO_NAMES)
    workloads_per_stream: Tuple[int, int] = (6, 8)
    repeats_range: Tuple[int, int] = (8, 14)
    think_median_us: int = 150 * MILLISECONDS
    scenario_weights: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_SCENARIO_WEIGHTS)
    )
    #: Scheduling policy every stream's machine runs under (see
    #: :data:`repro.sim.sched.POLICY_NAMES`); ``scheduler_seed`` seeds
    #: the policy RNG, defaulting to the per-stream machine seed.
    scheduler: str = "fifo"
    scheduler_seed: Optional[int] = None

    def validate(self) -> None:
        if self.streams < 1:
            raise ConfigError("corpus needs at least one stream")
        known = (
            set(SCENARIO_NAMES)
            | set(EXTRA_SCENARIO_NAMES)
            | set(PATHOLOGY_SCENARIO_NAMES)
        )
        unknown = set(self.scenarios) - known
        if unknown:
            raise ConfigError(f"unknown scenarios: {sorted(unknown)}")
        low, high = self.workloads_per_stream
        if not 1 <= low <= high <= len(self.scenarios):
            raise ConfigError(
                "workloads_per_stream range must fit in the scenario list"
            )
        if self.scheduler not in POLICY_NAMES:
            known_policies = ", ".join(POLICY_NAMES)
            raise ConfigError(
                f"unknown scheduler policy {self.scheduler!r}; "
                f"known: {known_policies}"
            )
        for name, weight in self.scenario_weights.items():
            if weight < 0:
                raise ConfigError(
                    f"scenario weight for {name!r} must be >= 0, got {weight}"
                )


def draw_machine_config(rng: random.Random) -> MachineConfig:
    """Draw one deployment-site machine configuration."""
    disk_tier = rng.choices(
        ["ssd", "mid", "hdd"], weights=[0.30, 0.45, 0.25]
    )[0]
    disk_read_median_us = {
        "ssd": rng.randint(500, 1_200),
        "mid": rng.randint(2_000, 5_000),
        "hdd": rng.randint(7_000, 14_000),
    }[disk_tier]
    return MachineConfig(
        seed=rng.randrange(1 << 30),
        cores=rng.choice([4, 4, 8, 8, 8, 16]),
        encryption_enabled=rng.random() < 0.70,
        disk_protection_enabled=rng.random() < 0.25,
        io_cache_enabled=rng.random() < 0.80,
        disk_read_median_us=disk_read_median_us,
        network_latency_median_us=rng.randint(5_000, 20_000),
        network_congestion_rate=rng.uniform(0.10, 0.35),
        gpu_render_median_us=rng.randint(2_500, 6_000),
        decrypt_median_us=rng.randint(200, 700),
        mdu_lock_count=rng.randint(2, 4),
        file_table_lock_count=rng.randint(1, 3),
        av_scan_median_us=rng.randint(400, 1_000),
        av_database_miss_rate=rng.uniform(0.15, 0.35),
        hard_fault_rate=rng.uniform(0.05, 0.20),
    )


def _pick_scenarios(
    rng: random.Random, config: CorpusConfig
) -> List[str]:
    """Weighted sample (without replacement) of scenarios for one stream.

    Zero-weight scenarios are excluded up front — they are never drawn
    and must not zero the remaining total mid-sample (``rng.choices``
    raises on an all-zero weight vector).  A single-scenario pool yields
    that scenario regardless of the requested count.
    """
    low, high = config.workloads_per_stream
    count = rng.randint(low, high)
    pool = [
        name
        for name in config.scenarios
        if config.scenario_weights.get(name, 1.0) > 0
    ]
    if not pool:
        raise ConfigError(
            "no scenario has positive weight; nothing to sample"
        )
    weights = [config.scenario_weights.get(name, 1.0) for name in pool]
    chosen: List[str] = []
    for _ in range(count):
        name = rng.choices(pool, weights=weights)[0]
        index = pool.index(name)
        pool.pop(index)
        weights.pop(index)
        chosen.append(name)
        if not pool:
            break
    return chosen


def build_workloads(
    rng: random.Random,
    scenario_names: Sequence[str],
    config: CorpusConfig,
    horizon_us: int,
    intensity: float,
) -> List[Workload]:
    """Instantiate workload objects for one stream."""
    workloads: List[Workload] = []
    low, high = config.repeats_range
    for name in scenario_names:
        cls = workload_class(name)
        repeats = rng.randint(low, high)
        if name == "WebPageNavigation":
            repeats = round(repeats * 1.5)
        kwargs = dict(
            repeats=repeats,
            think_median_us=config.think_median_us,
            start_offset_us=rng.randint(0, 800 * MILLISECONDS),
            intensity=intensity,
        )
        if hasattr(cls, "worker_count"):  # browser workloads take a horizon
            workloads.append(cls(horizon_us=horizon_us, **kwargs))
        else:
            workloads.append(cls(**kwargs))
    return workloads


def generate_stream(index: int, config: CorpusConfig) -> TraceStream:
    """Generate the trace stream of one simulated machine."""
    rng = random.Random(f"{config.seed}/{index}")
    machine_config = draw_machine_config(rng)
    if config.scheduler != "fifo" or config.scheduler_seed is not None:
        machine_config = replace(
            machine_config,
            scheduler=config.scheduler,
            scheduler_seed=config.scheduler_seed,
        )
    machine = Machine(f"stream{index:05d}", machine_config)

    scenario_names = _pick_scenarios(rng, config)
    intensity = rng.uniform(0.15, 0.95)
    # Horizon: enough for the longest workload to finish its repeats.
    _, high_repeats = config.repeats_range
    horizon_us = round(
        high_repeats * 1.5 * (config.think_median_us + 200 * MILLISECONDS)
    ) + 2 * SECONDS
    workloads = build_workloads(
        rng, scenario_names, config, horizon_us, intensity
    )
    for workload in workloads:
        workload.install(machine)
    install_standard_background(
        machine, horizon_us, av_aggressiveness=intensity
    )
    return machine.run_and_trace(until=horizon_us + 3 * SECONDS)


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` when unavailable.

    Workloads and machines are built in-process and handed to workers by
    address-space inheritance, which only ``fork`` provides; spawn-only
    platforms (macOS defaults, Windows) must fall back to sequential
    generation instead of crashing.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def generate_corpus(
    config: CorpusConfig = CorpusConfig(), workers: int = 1
) -> List[TraceStream]:
    """Generate the full corpus described by ``config``.

    ``workers > 1`` generates streams in parallel processes; streams are
    independent and seeded per index, so the result is identical to a
    serial run.  When the ``fork`` start method is unavailable the
    generation silently runs sequentially (same output, one process).
    """
    config.validate()
    context = _fork_context() if workers > 1 and config.streams > 1 else None
    if context is None:
        return [
            generate_stream(index, config) for index in range(config.streams)
        ]
    with context.Pool(min(workers, config.streams)) as pool:
        return pool.starmap(
            generate_stream,
            [(index, config) for index in range(config.streams)],
        )
