"""Baseline analyzers the paper contrasts against (§1, §6)."""

from repro.baselines.callgraph import (
    CallGraphProfile,
    FunctionProfile,
    profile_corpus,
)
from repro.baselines.lockcontention import (
    LockContentionAnalysis,
    LockProfile,
    analyze_lock_contention,
)
from repro.baselines.stackmine import (
    StackMineAnalysis,
    StackPattern,
    mine_stack_patterns,
)

__all__ = [
    "CallGraphProfile",
    "FunctionProfile",
    "LockContentionAnalysis",
    "LockProfile",
    "StackMineAnalysis",
    "StackPattern",
    "mine_stack_patterns",
    "analyze_lock_contention",
    "profile_corpus",
]
