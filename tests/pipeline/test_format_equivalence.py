"""Cross-format pipeline equivalence: JSONL, RTB and mixed corpora.

The acceptance bar for the binary fast path: impact, causality and study
over the *same logical corpus* must produce byte-identical results
whether the streams are stored as JSONL (object-path analysis), RTB
(array-backed kernels) or a mixture — at any worker count.
"""

import pytest

from repro.pipeline import parallel_causality, parallel_impact, parallel_study
from repro.report.markdown import study_to_markdown
from repro.sim.workloads.registry import scenario_spec
from repro.trace import dump_corpus, iter_corpus_paths
from repro.trace.binary import dump_stream_binary
from repro.trace.serialization import dump_stream


@pytest.fixture(scope="module")
def format_dirs(small_corpus, tmp_path_factory):
    """The same corpus in three layouts: all-JSONL, all-RTB, mixed."""
    jsonl_dir = tmp_path_factory.mktemp("fmt-jsonl")
    rtb_dir = tmp_path_factory.mktemp("fmt-rtb")
    mixed_dir = tmp_path_factory.mktemp("fmt-mixed")
    dump_corpus(small_corpus, jsonl_dir)
    dump_corpus(small_corpus, rtb_dir, format="rtb")
    for index, stream in enumerate(small_corpus):
        if index % 2:
            dump_stream_binary(stream, mixed_dir / f"{stream.stream_id}.rtb")
        else:
            dump_stream(stream, mixed_dir / f"{stream.stream_id}.jsonl")
    return {"jsonl": jsonl_dir, "rtb": rtb_dir, "mixed": mixed_dir}


@pytest.fixture(scope="module")
def jsonl_study_markdown(format_dirs):
    """The object-path baseline every other configuration must match."""
    return study_to_markdown(
        parallel_study(iter_corpus_paths(format_dirs["jsonl"]))
    )


class TestStudyAcrossFormats:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_rtb_study_byte_identical(
        self, format_dirs, jsonl_study_markdown, workers
    ):
        markdown = study_to_markdown(
            parallel_study(
                iter_corpus_paths(format_dirs["rtb"]), workers=workers
            )
        )
        assert markdown == jsonl_study_markdown

    def test_mixed_corpus_study_byte_identical(
        self, format_dirs, jsonl_study_markdown
    ):
        markdown = study_to_markdown(
            parallel_study(
                iter_corpus_paths(format_dirs["mixed"]), workers=2
            )
        )
        assert markdown == jsonl_study_markdown


class TestImpactAcrossFormats:
    def test_all_layouts_agree(self, format_dirs):
        results = {
            name: parallel_impact(iter_corpus_paths(path), workers=2)
            for name, path in format_dirs.items()
        }
        assert results["rtb"] == results["jsonl"]
        assert results["mixed"] == results["jsonl"]


class TestCausalityAcrossFormats:
    def test_reports_agree(self, format_dirs):
        name = "WebPageNavigation"
        spec = scenario_spec(name)
        baseline = parallel_causality(
            iter_corpus_paths(format_dirs["jsonl"]),
            name,
            spec.t_fast,
            spec.t_slow,
        )
        for layout in ("rtb", "mixed"):
            report = parallel_causality(
                iter_corpus_paths(format_dirs[layout]),
                name,
                spec.t_fast,
                spec.t_slow,
                workers=2,
            )
            assert report.summary() == baseline.summary()
            assert report.patterns == baseline.patterns
            assert report.slow_meta_patterns == baseline.slow_meta_patterns
            assert [i.key for i in report.classes.slow] == [
                i.key for i in baseline.classes.slow
            ]
