"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still distinguishing the failing subsystem by subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class TraceError(ReproError):
    """A trace stream is malformed or an event violates the schema."""


class TraceValidationError(TraceError):
    """Raised by :mod:`repro.trace.validate` when invariants are violated."""


class SerializationError(TraceError):
    """A trace file could not be parsed or written."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No runnable process remains but blocked processes still exist."""


class WaitGraphError(ReproError):
    """Wait Graph construction or aggregation failed."""


class AnalysisError(ReproError):
    """Impact or causality analysis received invalid inputs."""


class ConfigError(ReproError):
    """A configuration object holds contradictory or out-of-range values."""


class StoreError(ReproError):
    """The artifact store directory is unusable (not a store, wrong layout)."""
