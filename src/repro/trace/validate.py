"""Trace-stream validation.

The analyses downstream (Wait Graph construction in particular) assume a
handful of schema invariants.  :func:`validate_stream` checks them all and
raises :class:`~repro.errors.TraceValidationError` with every violation
collected, so a malformed synthetic generator or importer fails loudly and
with full context instead of producing quietly wrong graphs.
"""

from __future__ import annotations

from typing import List

from repro.errors import TraceValidationError
from repro.trace.events import EventKind
from repro.trace.stream import TraceStream


def collect_violations(stream: TraceStream) -> List[str]:
    """Return a list of human-readable invariant violations (empty = valid)."""
    problems: List[str] = []
    last_timestamp = None
    for event in stream.events:
        where = f"event #{event.seq}"
        if last_timestamp is not None and event.timestamp < last_timestamp:
            problems.append(f"{where}: timestamps go backwards")
        last_timestamp = event.timestamp
        if event.kind is EventKind.UNWAIT:
            if event.wtid == event.tid:
                problems.append(f"{where}: thread unwaits itself")
        if event.kind is EventKind.WAIT and event.cost == 0:
            problems.append(f"{where}: wait event with zero duration")

    # Every wait must have a matching unwait that ends it: an unwait by
    # another thread targeting the waiter, timestamped at the wait's end.
    for event in stream.events:
        if event.kind is not EventKind.WAIT:
            continue
        matches = [
            unwait
            for unwait in stream.unwaits_targeting(
                event.tid, event.timestamp, event.end
            )
            if unwait.timestamp == event.end
        ]
        if not matches:
            problems.append(
                f"event #{event.seq}: wait of thread {event.tid} at "
                f"{event.timestamp} has no unwait at its end {event.end}"
            )

    for instance in stream.instances:
        start, end = stream.span
        # Instances may begin or end during untraced idle time at the
        # stream's edges; only windows entirely outside the recorded span
        # indicate a marker bug.
        if stream.events and (instance.t1 < start or instance.t0 > end):
            problems.append(
                f"instance {instance.scenario}@{instance.t0} lies outside "
                f"the stream span {start}..{end}"
            )
        if instance.tid not in stream.threads and stream.threads:
            problems.append(
                f"instance {instance.scenario}@{instance.t0} initiated by "
                f"unknown thread {instance.tid}"
            )
    return problems


def validate_stream(stream: TraceStream) -> None:
    """Raise :class:`TraceValidationError` when any invariant is violated."""
    problems = collect_violations(stream)
    if problems:
        summary = "\n  - ".join(problems[:25])
        more = f"\n  ... and {len(problems) - 25} more" if len(problems) > 25 else ""
        raise TraceValidationError(
            f"trace stream {stream.stream_id!r} is invalid:\n  - {summary}{more}"
        )
