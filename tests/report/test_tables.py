"""Tests for ASCII table rendering."""

import pytest

from repro.report.tables import Table, fmt_pct, fmt_ratio, fmt_us


class TestFormatters:
    def test_fmt_pct(self):
        assert fmt_pct(0.364) == "36.4%"
        assert fmt_pct(0.5, digits=0) == "50%"

    def test_fmt_ratio(self):
        assert fmt_ratio(3.5) == "3.50"

    def test_fmt_us(self):
        assert fmt_us(500) == "500us"
        assert fmt_us(4_730_000) == "4.73s"


class TestTable:
    def test_render_alignment(self):
        table = Table(["Scenario", "ITC"], title="Table 2")
        table.add_row("BrowserTabCreate", "23.1%")
        table.add_row("Menu", "39.2%")
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Table 2"
        assert "Scenario" in lines[1]
        # Columns align: 'ITC' starts at the same offset in all rows.
        offset = lines[1].index("ITC")
        assert lines[3][offset:].startswith("23.1%")
        assert lines[4][offset:].startswith("39.2%")

    def test_wrong_cell_count_rejected(self):
        table = Table(["A", "B"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_separator(self):
        table = Table(["A"])
        table.add_row("x")
        table.add_separator()
        table.add_row("y")
        lines = table.render().splitlines()
        assert any(set(line.strip()) == {"-"} for line in lines[3:])

    def test_str(self):
        table = Table(["A"])
        table.add_row("x")
        assert str(table) == table.render()

    def test_non_string_cells_coerced(self):
        table = Table(["A", "B"])
        table.add_row(42, 3.14)
        assert "42" in table.render()
