#!/usr/bin/env python3
"""Quickstart: generate traces, measure impact, discover causes.

This walks the library's two-step approach end to end on a small
synthetic corpus:

1. generate ETW-shaped execution traces with the kernel/driver simulator;
2. run **impact analysis** for all device drivers (``*.sys``) — the
   IA_wait / IA_run / IA_opt metrics of the paper's §3;
3. run **causality analysis** on the busiest scenario — contrast data
   mining that yields ranked Signature Set Tuple patterns (§4).

Run:  python examples/quickstart.py
"""

from repro import CorpusConfig, ImpactAnalysis, generate_corpus
from repro.causality import CausalityAnalysis
from repro.evaluation.study import group_by_scenario
from repro.report.tables import Table, fmt_pct, fmt_ratio
from repro.sim.workloads.registry import scenario_spec


def main() -> None:
    print("Generating a 10-stream synthetic trace corpus ...")
    corpus = generate_corpus(CorpusConfig(streams=10, seed=42))
    total_instances = sum(len(stream.instances) for stream in corpus)
    total_events = sum(len(stream.events) for stream in corpus)
    print(f"  {len(corpus)} streams, {total_instances} scenario instances, "
          f"{total_events} events\n")

    # ------------------------------------------------------------------
    # Step 1: impact analysis — is it worth investigating device drivers?
    # ------------------------------------------------------------------
    impact = ImpactAnalysis(["*.sys"]).analyze_corpus(corpus)
    table = Table(["Impact metric", "Value"], title="Impact of device drivers")
    table.add_row("IA_wait (blocked on drivers)", fmt_pct(impact.ia_wait))
    table.add_row("IA_run  (driver CPU)", fmt_pct(impact.ia_run))
    table.add_row("IA_opt  (cost propagation)", fmt_pct(impact.ia_opt))
    table.add_row("wait multiplicity D_wait/D_waitdist",
                  fmt_ratio(impact.wait_multiplicity))
    print(table.render())
    print()

    # ------------------------------------------------------------------
    # Step 2: causality analysis on the scenario with the most instances.
    # ------------------------------------------------------------------
    grouped = group_by_scenario(corpus)
    name, instances = max(grouped.items(), key=lambda kv: len(kv[1]))
    spec = scenario_spec(name)
    print(f"Causality analysis on {name} "
          f"(T_fast={spec.t_fast // 1000} ms, T_slow={spec.t_slow // 1000} ms)")
    report = CausalityAnalysis(["*.sys"]).analyze(
        instances, spec.t_fast, spec.t_slow, scenario=name
    )
    print(f"  {report.classes.summary()}")
    print(f"  {report.pattern_count} contrast patterns discovered, "
          f"{len(report.high_impact_patterns())} high-impact\n")

    for rank, pattern in enumerate(report.top(3), start=1):
        print(f"#{rank}  impact={pattern.impact / 1000:.1f} ms  "
              f"occurrences={pattern.count}  "
              f"worst single execution={pattern.max_single / 1000:.0f} ms")
        print(pattern.sst.render(indent="    "))
        print()


if __name__ == "__main__":
    main()
