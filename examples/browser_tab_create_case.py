#!/usr/bin/env python3
"""The paper's motivating example (§2.2): a slow BrowserTabCreate.

Reconstructs Figure 1 — three drivers (fv.sys → fs.sys → se.sys), two
lock-contention regions chained by hierarchical dependencies, six
threads — then shows how the analysis pipeline explains it:

* the thread-level Wait Graph snapshot of the slow instance (Figure 1),
* the Aggregated Wait Graph over the slow class (Figure 2),
* the discovered Signature Set Tuple pattern (§2.3).

Run:  python examples/browser_tab_create_case.py
"""

from repro.causality import CausalityAnalysis
from repro.report.figures import render_awg, render_wait_graph
from repro.waitgraph.paths import critical_path
from repro.sim.casestudy import SCENARIO, T_FAST, T_SLOW, run_case_study
from repro.trace.signatures import ALL_DRIVERS
from repro.waitgraph.aggregate import aggregate_wait_graphs
from repro.waitgraph.builder import build_wait_graph


def main() -> None:
    print("Simulating the incident machine (encrypted storage, slow disk,")
    print("single File Table lock, single MDU lock) ...\n")
    result = run_case_study()

    durations = ", ".join(
        f"{instance.duration / 1000:.0f}" for instance in result.instances
    )
    print(f"BrowserTabCreate durations (ms): {durations}")
    print(f"The user perceived a {result.slow_instance.duration / 1000:.0f} ms "
          "delay on one tab creation.\n")

    print("=" * 70)
    print("Figure 1 view: the slow instance's Wait Graph")
    print("=" * 70)
    graph = build_wait_graph(result.slow_instance)
    print(render_wait_graph(graph, max_depth=6))
    print()

    print("=" * 70)
    print("The propagation chain (the paper's numbered arrows)")
    print("=" * 70)
    path = critical_path(graph, ALL_DRIVERS)
    print(path.describe())
    print()

    print("=" * 70)
    print("Figure 2 view: the Aggregated Wait Graph of the slow class")
    print("=" * 70)
    slow_graphs = [
        build_wait_graph(instance)
        for instance in result.instances
        if instance.duration > T_SLOW
    ]
    awg = aggregate_wait_graphs(slow_graphs, ALL_DRIVERS)
    print(render_awg(awg))
    print()

    print("=" * 70)
    print("Section 2.3: the discovered contrast pattern")
    print("=" * 70)
    report = CausalityAnalysis(["*.sys"]).analyze(
        result.instances, T_FAST, T_SLOW, scenario=SCENARIO
    )
    top = report.patterns[0]
    print(top.sst.render())
    print(f"\nimpact = {top.impact / 1000:.1f} ms per occurrence "
          f"(N={top.count}); worst execution "
          f"{top.max_single / 1000:.0f} ms > T_slow — high impact.")
    print("\nReading the pattern: the cost of the running signatures "
          "(storage service and decryption)\npropagates through the unwait "
          "signatures to the wait signatures — the File Table\nand MDU "
          "contention regions the browser threads are stuck in.")


if __name__ == "__main__":
    main()
