"""Tests for corpus generation."""

import random

import pytest

from repro.errors import ConfigError
from repro.sim.corpus import (
    CorpusConfig,
    DEFAULT_SCENARIO_WEIGHTS,
    _pick_scenarios,
    draw_machine_config,
    generate_corpus,
    generate_stream,
)
from repro.trace.validate import validate_stream


class TestCorpusConfig:
    def test_defaults_valid(self):
        CorpusConfig().validate()

    def test_needs_streams(self):
        with pytest.raises(ConfigError):
            CorpusConfig(streams=0).validate()

    def test_unknown_scenarios_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            CorpusConfig(scenarios=("Nope",)).validate()

    def test_workloads_per_stream_must_fit(self):
        with pytest.raises(ConfigError):
            CorpusConfig(workloads_per_stream=(5, 99)).validate()

    def test_weights_cover_all_scenarios(self):
        assert set(DEFAULT_SCENARIO_WEIGHTS) == set(CorpusConfig().scenarios)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ConfigError, match="unknown scheduler policy"):
            CorpusConfig(scheduler="nosuch").validate()

    def test_pathology_scenarios_accepted(self):
        CorpusConfig(
            scenarios=("LockConvoy", "WakeupStorm"),
            workloads_per_stream=(1, 2),
        ).validate()

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError, match="must be >= 0"):
            CorpusConfig(
                scenario_weights={"MenuDisplay": -1.0}
            ).validate()


class TestPickScenarios:
    def test_zero_weight_scenario_is_never_drawn(self):
        config = CorpusConfig(
            scenarios=("MenuDisplay", "AppAccessControl", "BrowserTabClose"),
            workloads_per_stream=(2, 3),
            scenario_weights={
                "MenuDisplay": 1.0,
                "AppAccessControl": 0.0,
                "BrowserTabClose": 1.0,
            },
        )
        rng = random.Random(17)
        for _ in range(30):
            chosen = _pick_scenarios(rng, config)
            assert "AppAccessControl" not in chosen

    def test_all_zero_weights_raise_instead_of_looping(self):
        config = CorpusConfig(
            scenarios=("MenuDisplay",),
            workloads_per_stream=(1, 1),
            scenario_weights={"MenuDisplay": 0.0},
        )
        with pytest.raises(ConfigError, match="positive weight"):
            _pick_scenarios(random.Random(1), config)

    def test_single_scenario_pool_yields_it_once(self):
        config = CorpusConfig(
            scenarios=("MenuDisplay",),
            workloads_per_stream=(1, 1),
        )
        # Sampling is without replacement: the pool exhausts after one
        # draw even when the requested count is larger.
        assert _pick_scenarios(random.Random(1), config) == ["MenuDisplay"]

    def test_sample_is_without_replacement(self):
        config = CorpusConfig(workloads_per_stream=(6, 8))
        rng = random.Random(23)
        for _ in range(20):
            chosen = _pick_scenarios(rng, config)
            assert len(chosen) == len(set(chosen))


class TestSchedulerPlumbing:
    def test_non_fifo_scheduler_changes_the_stream(self):
        base = CorpusConfig(streams=1, seed=7)
        shuffled = CorpusConfig(
            streams=1, seed=7, scheduler="shuffle", scheduler_seed=3
        )
        assert (
            generate_stream(0, base).events
            != generate_stream(0, shuffled).events
        )

    def test_scheduler_seed_is_deterministic(self):
        config = CorpusConfig(
            streams=1, seed=7, scheduler="random", scheduler_seed=5
        )
        assert (
            generate_stream(0, config).events
            == generate_stream(0, config).events
        )

    def test_policy_corpus_byte_identical_across_worker_counts(self):
        from repro.trace.serialization import dumps_stream

        config = CorpusConfig(
            streams=2, seed=44, scheduler="shuffle", scheduler_seed=9
        )
        baseline = [
            dumps_stream(stream)
            for stream in generate_corpus(config, workers=1)
        ]
        for workers in (2, 4):
            swept = [
                dumps_stream(stream)
                for stream in generate_corpus(config, workers=workers)
            ]
            assert swept == baseline


class TestMachineConfigDraw:
    def test_draw_is_valid(self):
        rng = random.Random(3)
        for _ in range(50):
            draw_machine_config(rng).validate()

    def test_draw_spans_disk_tiers(self):
        rng = random.Random(3)
        medians = {draw_machine_config(rng).disk_read_median_us for _ in range(60)}
        assert min(medians) < 1_500       # some SSDs
        assert max(medians) > 6_000       # some HDDs


class TestGeneration:
    def test_deterministic(self):
        config = CorpusConfig(streams=1, seed=99)
        first = generate_stream(0, config)
        second = generate_stream(0, config)
        assert first.events == second.events
        assert len(first.instances) == len(second.instances)

    def test_different_indexes_differ(self):
        config = CorpusConfig(streams=2, seed=99)
        assert generate_stream(0, config).events != generate_stream(1, config).events

    def test_streams_are_valid(self, small_corpus):
        for stream in small_corpus:
            validate_stream(stream)

    def test_streams_have_instances_and_threads(self, small_corpus):
        for stream in small_corpus:
            assert stream.instances
            assert len(stream.threads) > 5

    def test_corpus_size(self, small_corpus):
        assert len(small_corpus) == 4

    def test_scenarios_subset_respected(self):
        config = CorpusConfig(
            streams=1,
            seed=5,
            scenarios=("MenuDisplay", "AppAccessControl"),
            workloads_per_stream=(2, 2),
        )
        stream = generate_stream(0, config)
        names = {instance.scenario for instance in stream.instances}
        assert names <= {"MenuDisplay", "AppAccessControl"}


class TestParallelGeneration:
    def test_workers_match_sequential(self):
        config = CorpusConfig(streams=3, seed=321)
        sequential = generate_corpus(config, workers=1)
        parallel = generate_corpus(config, workers=3)
        assert len(parallel) == len(sequential)
        for left, right in zip(sequential, parallel):
            assert left.stream_id == right.stream_id
            assert left.events == right.events

    def test_falls_back_when_fork_unavailable(self, monkeypatch):
        """Spawn-only platforms must generate sequentially, not crash."""
        import repro.sim.corpus as corpus_module

        def no_fork(method=None):
            raise ValueError(f"cannot find context for {method!r}")

        monkeypatch.setattr(
            corpus_module.multiprocessing, "get_context", no_fork
        )
        config = CorpusConfig(streams=2, seed=321)
        fallback = generate_corpus(config, workers=4)
        monkeypatch.undo()
        sequential = generate_corpus(config, workers=1)
        assert [s.events for s in fallback] == [s.events for s in sequential]
