"""The Wait Graph structure (paper Definition 1, from StackMine).

A Wait Graph models one scenario instance: nodes are tracing events; a
directed edge ``e_i -> e_j`` means ``e_i`` is a wait event and ``e_j`` was
triggered by another thread during ``e_i``'s wait interval — i.e. ``e_j``
is (part of) the activity the waiter was suspended on.  Roots are the
top-level events of the instance's initiating thread.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.trace.events import Event, EventKind
from repro.trace.stream import ScenarioInstance


class WaitGraph:
    """A constructed Wait Graph for one scenario instance.

    Events are identified within the owning stream by their ``seq``;
    ``children`` and ``unwait_of`` are keyed accordingly.  The graph is a
    DAG: a wait event reachable along two different wait chains appears
    once, with both parents pointing at it.
    """

    def __init__(
        self,
        instance: ScenarioInstance,
        roots: List[Event],
        children: Dict[int, List[Event]],
        unwait_of: Dict[int, Event],
    ):
        self.instance = instance
        self.roots = roots
        self._children = children
        self._unwait_of = unwait_of

    @property
    def stream_id(self) -> str:
        return self.instance.stream.stream_id

    def children(self, event: Event) -> List[Event]:
        """Events performed by another thread within ``event``'s wait."""
        return self._children.get(event.seq, [])

    def unwait_of(self, event: Event) -> Optional[Event]:
        """The unwait event that ended this wait event, if resolved."""
        return self._unwait_of.get(event.seq)

    @property
    def top_level_duration(self) -> int:
        """Sum of root event costs — the instance's measured busy time.

        Impact analysis accumulates this into ``D_scn`` ("adding up the
        time periods of top-level tracing events", paper §3.2).
        """
        return sum(event.cost for event in self.roots)

    def events(self) -> Iterator[Event]:
        """Every distinct event in the graph (pre-order, deduplicated)."""
        seen: Set[int] = set()
        stack = list(reversed(self.roots))
        while stack:
            event = stack.pop()
            if event.seq in seen:
                continue
            seen.add(event.seq)
            yield event
            stack.extend(reversed(self.children(event)))

    def node_count(self) -> int:
        """Number of distinct events reachable in the graph."""
        return sum(1 for _ in self.events())

    def depth(self) -> int:
        """Longest root-to-sink path length (cycle-safe)."""
        memo: Dict[int, int] = {}

        def depth_of(event: Event, on_path: Tuple[int, ...]) -> int:
            if event.seq in memo:
                return memo[event.seq]
            if event.seq in on_path:  # defensive: should not happen
                return 0
            child_depths = [
                depth_of(child, on_path + (event.seq,))
                for child in self.children(event)
            ]
            value = 1 + (max(child_depths) if child_depths else 0)
            memo[event.seq] = value
            return value

        return max((depth_of(root, ()) for root in self.roots), default=0)

    def wait_events(self) -> Iterator[Event]:
        """Every distinct wait event in the graph."""
        for event in self.events():
            if event.kind is EventKind.WAIT:
                yield event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WaitGraph({self.instance.scenario}@{self.instance.t0} "
            f"roots={len(self.roots)})"
        )


class IndexedWaitGraph(WaitGraph):
    """A Wait Graph held as column indices into a columnar stream.

    Built by the array-backed construction fast path when the owning
    stream is a :class:`~repro.trace.binary.ColumnarTraceStream`: nodes
    are event *indices* (``seq`` equals the column index by format
    construction), so building and aggregating never materializes an
    :class:`Event`.  The full object API of :class:`WaitGraph` still
    works — ``roots``/``children``/``unwait_of`` materialize events
    lazily through the stream's per-index cache — which keeps report
    rendering, path extraction and any external consumer unchanged.
    """

    def __init__(
        self,
        instance: ScenarioInstance,
        root_indices: List[int],
        children_indices: Dict[int, List[int]],
        unwait_indices: Dict[int, int],
    ):
        # Deliberately not calling WaitGraph.__init__: events stay
        # un-materialized until the object API is used.
        self.instance = instance
        self.root_indices = root_indices
        self.children_indices = children_indices
        self.unwait_indices = unwait_indices
        self._roots: Optional[List[Event]] = None

    @property
    def roots(self) -> List[Event]:  # type: ignore[override]
        if self._roots is None:
            event_at = self.instance.stream.event_at
            self._roots = [event_at(i) for i in self.root_indices]
        return self._roots

    @roots.setter
    def roots(self, value) -> None:  # pragma: no cover - defensive
        raise AttributeError("IndexedWaitGraph roots are derived")

    def children(self, event: Event) -> List[Event]:
        indices = self.children_indices.get(event.seq)
        if not indices:
            return []
        event_at = self.instance.stream.event_at
        return [event_at(i) for i in indices]

    def unwait_of(self, event: Event) -> Optional[Event]:
        index = self.unwait_indices.get(event.seq)
        if index is None:
            return None
        return self.instance.stream.event_at(index)

    @property
    def top_level_duration(self) -> int:  # type: ignore[override]
        costs = self.instance.stream.cost_col
        return sum(costs[i] for i in self.root_indices)
