"""Process-pool execution with a sequential fallback.

The pipeline mirrors the corpus generator's fork-pool pattern: workers
are forked so they inherit the parent's address space (cheap access to
in-memory corpora), and platforms without the ``fork`` start method —
or single-task runs — degrade to an in-process loop with identical
results.

Two executors live here:

* :func:`process_map` — the plain fan-out.  ``Pool.map`` semantics; a
  worker process dying mid-chunk is fatal to the run.
* :func:`process_map_resilient` — the fault-isolating fan-out.  Worker
  death is detected (the pool breaks), the pool is rebuilt, and the
  affected chunks are retried with exponential backoff and bisected to
  isolate the poison trace; a single-source chunk that keeps killing
  workers is attempted once in-process and finally handed to the
  caller's ``failed`` callback.  Results are reassembled from the
  bisection tree in task order, so the fold downstream is exactly as
  deterministic as with :func:`process_map`.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


def fork_context():
    """The ``fork`` multiprocessing context, or ``None`` if unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def fork_available() -> bool:
    """True when parallel (forked) execution is possible on this host."""
    return fork_context() is not None


def process_map(
    func: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    workers: int,
) -> List[ResultT]:
    """``[func(t) for t in tasks]``, fanned out over a fork pool.

    Results come back in task order (``Pool.map`` semantics), so callers
    can fold them deterministically.  Runs sequentially — same results,
    one process — when ``workers <= 1``, when there is at most one task,
    or when ``fork`` is unavailable (spawn-only platforms).
    """
    tasks = list(tasks)
    context = fork_context() if workers > 1 and len(tasks) > 1 else None
    if context is None:
        return [func(task) for task in tasks]
    with context.Pool(min(workers, len(tasks))) as pool:
        return pool.map(func, tasks)


#: Longest single backoff sleep between crash-retry rounds, seconds.
_MAX_BACKOFF = 1.0


def process_map_resilient(
    func: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    workers: int,
    *,
    split: Callable[[TaskT], Optional[Tuple[TaskT, TaskT]]],
    merge: Callable[[List[ResultT]], ResultT],
    failed: Callable[[TaskT, BaseException], ResultT],
    max_retries: int = 2,
    backoff_base: float = 0.05,
    health=None,
) -> List[ResultT]:
    """``[func(t) for t in tasks]`` that survives worker-process death.

    Tasks run in a forked :class:`~concurrent.futures.ProcessPoolExecutor`
    so a worker dying mid-task (signal, OOM kill, ``os._exit``) surfaces
    as a broken pool instead of a hang.  When that happens the pool is
    rebuilt and every task it took down is rescheduled:

    * a multi-source task is retried once, then **bisected** via
      ``split`` — halving until the poison source sits alone in a
      single-source task (innocent co-victims converge the same way and
      merge back losslessly);
    * a single-source task is retried up to ``max_retries`` more times
      with exponential backoff, then attempted **in-process** once (a
      crash confined to worker children cannot follow it there), and
      only if that also fails is ``failed(task, exc)`` asked for a
      substitute result — which may raise to abort the run (strict
      policy) or return an empty partial recording a quarantine.

    ``split`` returns ``None`` for unsplittable tasks.  ``merge`` folds
    a ``[left, right]`` result pair back into one, in order, so the
    returned list matches ``tasks`` position for position and the
    downstream fold stays byte-deterministic.  ``health``, when given,
    receives executor-level counters (``retries``, ``worker_restarts``,
    ``sequential_fallbacks``) by attribute increment.

    Exceptions *raised* by ``func`` inside a live worker are not crash
    recovery's business: they propagate unchanged, exactly as under
    :func:`process_map`.  Without a ``fork`` context the whole map runs
    in-process (no crash isolation is possible on spawn-only platforms).
    """
    tasks = list(tasks)
    context = fork_context()
    if context is None or not tasks:
        return [func(task) for task in tasks]
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    pool_size = max(1, min(workers, len(tasks)))
    #: bisection-tree path -> result; roots are ``(index,)``.
    results: Dict[Tuple[int, ...], ResultT] = {}
    pending: Dict[Tuple[int, ...], TaskT] = {
        (index,): task for index, task in enumerate(tasks)
    }
    attempts: Dict[Tuple[int, ...], int] = {path: 0 for path in pending}
    broken_rounds = 0
    pool = ProcessPoolExecutor(max_workers=pool_size, mp_context=context)
    try:
        while pending:
            futures = {
                path: pool.submit(func, task)
                for path, task in sorted(pending.items())
            }
            crashed: List[Tuple[int, ...]] = []
            for path, future in futures.items():
                try:
                    results[path] = future.result()
                    del pending[path]
                except BrokenProcessPool:
                    crashed.append(path)
            if not crashed:
                continue
            broken_rounds += 1
            if health is not None:
                health.worker_restarts += 1
            pool.shutdown(wait=False)
            pool = ProcessPoolExecutor(
                max_workers=pool_size, mp_context=context
            )
            for path in crashed:
                task = pending[path]
                attempts[path] += 1
                if health is not None:
                    health.retries += 1
                halves = (
                    split(task)
                    if attempts[path] > 1 or max_retries == 0
                    else None
                )
                if halves is not None:
                    del pending[path], attempts[path]
                    for side, half in enumerate(halves):
                        pending[path + (side,)] = half
                        attempts[path + (side,)] = 0
                elif attempts[path] <= max_retries:
                    continue  # stays pending; retried next round
                else:
                    del pending[path], attempts[path]
                    if health is not None:
                        health.sequential_fallbacks += 1
                    try:
                        results[path] = func(task)
                    except Exception as exc:
                        results[path] = failed(task, exc)
            if backoff_base > 0.0:
                time.sleep(
                    min(_MAX_BACKOFF, backoff_base * 2 ** (broken_rounds - 1))
                )
    finally:
        pool.shutdown(wait=False)

    def resolve(path: Tuple[int, ...]) -> ResultT:
        if path in results:
            return results[path]
        return merge([resolve(path + (0,)), resolve(path + (1,))])

    return [resolve((index,)) for index in range(len(tasks))]
