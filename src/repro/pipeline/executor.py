"""Process-pool execution with a sequential fallback.

The pipeline mirrors the corpus generator's fork-pool pattern: workers
are forked so they inherit the parent's address space (cheap access to
in-memory corpora), and platforms without the ``fork`` start method —
or single-task runs — degrade to an in-process loop with identical
results.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Sequence, TypeVar

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")


def fork_context():
    """The ``fork`` multiprocessing context, or ``None`` if unavailable."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


def fork_available() -> bool:
    """True when parallel (forked) execution is possible on this host."""
    return fork_context() is not None


def process_map(
    func: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    workers: int,
) -> List[ResultT]:
    """``[func(t) for t in tasks]``, fanned out over a fork pool.

    Results come back in task order (``Pool.map`` semantics), so callers
    can fold them deterministically.  Runs sequentially — same results,
    one process — when ``workers <= 1``, when there is at most one task,
    or when ``fork`` is unavailable (spawn-only platforms).
    """
    tasks = list(tasks)
    context = fork_context() if workers > 1 and len(tasks) > 1 else None
    if context is None:
        return [func(task) for task in tasks]
    with context.Pool(min(workers, len(tasks))) as pool:
        return pool.map(func, tasks)
