"""Tests for by-design pattern filtering (§5.2.5)."""

from repro.causality.filtering import (
    ByDesignKnowledge,
    DEFAULT_BY_DESIGN_MODULES,
    filter_by_design,
)
from repro.causality.mining import ContrastPattern
from repro.causality.sst import SignatureSetTuple


def pattern(waits, unwaits=(), runnings=()):
    return ContrastPattern(
        sst=SignatureSetTuple(
            frozenset(waits), frozenset(unwaits), frozenset(runnings)
        ),
        cost=100,
        count=1,
        max_single=100,
        matched_meta_patterns=1,
    )


class TestKnowledge:
    def test_default_includes_disk_protection(self):
        knowledge = ByDesignKnowledge.default()
        assert "dp.sys" in knowledge.modules
        assert DEFAULT_BY_DESIGN_MODULES == ("dp.sys",)

    def test_explains_pure_by_design_pattern(self):
        knowledge = ByDesignKnowledge.default()
        assert knowledge.explains(pattern({"dp.sys!AcquireGate"}))

    def test_mixed_pattern_not_explained(self):
        knowledge = ByDesignKnowledge.default()
        mixed = pattern({"dp.sys!AcquireGate", "fs.sys!AcquireMDU"})
        assert not knowledge.explains(mixed)
        assert knowledge.touches(mixed)

    def test_empty_wait_set_never_explained(self):
        knowledge = ByDesignKnowledge.default()
        assert not knowledge.explains(pattern(set(), runnings={"dp.sys!X"}))

    def test_signature_level_knowledge(self):
        knowledge = ByDesignKnowledge()
        knowledge.add_signature("fs.sys!FlushBarrier")
        assert knowledge.explains(pattern({"fs.sys!FlushBarrier"}))
        assert not knowledge.explains(pattern({"fs.sys!AcquireMDU"}))

    def test_module_case_insensitive(self):
        knowledge = ByDesignKnowledge()
        knowledge.add_module("DP.SYS")
        assert knowledge.explains(pattern({"dp.sys!AcquireGate"}))


class TestFiltering:
    def test_partition(self):
        knowledge = ByDesignKnowledge.default()
        pure = pattern({"dp.sys!AcquireGate"})
        mixed = pattern({"dp.sys!AcquireGate", "fs.sys!AcquireMDU"})
        clean = pattern({"fv.sys!QueryFileTable"})
        result = filter_by_design([pure, mixed, clean], knowledge)
        assert result.by_design == [pure]
        assert result.actionable == [mixed, clean]
        assert result.flagged == [mixed]
        assert result.suppressed_count == 1

    def test_order_preserved(self):
        knowledge = ByDesignKnowledge.default()
        patterns = [pattern({f"d{i}.sys!X"}) for i in range(5)]
        result = filter_by_design(patterns, knowledge)
        assert result.actionable == patterns

    def test_empty_input(self):
        result = filter_by_design([], ByDesignKnowledge.default())
        assert result.actionable == []
        assert result.by_design == []
