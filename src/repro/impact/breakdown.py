"""Per-module impact breakdown (impact analysis "on different scopes").

The paper's analyst workflow (§2.3) starts by running impact analysis on
different scopes to find the high-impact components.  Re-running the full
analysis once per driver module is wasteful — this module computes the
whole per-module breakdown in a single pass over the Wait Graphs: for
every driver module, its top-level wait time (no double counting within a
module), distinct wait time, running time and the scenarios it affects.

The per-module "top-level wait" rule mirrors §3.2 per module: a wait
event counts for module M when M appears on its stack and no ancestor
wait already counted for M.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.trace.events import Event, EventKind
from repro.trace.signatures import ComponentFilter, module_of
from repro.trace.stream import TraceStream
from repro.waitgraph.builder import build_wait_graph
from repro.waitgraph.graph import WaitGraph


@dataclass
class ModuleImpact:
    """One driver module's accumulated impact."""

    module: str
    wait_time: int = 0
    distinct_wait_time: int = 0
    run_time: int = 0
    wait_events: int = 0
    scenarios: Set[str] = field(default_factory=set)
    _seen_waits: Set[Tuple[str, int]] = field(default_factory=set)

    @property
    def wait_multiplicity(self) -> float:
        if not self.distinct_wait_time:
            return 0.0
        return self.wait_time / self.distinct_wait_time


def _modules_on_stack(
    event: Event, component_filter: ComponentFilter
) -> FrozenSet[str]:
    return frozenset(
        module_of(frame).lower()
        for frame in event.stack
        if component_filter.matches_signature(frame)
    )


class ImpactBreakdown:
    """Single-pass per-module impact accounting over Wait Graphs."""

    def __init__(self, component_filter: Optional[ComponentFilter] = None):
        self.component_filter = component_filter or ComponentFilter(["*.sys"])
        self.modules: Dict[str, ModuleImpact] = {}
        self.total_scenario_time = 0
        self.graphs = 0

    def _module(self, name: str) -> ModuleImpact:
        entry = self.modules.get(name)
        if entry is None:
            entry = ModuleImpact(name)
            self.modules[name] = entry
        return entry

    def add_graph(self, graph: WaitGraph) -> None:
        """Accumulate one instance's graph for every module at once.

        The DFS carries the set of modules already counted on the current
        path, so each module's nested waits are skipped exactly as the
        single-scope analysis skips descendants of its counted waits.
        """
        self.graphs += 1
        self.total_scenario_time += graph.top_level_duration
        scenario = graph.instance.scenario
        stream_id = graph.stream_id

        stack: List[Tuple[Event, FrozenSet[str]]] = [
            (event, frozenset()) for event in reversed(graph.roots)
        ]
        visited: Set[Tuple[int, FrozenSet[str]]] = set()
        counted_runs: Set[int] = set()
        counted_in_graph: Set[Tuple[int, str]] = set()
        while stack:
            event, counted_above = stack.pop()
            state = (event.seq, counted_above)
            if state in visited:
                continue
            visited.add(state)
            modules_here = _modules_on_stack(event, self.component_filter)
            if event.kind is EventKind.RUNNING:
                if event.seq not in counted_runs:
                    counted_runs.add(event.seq)
                    for name in modules_here:
                        entry = self._module(name)
                        entry.run_time += event.cost
                        entry.scenarios.add(scenario)
                continue
            if event.kind is not EventKind.WAIT:
                continue
            newly_counted = modules_here - counted_above
            for name in newly_counted:
                # An event counts once per (graph, module) even when the
                # DAG reaches it along several paths — matching the
                # single-scope analysis exactly.
                graph_key = (event.seq, name)
                if graph_key in counted_in_graph:
                    continue
                counted_in_graph.add(graph_key)
                entry = self._module(name)
                entry.wait_time += event.cost
                entry.wait_events += 1
                entry.scenarios.add(scenario)
                key = (stream_id, event.seq)
                if key not in entry._seen_waits:
                    entry._seen_waits.add(key)
                    entry.distinct_wait_time += event.cost
            child_counted = counted_above | newly_counted
            for child in reversed(graph.children(event)):
                stack.append((child, child_counted))

    def add_streams(self, streams: Iterable[TraceStream]) -> None:
        """Accumulate every scenario instance of a corpus."""
        for stream in streams:
            for instance in stream.instances:
                self.add_graph(build_wait_graph(instance))

    def ranked(self) -> List[ModuleImpact]:
        """Modules by wait impact, heaviest first."""
        return sorted(
            self.modules.values(),
            key=lambda entry: (-entry.wait_time, entry.module),
        )

    def wait_share_of(self, module: str) -> float:
        """One module's wait time over total scenario time."""
        entry = self.modules.get(module.lower())
        if entry is None or not self.total_scenario_time:
            return 0.0
        return entry.wait_time / self.total_scenario_time


def breakdown_by_module(
    streams: Sequence[TraceStream],
    component_patterns: Sequence[str] = ("*.sys",),
) -> ImpactBreakdown:
    """Compute the per-module impact breakdown of a corpus."""
    breakdown = ImpactBreakdown(ComponentFilter(component_patterns))
    breakdown.add_streams(streams)
    return breakdown
