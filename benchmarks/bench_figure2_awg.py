"""Figure 2 — The Aggregated Wait Graph of the motivating case.

Builds the AWG over the case study's slow class and renders the
aggregated propagation path: the fv.sys File Table wait over the fs.sys
MDU wait over the se.sys worker wait over hardware service — the exact
aggregated path Figure 2 highlights.
"""

from benchmarks.conftest import print_banner
from repro.report.figures import awg_to_dot, render_awg
from repro.sim.casestudy import T_FAST, T_SLOW, run_case_study
from repro.trace.signatures import ALL_DRIVERS, HARDWARE_SIGNATURE
from repro.waitgraph.aggregate import WAITING, aggregate_wait_graphs
from repro.waitgraph.builder import build_wait_graph


def _find_chain(awg):
    """Locate the fv -> fs -> se/hardware aggregated path."""
    for root in awg.roots.values():
        if root.status != WAITING or "fv.sys" not in (root.wait_sig or ""):
            continue
        for child in root.walk():
            if child is root:
                continue
            if child.status == WAITING and "fs.sys" in (child.wait_sig or ""):
                for leaf in child.walk():
                    sig = leaf.run_sig or leaf.wait_sig or ""
                    if "se.sys" in sig or sig == HARDWARE_SIGNATURE:
                        return root, child, leaf
    return None


def test_bench_figure2_awg(benchmark):
    result = run_case_study()
    slow_graphs = [
        build_wait_graph(instance)
        for instance in result.instances
        if instance.duration > T_SLOW
    ]
    fast_graphs = [
        build_wait_graph(instance)
        for instance in result.instances
        if instance.duration < T_FAST
    ]

    def aggregate():
        return aggregate_wait_graphs(slow_graphs + fast_graphs, ALL_DRIVERS)

    benchmark(aggregate)
    slow_awg = aggregate_wait_graphs(slow_graphs, ALL_DRIVERS)

    print_banner("Figure 2 - Aggregated Wait Graph (slow class)")
    print(render_awg(slow_awg))
    print()
    print("Graphviz dot export (first lines):")
    print("\n".join(awg_to_dot(slow_awg).splitlines()[:8]))

    chain = _find_chain(slow_awg)
    assert chain is not None, (
        "the aggregated fv.sys -> fs.sys -> storage path must exist"
    )
    root, middle, leaf = chain
    assert root.count >= 1
    # Costs along the chain are all real (children may exceed parents:
    # a child wait that began before the parent wait is attributed whole,
    # the paper's deliberate over-approximation).
    assert root.cost > 0 and middle.cost > 0 and leaf.cost > 0
