"""Device-driver models.

Each class models one driver module the paper's evaluation encounters
(Table 4 taxonomy), with the two characteristics that cause cost
propagation (§1): kernel locks synchronizing shared resources, and a
hierarchical driver-stack architecture where drivers invoke each other
through ``IoCallDriver``-style system services.

The storage hierarchy mirrors the motivating example (§2.2)::

    fv.sys (file virtualization filter, File Table locks)
      └─> fs.sys (file system, Meta Data Unit locks)
            └─> se.sys (storage encryption, decrypt CPU)  ──> disk
                 or stor.sys (plain storage)              ──> disk

Driver methods are generator functions taking a
:class:`~repro.sim.engine.ThreadContext`; they push ``module!Function``
frames so emitted callstacks look like real ETW stacks.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from repro.sim.devices import QueuedDevice
from repro.sim.distributions import bernoulli, lognormal_us, uniform_us
from repro.sim.engine import ThreadContext
from repro.sim.locks import Lock
from repro.trace.signatures import make_signature

IO_CALL_DRIVER = make_signature("kernel", "IoCallDriver")


def io_call(ctx: ThreadContext, body: Generator) -> Generator:
    """Invoke a lower driver through the kernel's IoCallDriver service."""
    with ctx.frame(IO_CALL_DRIVER):
        yield from body


class Driver:
    """Base class: a named kernel module with signature helpers."""

    module = "driver.sys"

    def sig(self, function: str) -> str:
        """Signature of one of this driver's functions."""
        return make_signature(self.module, function)


# ---------------------------------------------------------------------------
# Storage stack
# ---------------------------------------------------------------------------


class PlainStorageDriver(Driver):
    """``stor.sys`` — pass-through storage: disk IO with no extra cost."""

    module = "stor.sys"

    def __init__(self, disk: QueuedDevice, rng: random.Random, read_median_us: int):
        self.disk = disk
        self.rng = rng
        self.read_median_us = read_median_us

    def read(self, ctx: ThreadContext, size_factor: float = 1.0) -> Generator:
        with ctx.frame(self.sig("Read")):
            duration = lognormal_us(self.rng, self.read_median_us * size_factor)
            yield from ctx.hardware(self.disk, duration)

    def write(self, ctx: ThreadContext, size_factor: float = 1.0) -> Generator:
        with ctx.frame(self.sig("Write")):
            duration = lognormal_us(
                self.rng, self.read_median_us * size_factor * 1.2
            )
            yield from ctx.hardware(self.disk, duration)


class StorageEncryptionDriver(Driver):
    """``se.sys`` — storage encryption: disk IO plus decrypt/encrypt CPU.

    The computation-intensive part is what the motivating example's
    ``se.sys!ReadDecrypt`` running signature captures; it executes on a
    worker while callers up the stack wait, so its cost propagates through
    every lock held above it.
    """

    module = "se.sys"

    def __init__(
        self,
        disk: QueuedDevice,
        rng: random.Random,
        read_median_us: int,
        decrypt_median_us: int,
    ):
        self.disk = disk
        self.rng = rng
        self.read_median_us = read_median_us
        self.decrypt_median_us = decrypt_median_us

    def read(self, ctx: ThreadContext, size_factor: float = 1.0) -> Generator:
        """Read and decrypt: the ``se.sys!ReadDecrypt`` path of Figure 1."""
        with ctx.frame(self.sig("ReadDecrypt")):
            with ctx.frame(self.sig("Worker")):
                duration = lognormal_us(self.rng, self.read_median_us * size_factor)
                yield from ctx.hardware(self.disk, duration)
            with ctx.frame(self.sig("Decrypt")):
                # Decrypt CPU scales with transfer size but is capped: big
                # cluster reads stream through the cipher in bounded chunks.
                yield from ctx.compute(
                    lognormal_us(
                        self.rng,
                        self.decrypt_median_us * min(size_factor, 4.0),
                    )
                )

    def write(self, ctx: ThreadContext, size_factor: float = 1.0) -> Generator:
        """Encrypt and write (encryption CPU happens before the IO)."""
        with ctx.frame(self.sig("WriteEncrypt")):
            with ctx.frame(self.sig("Encrypt")):
                yield from ctx.compute(
                    lognormal_us(
                        self.rng,
                        self.decrypt_median_us * min(size_factor, 4.0),
                    )
                )
            with ctx.frame(self.sig("Worker")):
                duration = lognormal_us(
                    self.rng, self.read_median_us * size_factor * 1.2
                )
                yield from ctx.hardware(self.disk, duration)


class FileSystemDriver(Driver):
    """``fs.sys`` — the file system with Meta Data Unit (MDU) locks.

    Requests that read or write a file acquire the MDU lock covering the
    file's metadata (paper §2.2) and *hold it across the storage IO*, which
    is exactly the behaviour that lets a slow disk or decrypt propagate to
    every other thread contending the same MDU.  ``mdu_lock_count``
    controls lock granularity — fewer locks means coarser granularity and
    more contention (the paper's closing advice is to reduce granularity).
    """

    module = "fs.sys"

    def __init__(
        self,
        storage,
        rng: random.Random,
        mdu_lock_count: int = 4,
        metadata_median_us: int = 200,
        disk_protection: Optional["DiskProtectionDriver"] = None,
    ):
        if mdu_lock_count < 1:
            raise ValueError("mdu_lock_count must be >= 1")
        self.storage = storage
        self.rng = rng
        self.metadata_median_us = metadata_median_us
        self.disk_protection = disk_protection
        self.mdu_locks: List[Lock] = [
            Lock(f"fs.sys/MDU{i}") for i in range(mdu_lock_count)
        ]

    def _mdu_for(self, file_id: int) -> Lock:
        return self.mdu_locks[file_id % len(self.mdu_locks)]

    def _guarded_storage(self, ctx: ThreadContext, body: Generator) -> Generator:
        if self.disk_protection is not None:
            yield from io_call(ctx, self.disk_protection.check(ctx))
        yield from io_call(ctx, body)

    def read_file(
        self,
        ctx: ThreadContext,
        file_id: int,
        size_factor: float = 1.0,
        cached: bool = False,
    ) -> Generator:
        """Read a file: MDU lock, metadata work, storage IO unless cached."""
        with ctx.frame(self.sig("Read")):
            with ctx.frame(self.sig("AcquireMDU")):
                yield from ctx.acquire(self._mdu_for(file_id))
            try:
                yield from ctx.compute(
                    lognormal_us(self.rng, self.metadata_median_us)
                )
                if not cached:
                    yield from self._guarded_storage(
                        ctx, self.storage.read(ctx, size_factor)
                    )
            finally:
                with ctx.frame(self.sig("AcquireMDU")):
                    yield from ctx.release(self._mdu_for(file_id))

    def write_file(
        self, ctx: ThreadContext, file_id: int, size_factor: float = 1.0
    ) -> Generator:
        """Write a file through the MDU lock and the storage stack."""
        with ctx.frame(self.sig("Write")):
            with ctx.frame(self.sig("AcquireMDU")):
                yield from ctx.acquire(self._mdu_for(file_id))
            try:
                yield from ctx.compute(
                    lognormal_us(self.rng, self.metadata_median_us)
                )
                yield from self._guarded_storage(
                    ctx, self.storage.write(ctx, size_factor)
                )
            finally:
                with ctx.frame(self.sig("AcquireMDU")):
                    yield from ctx.release(self._mdu_for(file_id))

    def query_metadata(self, ctx: ThreadContext, file_id: int) -> Generator:
        """Metadata-only query: MDU lock plus CPU, no storage IO."""
        with ctx.frame(self.sig("QueryMetadata")):
            with ctx.frame(self.sig("AcquireMDU")):
                yield from ctx.acquire(self._mdu_for(file_id))
            try:
                yield from ctx.compute(
                    lognormal_us(self.rng, self.metadata_median_us)
                )
            finally:
                with ctx.frame(self.sig("AcquireMDU")):
                    yield from ctx.release(self._mdu_for(file_id))

    def paging_read(
        self, ctx: ThreadContext, file_id: int, size_factor: float
    ) -> Generator:
        """Page-in path used by the memory manager to solve hard faults."""
        with ctx.frame(self.sig("PagingRead")):
            with ctx.frame(self.sig("AcquireMDU")):
                yield from ctx.acquire(self._mdu_for(file_id))
            try:
                yield from self._guarded_storage(
                    ctx, self.storage.read(ctx, size_factor)
                )
            finally:
                with ctx.frame(self.sig("AcquireMDU")):
                    yield from ctx.release(self._mdu_for(file_id))


class FileVirtualizationDriver(Driver):
    """``fv.sys`` — file-virtualization filter with File Table locks.

    Maps "virtual" files to physical locations; queries synchronize on
    File Table entries.  A miss resolves through ``fs.sys`` *while the
    File Table lock is held* — the upper contention region of Figure 1.
    """

    module = "fv.sys"

    def __init__(
        self,
        fs: FileSystemDriver,
        rng: random.Random,
        file_table_lock_count: int = 2,
        lookup_median_us: int = 150,
    ):
        if file_table_lock_count < 1:
            raise ValueError("file_table_lock_count must be >= 1")
        self.fs = fs
        self.rng = rng
        self.lookup_median_us = lookup_median_us
        self.file_table_locks: List[Lock] = [
            Lock(f"fv.sys/FileTable{i}") for i in range(file_table_lock_count)
        ]

    def _table_lock_for(self, file_id: int) -> Lock:
        return self.file_table_locks[file_id % len(self.file_table_locks)]

    def query_file_table(
        self,
        ctx: ThreadContext,
        file_id: int,
        resolve: bool = True,
        cached: bool = False,
        size_factor: float = 1.0,
    ) -> Generator:
        """Query the File Table; resolve misses through the file system."""
        with ctx.frame(self.sig("QueryFileTable")):
            # Acquire/release happen directly under QueryFileTable so the
            # wait and unwait signatures read exactly as in the paper's
            # motivating example (fv.sys!QueryFileTable).
            lock = self._table_lock_for(file_id)
            yield from ctx.acquire(lock)
            try:
                yield from ctx.compute(
                    lognormal_us(self.rng, self.lookup_median_us)
                )
                if resolve:
                    yield from io_call(
                        ctx,
                        self.fs.read_file(
                            ctx, file_id, size_factor=size_factor, cached=cached
                        ),
                    )
            finally:
                yield from ctx.release(lock)


# ---------------------------------------------------------------------------
# Filter / security drivers
# ---------------------------------------------------------------------------


class AntiVirusFilterDriver(Driver):
    """``av.sys`` — a security-software filter driver.

    Intercepts file requests system-wide but funnels inspection through a
    single signature-database lock — the architecture §5.2.4's first
    observation blames: "security software ... usually uses a single
    process and database for security inspection".
    """

    module = "av.sys"

    def __init__(
        self,
        fs: FileSystemDriver,
        rng: random.Random,
        scan_median_us: int = 2500,
        database_miss_rate: float = 0.25,
    ):
        self.fs = fs
        self.rng = rng
        self.scan_median_us = scan_median_us
        self.database_miss_rate = database_miss_rate
        self.scan_lock = Lock("av.sys/SignatureDatabase")

    def scan_file(self, ctx: ThreadContext, file_id: int) -> Generator:
        """Inspect one file under the global signature-database lock."""
        with ctx.frame(self.sig("ScanFile")):
            with ctx.frame(self.sig("AcquireDatabase")):
                yield from ctx.acquire(self.scan_lock)
            try:
                yield from ctx.compute(
                    lognormal_us(self.rng, self.scan_median_us)
                )
                if bernoulli(self.rng, self.database_miss_rate):
                    # Signature page not resident: read it through fs.sys
                    # while holding the database lock.
                    yield from io_call(
                        ctx, self.fs.read_file(ctx, file_id * 7919, 0.5)
                    )
            finally:
                with ctx.frame(self.sig("AcquireDatabase")):
                    yield from ctx.release(self.scan_lock)


class IOCacheDriver(Driver):
    """``iocache.sys`` — an IO-cache filter with a shared cache-map lock."""

    module = "iocache.sys"

    def __init__(self, rng: random.Random, lookup_median_us: int = 60):
        self.rng = rng
        self.lookup_median_us = lookup_median_us
        self.cache_lock = Lock("iocache.sys/CacheMap")

    def lookup(self, ctx: ThreadContext) -> Generator:
        with ctx.frame(self.sig("Lookup")):
            with ctx.frame(self.sig("AcquireMap")):
                yield from ctx.acquire(self.cache_lock)
            try:
                yield from ctx.compute(
                    lognormal_us(self.rng, self.lookup_median_us)
                )
            finally:
                with ctx.frame(self.sig("AcquireMap")):
                    yield from ctx.release(self.cache_lock)


class DiskProtectionDriver(Driver):
    """``dp.sys`` — motion-triggered disk protection.

    By design it halts all disk reads and writes while engaged; the paper
    calls appearances of this driver in contrast patterns *false positives*
    (by-design behaviour that still costs time).  ``engage`` is run by a
    background monitor thread; every storage request ``check``s the gate.
    """

    module = "dp.sys"

    def __init__(self, rng: random.Random, check_median_us: int = 40):
        self.rng = rng
        self.check_median_us = check_median_us
        self.gate = Lock("dp.sys/MotionGate")

    def check(self, ctx: ThreadContext) -> Generator:
        with ctx.frame(self.sig("CheckMotion")):
            with ctx.frame(self.sig("AcquireGate")):
                yield from ctx.acquire(self.gate)
            try:
                yield from ctx.compute(
                    lognormal_us(self.rng, self.check_median_us)
                )
            finally:
                with ctx.frame(self.sig("AcquireGate")):
                    yield from ctx.release(self.gate)

    def engage(self, ctx: ThreadContext, halt_us: int) -> Generator:
        """Hold the gate for ``halt_us`` while the drive heads are parked."""
        with ctx.frame(self.sig("EngageProtection")):
            with ctx.frame(self.sig("AcquireGate")):
                yield from ctx.acquire(self.gate)
            try:
                yield from ctx.compute(halt_us)
            finally:
                with ctx.frame(self.sig("AcquireGate")):
                    yield from ctx.release(self.gate)


class StorageBackupDriver(Driver):
    """``bkup.sys`` — continuous backup sweeping files through fs.sys."""

    module = "bkup.sys"

    def __init__(self, fs: FileSystemDriver, rng: random.Random):
        self.fs = fs
        self.rng = rng

    def backup_pass(self, ctx: ThreadContext, file_ids) -> Generator:
        """Read a batch of files for the backup set (holds MDUs in turn)."""
        with ctx.frame(self.sig("BackupPass")):
            for file_id in file_ids:
                yield from io_call(
                    ctx,
                    self.fs.read_file(
                        ctx, file_id, size_factor=uniform_us(self.rng, 1, 3)
                    ),
                )


# ---------------------------------------------------------------------------
# Network / graphics / input / platform drivers
# ---------------------------------------------------------------------------


class NetworkDriver(Driver):
    """``net.sys`` — the network stack: transfers over an unstable link.

    A transfer blocks the caller inside ``net.sys!Receive`` while a
    protocol DPC thread handles the NIC interrupt and runs receive
    processing before readying the waiter — the attribution shape real
    ETW shows for socket waits (the readying stack carries network-driver
    frames, not bare hardware), which is what lets network delays appear
    as *propagated*, optimizable driver behaviour in the analysis.
    """

    module = "net.sys"

    def __init__(
        self,
        network: QueuedDevice,
        rng: random.Random,
        latency_median_us: int = 20_000,
        congestion_rate: float = 0.15,
        congestion_multiplier: float = 6.0,
    ):
        self.network = network
        self.rng = rng
        self.latency_median_us = latency_median_us
        self.congestion_rate = congestion_rate
        self.congestion_multiplier = congestion_multiplier
        self._transfer_count = 0

    def transfer(self, ctx: ThreadContext, size_factor: float = 1.0) -> Generator:
        """One request/response round trip; occasionally hits congestion."""
        from repro.sim.locks import SimEvent
        from repro.trace.stream import ThreadInfo

        with ctx.frame(self.sig("Transfer")):
            median = self.latency_median_us * size_factor
            if bernoulli(self.rng, self.congestion_rate):
                median *= self.congestion_multiplier
            yield from ctx.compute(uniform_us(self.rng, 30, 200))

            self._transfer_count += 1
            completed = SimEvent(f"net/xfer#{self._transfer_count}")
            latency = lognormal_us(self.rng, median, sigma=0.6)
            protocol_cpu = uniform_us(self.rng, 100, 600)
            driver = self

            def dpc_program(dpc_ctx: ThreadContext) -> Generator:
                with dpc_ctx.frame(make_signature("kernel", "Dpc")):
                    with dpc_ctx.frame(driver.sig("ProtocolReceive")):
                        yield from dpc_ctx.hardware(driver.network, latency)
                        yield from dpc_ctx.compute(protocol_cpu)
                        yield from dpc_ctx.fire(completed)

            info = ThreadInfo(
                tid=-1, process="System",
                name=f"NetDpc{self._transfer_count}",
            )
            with ctx.frame(self.sig("Receive")):
                yield from ctx.spawn(info, dpc_program)
                yield from ctx.wait_for(completed)


class GraphicsDriver(Driver):
    """``graphics.sys`` — GPU rendering plus a pageable internal structure.

    ``render`` holds the GPU context lock across the hardware pass.
    ``initialize_surface`` touches pageable memory and can hard-fault —
    while holding the GPU lock if the caller took it — reproducing the
    §5.2.4 case where a graphics routine's page-in through fs.sys/se.sys
    froze the UI for seconds.
    """

    module = "graphics.sys"

    def __init__(
        self,
        gpu: QueuedDevice,
        memory,
        rng: random.Random,
        render_median_us: int = 3000,
    ):
        self.gpu = gpu
        self.memory = memory
        self.rng = rng
        self.render_median_us = render_median_us
        self.gpu_lock = Lock("graphics.sys/GpuContext")

    def render(self, ctx: ThreadContext, complexity: float = 1.0) -> Generator:
        """Render a frame batch while holding the GPU context."""
        with ctx.frame(self.sig("Render")):
            with ctx.frame(self.sig("AcquireGpu")):
                yield from ctx.acquire(self.gpu_lock)
            try:
                yield from ctx.compute(uniform_us(self.rng, 100, 600))
                yield from ctx.hardware(
                    self.gpu,
                    lognormal_us(self.rng, self.render_median_us * complexity),
                )
            finally:
                with ctx.frame(self.sig("AcquireGpu")):
                    yield from ctx.release(self.gpu_lock)

    def initialize_surface(self, ctx: ThreadContext) -> Generator:
        """Set up an internal pageable structure; may hard-fault (§5.2.4)."""
        with ctx.frame(self.sig("InitializeSurface")):
            yield from self.memory.touch(ctx)
            yield from ctx.compute(uniform_us(self.rng, 50, 300))

    def system_routine(self, ctx: ThreadContext) -> Generator:
        """Periodic system-event handler: holds the GPU and may hard-fault."""
        with ctx.frame(self.sig("SystemEventRoutine")):
            with ctx.frame(self.sig("AcquireGpu")):
                yield from ctx.acquire(self.gpu_lock)
            try:
                yield from ctx.compute(uniform_us(self.rng, 200, 1500))
                yield from self.initialize_surface(ctx)
            finally:
                with ctx.frame(self.sig("AcquireGpu")):
                    yield from ctx.release(self.gpu_lock)


class MouseDriver(Driver):
    """``mouse.sys`` — input delivery; cheap CPU on every click."""

    module = "mouse.sys"

    def __init__(self, rng: random.Random):
        self.rng = rng

    def process_input(self, ctx: ThreadContext) -> Generator:
        with ctx.frame(self.sig("ProcessInput")):
            yield from ctx.compute(uniform_us(self.rng, 30, 150))


class ACPIDriver(Driver):
    """``acpi.sys`` — platform power management with a firmware lock."""

    module = "acpi.sys"

    def __init__(self, rng: random.Random, query_median_us: int = 120):
        self.rng = rng
        self.query_median_us = query_median_us
        self.firmware_lock = Lock("acpi.sys/Firmware")

    def query_power_state(self, ctx: ThreadContext) -> Generator:
        with ctx.frame(self.sig("QueryPowerState")):
            with ctx.frame(self.sig("AcquireFirmware")):
                yield from ctx.acquire(self.firmware_lock)
            try:
                yield from ctx.compute(
                    lognormal_us(self.rng, self.query_median_us)
                )
            finally:
                with ctx.frame(self.sig("AcquireFirmware")):
                    yield from ctx.release(self.firmware_lock)

    def power_transition(self, ctx: ThreadContext, duration_us: int) -> Generator:
        """A firmware-mediated transition holding the lock for a while."""
        with ctx.frame(self.sig("PowerTransition")):
            with ctx.frame(self.sig("AcquireFirmware")):
                yield from ctx.acquire(self.firmware_lock)
            try:
                yield from ctx.compute(duration_us)
            finally:
                with ctx.frame(self.sig("AcquireFirmware")):
                    yield from ctx.release(self.firmware_lock)
