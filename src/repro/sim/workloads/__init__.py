"""Scenario workloads and background interference for the simulator."""

from repro.sim.workloads.background import (
    install_acpi_activity,
    install_av_scanner,
    install_backup_agent,
    install_config_manager,
    install_dp_monitor,
    install_graphics_system_worker,
    install_standard_background,
)
from repro.sim.workloads.base import ScenarioSpec, Workload
from repro.sim.workloads.browser import (
    BrowserFrameCreate,
    BrowserTabClose,
    BrowserTabCreate,
    BrowserTabSwitch,
    WebPageNavigation,
    install_browser_workers,
)
from repro.sim.workloads.menu import MenuDisplay
from repro.sim.workloads.pathology import (
    PATHOLOGY_WORKLOAD_CLASSES,
    DeadlockCycle,
    LockConvoy,
    PriorityInversion,
    WakeupStorm,
)
from repro.sim.workloads.registry import (
    PATHOLOGY_SCENARIO_NAMES,
    SCENARIO_NAMES,
    SCENARIO_SPECS,
    WORKLOAD_CLASSES,
    WORKLOADS_BY_NAME,
    scenario_spec,
    workload_class,
)
from repro.sim.workloads.responsiveness import AppNonResponsive
from repro.sim.workloads.security import AppAccessControl

__all__ = [
    "AppAccessControl",
    "AppNonResponsive",
    "BrowserFrameCreate",
    "BrowserTabClose",
    "BrowserTabCreate",
    "BrowserTabSwitch",
    "DeadlockCycle",
    "LockConvoy",
    "MenuDisplay",
    "PATHOLOGY_SCENARIO_NAMES",
    "PATHOLOGY_WORKLOAD_CLASSES",
    "PriorityInversion",
    "SCENARIO_NAMES",
    "SCENARIO_SPECS",
    "ScenarioSpec",
    "WORKLOAD_CLASSES",
    "WORKLOADS_BY_NAME",
    "WakeupStorm",
    "WebPageNavigation",
    "Workload",
    "install_acpi_activity",
    "install_av_scanner",
    "install_backup_agent",
    "install_browser_workers",
    "install_config_manager",
    "install_dp_monitor",
    "install_graphics_system_worker",
    "install_standard_background",
    "scenario_spec",
    "workload_class",
]
