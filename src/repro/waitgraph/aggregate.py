"""Aggregated Wait Graphs (paper Definitions 2–3) and Algorithm 1.

An Aggregated Wait Graph (AWG) abstracts and aggregates the runtime
behaviour of many Wait Graphs of the same scenario.  Nodes represent the
aggregated execution of a function signature in one of three statuses —
waiting (a merged wait/unwait pair), running, or hardware service — and
carry a cost ``C``, an occurrence counter ``N`` and (our addition, needed
by the §5.2.1 high-impact rule) the maximum single-occurrence cost.

Aggregation follows Algorithm 1:

1. eliminate component-irrelevant root nodes, promoting children;
2. merge each wait event with its paired unwait into one waiting node;
3. aggregate processed Wait Graphs on common signature prefixes (a trie);
4. reduce non-optimizable portions: prune rooted ``waiting -> single
   hardware leaf`` structures, whose cost is direct hardware service that
   never propagated anywhere a developer could optimize.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import WaitGraphError
from repro.trace.binary import (
    KIND_HW_SERVICE,
    KIND_WAIT,
    ColumnarTraceStream,
)
from repro.trace.events import Event, EventKind
from repro.trace.signatures import HARDWARE_SIGNATURE, ComponentFilter
from repro.trace.stream import HARDWARE_PROCESS
from repro.waitgraph.graph import IndexedWaitGraph, WaitGraph

#: Node statuses (Definition 2).
WAITING = "waiting"
RUNNING = "running"
HARDWARE = "hardware"

NodeKey = Tuple[str, ...]


@dataclass
class AwgNode:
    """One aggregated node: a signature executing in one status."""

    status: str
    wait_sig: Optional[str] = None
    unwait_sig: Optional[str] = None
    run_sig: Optional[str] = None
    cost: int = 0
    count: int = 0
    max_single: int = 0
    children: Dict[NodeKey, "AwgNode"] = field(default_factory=dict)
    parent: Optional["AwgNode"] = None

    @property
    def key(self) -> NodeKey:
        if self.status == WAITING:
            return (WAITING, self.wait_sig or "", self.unwait_sig or "")
        return (self.status, self.run_sig or "")

    @property
    def mean_cost(self) -> float:
        """Average cost per occurrence (``v.C / v.N``)."""
        return self.cost / self.count if self.count else 0.0

    def add_occurrence(self, cost: int) -> None:
        self.cost += cost
        self.count += 1
        if cost > self.max_single:
            self.max_single = cost

    @property
    def label(self) -> str:
        """Human-readable node label (Figure 2 style)."""
        if self.status == WAITING:
            return f"{self.wait_sig} -> {self.unwait_sig}"
        if self.status == HARDWARE:
            return f"[hw] {self.run_sig}"
        return f"[run] {self.run_sig}"

    def walk(self) -> Iterator["AwgNode"]:
        """This node and all descendants, pre-order."""
        yield self
        for child in self.children.values():
            yield from child.walk()


class AggregatedWaitGraph:
    """The aggregation of many Wait Graphs of one contrast class."""

    def __init__(self, component_filter: ComponentFilter):
        self.component_filter = component_filter
        self.roots: Dict[NodeKey, AwgNode] = {}
        #: Aggregate cost removed by the non-optimizable reduction (step 4),
        #: i.e. direct hardware service under a rooted wait.
        self.reduced_hw_cost = 0
        self.reduced_hw_count = 0
        self.source_graphs = 0

    # -- queries -------------------------------------------------------------

    def nodes(self) -> Iterator[AwgNode]:
        for root in self.roots.values():
            yield from root.walk()

    def node_count(self) -> int:
        return sum(1 for _ in self.nodes())

    def leaves(self) -> Iterator[AwgNode]:
        for node in self.nodes():
            if not node.children:
                yield node

    def total_cost(self) -> int:
        """Summed cost of root nodes (top-level aggregated behaviour)."""
        return sum(root.cost for root in self.roots.values())

    # -- construction ----------------------------------------------------------

    def _signature_of(self, event: Event, stream) -> str:
        """The node signature of an event (Definition 2 preamble).

        The topmost component-related signature on the callstack when one
        exists; otherwise the innermost frame (irrelevant inner nodes keep
        their own identity); hardware events get the dummy signature.
        """
        if event.kind is EventKind.HW_SERVICE:
            return HARDWARE_SIGNATURE
        if stream.thread_info(event.tid).process == HARDWARE_PROCESS:
            return HARDWARE_SIGNATURE
        component = self.component_filter.component_signature(event.stack)
        if component is not None:
            return component
        return event.stack[-1] if event.stack else HARDWARE_SIGNATURE

    def _event_key(self, graph: WaitGraph, event: Event) -> NodeKey:
        stream = graph.instance.stream
        if event.kind is EventKind.WAIT:
            wait_sig = self._signature_of(event, stream)
            unwait = graph.unwait_of(event)
            if unwait is None:
                unwait_sig = wait_sig
            else:
                unwait_sig = self._signature_of(unwait, stream)
            return (WAITING, wait_sig, unwait_sig)
        if event.kind is EventKind.HW_SERVICE:
            return (HARDWARE, HARDWARE_SIGNATURE)
        return (RUNNING, self._signature_of(event, stream))

    def _node_for(
        self, key: NodeKey, table: Dict[NodeKey, AwgNode], parent: Optional[AwgNode]
    ) -> AwgNode:
        node = table.get(key)
        if node is None:
            if key[0] == WAITING:
                node = AwgNode(WAITING, wait_sig=key[1], unwait_sig=key[2])
            else:
                node = AwgNode(key[0], run_sig=key[1])
            node.parent = parent
            table[key] = node
        return node

    def add_graph(self, graph: WaitGraph) -> None:
        """Aggregate one Wait Graph (steps 1–3 of Algorithm 1).

        Indexed graphs over columnar streams take an array-backed path
        that reads the ``kind``/``cost``/``stack_id`` columns and a
        memoized per-stack-id signature table instead of materializing
        events; node keys, costs, counts and trie insertion order are
        identical to the object-based aggregation.
        """
        if isinstance(graph, IndexedWaitGraph) and isinstance(
            graph.instance.stream, ColumnarTraceStream
        ):
            self._add_graph_indexed(graph)
            return
        self.source_graphs += 1
        effective_roots = self._eliminate_irrelevant_roots(graph)
        for event in effective_roots:
            self._merge(graph, event, self.roots, None, on_path=frozenset())

    def _add_graph_indexed(self, graph: IndexedWaitGraph) -> None:
        """Column-index twin of steps 1–3 for columnar streams."""
        self.source_graphs += 1
        stream = graph.instance.stream
        matcher = stream.stack_matcher(self.component_filter)
        kinds = stream.kind_col
        stack_ids = stream.stack_id_col
        hardware_tids = stream.hardware_tids
        tids = stream.tid_col
        children_of = graph.children_indices

        # Step 1: eliminate irrelevant roots, promoting wait children.
        frontier = list(graph.root_indices)
        accepted: List[int] = []
        seen = set()
        while frontier:
            index = frontier.pop(0)
            if index in seen:
                continue
            seen.add(index)
            if matcher.matches(stack_ids[index]):
                accepted.append(index)
            elif kinds[index] == KIND_WAIT:
                frontier.extend(children_of.get(index, ()))

        def signature_of(index: int) -> str:
            if kinds[index] == KIND_HW_SERVICE or tids[index] in hardware_tids:
                return HARDWARE_SIGNATURE
            return matcher.node_signature(stack_ids[index])

        costs = stream.cost_col
        unwait_of = graph.unwait_indices

        def merge(
            index: int,
            table: Dict[NodeKey, AwgNode],
            parent: Optional[AwgNode],
            on_path: frozenset,
        ) -> None:
            if index in on_path:  # defensive: malformed cyclic input
                return
            kind = kinds[index]
            if kind == KIND_WAIT:
                wait_sig = signature_of(index)
                unwait = unwait_of.get(index)
                unwait_sig = (
                    wait_sig if unwait is None else signature_of(unwait)
                )
                key = (WAITING, wait_sig, unwait_sig)
            elif kind == KIND_HW_SERVICE:
                key = (HARDWARE, HARDWARE_SIGNATURE)
            else:
                key = (RUNNING, signature_of(index))
            node = self._node_for(key, table, parent)
            node.add_occurrence(costs[index])
            if kind == KIND_WAIT:
                for child in children_of.get(index, ()):
                    merge(child, node.children, node, on_path | {index})

        for index in accepted:
            merge(index, self.roots, None, frozenset())

    def _eliminate_irrelevant_roots(self, graph: WaitGraph) -> List[Event]:
        """Promote children of component-irrelevant roots until all match."""
        component = self.component_filter
        frontier = list(graph.roots)
        accepted: List[Event] = []
        seen = set()
        while frontier:
            event = frontier.pop(0)
            if event.seq in seen:
                continue
            seen.add(event.seq)
            if component.matches_stack(event.stack):
                accepted.append(event)
            elif event.kind is EventKind.WAIT:
                frontier.extend(graph.children(event))
            # Irrelevant running/hardware roots have no children: dropped.
        return accepted

    def _merge(
        self,
        graph: WaitGraph,
        event: Event,
        table: Dict[NodeKey, AwgNode],
        parent: Optional[AwgNode],
        on_path: frozenset,
    ) -> None:
        if event.seq in on_path:  # defensive: malformed cyclic input
            return
        key = self._event_key(graph, event)
        node = self._node_for(key, table, parent)
        node.add_occurrence(event.cost)
        if event.kind is EventKind.WAIT:
            for child in graph.children(event):
                self._merge(
                    graph, child, node.children, node, on_path | {event.seq}
                )

    def reduce_non_optimizable(self) -> int:
        """Step 4: prune rooted ``waiting -> single hw leaf`` structures.

        Returns the cost removed by this reduction (and accumulates it on
        :attr:`reduced_hw_cost` so callers can report the non-optimizable
        share, e.g. the paper's BrowserTabSwitch 66.6%).
        """
        removed = 0
        for key in list(self.roots):
            root = self.roots[key]
            if root.status != WAITING or len(root.children) != 1:
                continue
            (only_child,) = root.children.values()
            if only_child.status == HARDWARE and not only_child.children:
                removed += root.cost
                self.reduced_hw_count += root.count
                del self.roots[key]
        self.reduced_hw_cost += removed
        return removed


def aggregate_wait_graphs(
    graphs: Iterable[WaitGraph],
    component_filter: ComponentFilter,
    reduce_hw: bool = True,
) -> AggregatedWaitGraph:
    """Run Algorithm 1 over a set of Wait Graphs."""
    awg = AggregatedWaitGraph(component_filter)
    for graph in graphs:
        awg.add_graph(graph)
    if reduce_hw:
        awg.reduce_non_optimizable()
    return awg


def _merge_node(
    source: AwgNode, table: Dict[NodeKey, AwgNode], parent: Optional[AwgNode]
) -> None:
    key = source.key
    node = table.get(key)
    if node is None:
        if key[0] == WAITING:
            node = AwgNode(WAITING, wait_sig=key[1], unwait_sig=key[2])
        else:
            node = AwgNode(key[0], run_sig=key[1])
        node.parent = parent
        table[key] = node
    node.cost += source.cost
    node.count += source.count
    if source.max_single > node.max_single:
        node.max_single = source.max_single
    for child in source.children.values():
        _merge_node(child, node.children, node)


def merge_awgs(
    awgs: Iterable[AggregatedWaitGraph],
    reduce_hw: bool = False,
) -> AggregatedWaitGraph:
    """Union partial AWGs into one (the reduce step of a map–reduce run).

    Node tries are unioned on their signature keys: matching nodes sum
    ``C`` and ``N`` and keep the maximum single-occurrence cost, while
    the ``reduced_hw_*`` accounting and ``source_graphs`` simply add up.
    The merge is deterministic — inputs are folded in iteration order, so
    node insertion order (and therefore trie traversal order) equals a
    single-pass :func:`aggregate_wait_graphs` over the concatenated graph
    lists when the partials cover contiguous, in-order chunks.

    Partials must be built with ``reduce_hw=False``: Algorithm 1's step 4
    inspects complete root structures, so the reduction is only valid on
    the merged graph.  Pass ``reduce_hw=True`` here to apply it once at
    the end.
    """
    awgs = list(awgs)
    if not awgs:
        raise WaitGraphError("merge_awgs needs at least one partial AWG")
    patterns = awgs[0].component_filter.patterns
    for other in awgs[1:]:
        if other.component_filter.patterns != patterns:
            raise WaitGraphError(
                "cannot merge AWGs built with different component filters: "
                f"{patterns!r} vs {other.component_filter.patterns!r}"
            )
    merged = AggregatedWaitGraph(awgs[0].component_filter)
    for partial in awgs:
        merged.source_graphs += partial.source_graphs
        merged.reduced_hw_cost += partial.reduced_hw_cost
        merged.reduced_hw_count += partial.reduced_hw_count
        for root in partial.roots.values():
            _merge_node(root, merged.roots, None)
    if reduce_hw:
        merged.reduce_non_optimizable()
    return merged
