"""ASCII table rendering for analysis reports and benchmark output.

The benchmark harness regenerates every table of the paper; this module
renders them readably in a terminal, with the same kind of column layout
the paper uses (scenario rows, percentage cells).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.units import format_duration


def fmt_pct(value: float, digits: int = 1) -> str:
    """Format a ratio as a percentage string (``0.364 -> '36.4%'``)."""
    return f"{value * 100:.{digits}f}%"


def fmt_us(value: int) -> str:
    """Format a microsecond duration human-readably."""
    return format_duration(value)


def fmt_ratio(value: float, digits: int = 2) -> str:
    """Format a plain ratio (``3.5 -> '3.50'``)."""
    return f"{value:.{digits}f}"


class Table:
    """A minimal aligned ASCII table."""

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = [str(header) for header in headers]
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} "
                "columns"
            )
        self.rows.append([str(cell) for cell in cells])

    def add_separator(self) -> None:
        self.rows.append(["---"] * len(self.headers))

    def render(self) -> str:
        widths = [len(header) for header in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def render_line(cells: Iterable[str]) -> str:
            return "  ".join(
                cell.ljust(width) for cell, width in zip(cells, widths)
            ).rstrip()

        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(render_line(self.headers))
        lines.append(render_line("-" * width for width in widths))
        for row in self.rows:
            if row[0] == "---":
                lines.append(render_line("-" * width for width in widths))
            else:
                lines.append(render_line(row))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
