"""End-to-end causality analysis (paper §4).

Given the instances of one scenario, its performance thresholds and the
chosen component names, :class:`CausalityAnalysis` runs the full
pipeline — contrast classification, Wait Graph construction, Aggregated
Wait Graph construction (Algorithm 1), meta-pattern enumeration, contrast
discovery and contrast-pattern extraction — and packages everything a
performance analyst needs into a :class:`CausalityReport`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.causality.classes import ContrastClasses, classify_instances
from repro.causality.mining import (
    ContrastCriteria,
    ContrastPattern,
    DEFAULT_SEGMENT_BOUND,
    MetaPatterns,
    discover_contrast_meta_patterns,
    enumerate_meta_patterns,
    extract_contrast_patterns,
)
from repro.causality.ranking import rank_patterns
from repro.causality.sst import SignatureSetTuple
from repro.errors import AnalysisError
from repro.trace.signatures import ComponentFilter
from repro.trace.stream import ScenarioInstance
from repro.waitgraph.aggregate import AggregatedWaitGraph, aggregate_wait_graphs
from repro.waitgraph.builder import build_wait_graph
from repro.waitgraph.graph import WaitGraph


@dataclass
class CausalityReport:
    """Everything causality analysis produces for one scenario."""

    scenario: str
    t_fast: int
    t_slow: int
    classes: ContrastClasses
    slow_awg: AggregatedWaitGraph
    fast_awg: AggregatedWaitGraph
    slow_meta_patterns: MetaPatterns
    fast_meta_patterns: MetaPatterns
    contrast_metas: Dict[SignatureSetTuple, ContrastCriteria]
    patterns: List[ContrastPattern]  # ranked, highest impact first

    @property
    def pattern_count(self) -> int:
        return len(self.patterns)

    def high_impact_patterns(self) -> List[ContrastPattern]:
        """Patterns passing the §5.2.1 automated high-impact rule."""
        return [p for p in self.patterns if p.is_high_impact(self.t_slow)]

    def top(self, count: int) -> List[ContrastPattern]:
        """The top-``count`` patterns by impact."""
        return self.patterns[:count]

    def summary(self) -> str:
        high = len(self.high_impact_patterns())
        return (
            f"{self.scenario}: {self.classes.summary()}; "
            f"{self.pattern_count} contrast patterns "
            f"({high} high-impact), "
            f"{len(self.contrast_metas)} contrast meta-patterns, "
            f"slow AWG nodes={self.slow_awg.node_count()}, "
            f"reduced hw cost={self.slow_awg.reduced_hw_cost}"
        )


class CausalityAnalysis:
    """Configurable causality-analysis pipeline.

    Parameters
    ----------
    component_patterns:
        Chosen component names (``["*.sys"]`` for all device drivers).
    segment_bound:
        Maximum path-segment length ``k`` for meta-pattern enumeration
        (the paper uses 5 throughout its evaluation).
    reduce_hw:
        Whether Algorithm 1's non-optimizable reduction runs (ablation
        hook; the paper always reduces).
    """

    def __init__(
        self,
        component_patterns: Sequence[str],
        segment_bound: int = DEFAULT_SEGMENT_BOUND,
        reduce_hw: bool = True,
    ):
        if segment_bound < 1:
            raise AnalysisError("segment_bound must be >= 1")
        self.component_filter = ComponentFilter(component_patterns)
        self.segment_bound = segment_bound
        self.reduce_hw = reduce_hw

    def _graphs(
        self,
        instances: Iterable[ScenarioInstance],
        prebuilt: Optional[Dict[tuple, WaitGraph]] = None,
    ) -> List[WaitGraph]:
        graphs = []
        for instance in instances:
            if prebuilt is not None and instance.key in prebuilt:
                graphs.append(prebuilt[instance.key])
            else:
                graph = build_wait_graph(instance)
                if prebuilt is not None:
                    prebuilt[instance.key] = graph
                graphs.append(graph)
        return graphs

    def analyze(
        self,
        instances: Iterable[ScenarioInstance],
        t_fast: int,
        t_slow: int,
        scenario: str = "",
        graph_cache: Optional[Dict[tuple, WaitGraph]] = None,
    ) -> CausalityReport:
        """Run the full pipeline over one scenario's instances."""
        instances = list(instances)
        if not instances:
            raise AnalysisError("causality analysis needs instances")
        name = scenario or instances[0].scenario
        classes = classify_instances(instances, t_fast, t_slow, scenario=name)

        fast_graphs = self._graphs(classes.fast, graph_cache)
        slow_graphs = self._graphs(classes.slow, graph_cache)
        fast_awg = aggregate_wait_graphs(
            fast_graphs, self.component_filter, reduce_hw=self.reduce_hw
        )
        slow_awg = aggregate_wait_graphs(
            slow_graphs, self.component_filter, reduce_hw=self.reduce_hw
        )

        return assemble_report(
            scenario=name,
            t_fast=t_fast,
            t_slow=t_slow,
            classes=classes,
            fast_awg=fast_awg,
            slow_awg=slow_awg,
            segment_bound=self.segment_bound,
        )


def assemble_report(
    scenario: str,
    t_fast: int,
    t_slow: int,
    classes: ContrastClasses,
    fast_awg: AggregatedWaitGraph,
    slow_awg: AggregatedWaitGraph,
    segment_bound: int = DEFAULT_SEGMENT_BOUND,
) -> CausalityReport:
    """Mine contrast patterns from built AWGs and package the report.

    The back half of the causality pipeline — meta-pattern enumeration,
    contrast discovery, contrast-pattern extraction, ranking — separated
    from graph construction so the map–reduce pipeline can run it over
    AWGs merged from per-chunk partials.  The output is a pure function
    of the AWGs and thresholds, which is what makes chunked and
    single-pass aggregation produce identical reports.
    """
    slow_metas = enumerate_meta_patterns(slow_awg, segment_bound)
    fast_metas = enumerate_meta_patterns(fast_awg, segment_bound)
    contrast_metas = discover_contrast_meta_patterns(
        slow_metas, fast_metas, t_fast=t_fast, t_slow=t_slow
    )
    patterns = rank_patterns(
        extract_contrast_patterns(slow_awg, contrast_metas)
    )
    return CausalityReport(
        scenario=scenario,
        t_fast=t_fast,
        t_slow=t_slow,
        classes=classes,
        slow_awg=slow_awg,
        fast_awg=fast_awg,
        slow_meta_patterns=slow_metas,
        fast_meta_patterns=fast_metas,
        contrast_metas=contrast_metas,
        patterns=patterns,
    )
