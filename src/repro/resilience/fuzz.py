"""Deterministic trace-corpus fault injection.

The hostile-corpus property the resilience layer promises — *a damaged
corpus never aborts a run, never crashes a worker pool for good, and
yields exactly the analysis of its surviving traces* — is only worth
stating if it is exercised.  This module is the exerciser: a small set
of seeded corruptors over trace files (JSONL and RTB alike) plus
:func:`fuzz_corpus`, which damages a deterministic subset of a corpus
directory in place.

Everything is driven by ``random.Random(seed)`` — same seed, same
victims, same damage, byte for byte — so the fuzz property tests and the
hostile-corpus CI gate are reproducible, and a failure seed can be
replayed locally with ``repro corpus fuzz --seed N``.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

Corruptor = Callable[[bytes, random.Random], bytes]


def truncate(data: bytes, rng: random.Random) -> bytes:
    """Cut the file at a random point — the classic interrupted capture."""
    if len(data) <= 1:
        return b""
    return data[: rng.randrange(1, len(data))]


def bit_flip(data: bytes, rng: random.Random) -> bytes:
    """Flip 1–8 random bits — storage rot, bad transfers."""
    if not data:
        return data
    out = bytearray(data)
    for _ in range(rng.randint(1, 8)):
        position = rng.randrange(len(out))
        out[position] ^= 1 << rng.randrange(8)
    return bytes(out)


def mangle_section(data: bytes, rng: random.Random) -> bytes:
    """Overwrite one contiguous run with random bytes.

    On an RTB file this lands in the meta block or a column section
    (hence the name); on JSONL it shreds a run of lines.  Either way it
    models a partially overwritten file.
    """
    if not data:
        return data
    start = rng.randrange(len(data))
    length = min(len(data) - start, rng.randint(1, 256))
    out = bytearray(data)
    out[start : start + length] = bytes(
        rng.randrange(256) for _ in range(length)
    )
    return bytes(out)


def duplicate_line(data: bytes, rng: random.Random) -> bytes:
    """Duplicate one line — a re-played writer, a botched append."""
    lines = data.split(b"\n")
    if len(lines) < 2:
        return data
    index = rng.randrange(len(lines) - 1)
    lines.insert(index, lines[index])
    return b"\n".join(lines)


def reorder_lines(data: bytes, rng: random.Random) -> bytes:
    """Swap two lines — out-of-order flushes from a multi-writer capture."""
    lines = data.split(b"\n")
    if len(lines) < 3:
        return data
    first = rng.randrange(len(lines) - 1)
    second = rng.randrange(len(lines) - 1)
    lines[first], lines[second] = lines[second], lines[first]
    return b"\n".join(lines)


def zero_length(data: bytes, rng: random.Random) -> bytes:
    """Replace the file with nothing — a crashed writer's empty temp file."""
    return b""


#: Name → corruptor registry, in deterministic iteration order.  The CLI
#: (``repro corpus fuzz --corruptor``) and the property tests iterate
#: this table; adding a corruptor here automatically widens both.
CORRUPTORS: Dict[str, Corruptor] = {
    "truncate": truncate,
    "bit-flip": bit_flip,
    "mangle-section": mangle_section,
    "duplicate-line": duplicate_line,
    "reorder-lines": reorder_lines,
    "zero-length": zero_length,
}


@dataclass(frozen=True)
class FuzzRecord:
    """What :func:`fuzz_corpus` did to one file (for replay and gating)."""

    path: str
    corruptor: str
    seed: int

    def to_json(self) -> Dict[str, object]:
        return {"path": self.path, "corruptor": self.corruptor, "seed": self.seed}


def resolve_corruptors(names: Optional[Sequence[str]]) -> List[str]:
    """Validate corruptor names against the registry (``None`` = all)."""
    if names is None:
        return list(CORRUPTORS)
    for name in names:
        if name not in CORRUPTORS:
            raise ConfigError(
                f"--corruptor must be one of {', '.join(CORRUPTORS)}, "
                f"got {name!r}"
            )
    return list(names)


def corrupt_bytes(data: bytes, corruptor: str, seed: int) -> bytes:
    """Apply one named corruptor deterministically to a byte string."""
    names = resolve_corruptors([corruptor])
    return CORRUPTORS[names[0]](data, random.Random(seed))


def corrupt_file(
    path: Union[str, os.PathLike],
    corruptor: str,
    seed: int,
    destination: Optional[Union[str, os.PathLike]] = None,
) -> FuzzRecord:
    """Corrupt one trace file (in place unless ``destination`` is given)."""
    source = os.fspath(path)
    with open(source, "rb") as handle:
        data = handle.read()
    damaged = corrupt_bytes(data, corruptor, seed)
    target = os.fspath(destination) if destination is not None else source
    with open(target, "wb") as handle:
        handle.write(damaged)
    return FuzzRecord(path=target, corruptor=corruptor, seed=seed)


def fuzz_corpus(
    directory: Union[str, os.PathLike],
    seed: int,
    fraction: float = 0.5,
    corruptors: Optional[Sequence[str]] = None,
) -> List[FuzzRecord]:
    """Damage a deterministic subset of a corpus directory, in place.

    ``fraction`` of the corpus files (at least one, when any exist) are
    picked by a ``random.Random(seed)`` draw over the corpus-ordered
    path list, and each victim gets one corruptor from ``corruptors``
    (default: the whole registry) with a per-file derived seed.  The
    same ``(corpus, seed, fraction, corruptors)`` always yields the same
    damaged bytes — that is what lets the CI gate pin expected
    ``RunHealth`` counts.

    This **mutates the corpus**; fuzz a copy, not your only one.
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(
            f"--fraction must be in (0, 1], got {fraction}"
        )
    from repro.trace.serialization import iter_corpus_paths

    names = resolve_corruptors(corruptors)
    paths = iter_corpus_paths(directory)
    if not paths:
        return []
    rng = random.Random(seed)
    count = max(1, round(fraction * len(paths)))
    victims = sorted(rng.sample(range(len(paths)), count))
    records: List[FuzzRecord] = []
    for index in victims:
        corruptor = names[rng.randrange(len(names))]
        file_seed = rng.randrange(1 << 30)
        records.append(
            corrupt_file(paths[index], corruptor, file_seed)
        )
    return records
