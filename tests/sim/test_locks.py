"""Tests for the synchronization primitive state containers."""

from repro.sim.locks import Lock, Mailbox, SimEvent


class TestLock:
    def test_initial_state(self):
        lock = Lock("L")
        assert lock.holder is None
        assert not lock.contended

    def test_contended_reflects_waiters(self):
        lock = Lock("L")
        lock.waiters.append(object())
        assert lock.contended


class TestSimEvent:
    def test_initial_state(self):
        event = SimEvent("E")
        assert not event.fired
        assert event.value is None

    def test_fire_stores_value(self):
        event = SimEvent("E")
        event.fire({"answer": 42})
        assert event.fired
        assert event.value == {"answer": 42}


class TestMailbox:
    def test_len(self):
        mailbox = Mailbox("M")
        assert len(mailbox) == 0
        mailbox.items.append("x")
        assert len(mailbox) == 1

    def test_repr_mentions_name(self):
        assert "M" in repr(Mailbox("M"))
