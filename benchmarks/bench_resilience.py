"""Resilience benchmarks: fault-isolation overhead and hostile-corpus runs.

Two questions decide whether ``--on-error skip`` can be the default for
continuous-monitoring deployments:

* **overhead** — on a clean corpus, how much slower is the resilient
  executor (future-per-chunk, crash detection armed) than the plain
  ``Pool.map`` fan-out?  Output must stay byte-identical.
* **hostile throughput** — on a fuzzed corpus, what does a skip/salvage
  run cost relative to the clean strict run, and how much of the corpus
  survives?

Corpus size follows ``REPRO_BENCH_RESILIENCE_STREAMS`` (default 24).
Ratios are printed, not asserted — wall-clock depends on the host —
except determinism: the skip-mode result over a fuzzed corpus must equal
the strict analysis of its surviving traces.
"""

import os
import shutil
import time

import pytest

from benchmarks.conftest import BENCH_SEED, print_banner
from repro.pipeline import parallel_study
from repro.report.markdown import study_to_markdown
from repro.resilience import RunHealth, fuzz_corpus
from repro.sim.corpus import CorpusConfig, generate_corpus
from repro.trace.serialization import dump_corpus, iter_corpus_paths

RESILIENCE_STREAMS = int(
    os.environ.get("REPRO_BENCH_RESILIENCE_STREAMS", "24")
)
WORKER_COUNTS = (1, 2, 4)
FUZZ_SEED = 20140301


@pytest.fixture(scope="module")
def clean_corpus_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench-resilience-corpus")
    corpus = generate_corpus(
        CorpusConfig(streams=RESILIENCE_STREAMS, seed=BENCH_SEED)
    )
    dump_corpus(corpus, directory)
    return directory


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def test_bench_resilient_executor_overhead(clean_corpus_dir):
    """Plain vs resilient fan-out on a clean corpus, same output."""
    paths = iter_corpus_paths(clean_corpus_dir)
    rows = []
    baseline = None
    for workers in WORKER_COUNTS:
        strict_md, strict = _timed(
            lambda: study_to_markdown(parallel_study(paths, workers=workers))
        )
        if baseline is None:
            baseline = strict_md
        assert strict_md == baseline
        health = RunHealth()
        skip_md, skip = _timed(
            lambda: study_to_markdown(
                parallel_study(
                    paths, workers=workers, on_error="skip", health=health
                )
            )
        )
        assert skip_md == baseline
        assert health.analyzed == len(paths)
        assert health.ok
        rows.append((workers, strict, skip))

    print_banner(
        f"Resilience - clean-corpus overhead ({RESILIENCE_STREAMS} streams)"
    )
    print(f"{'workers':>7}  {'strict s':>8}  {'skip s':>8}  {'overhead':>8}")
    for workers, strict, skip, in rows:
        print(
            f"{workers:>7}  {strict:>8.2f}  {skip:>8.2f}  "
            f"{(skip / strict - 1.0):>7.1%}"
        )


def test_bench_hostile_corpus_runs(clean_corpus_dir, tmp_path_factory):
    """Skip/salvage study of a fuzzed corpus vs its survivor baseline."""
    hostile_dir = tmp_path_factory.mktemp("bench-resilience-hostile")
    for path in iter_corpus_paths(clean_corpus_dir):
        shutil.copy2(path, hostile_dir)
    records = fuzz_corpus(hostile_dir, seed=FUZZ_SEED, fraction=0.5)
    paths = iter_corpus_paths(hostile_dir)

    rows = []
    skip_md = None
    for policy in ("skip", "salvage"):
        health = RunHealth()
        markdown, elapsed = _timed(
            lambda: study_to_markdown(
                parallel_study(
                    paths, workers=2, on_error=policy, health=health
                )
            )
        )
        if policy == "skip":
            skip_md = markdown
        assert health.analyzed + health.skipped == len(paths)
        assert health.quarantined == 0
        rows.append((policy, elapsed, health))

    # Determinism: the skip-mode study equals the strict study of the
    # traces skip-mode kept (salvage may keep more, so only skip is
    # checked against a strict baseline).
    skip_health = rows[0][2]
    skipped_sources = {failure.source for failure in skip_health.failures}
    survivors = [path for path in paths if path not in skipped_sources]
    assert study_to_markdown(parallel_study(survivors, workers=2)) == skip_md

    print_banner(
        f"Resilience - hostile corpus ({len(records)} of {len(paths)} "
        f"files fuzzed, seed {FUZZ_SEED})"
    )
    print(f"{'policy':>8}  {'seconds':>8}  {'analyzed':>8}  "
          f"{'skipped':>7}  {'salvaged':>8}")
    for policy, elapsed, health in rows:
        print(
            f"{policy:>8}  {elapsed:>8.2f}  {health.analyzed:>8}  "
            f"{health.skipped:>7}  {health.salvaged:>8}"
        )
