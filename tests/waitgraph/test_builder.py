"""Tests for Wait Graph construction edge cases."""

import pytest

from repro.errors import WaitGraphError
from repro.trace.events import EventKind
from repro.trace.stream import ThreadInfo
from repro.waitgraph.builder import build_wait_graph, build_wait_graphs
from tests.conftest import make_event, make_stream


class TestPairing:
    def test_missing_unwait_leaves_wait_as_leaf(self):
        stream = make_stream(events=[
            make_event(EventKind.WAIT, timestamp=0, cost=100, tid=1),
        ])
        instance = stream.add_instance("S", tid=1, t0=0, t1=100)
        graph = build_wait_graph(instance)
        assert graph.children(graph.roots[0]) == []
        assert graph.unwait_of(graph.roots[0]) is None

    def test_missing_unwait_strict_raises(self):
        stream = make_stream(events=[
            make_event(EventKind.WAIT, timestamp=0, cost=100, tid=1),
        ])
        instance = stream.add_instance("S", tid=1, t0=0, t1=100)
        with pytest.raises(WaitGraphError, match="no matching unwait"):
            build_wait_graph(instance, strict=True)

    def test_unwait_must_match_exact_end(self):
        stream = make_stream(events=[
            make_event(EventKind.WAIT, timestamp=0, cost=100, tid=1),
            make_event(EventKind.UNWAIT, timestamp=99, cost=0, tid=2, wtid=1),
        ])
        instance = stream.add_instance("S", tid=1, t0=0, t1=100)
        graph = build_wait_graph(instance)
        assert graph.unwait_of(graph.roots[0]) is None


class TestHardwareAttachment:
    def test_only_matching_hw_service_attached(self):
        """Two disk services in the window; only the one completing at the
        wait's end (the IRP-correlated one) becomes the child."""
        threads = [ThreadInfo(3, "Hardware", "Disk")]
        events = [
            make_event(EventKind.WAIT, timestamp=0, cost=1_000, tid=1),
            # An unrelated service fully inside the window.
            make_event(EventKind.HW_SERVICE, (), timestamp=100, cost=200, tid=3),
            # The service resolving this wait.
            make_event(EventKind.HW_SERVICE, (), timestamp=300, cost=700, tid=3),
            make_event(EventKind.UNWAIT, ("Hardware!DiskService",),
                       timestamp=1_000, cost=0, tid=3, wtid=1),
        ]
        stream = make_stream(events=events, threads=threads)
        instance = stream.add_instance("S", tid=1, t0=0, t1=1_000)
        graph = build_wait_graph(instance)
        children = graph.children(graph.roots[0])
        assert len(children) == 1
        assert children[0].cost == 700


class TestWindowing:
    def test_child_wait_starting_before_window_included(self):
        """The unwaiter was already waiting before the root wait began."""
        events = [
            # Thread 2 waits from t=0 to t=500 on thread 3.
            make_event(EventKind.WAIT, timestamp=0, cost=500, tid=2),
            # Thread 1 blocks at t=100 on thread 2.
            make_event(EventKind.WAIT, timestamp=100, cost=500, tid=1),
            make_event(EventKind.UNWAIT, timestamp=500, cost=0, tid=3, wtid=2),
            make_event(EventKind.UNWAIT, timestamp=600, cost=0, tid=2, wtid=1),
        ]
        stream = make_stream(events=events)
        instance = stream.add_instance("S", tid=1, t0=0, t1=700)
        graph = build_wait_graph(instance)
        root_wait = graph.roots[0]
        child_kinds = [event.kind for event in graph.children(root_wait)]
        assert EventKind.WAIT in child_kinds

    def test_roots_restricted_to_instance_window(self):
        events = [
            make_event(EventKind.RUNNING, timestamp=0, cost=100, tid=1),
            make_event(EventKind.RUNNING, timestamp=10_000, cost=100, tid=1),
        ]
        stream = make_stream(events=events)
        instance = stream.add_instance("S", tid=1, t0=0, t1=1_000)
        graph = build_wait_graph(instance)
        assert len(graph.roots) == 1

    def test_build_wait_graphs_plural(self, propagation_stream):
        graphs = build_wait_graphs(propagation_stream.instances)
        assert len(graphs) == 1


class TestOnSimulatedTraces:
    def test_every_instance_builds(self, small_corpus):
        for stream in small_corpus:
            for instance in stream.instances:
                graph = build_wait_graph(instance)
                assert graph.top_level_duration >= 0
                # DAG traversal terminates and visits each node once.
                assert graph.node_count() >= len(graph.roots)

    def test_graphs_contain_cross_thread_children(self, small_corpus):
        found_cross_thread = False
        for stream in small_corpus:
            for instance in stream.instances:
                graph = build_wait_graph(instance)
                for event in graph.wait_events():
                    for child in graph.children(event):
                        if child.tid != instance.tid:
                            found_cross_thread = True
        assert found_cross_thread
