"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    subclasses = [
        errors.TraceError,
        errors.TraceValidationError,
        errors.SerializationError,
        errors.SimulationError,
        errors.DeadlockError,
        errors.WaitGraphError,
        errors.AnalysisError,
        errors.ConfigError,
    ]
    for cls in subclasses:
        assert issubclass(cls, errors.ReproError)


def test_specializations():
    assert issubclass(errors.TraceValidationError, errors.TraceError)
    assert issubclass(errors.SerializationError, errors.TraceError)
    assert issubclass(errors.DeadlockError, errors.SimulationError)


def test_catchable_as_base():
    with pytest.raises(errors.ReproError):
        raise errors.DeadlockError("stuck")
