"""Artifact-store benchmarks: cold vs. warm vs. incremental study runs.

The store's reason to exist is the continuous-monitoring workload: the
corpus grows a little, the analysis re-runs in full.  These benches
time `parallel_study` over the same corpus

* **cold**  — empty store, every per-trace partial computed and written;
* **warm**  — every partial served from the store;
* **+10% new** — the corpus grown by ~10% new streams, so only the new
  traces are computed (the warm majority is served);

at the same 1/2/4 worker counts the storeless scaling benches use, and
always assert the rendered study tables are byte-identical to the
storeless run.  Corpus size follows ``REPRO_BENCH_PARALLEL_STREAMS``
(default 40, like ``bench_pipeline_perf``).
"""

import os
import shutil
import time

import pytest

from benchmarks.conftest import BENCH_SEED, print_banner
from repro.pipeline import open_store, parallel_study
from repro.report.markdown import study_to_markdown
from repro.sim.corpus import CorpusConfig, generate_corpus
from repro.trace.serialization import dump_corpus, iter_corpus_paths

STORE_STREAMS = int(os.environ.get("REPRO_BENCH_PARALLEL_STREAMS", "40"))
GROWN_STREAMS = STORE_STREAMS + max(1, STORE_STREAMS // 10)
WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def store_corpus_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench-store-corpus")
    corpus = generate_corpus(
        CorpusConfig(streams=STORE_STREAMS, seed=BENCH_SEED)
    )
    dump_corpus(corpus, directory)
    return directory


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def test_bench_store_cold_warm_incremental(store_corpus_dir, tmp_path_factory):
    """Cold/warm/+10%-new study timings next to the worker-scaling axis.

    Ratios are printed, not asserted — wall-clock depends on the host —
    except determinism: every store-backed run must render the exact
    tables of the storeless run over the same corpus.
    """
    paths = iter_corpus_paths(store_corpus_dir)
    baseline, storeless_elapsed = _timed(
        lambda: study_to_markdown(parallel_study(paths))
    )

    rows = []
    store_dirs = {}
    for workers in WORKER_COUNTS:
        store_dir = tmp_path_factory.mktemp(f"bench-store-w{workers}")
        store_dirs[workers] = store_dir

        cold_handle = open_store(store_dir)
        cold_md, cold = _timed(
            lambda: study_to_markdown(
                parallel_study(paths, workers=workers, store=cold_handle)
            )
        )
        assert cold_md == baseline
        assert cold_handle.misses == len(paths)

        warm_handle = open_store(store_dir)
        warm_md, warm = _timed(
            lambda: study_to_markdown(
                parallel_study(paths, workers=workers, store=warm_handle)
            )
        )
        assert warm_md == baseline
        assert warm_handle.hits == len(paths)
        rows.append((workers, cold, warm))

    print_banner(
        f"Store - cold vs warm study ({STORE_STREAMS} streams; "
        f"storeless {storeless_elapsed:.2f}s)"
    )
    print(f"{'workers':>7}  {'cold s':>8}  {'warm s':>8}  {'speedup':>7}")
    for workers, cold, warm in rows:
        print(f"{workers:>7}  {cold:>8.2f}  {warm:>8.2f}  {cold / warm:>6.1f}x")

    # Grow the corpus ~10%: dump_corpus skips the unchanged files, so
    # existing entries stay warm and only the new streams compute.
    grown_dir = tmp_path_factory.mktemp("bench-store-grown")
    for path in paths:
        shutil.copy2(path, grown_dir)
    grown = generate_corpus(
        CorpusConfig(streams=GROWN_STREAMS, seed=BENCH_SEED)
    )
    dump_corpus(grown, grown_dir)
    grown_paths = iter_corpus_paths(grown_dir)
    assert len(grown_paths) == GROWN_STREAMS

    grown_baseline = study_to_markdown(parallel_study(grown_paths))
    incremental_rows = []
    for workers in WORKER_COUNTS:
        handle = open_store(store_dirs[workers])
        grown_md, elapsed = _timed(
            lambda: study_to_markdown(
                parallel_study(grown_paths, workers=workers, store=handle)
            )
        )
        assert grown_md == grown_baseline
        assert handle.hits == STORE_STREAMS
        assert handle.misses == GROWN_STREAMS - STORE_STREAMS
        incremental_rows.append((workers, elapsed, handle.hit_rate))

    print_banner(
        f"Store - +10% new traces ({STORE_STREAMS} -> {GROWN_STREAMS} streams)"
    )
    print(f"{'workers':>7}  {'seconds':>8}  {'hit rate':>8}")
    for workers, elapsed, hit_rate in incremental_rows:
        print(f"{workers:>7}  {elapsed:>8.2f}  {hit_rate:>7.0%}")
