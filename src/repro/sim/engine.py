"""Generator-coroutine discrete-event simulation engine.

Simulated threads are Python generators that ``yield`` request objects
(:class:`Compute`, :class:`Acquire`, :class:`Release`,
:class:`HardwareIO`, :class:`Delay`, :class:`WaitFor`, :class:`Fire`,
:class:`Spawn`); the :class:`Engine` advances virtual time (integer
microseconds) with a heap-based event queue and dispatches each request.
Every state transition that ETW would observe is reported to a tracer
(:mod:`repro.sim.tracer`): CPU execution, blocking, waking, hardware
service.

The engine is deliberately kernel-agnostic: locks, devices and thread
programs are supplied by :mod:`repro.sim.machine` and the workload modules.
"""

from __future__ import annotations

import heapq
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.locks import Lock, Mailbox, SimEvent
from repro.sim.sched import FifoPolicy, SchedulerPolicy
from repro.trace.signatures import make_signature
from repro.trace.stream import ThreadInfo

Program = Callable[["ThreadContext"], Generator]

# ---------------------------------------------------------------------------
# Requests a thread program may yield
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Compute:
    """Occupy a CPU core for ``duration`` microseconds (non-preemptive)."""

    duration: int


@dataclass(frozen=True, slots=True)
class Acquire:
    """Acquire a kernel lock, blocking FIFO if it is held."""

    lock: Lock


@dataclass(frozen=True, slots=True)
class Release:
    """Release a held kernel lock, waking the next FIFO waiter if any."""

    lock: Lock


@dataclass(frozen=True, slots=True)
class HardwareIO:
    """Submit a hardware request and block until the device completes it."""

    device: "DevicePort"
    duration: int


@dataclass(frozen=True, slots=True)
class Delay:
    """Leave the thread idle (not waiting on anything traceable)."""

    duration: int


@dataclass(frozen=True, slots=True)
class WaitFor:
    """Block until a one-shot :class:`SimEvent` fires; returns its value."""

    event: SimEvent


@dataclass(frozen=True, slots=True)
class Fire:
    """Fire a one-shot :class:`SimEvent`, waking every waiter."""

    event: SimEvent
    value: Any = None


@dataclass(frozen=True, slots=True)
class Post:
    """Append an item to a mailbox, waking a blocked taker if any."""

    mailbox: Mailbox
    item: Any


@dataclass(frozen=True, slots=True)
class Take:
    """Take the next item from a mailbox, blocking FIFO when empty."""

    mailbox: Mailbox


@dataclass(frozen=True, slots=True)
class Spawn:
    """Create a new thread running ``program``; returns its SimThread."""

    info: ThreadInfo
    program: Program


class DevicePort:
    """Interface the engine expects from a hardware device model.

    Concrete devices live in :mod:`repro.sim.devices`.  ``service_window``
    answers, for a request submitted *now* with the given service duration,
    the ``(service_start, service_end)`` interval after queueing.
    """

    name: str
    pseudo_tid: int
    completion_stack: Tuple[str, ...]

    def service_window(self, now: int, duration: int) -> Tuple[int, int]:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Threads
# ---------------------------------------------------------------------------

_NEW = "new"
_RUNNABLE = "runnable"
_RUNNING = "running"
_BLOCKED = "blocked"
_IDLE = "idle"
_DONE = "done"


class SimThread:
    """One simulated thread: identity, callstack, generator, block state."""

    __slots__ = (
        "info",
        "gen",
        "stack",
        "state",
        "block_start",
        "block_resource",
        "context",
    )

    def __init__(self, info: ThreadInfo, context: "ThreadContext"):
        self.info = info
        self.gen: Optional[Generator] = None
        self.stack: List[str] = []
        self.state = _NEW
        self.block_start: Optional[int] = None
        self.block_resource: Optional[str] = None
        self.context = context

    @property
    def tid(self) -> int:
        return self.info.tid

    def stack_tuple(self) -> Tuple[str, ...]:
        return tuple(self.stack)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimThread({self.info.label}, tid={self.tid}, {self.state})"


class ThreadContext:
    """Helpers a thread program uses to interact with the simulated kernel.

    All helpers that can advance virtual time are generator functions and
    must be delegated to with ``yield from``.
    """

    def __init__(self, engine: "Engine", thread: Optional[SimThread] = None):
        self.engine = engine
        self.thread = thread  # filled in by Engine.spawn

    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self.engine.now

    @property
    def rng(self):
        """The engine-wide random generator (seeded, deterministic)."""
        return self.engine.rng

    @contextmanager
    def frame(self, signature: str):
        """Push a callstack frame for the duration of the ``with`` block."""
        assert self.thread is not None
        self.thread.stack.append(signature)
        try:
            yield
        finally:
            self.thread.stack.pop()

    # -- generator helpers -------------------------------------------------

    def compute(self, duration: int) -> Generator:
        """Burn CPU for ``duration`` microseconds."""
        if duration > 0:
            yield Compute(duration)

    def acquire(self, lock: Lock) -> Generator:
        """Acquire a lock through the kernel's lock-wait path."""
        with self.frame(make_signature("kernel", "AcquireLock")):
            yield Acquire(lock)

    def release(self, lock: Lock) -> Generator:
        """Release a lock, signalling the next FIFO waiter."""
        with self.frame(make_signature("kernel", "ReleaseLock")):
            yield Release(lock)

    def holding(self, lock: Lock, body: Generator) -> Generator:
        """Run ``body`` while holding ``lock`` (released on any exit)."""
        yield from self.acquire(lock)
        try:
            yield from body
        finally:
            yield from self.release(lock)

    def hardware(self, device: DevicePort, duration: int) -> Generator:
        """Block on a hardware request of ``duration`` service time."""
        with self.frame(make_signature("kernel", "WaitForHardware")):
            yield HardwareIO(device, duration)

    def delay(self, duration: int) -> Generator:
        """Sleep without producing wait events (think-time between work)."""
        if duration > 0:
            yield Delay(duration)

    def wait_for(self, event: SimEvent) -> Generator:
        """Block on a one-shot event; the generator returns its value."""
        with self.frame(make_signature("kernel", "WaitForObject")):
            value = yield WaitFor(event)
        return value

    def fire(self, event: SimEvent, value: Any = None) -> Generator:
        """Fire a one-shot event, waking all waiters."""
        with self.frame(make_signature("kernel", "SignalObject")):
            yield Fire(event, value)

    def post(self, mailbox: Mailbox, item: Any) -> Generator:
        """Send a request message (never blocks)."""
        with self.frame(make_signature("kernel", "SendMessage")):
            yield Post(mailbox, item)

    def take(self, mailbox: Mailbox) -> Generator:
        """Receive the next message, blocking while the queue is empty."""
        with self.frame(make_signature("kernel", "WaitForMessage")):
            item = yield Take(mailbox)
        return item

    def spawn(self, info: ThreadInfo, program: Program) -> Generator:
        """Create a sibling thread; the generator returns its SimThread."""
        thread = yield Spawn(info, program)
        return thread

    @contextmanager
    def scenario(self, name: str):
        """Mark a scenario instance initiated by this thread."""
        assert self.thread is not None
        tracer = self.engine.tracer
        start = self.engine.now
        try:
            yield
        finally:
            tracer.on_scenario(name, self.thread.tid, start, self.engine.now)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class _NullTracer:
    """Tracer that records nothing (used when tracing is disabled)."""

    def on_thread_created(self, info: ThreadInfo) -> None:
        pass

    def on_compute(self, tid, stack, start, duration) -> None:
        pass

    def on_wait(self, tid, stack, start, end, resource) -> None:
        pass

    def on_unwait(self, tid, stack, timestamp, wtid, resource) -> None:
        pass

    def on_hw_service(self, tid, start, duration, resource) -> None:
        pass

    def on_scenario(self, name, tid, t0, t1) -> None:
        pass


class Engine:
    """The discrete-event simulation kernel.

    Parameters
    ----------
    cores:
        Number of CPU cores.  ``Compute`` requests occupy one core
        non-preemptively; excess runnable threads queue FIFO.
    tracer:
        Receiver of trace events (see :class:`repro.sim.tracer.Tracer`).
        ``None`` disables tracing.
    rng:
        A seeded :class:`random.Random`; shared by thread programs through
        :attr:`ThreadContext.rng` so whole simulations are reproducible.
    policy:
        A :class:`~repro.sim.sched.SchedulerPolicy` taking the engine's
        scheduling decisions (heap tie-breaks, waiter selection, wake
        order, handoff delays).  ``None`` uses the deterministic
        :class:`~repro.sim.sched.FifoPolicy`, which reproduces the
        pre-policy engine byte for byte.
    """

    def __init__(self, cores: int = 8, tracer=None, rng=None, policy=None):
        if cores < 1:
            raise SimulationError("engine needs at least one CPU core")
        self.now = 0
        self.cores = cores
        self.tracer = tracer if tracer is not None else _NullTracer()
        self.rng = rng
        self.policy: SchedulerPolicy = (
            policy if policy is not None else FifoPolicy()
        )
        self.policy.attach(self)
        self._heap: List[Tuple[int, float, int, Callable[[], None]]] = []
        self._heap_seq = 0
        self._free_cores = cores
        self._cpu_queue: Deque[Tuple[SimThread, int]] = deque()
        self._next_tid = 1
        self._live_threads: Dict[int, SimThread] = {}
        self._blocked_count = 0

    # -- time & scheduling ---------------------------------------------------

    def schedule(
        self,
        delay: int,
        action: Callable[[], None],
        tid: Optional[int] = None,
    ) -> None:
        """Run ``action`` ``delay`` microseconds from now."""
        self.at(self.now + delay, action, tid=tid)

    def at(
        self,
        timestamp: int,
        action: Callable[[], None],
        tid: Optional[int] = None,
    ) -> None:
        """Run ``action`` at an absolute virtual time.

        Entries order by ``(timestamp, policy key, sequence)``.  The
        tie-break sequence is **engine-global** — one monotone counter
        across all threads and devices, not per thread — so with the
        default FIFO policy (whose key is constant) same-timestamp
        actions run in exact submission order, globally.  A plugged-in
        policy only reorders entries *within* one timestamp via its
        ``heap_key``; it can never reorder virtual time itself, which is
        why any policy still yields schema-valid, causally ordered
        traces.  ``tid`` names the thread the action advances (``None``
        for engine-internal actions) and is what priority-based policies
        key on.
        """
        if timestamp < self.now:
            raise SimulationError(
                f"cannot schedule in the past ({timestamp} < {self.now})"
            )
        key = self.policy.heap_key(timestamp, tid)
        heapq.heappush(self._heap, (timestamp, key, self._heap_seq, action))
        self._heap_seq += 1

    def allocate_tid(self) -> int:
        """Hand out a fresh thread id (also used for device pseudo-threads)."""
        tid = self._next_tid
        self._next_tid += 1
        return tid

    # -- thread lifecycle ------------------------------------------------------

    def spawn(
        self,
        program: Program,
        process: str,
        name: str,
        start_at: Optional[int] = None,
    ) -> SimThread:
        """Create a thread and schedule its first step.

        ``start_at`` defaults to the current time; programs may also begin
        with ``ctx.delay`` for staggered starts.
        """
        info = ThreadInfo(tid=self.allocate_tid(), process=process, name=name)
        context = ThreadContext(self)
        thread = SimThread(info, context)
        context.thread = thread
        # Every thread gets an implicit root frame so even bare computes
        # carry a meaningful callstack (ETW stacks always have a base).
        thread.stack.append(f"{info.process}!{info.name}")
        thread.gen = program(context)
        self._live_threads[thread.tid] = thread
        self.tracer.on_thread_created(info)
        when = self.now if start_at is None else start_at
        thread.state = _RUNNABLE
        self.at(when, lambda: self._step(thread, None), tid=thread.tid)
        return thread

    def run(self, until: Optional[int] = None) -> None:
        """Advance the simulation until the heap drains (or ``until``).

        Raises :class:`DeadlockError` when the heap drains while blocked
        threads remain (no future event can ever wake them).
        """
        while self._heap:
            timestamp, _, _, action = self._heap[0]
            if until is not None and timestamp > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = timestamp
            action()
        if until is not None:
            # Bounded runs treat still-blocked threads (e.g. service loops
            # parked on their mailboxes) as daemons, not deadlocks.
            self.now = until
            return
        if self._blocked_count:
            # Threads parked on an empty mailbox are idle servers waiting
            # for work — a normal quiescent state, not a deadlock.
            stuck = [
                thread
                for thread in self._live_threads.values()
                if thread.state == _BLOCKED
                and not (thread.block_resource or "").startswith("mailbox:")
            ]
            if not stuck:
                return
            blocked = [
                f"{thread.info.label} (tid {thread.tid}) on "
                f"{thread.block_resource!r} since {thread.block_start}"
                for thread in stuck
            ]
            raise DeadlockError(
                "simulation deadlocked; blocked threads:\n  " + "\n  ".join(blocked)
            )

    def shutdown(self) -> None:
        """Close every live thread generator (end of a bounded run).

        Generators suspended inside ``try/finally`` blocks that release
        locks would otherwise be closed by the garbage collector, where
        their clean-up ``yield`` raises an unraisable RuntimeError.  An
        explicit close here absorbs those errors deterministically.
        """
        for thread in list(self._live_threads.values()):
            if thread.gen is None:
                continue
            try:
                thread.gen.close()
            except RuntimeError:
                # The generator tried to yield (e.g. a lock release)
                # during close; the simulation is over, so drop it.
                pass
            thread.state = _DONE
        self._live_threads.clear()
        self._blocked_count = 0

    # -- stepping --------------------------------------------------------------

    def _step(self, thread: SimThread, send_value: Any) -> None:
        """Resume a thread's generator and dispatch its next request."""
        if thread.state == _DONE:
            raise SimulationError(f"stepping finished thread {thread!r}")
        thread.state = _RUNNING
        try:
            request = thread.gen.send(send_value)
        except StopIteration:
            thread.state = _DONE
            del self._live_threads[thread.tid]
            return
        self._dispatch(thread, request)

    def _dispatch(self, thread: SimThread, request: Any) -> None:
        if isinstance(request, Compute):
            self._handle_compute(thread, request.duration)
        elif isinstance(request, Acquire):
            self._handle_acquire(thread, request.lock)
        elif isinstance(request, Release):
            self._handle_release(thread, request.lock)
        elif isinstance(request, HardwareIO):
            self._handle_hardware(thread, request.device, request.duration)
        elif isinstance(request, Delay):
            self._handle_delay(thread, request.duration)
        elif isinstance(request, WaitFor):
            self._handle_wait_for(thread, request.event)
        elif isinstance(request, Fire):
            self._handle_fire(thread, request.event, request.value)
        elif isinstance(request, Post):
            self._handle_post(thread, request.mailbox, request.item)
        elif isinstance(request, Take):
            self._handle_take(thread, request.mailbox)
        elif isinstance(request, Spawn):
            child = self.spawn(request.program, request.info.process, request.info.name)
            self.at(self.now, lambda: self._step(thread, child), tid=thread.tid)
        else:
            raise SimulationError(
                f"{thread!r} yielded an unknown request: {request!r}"
            )

    # -- CPU -------------------------------------------------------------------

    def _handle_compute(self, thread: SimThread, duration: int) -> None:
        if duration <= 0:
            self.at(self.now, lambda: self._step(thread, None), tid=thread.tid)
            return
        if self._free_cores > 0:
            self._start_compute(thread, duration)
        else:
            thread.state = _RUNNABLE
            self._cpu_queue.append((thread, duration))

    def _start_compute(self, thread: SimThread, duration: int) -> None:
        self._free_cores -= 1
        self.tracer.on_compute(
            thread.tid, thread.stack_tuple(), self.now, duration
        )

        def finish() -> None:
            self._free_cores += 1
            if self._cpu_queue:
                index = self.policy.pick_waiter(
                    "cpu", [queued for queued, _ in self._cpu_queue]
                )
                queued_thread, queued_duration = self._cpu_queue[index]
                del self._cpu_queue[index]
                self._start_compute(queued_thread, queued_duration)
            self._step(thread, None)

        self.schedule(duration, finish, tid=thread.tid)

    # -- blocking & waking -------------------------------------------------------

    def _block(self, thread: SimThread, resource: str) -> None:
        thread.state = _BLOCKED
        thread.block_start = self.now
        thread.block_resource = resource
        self._blocked_count += 1

    def _wake(
        self,
        thread: SimThread,
        waker_tid: int,
        waker_stack: Tuple[str, ...],
        resource: str,
        send_value: Any = None,
    ) -> None:
        """Emit the wait/unwait pair for a wake-up and resume the thread.

        Zero-duration waits (handoff at the same microsecond) are real
        hand-offs but carry no cost; ETW would not attribute time to them,
        so neither wait nor unwait events are emitted for them.
        """
        if thread.state != _BLOCKED:
            raise SimulationError(f"waking non-blocked thread {thread!r}")
        start = thread.block_start
        assert start is not None
        if self.now > start:
            self.tracer.on_unwait(
                waker_tid, waker_stack, self.now, thread.tid, resource
            )
            self.tracer.on_wait(
                thread.tid, thread.stack_tuple(), start, self.now, resource
            )
        thread.state = _RUNNABLE
        thread.block_start = None
        thread.block_resource = None
        self._blocked_count -= 1
        self.at(self.now, lambda: self._step(thread, send_value), tid=thread.tid)

    # -- locks ---------------------------------------------------------------

    def _handle_acquire(self, thread: SimThread, lock: Lock) -> None:
        if lock.holder is None:
            lock.holder = thread
            self.at(self.now, lambda: self._step(thread, None), tid=thread.tid)
        else:
            lock.waiters.append(thread)
            self._block(thread, f"lock:{lock.name}")

    def _handle_release(self, thread: SimThread, lock: Lock) -> None:
        if lock.holder is not thread:
            raise SimulationError(
                f"{thread!r} released lock {lock.name!r} it does not hold"
            )
        if lock.waiters:
            resource = f"lock:{lock.name}"
            index = self.policy.pick_waiter(resource, lock.waiters)
            next_holder = lock.waiters[index]
            del lock.waiters[index]
            lock.holder = next_holder
            # The policy may stretch the handoff: the lock already
            # belongs to the next holder, but its wake — and therefore
            # the end of its observed wait — lands ``delay`` later,
            # modelling OS wakeup latency (the convoy amplifier).
            delay = self.policy.release_delay(lock)
            if delay > 0:
                waker_tid = thread.tid
                waker_stack = thread.stack_tuple()
                self.at(
                    self.now + delay,
                    lambda: self._wake(
                        next_holder,
                        waker_tid=waker_tid,
                        waker_stack=waker_stack,
                        resource=resource,
                    ),
                    tid=next_holder.tid,
                )
            else:
                self._wake(
                    next_holder,
                    waker_tid=thread.tid,
                    waker_stack=thread.stack_tuple(),
                    resource=resource,
                )
        else:
            lock.holder = None
        self.at(self.now, lambda: self._step(thread, None), tid=thread.tid)

    # -- hardware --------------------------------------------------------------

    def _handle_hardware(
        self, thread: SimThread, device: DevicePort, duration: int
    ) -> None:
        service_start, service_end = device.service_window(self.now, duration)
        self._block(thread, f"device:{device.name}")
        self.tracer.on_hw_service(
            device.pseudo_tid, service_start, service_end - service_start,
            resource=f"device:{device.name}",
        )

        def complete() -> None:
            self._wake(
                thread,
                waker_tid=device.pseudo_tid,
                waker_stack=device.completion_stack,
                resource=f"device:{device.name}",
            )

        self.at(service_end, complete, tid=thread.tid)

    # -- idling ------------------------------------------------------------------

    def _handle_delay(self, thread: SimThread, duration: int) -> None:
        thread.state = _IDLE
        self.schedule(
            max(duration, 0), lambda: self._step(thread, None), tid=thread.tid
        )

    # -- mailboxes ---------------------------------------------------------------

    def _handle_post(self, thread: SimThread, mailbox: Mailbox, item: Any) -> None:
        if mailbox.takers:
            resource = f"mailbox:{mailbox.name}"
            index = self.policy.pick_waiter(resource, mailbox.takers)
            taker = mailbox.takers[index]
            del mailbox.takers[index]
            self._wake(
                taker,
                waker_tid=thread.tid,
                waker_stack=thread.stack_tuple(),
                resource=resource,
                send_value=item,
            )
        else:
            mailbox.items.append(item)
        self.at(self.now, lambda: self._step(thread, None), tid=thread.tid)

    def _handle_take(self, thread: SimThread, mailbox: Mailbox) -> None:
        if mailbox.items:
            item = mailbox.items.popleft()
            self.at(self.now, lambda: self._step(thread, item), tid=thread.tid)
        else:
            mailbox.takers.append(thread)
            self._block(thread, f"mailbox:{mailbox.name}")

    # -- one-shot events -----------------------------------------------------------

    def _handle_wait_for(self, thread: SimThread, event: SimEvent) -> None:
        if event.fired:
            self.at(
                self.now, lambda: self._step(thread, event.value), tid=thread.tid
            )
        else:
            event.waiters.append(thread)
            self._block(thread, f"event:{event.name}")

    def _handle_fire(self, thread: SimThread, event: SimEvent, value: Any) -> None:
        event.fire(value)
        waiters, event.waiters = list(event.waiters), []
        for index in self.policy.wake_order(waiters):
            self._wake(
                waiters[index],
                waker_tid=thread.tid,
                waker_stack=thread.stack_tuple(),
                resource=f"event:{event.name}",
                send_value=value,
            )
        self.at(self.now, lambda: self._step(thread, None), tid=thread.tid)
