"""Table 1 — Selected scenarios and their contrast classes.

Regenerates the per-scenario instance counts and the fast/slow split
under the vendor thresholds.  The paper's shape: every selected scenario
has well-populated fast AND slow classes (slow-heavy for TabClose-like
scenarios, fast-heavy for WebPageNavigation).
"""

from benchmarks.conftest import print_banner
from repro.causality.classes import classify_instances
from repro.evaluation.study import group_by_scenario
from repro.report.tables import Table
from repro.sim.workloads.registry import scenario_spec

PAPER_ROWS = {
    "AppAccessControl": (1547, 598, 772),
    "AppNonResponsive": (631, 164, 392),
    "BrowserFrameCreate": (1304, 437, 707),
    "BrowserTabClose": (989, 134, 678),
    "BrowserTabCreate": (2491, 597, 1601),
    "BrowserTabSwitch": (2182, 1122, 914),
    "MenuDisplay": (743, 171, 499),
    "WebPageNavigation": (7725, 4203, 1175),
}


def test_bench_table1_classification(benchmark, bench_corpus):
    grouped = group_by_scenario(bench_corpus)

    def classify_all():
        return {
            name: classify_instances(
                instances,
                scenario_spec(name).t_fast,
                scenario_spec(name).t_slow,
                scenario=name,
            )
            for name, instances in grouped.items()
        }

    classes = benchmark(classify_all)

    print_banner("Table 1 - Selected scenarios (paper counts in brackets)")
    table = Table(
        ["Scenario", "#Instances", "in {I}fast", "in {I}slow"]
    )
    totals = [0, 0, 0]
    for name in sorted(classes):
        split = classes[name]
        paper = PAPER_ROWS.get(name, ("?", "?", "?"))
        table.add_row(
            name,
            f"{split.total} [{paper[0]}]",
            f"{len(split.fast)} [{paper[1]}]",
            f"{len(split.slow)} [{paper[2]}]",
        )
        totals[0] += split.total
        totals[1] += len(split.fast)
        totals[2] += len(split.slow)
    table.add_separator()
    table.add_row("Total", *totals)
    print(table.render())

    # Shape: all eight scenarios present, each with both classes populated.
    assert len(classes) == 8
    for name, split in classes.items():
        assert split.fast, f"{name} has no fast instances"
        assert split.slow, f"{name} has no slow instances"
    # WebPageNavigation is the most frequent scenario, as in the paper.
    counts = {name: split.total for name, split in classes.items()}
    assert max(counts, key=counts.get) in (
        "WebPageNavigation", "BrowserFrameCreate",
    )
