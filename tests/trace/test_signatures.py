"""Tests for signature parsing and component matching."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trace.signatures import (
    ALL_DRIVERS,
    HARDWARE_SIGNATURE,
    ComponentFilter,
    function_of,
    make_signature,
    module_of,
)


class TestSignatureParsing:
    def test_make_signature(self):
        assert make_signature("fv.sys", "QueryFileTable") == "fv.sys!QueryFileTable"

    def test_module_of(self):
        assert module_of("fv.sys!QueryFileTable") == "fv.sys"

    def test_function_of(self):
        assert function_of("fv.sys!QueryFileTable") == "QueryFileTable"

    def test_module_of_bare_name(self):
        assert module_of("fv.sys") == "fv.sys"

    def test_function_of_bare_name(self):
        assert function_of("fv.sys") == ""

    def test_hardware_signature_is_parseable(self):
        assert module_of(HARDWARE_SIGNATURE) == "Hardware"

    @given(
        st.text(min_size=1).filter(lambda s: "!" not in s),
        st.text(min_size=1).filter(lambda s: "!" not in s),
    )
    def test_roundtrip(self, module, function):
        signature = make_signature(module, function)
        assert module_of(signature) == module
        assert function_of(signature) == function


class TestComponentFilter:
    def test_requires_patterns(self):
        with pytest.raises(ValueError):
            ComponentFilter([])

    def test_wildcard_matches_drivers(self):
        assert ALL_DRIVERS.matches_signature("fv.sys!QueryFileTable")
        assert ALL_DRIVERS.matches_signature("graphics.sys!Render")

    def test_wildcard_rejects_non_drivers(self):
        assert not ALL_DRIVERS.matches_signature("kernel!AcquireLock")
        assert not ALL_DRIVERS.matches_signature("Browser!TabCreate")

    def test_case_insensitive(self):
        assert ALL_DRIVERS.matches_signature("FV.SYS!QueryFileTable")

    def test_exact_module_pattern(self):
        fv_only = ComponentFilter(["fv.sys"])
        assert fv_only.matches_signature("fv.sys!QueryFileTable")
        assert not fv_only.matches_signature("fs.sys!Read")

    def test_multiple_patterns(self):
        two = ComponentFilter(["fv.sys", "fs.sys"])
        assert two.matches_signature("fv.sys!A")
        assert two.matches_signature("fs.sys!B")
        assert not two.matches_signature("se.sys!C")

    def test_matches_stack(self):
        stack = ("Browser!TabCreate", "kernel!OpenFile", "fv.sys!Query")
        assert ALL_DRIVERS.matches_stack(stack)
        assert not ALL_DRIVERS.matches_stack(("Browser!TabCreate",))

    def test_component_signature_picks_deepest_match(self):
        stack = (
            "Browser!TabCreate",
            "fv.sys!QueryFileTable",
            "fs.sys!Read",
            "kernel!AcquireLock",
        )
        assert ALL_DRIVERS.component_signature(stack) == "fs.sys!Read"

    def test_component_signature_none_when_no_match(self):
        assert ALL_DRIVERS.component_signature(("kernel!Idle",)) is None

    def test_component_signature_empty_stack(self):
        assert ALL_DRIVERS.component_signature(()) is None

    def test_module_cache_consistency(self):
        component = ComponentFilter(["*.sys"])
        for _ in range(3):
            assert component.matches_module("fv.sys")
            assert not component.matches_module("kernel")

    def test_patterns_property(self):
        component = ComponentFilter(["a.sys", "b.sys"])
        assert component.patterns == ("a.sys", "b.sys")

    def test_star_pattern_does_not_cross_module_boundary(self):
        # fnmatch '*' matches anything including dots; '*.sys' must not
        # match a module without the suffix.
        assert not ALL_DRIVERS.matches_module("sys")
        assert not ALL_DRIVERS.matches_module("fv.sysx")


class TestFilterCachingAndPickling:
    def test_pickle_round_trip(self):
        import pickle

        original = ComponentFilter(["fv.sys", "*.sys"])
        restored = pickle.loads(pickle.dumps(original))
        assert restored.patterns == original.patterns
        assert restored.matches_signature("fv.sys!Query")
        assert not restored.matches_signature("kernel!AcquireLock")

    def test_pickled_filter_has_working_caches(self):
        import pickle

        restored = pickle.loads(pickle.dumps(ALL_DRIVERS))
        stack = ("Browser!TabCreate", "fv.sys!Query")
        assert restored.matches_stack(stack)
        assert restored.component_signature(stack) == "fv.sys!Query"

    def test_stack_helpers_accept_lists(self):
        # The cached implementations key on tuples; the public API must
        # still accept any sequence.
        stack = ["Browser!TabCreate", "fv.sys!Query"]
        assert ALL_DRIVERS.matches_stack(stack)
        assert ALL_DRIVERS.component_signature(stack) == "fv.sys!Query"

    def test_stack_cache_is_per_filter(self):
        wide = ComponentFilter(["*.sys"])
        narrow = ComponentFilter(["fs.sys"])
        stack = ("fv.sys!Query",)
        assert wide.component_signature(stack) == "fv.sys!Query"
        assert narrow.component_signature(stack) is None

    def test_module_of_cache_returns_consistent_results(self):
        assert module_of("fv.sys!Query") == "fv.sys"
        assert module_of("fv.sys!Query") == "fv.sys"
        info = module_of.cache_info()
        assert info.hits >= 1
