"""Pattern ranking and ranking-based coverage (paper §4.2.3, §5.2.3).

Discovered contrast patterns are ranked by their performance impact —
average execution cost ``P.C / P.N`` — highest first, so performance
analysts can prioritize inspection.  Table 3's efficiency evaluation
measures the execution-time coverage of the top n% of patterns under
this ranking.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.causality.mining import ContrastPattern


def rank_patterns(patterns: Sequence[ContrastPattern]) -> List[ContrastPattern]:
    """Sort patterns by impact (``P.C / P.N``), highest first.

    Ties break on total cost and then on the SST's signature ordering so
    the ranking is fully deterministic.
    """
    return sorted(
        patterns,
        key=lambda p: (-p.impact, -p.cost, p.sst.sort_key()),
    )


def coverage_of_top(
    ranked: Sequence[ContrastPattern], fraction: float
) -> float:
    """Execution-time coverage of the top ``fraction`` of patterns.

    The coverage is the summed cost of the selected prefix over the
    summed cost of all discovered patterns (the Table 3 measure).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    total = sum(pattern.cost for pattern in ranked)
    if total == 0:
        return 0.0
    top_count = max(1, round(len(ranked) * fraction)) if ranked else 0
    covered = sum(pattern.cost for pattern in ranked[:top_count])
    return covered / total


def coverage_curve(
    ranked: Sequence[ContrastPattern], fractions: Sequence[float] = (0.1, 0.2, 0.3)
) -> List[float]:
    """Coverage at each requested top-fraction (Table 3 columns)."""
    return [coverage_of_top(ranked, fraction) for fraction in fractions]
