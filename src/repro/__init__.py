"""repro — trace-based performance comprehension for complex systems.

A full reproduction of *"Comprehending Performance from Real-World
Execution Traces: A Device-Driver Case"* (ASPLOS 2014): the two-step
impact/causality analysis pipeline over ETW-shaped execution traces, a
synthetic kernel/driver simulator standing in for the paper's proprietary
trace corpus, baseline analyzers, and the full evaluation harness.

Quickstart::

    from repro import CorpusConfig, generate_corpus, ImpactAnalysis

    corpus = generate_corpus(CorpusConfig(streams=10, seed=7))
    result = ImpactAnalysis(["*.sys"]).analyze_corpus(corpus)
    print(result.summary())

See ``examples/`` for end-to-end walkthroughs and ``benchmarks/`` for the
reproduction of every table and figure in the paper's evaluation.
"""

from repro.causality import (
    CausalityAnalysis,
    CausalityReport,
    ContrastPattern,
    SignatureSetTuple,
    classify_instances,
)
from repro.errors import (
    AnalysisError,
    ConfigError,
    DeadlockError,
    ReproError,
    ResilienceError,
    SerializationError,
    SimulationError,
    TraceError,
    TraceSalvageError,
    TraceValidationError,
    WaitGraphError,
    WorkerCrashError,
)
from repro.evaluation import (
    StudyResult,
    compare_patterns,
    run_study,
    summarize_corpus,
)
from repro.impact import (
    ImpactAnalysis,
    ImpactBreakdown,
    ImpactResult,
    breakdown_by_module,
)
from repro.pipeline import (
    parallel_causality,
    parallel_impact,
    parallel_study,
)
from repro.resilience import RunHealth, TraceFailure, fuzz_corpus
from repro.sim import CorpusConfig, Machine, MachineConfig, generate_corpus
from repro.trace import (
    ALL_DRIVERS,
    ComponentFilter,
    Event,
    EventKind,
    ScenarioInstance,
    ThreadInfo,
    TraceStream,
    dump_stream,
    load_stream,
    validate_stream,
)
from repro.waitgraph import (
    AggregatedWaitGraph,
    WaitGraph,
    aggregate_wait_graphs,
    build_wait_graph,
    critical_path,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_DRIVERS",
    "AggregatedWaitGraph",
    "AnalysisError",
    "CausalityAnalysis",
    "CausalityReport",
    "ComponentFilter",
    "ConfigError",
    "ContrastPattern",
    "CorpusConfig",
    "DeadlockError",
    "Event",
    "EventKind",
    "ImpactAnalysis",
    "ImpactBreakdown",
    "ImpactResult",
    "Machine",
    "MachineConfig",
    "ReproError",
    "ResilienceError",
    "RunHealth",
    "ScenarioInstance",
    "SerializationError",
    "SignatureSetTuple",
    "SimulationError",
    "StudyResult",
    "ThreadInfo",
    "TraceError",
    "TraceFailure",
    "TraceSalvageError",
    "TraceStream",
    "TraceValidationError",
    "WaitGraph",
    "WaitGraphError",
    "WorkerCrashError",
    "aggregate_wait_graphs",
    "build_wait_graph",
    "breakdown_by_module",
    "classify_instances",
    "compare_patterns",
    "critical_path",
    "dump_stream",
    "fuzz_corpus",
    "generate_corpus",
    "load_stream",
    "parallel_causality",
    "parallel_impact",
    "parallel_study",
    "run_study",
    "summarize_corpus",
    "validate_stream",
    "__version__",
]
