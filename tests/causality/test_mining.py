"""Tests for meta-pattern enumeration and contrast mining."""

import pytest

from repro.causality.mining import (
    ContrastPattern,
    discover_contrast_meta_patterns,
    enumerate_meta_patterns,
    extract_contrast_patterns,
)
from repro.causality.sst import SignatureSetTuple
from repro.errors import AnalysisError
from repro.trace.signatures import ALL_DRIVERS
from repro.waitgraph.aggregate import (
    AggregatedWaitGraph,
    AwgNode,
    HARDWARE,
    RUNNING,
    WAITING,
)


def build_awg(structure):
    """Build an AWG from nested tuples: (status, sigs, cost, count, children)."""
    awg = AggregatedWaitGraph(ALL_DRIVERS)

    def build_node(spec, parent):
        status, sigs, cost, count, children = spec
        if status == WAITING:
            node = AwgNode(WAITING, wait_sig=sigs[0], unwait_sig=sigs[1])
        else:
            node = AwgNode(status, run_sig=sigs[0])
        node.cost = cost
        node.count = count
        node.max_single = cost // max(count, 1)
        node.parent = parent
        return node

    def attach(specs, table, parent):
        for spec in specs:
            node = build_node(spec, parent)
            table[node.key] = node
            attach(spec[4], node.children, node)

    attach(structure, awg.roots, None)
    return awg


def chain_awg(cost=1000, count=1):
    """wait(A) -> wait(B) -> run(C): one 3-node path."""
    return build_awg([
        (WAITING, ("fv.sys!A", "fv.sys!A"), cost, count, [
            (WAITING, ("fs.sys!B", "fs.sys!B"), cost - 100, count, [
                (RUNNING, ("se.sys!C",), cost - 200, count, []),
            ]),
        ]),
    ])


class TestEnumeration:
    def test_bound_must_be_positive(self):
        with pytest.raises(AnalysisError):
            enumerate_meta_patterns(chain_awg(), k=0)

    def test_k1_one_pattern_per_distinct_node(self):
        patterns = enumerate_meta_patterns(chain_awg(), k=1)
        assert len(patterns) == 3

    def test_k2_adds_pairs(self):
        patterns = enumerate_meta_patterns(chain_awg(), k=2)
        # 3 singles + 2 adjacent pairs
        assert len(patterns) == 5

    def test_k3_adds_triple(self):
        patterns = enumerate_meta_patterns(chain_awg(), k=3)
        assert len(patterns) == 6

    def test_larger_k_no_more_segments_than_paths_allow(self):
        assert len(enumerate_meta_patterns(chain_awg(), k=10)) == 6

    def test_segment_metric_is_end_node(self):
        patterns = enumerate_meta_patterns(chain_awg(cost=1000), k=2)
        pair = SignatureSetTuple(
            frozenset({"fv.sys!A", "fs.sys!B"}),
            frozenset({"fv.sys!A", "fs.sys!B"}),
            frozenset(),
        )
        assert patterns[pair].cost == 900  # the end node's (B's) cost

    def test_common_sst_aggregates(self):
        # Two sibling running nodes with the same signature under one root
        # can't share a key in a trie; instead test two roots with equal
        # signatures through separate AWGs merged by dict aggregation.
        awg = build_awg([
            (WAITING, ("fv.sys!A", "fv.sys!A"), 500, 1, [
                (RUNNING, ("x!R",), 100, 1, []),
            ]),
        ])
        patterns = enumerate_meta_patterns(awg, k=1)
        single = SignatureSetTuple(
            frozenset({"fv.sys!A"}), frozenset({"fv.sys!A"}), frozenset()
        )
        assert patterns[single].count == 1


class TestContrastDiscovery:
    def test_slow_only_selected(self):
        slow = enumerate_meta_patterns(chain_awg(), k=1)
        contrasts = discover_contrast_meta_patterns(slow, {}, 100, 300)
        assert len(contrasts) == len(slow)
        assert all(criteria.slow_only for criteria in contrasts.values())

    def test_common_with_low_ratio_excluded(self):
        slow = enumerate_meta_patterns(chain_awg(cost=1000), k=1)
        fast = enumerate_meta_patterns(chain_awg(cost=900), k=1)
        contrasts = discover_contrast_meta_patterns(slow, fast, 100, 300)
        assert contrasts == {}

    def test_common_with_high_ratio_selected(self):
        slow = enumerate_meta_patterns(chain_awg(cost=10_000), k=1)
        fast = enumerate_meta_patterns(chain_awg(cost=1_000), k=1)
        contrasts = discover_contrast_meta_patterns(slow, fast, 100, 300)
        assert len(contrasts) == 3
        for criteria in contrasts.values():
            assert not criteria.slow_only
            assert criteria.cost_ratio > 3.0

    def test_ratio_respects_counts(self):
        # Same total cost but 10x the occurrences: mean is 10x smaller.
        slow = enumerate_meta_patterns(chain_awg(cost=1_000, count=10), k=1)
        fast = enumerate_meta_patterns(chain_awg(cost=1_000, count=1), k=1)
        contrasts = discover_contrast_meta_patterns(slow, fast, 100, 300)
        assert contrasts == {}


class TestPatternExtraction:
    def test_path_selected_when_containing_contrast(self):
        slow_awg = chain_awg(cost=10_000)
        slow = enumerate_meta_patterns(slow_awg, k=2)
        contrasts = discover_contrast_meta_patterns(slow, {}, 100, 300)
        patterns = extract_contrast_patterns(slow_awg, contrasts)
        assert len(patterns) == 1
        pattern = patterns[0]
        assert pattern.sst.wait_signatures == {"fv.sys!A", "fs.sys!B"}
        assert pattern.sst.running_signatures == {"se.sys!C"}
        assert pattern.cost == 9_800  # leaf cost
        assert pattern.max_single == 10_000  # root single-execution cost

    def test_path_without_contrast_skipped(self):
        slow_awg = chain_awg()
        patterns = extract_contrast_patterns(slow_awg, {})
        assert patterns == []

    def test_identical_path_ssts_merge(self):
        # Two leaves whose full paths generalize to the same SST: a root
        # with two orders of the same pair of waits.
        awg = build_awg([
            (WAITING, ("a.sys!X", "a.sys!X"), 1_000, 1, [
                (WAITING, ("b.sys!Y", "b.sys!Y"), 900, 1, [
                    (RUNNING, ("c.sys!R",), 100, 1, []),
                ]),
            ]),
            (WAITING, ("b.sys!Y", "b.sys!Y"), 2_000, 1, [
                (WAITING, ("a.sys!X", "a.sys!X"), 1_800, 1, [
                    (RUNNING, ("c.sys!R",), 300, 1, []),
                ]),
            ]),
        ])
        metas = enumerate_meta_patterns(awg, k=3)
        contrasts = discover_contrast_meta_patterns(metas, {}, 100, 300)
        patterns = extract_contrast_patterns(awg, contrasts)
        assert len(patterns) == 1  # both orders merged
        assert patterns[0].count == 2
        assert patterns[0].cost == 400

    def test_high_impact_rule(self):
        pattern = ContrastPattern(
            sst=SignatureSetTuple(frozenset(), frozenset(), frozenset()),
            cost=100,
            count=1,
            max_single=600_000,
            matched_meta_patterns=1,
        )
        assert pattern.is_high_impact(t_slow=500_000)
        assert not pattern.is_high_impact(t_slow=700_000)

    def test_impact_is_mean_cost(self):
        pattern = ContrastPattern(
            sst=SignatureSetTuple(frozenset(), frozenset(), frozenset()),
            cost=1_000,
            count=4,
            max_single=0,
            matched_meta_patterns=1,
        )
        assert pattern.impact == 250.0
