"""Web-browser scenario workloads.

Five of the paper's eight selected scenarios belong to the browser:
``BrowserTabCreate`` (the motivating example), ``BrowserTabClose``,
``BrowserTabSwitch``, ``BrowserFrameCreate`` and ``WebPageNavigation``.

Structure mirrors how browsers actually work on Windows:

* the UI thread handles input and layout/script CPU itself, posting file
  IO, fetches and frame batches to shared worker services;
* navigations run on navigation-controller threads and spawn sub-frame
  creations on the shared renderer thread — so ``WebPageNavigation``
  instances *contain* ``BrowserFrameCreate`` instances, and a tab create
  triggers a navigation.  Instances of different scenarios therefore
  overlap in the trace, the §2.1 "typical manifestation of cost
  propagation", and the inner instances' wait events appear in every
  enclosing instance's Wait Graph;
* background browser workers contend the File Table and MDU locks
  directly (the ``T_{B,W*}`` threads of Figure 1).
"""

from __future__ import annotations

from typing import Generator

from repro.sim.distributions import (
    bernoulli,
    exponential_us,
    skewed_file_id,
    uniform_us,
)
from repro.sim.engine import ThreadContext
from repro.sim.machine import Machine
from repro.sim.ops import (
    fetch_resources,
    flush_files,
    open_virtual_files,
    render_batch,
    security_inspection,
)
from repro.sim.services import RequestFactory, ScenarioWorkerService
from repro.sim.workloads.base import ScenarioSpec, Workload
from repro.units import MILLISECONDS

# ---------------------------------------------------------------------------
# Shared browser runtime: renderer and navigation controller
# ---------------------------------------------------------------------------


def frame_renderer(machine: Machine) -> ScenarioWorkerService:
    """The browser's shared renderer thread creating sub-frames.

    Created once per machine; every frame creation it handles is marked
    as a ``BrowserFrameCreate`` scenario instance, whether triggered by
    the FrameCreate workload or by a navigated page spawning sub-frames.
    """
    service = getattr(machine, "_frame_renderer", None)
    if service is None:
        service = ScenarioWorkerService(
            machine.engine,
            "Browser",
            name_prefix="Renderer",
            workers=1,
            handler_frame="Browser!CreateFrame",
            scenario="BrowserFrameCreate",
        )
        machine._frame_renderer = service
    return service


def navigation_controller(machine: Machine) -> ScenarioWorkerService:
    """The navigation controller: each handled request is a navigation."""
    service = getattr(machine, "_nav_controller", None)
    if service is None:
        service = ScenarioWorkerService(
            machine.engine,
            "Browser",
            name_prefix="NavCtl",
            workers=2,
            handler_frame="Browser!Navigate",
            scenario="WebPageNavigation",
        )
        machine._nav_controller = service
    return service


def frame_create_request(machine: Machine) -> RequestFactory:
    """One sub-frame creation executed on the renderer thread."""

    def factory(ctx: ThreadContext) -> Generator:
        rng = machine.rng
        with ctx.frame("Browser!FrameCreate"):
            yield from machine.fetch_service.submit(
                ctx,
                fetch_resources(machine, 1, 0.5, 2.0),
                "Browser!WaitForContent",
            )
            file_ids = [skewed_file_id(rng) for _ in range(rng.randint(1, 3))]
            yield from machine.browser_io_service.submit(
                ctx,
                open_virtual_files(machine, file_ids, resolve_prob=0.5),
                "Browser!WaitForIo",
            )
            yield from ctx.compute(uniform_us(rng, 25_000, 70_000))
            yield from machine.render_service.submit(
                ctx, render_batch(machine, 0.6), "Browser!WaitForRender"
            )

    return factory


def navigation_request(machine: Machine) -> RequestFactory:
    """One full page navigation executed on a navigation controller."""

    def factory(ctx: ThreadContext) -> Generator:
        rng = machine.rng
        yield from machine.fetch_service.submit(
            ctx,
            fetch_resources(machine, rng.randint(1, 3), 0.3, 1.5),
            "Browser!WaitForResources",
        )
        file_ids = [skewed_file_id(rng) for _ in range(rng.randint(1, 3))]
        yield from machine.browser_io_service.submit(
            ctx,
            open_virtual_files(
                machine, file_ids, resolve_prob=0.8, cache_prob=0.3
            ),
            "Browser!WaitForCache",
        )
        # Parse, style and script: the heavy application CPU part.
        yield from ctx.compute(uniform_us(rng, 80_000, 200_000))
        if bernoulli(rng, 0.7):
            # The page spawns sub-frames: nested BrowserFrameCreate
            # instances on the shared renderer thread.
            renderer = frame_renderer(machine)
            for _ in range(rng.randint(1, 2)):
                yield from renderer.submit(
                    ctx,
                    frame_create_request(machine),
                    "Browser!WaitForFrame",
                )
        yield from machine.render_service.submit(
            ctx, render_batch(machine, 1.2), "Browser!WaitForRender"
        )

    return factory


def install_browser_workers(
    machine: Machine, duration_us: int, count: int = 2, intensity: float = 0.5
) -> None:
    """Spawn browser worker threads doing background virtual-file work."""
    pause = int(250 * MILLISECONDS * (1.3 - intensity))
    for index in range(count):

        def program(ctx: ThreadContext) -> Generator:
            with ctx.frame("Browser!Worker"):
                while ctx.now < duration_us:
                    file_id = skewed_file_id(machine.rng)
                    if bernoulli(machine.rng, 0.5):
                        # Contend the File Table / MDU locks directly
                        # (the T_{B,W*} threads of Figure 1).
                        with ctx.frame("kernel!CreateFile"):
                            yield from machine.fv.query_file_table(
                                ctx,
                                file_id,
                                resolve=bernoulli(machine.rng, 0.6),
                                cached=bernoulli(machine.rng, 0.4),
                                size_factor=machine.rng.uniform(0.5, 2.5),
                            )
                    else:
                        yield from machine.browser_io_service.submit(
                            ctx,
                            open_virtual_files(
                                machine, [file_id], resolve_prob=0.6
                            ),
                            "Browser!WaitForIo",
                        )
                    if bernoulli(machine.rng, 0.25):
                        with ctx.frame("kernel!WriteFile"):
                            yield from machine.fs.write_file(ctx, file_id)
                    yield from ctx.delay(exponential_us(machine.rng, pause))

        machine.spawn(program, "Browser", f"W{index}")


class BrowserWorkload(Workload):
    """Base for browser scenarios.

    Subclasses override :meth:`body` — one scenario instance performed on
    the UI thread.  ``install`` wires the worker threads and the UI loop.
    """

    worker_count = 2

    def __init__(self, *args, horizon_us: int = 30_000_000, **kwargs):
        super().__init__(*args, **kwargs)
        self.horizon_us = horizon_us

    def install(self, machine: Machine) -> None:
        install_browser_workers(
            machine, self.horizon_us, self.worker_count, self.intensity
        )
        workload = self

        def ui_program(ctx: ThreadContext) -> Generator:
            yield from workload._iterate(
                ctx,
                machine,
                lambda body_ctx, iteration: workload.body(
                    machine, body_ctx, iteration
                ),
            )

        machine.spawn(ui_program, "Browser", "UI")

    def body(
        self, machine: Machine, ctx: ThreadContext, iteration: int
    ) -> Generator:
        """One scenario instance on the UI thread."""
        raise NotImplementedError


class BrowserTabCreate(BrowserWorkload):
    """Create a new tab: open virtual files, run layout, render (§2.2).

    Most tab creations also load a start page — a nested
    ``WebPageNavigation`` instance on the navigation controller.
    """

    spec = ScenarioSpec(
        name="BrowserTabCreate",
        t_fast=300 * MILLISECONDS,
        t_slow=500 * MILLISECONDS,
        description="user clicks 'create a new tab' until the tab displays",
    )

    def body(
        self, machine: Machine, ctx: ThreadContext, iteration: int
    ) -> Generator:
        rng = machine.rng
        with ctx.frame("Browser!TabCreate"):
            yield from machine.mouse.process_input(ctx)
            # The UI thread opens the first profile file itself (Figure 1
            # shows T_{B,UI} inside fv.sys!QueryFileTable directly) ...
            with ctx.frame("kernel!OpenFile"):
                yield from machine.fv.query_file_table(
                    ctx,
                    skewed_file_id(rng),
                    resolve=bernoulli(rng, 0.4 + 0.4 * self.intensity),
                    cached=bernoulli(rng, 0.5),
                )
            # ... and posts the remaining opens to the IO workers.
            file_ids = [skewed_file_id(rng) for _ in range(rng.randint(1, 3))]
            yield from machine.browser_io_service.submit(
                ctx,
                open_virtual_files(
                    machine,
                    file_ids,
                    resolve_prob=0.4 + 0.4 * self.intensity,
                    cache_prob=0.5 - 0.3 * self.intensity,
                ),
                "Browser!WaitForIo",
            )
            if bernoulli(rng, 0.3):
                # Opening the profile triggers an access-control check: a
                # nested AppAccessControl instance on its host thread.
                from repro.sim.workloads.security import (
                    access_check_request,
                    access_control_host,
                )

                yield from access_control_host(machine).submit(
                    ctx,
                    access_check_request(machine, self.intensity),
                    "Browser!WaitAccessCheck",
                )
            # Layout and script: pure application CPU on the UI thread.
            yield from ctx.compute(uniform_us(rng, 30_000, 100_000))
            if bernoulli(rng, 0.5):
                # The new tab loads its start page: a nested navigation.
                yield from navigation_controller(machine).submit(
                    ctx, navigation_request(machine), "Browser!WaitForNavigate"
                )
            yield from machine.render_service.submit(
                ctx, render_batch(machine, 0.8), "Browser!WaitForRender"
            )


class BrowserTabClose(BrowserWorkload):
    """Close a tab: flush session state, compact and repaint the strip."""

    spec = ScenarioSpec(
        name="BrowserTabClose",
        t_fast=23 * MILLISECONDS,
        t_slow=40 * MILLISECONDS,
        description="user closes a tab until the strip re-renders",
    )
    worker_count = 1

    def body(
        self, machine: Machine, ctx: ThreadContext, iteration: int
    ) -> Generator:
        rng = machine.rng
        with ctx.frame("Browser!TabClose"):
            file_ids = [skewed_file_id(rng) for _ in range(rng.randint(1, 2))]
            yield from machine.browser_io_service.submit(
                ctx, flush_files(machine, file_ids), "Browser!WaitForFlush"
            )
            yield from ctx.compute(uniform_us(rng, 8_000, 25_000))
            yield from machine.render_service.submit(
                ctx, render_batch(machine, 0.4), "Browser!WaitForRender"
            )


class BrowserTabSwitch(BrowserWorkload):
    """Switch tabs: mostly GPU rendering plus cached tab-state reads.

    The paper notes 66.6% of this scenario's driver cost is direct
    hardware service without propagation — hence the render-heavy body.
    """

    spec = ScenarioSpec(
        name="BrowserTabSwitch",
        t_fast=22 * MILLISECONDS,
        t_slow=38 * MILLISECONDS,
        description="user switches tabs until the new tab paints",
    )
    worker_count = 1

    def body(
        self, machine: Machine, ctx: ThreadContext, iteration: int
    ) -> Generator:
        rng = machine.rng
        with ctx.frame("Browser!TabSwitch"):
            yield from machine.mouse.process_input(ctx)
            yield from ctx.compute(uniform_us(rng, 6_000, 20_000))
            for _ in range(rng.randint(1, 2)):
                yield from machine.render_service.submit(
                    ctx, render_batch(machine, 1.0), "Browser!WaitForRender"
                )
            if bernoulli(rng, 0.3):
                with ctx.frame("kernel!OpenFile"):
                    yield from machine.fs.read_file(
                        ctx,
                        skewed_file_id(rng),
                        cached=bernoulli(rng, 0.7),
                    )


class BrowserFrameCreate(BrowserWorkload):
    """Create a sub-frame on the renderer thread.

    The scenario instance lives on the shared renderer thread (see
    :func:`frame_renderer`); this workload's page-script thread only
    triggers creations and waits — as does ``WebPageNavigation`` when a
    navigated page spawns sub-frames, overlapping the two scenarios.
    """

    spec = ScenarioSpec(
        name="BrowserFrameCreate",
        t_fast=68 * MILLISECONDS,
        t_slow=100 * MILLISECONDS,
        description="page script creates an iframe until it renders",
    )

    def install(self, machine: Machine) -> None:
        install_browser_workers(
            machine, self.horizon_us, self.worker_count, self.intensity
        )
        renderer = frame_renderer(machine)
        workload = self

        def script_program(ctx: ThreadContext) -> Generator:
            yield from ctx.delay(workload.start_offset_us)
            with ctx.frame("Browser!PageScript"):
                for _ in range(workload.repeats):
                    yield from renderer.submit(
                        ctx,
                        frame_create_request(machine),
                        "Browser!WaitForFrame",
                    )
                    think = round(
                        workload.think_median_us
                        * workload.activity_factor(ctx.now)
                    )
                    yield from ctx.delay(
                        exponential_us(machine.rng, max(think, 1))
                    )

        machine.spawn(script_program, "Browser", "Script")


class WebPageNavigation(BrowserWorkload):
    """Navigate to a page on the navigation controller.

    Instances live on the controller threads; this workload's UI thread
    triggers navigations (as the TabCreate workload also does for start
    pages), so navigations nest under tab creations in the traces.
    """

    spec = ScenarioSpec(
        name="WebPageNavigation",
        t_fast=300 * MILLISECONDS,
        t_slow=550 * MILLISECONDS,
        description="address-bar navigation until the page displays",
    )

    def install(self, machine: Machine) -> None:
        install_browser_workers(
            machine, self.horizon_us, self.worker_count, self.intensity
        )
        controller = navigation_controller(machine)
        workload = self

        def ui_program(ctx: ThreadContext) -> Generator:
            yield from ctx.delay(workload.start_offset_us)
            with ctx.frame("Browser!AddressBar"):
                for _ in range(workload.repeats):
                    yield from controller.submit(
                        ctx,
                        navigation_request(machine),
                        "Browser!WaitForNavigate",
                    )
                    think = round(
                        workload.think_median_us
                        * workload.activity_factor(ctx.now)
                    )
                    yield from ctx.delay(
                        exponential_us(machine.rng, max(think, 1))
                    )

        machine.spawn(ui_program, "Browser", "UI")
