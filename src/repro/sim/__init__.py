"""Synthetic kernel/driver simulator emitting ETW-shaped trace streams.

This package is the substitution for the paper's proprietary trace corpus:
a discrete-event simulation of a Windows-like machine — threads, CPU
cores, FIFO kernel locks, a hierarchical driver stack, hardware devices
and pageable memory — traced by an ETW-like observer into
:class:`~repro.trace.stream.TraceStream` objects.
"""

from repro.sim.casestudy import (
    CaseStudyResult,
    build_case_machine,
    build_hardfault_machine,
    run_case_study,
    run_hardfault_case,
)
from repro.sim.corpus import (
    CorpusConfig,
    DEFAULT_SCENARIO_WEIGHTS,
    draw_machine_config,
    generate_corpus,
    generate_stream,
)
from repro.sim.devices import QueuedDevice
from repro.sim.engine import (
    Acquire,
    Compute,
    Delay,
    Engine,
    Fire,
    HardwareIO,
    Release,
    SimThread,
    Spawn,
    ThreadContext,
    WaitFor,
)
from repro.sim.locks import Lock, Mailbox, SimEvent
from repro.sim.machine import Machine, MachineConfig
from repro.sim.memory import PagedMemory
from repro.sim.sched import (
    POLICY_NAMES,
    ConvoyPolicy,
    FifoPolicy,
    PctPolicy,
    RandomTiebreakPolicy,
    SchedulerPolicy,
    ShuffleWakeupPolicy,
    make_policy,
)
from repro.sim.tracer import Tracer

__all__ = [
    "Acquire",
    "CaseStudyResult",
    "Compute",
    "ConvoyPolicy",
    "CorpusConfig",
    "DEFAULT_SCENARIO_WEIGHTS",
    "Delay",
    "Engine",
    "FifoPolicy",
    "Fire",
    "HardwareIO",
    "Lock",
    "Machine",
    "MachineConfig",
    "Mailbox",
    "POLICY_NAMES",
    "PagedMemory",
    "PctPolicy",
    "QueuedDevice",
    "RandomTiebreakPolicy",
    "Release",
    "SchedulerPolicy",
    "ShuffleWakeupPolicy",
    "SimEvent",
    "SimThread",
    "Spawn",
    "ThreadContext",
    "Tracer",
    "WaitFor",
    "build_case_machine",
    "build_hardfault_machine",
    "draw_machine_config",
    "generate_corpus",
    "generate_stream",
    "make_policy",
    "run_case_study",
    "run_hardfault_case",
]
