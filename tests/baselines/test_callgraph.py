"""Tests for the call-graph profiling baseline."""

from repro.baselines.callgraph import CallGraphProfile, profile_corpus
from repro.trace.events import EventKind
from repro.trace.signatures import ALL_DRIVERS
from tests.conftest import make_event, make_stream


def stream_with_running(samples):
    """samples: list of (stack, cost)."""
    events = [
        make_event(EventKind.RUNNING, stack, timestamp=index * 1_000, cost=cost)
        for index, (stack, cost) in enumerate(samples)
    ]
    return make_stream(events=events)


class TestProfile:
    def test_inclusive_attributed_to_all_frames(self):
        profile = CallGraphProfile()
        profile.add_stream(stream_with_running([
            (("a!main", "b!helper"), 1_000),
        ]))
        assert profile._entry("a!main").inclusive == 1_000
        assert profile._entry("b!helper").inclusive == 1_000

    def test_exclusive_attributed_to_leaf(self):
        profile = CallGraphProfile()
        profile.add_stream(stream_with_running([
            (("a!main", "b!helper"), 1_000),
        ]))
        assert profile._entry("a!main").exclusive == 0
        assert profile._entry("b!helper").exclusive == 1_000
        assert profile._entry("b!helper").samples == 1

    def test_recursion_counted_once_inclusively(self):
        profile = CallGraphProfile()
        profile.add_stream(stream_with_running([
            (("a!f", "a!f", "a!f"), 900),
        ]))
        assert profile._entry("a!f").inclusive == 900

    def test_waits_ignored(self):
        events = [
            make_event(EventKind.WAIT, ("a!f",), timestamp=0, cost=9_000),
            make_event(EventKind.UNWAIT, ("b!g",), timestamp=9_000, cost=0,
                       tid=2, wtid=1),
        ]
        profile = CallGraphProfile()
        profile.add_stream(make_stream(events=events))
        assert profile.total_cpu == 0

    def test_top_functions_sorted(self):
        profile = CallGraphProfile()
        profile.add_stream(stream_with_running([
            (("a!cheap",), 100),
            (("b!hot",), 10_000),
        ]))
        assert profile.top_inclusive(1)[0].signature == "b!hot"
        assert profile.top_exclusive(1)[0].signature == "b!hot"

    def test_component_cpu_share(self):
        profile = CallGraphProfile()
        profile.add_stream(stream_with_running([
            (("app!Main",), 9_000),
            (("app!Main", "fs.sys!Read"), 1_000),
        ]))
        assert profile.component_cpu_share(ALL_DRIVERS) == 0.1

    def test_empty_profile_share_zero(self):
        assert CallGraphProfile().component_cpu_share(ALL_DRIVERS) == 0.0


class TestOnCorpus:
    def test_profiler_blind_to_wait_impact(self, small_corpus):
        """The paper's headline contrast: drivers' CPU share is small even
        though impact analysis shows large wait impact."""
        from repro.impact import ImpactAnalysis

        profile = profile_corpus(small_corpus)
        cpu_share = profile.component_cpu_share(ALL_DRIVERS)
        impact = ImpactAnalysis(["*.sys"]).analyze_corpus(small_corpus)
        assert cpu_share < impact.ia_wait
        assert cpu_share < 0.35
