"""Trace streams and scenario instances (paper §2.1).

A :class:`TraceStream` is the ordered sequence of tracing events recorded on
one machine during one tracing session, together with a thread table and the
scenario instances captured in the stream.  A :class:`ScenarioInstance` is
the tuple ``(TS, S, TID, t0, t1)`` from the paper: the execution of scenario
``S``, initiated by thread ``TID``, within ``[t0, t1]`` of stream ``TS``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import TraceError
from repro.trace.events import Event, EventKind

#: Process name given to device pseudo-threads: threads with this process
#: own HW_SERVICE events and emit IO-completion unwaits.  Wait Graph
#: construction uses it to pair a wait with the specific hardware service
#: that resolved it (the IRP correlation real ETW provides).
HARDWARE_PROCESS = "Hardware"


@dataclass(frozen=True, slots=True)
class ThreadInfo:
    """Identity of a simulated or recorded thread.

    ``process`` and ``name`` follow the paper's ``T_{X,Y}`` notation: the
    browser UI thread ``T_{B,UI}`` has ``process='Browser'``, ``name='UI'``.
    """

    tid: int
    process: str
    name: str

    @property
    def label(self) -> str:
        """Human-readable ``Process/Name`` label."""
        return f"{self.process}/{self.name}"


@dataclass(frozen=True)
class ScenarioInstance:
    """One execution of a scenario within a trace stream.

    The owning stream is carried as a non-compared back-reference so
    instances hash and compare by their identifying tuple only.
    """

    scenario: str
    tid: int
    t0: int
    t1: int
    stream: "TraceStream" = field(compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.t1 < self.t0:
            raise TraceError(
                f"instance of {self.scenario} ends before it starts "
                f"({self.t0}..{self.t1})"
            )

    @property
    def duration(self) -> int:
        """Recorded execution time of the instance in microseconds."""
        return self.t1 - self.t0

    @property
    def key(self) -> Tuple[str, str, int, int, int]:
        """Globally unique identity of the instance."""
        return (self.stream.stream_id, self.scenario, self.tid, self.t0, self.t1)


class _ThreadIndex:
    """Per-thread, time-sorted view over a stream's events."""

    __slots__ = ("events", "_starts")

    def __init__(self, events: List[Event]):
        self.events = events
        self._starts = [event.timestamp for event in events]

    def in_window(self, t0: int, t1: int) -> List[Event]:
        """Events of this thread whose span intersects ``[t0, t1)``.

        Events are sorted by start time; an event starting before ``t0`` may
        still overlap the window, so scan left from the bisection point past
        every event that could reach into the window.
        """
        out: List[Event] = []
        lo = bisect.bisect_left(self._starts, t0)
        # Events starting inside the window.
        for index in range(lo, len(self.events)):
            event = self.events[index]
            if event.timestamp >= t1:
                break
            out.append(event)
        # Events starting before the window but overlapping into it.
        reach_back: List[Event] = []
        for index in range(lo - 1, -1, -1):
            event = self.events[index]
            if event.end > t0:
                reach_back.append(event)
        reach_back.reverse()
        return reach_back + out


class TraceStream:
    """An ordered sequence of tracing events plus thread/instance metadata.

    Events must be supplied sorted by ``timestamp`` (ties broken by ``seq``)
    and with ``seq`` equal to their index; :meth:`from_events` normalizes
    arbitrary input.
    """

    def __init__(
        self,
        stream_id: str,
        events: Sequence[Event],
        threads: Iterable[ThreadInfo] = (),
    ):
        self.stream_id = stream_id
        self.events: List[Event] = list(events)
        self.threads: Dict[int, ThreadInfo] = {
            info.tid: info for info in threads
        }
        self.instances: List[ScenarioInstance] = []
        self._by_thread: Optional[Dict[int, _ThreadIndex]] = None
        self._unwaits_for: Optional[Dict[int, List[Event]]] = None
        for index, event in enumerate(self.events):
            if event.seq != index:
                raise TraceError(
                    f"event seq {event.seq} does not match position {index}; "
                    "use TraceStream.from_events to renumber"
                )
        for earlier, later in zip(self.events, self.events[1:]):
            if later.timestamp < earlier.timestamp:
                raise TraceError(
                    "events are not sorted by timestamp; "
                    "use TraceStream.from_events to sort"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_events(
        cls,
        stream_id: str,
        events: Iterable[Event],
        threads: Iterable[ThreadInfo] = (),
    ) -> "TraceStream":
        """Build a stream from unordered events, renumbering ``seq``."""
        ordered = sorted(events, key=lambda event: (event.timestamp, event.seq))
        renumbered = [
            Event(
                kind=event.kind,
                stack=event.stack,
                timestamp=event.timestamp,
                cost=event.cost,
                tid=event.tid,
                seq=index,
                wtid=event.wtid,
                resource=event.resource,
            )
            for index, event in enumerate(ordered)
        ]
        return cls(stream_id, renumbered, threads)

    def add_instance(
        self, scenario: str, tid: int, t0: int, t1: int
    ) -> ScenarioInstance:
        """Record a scenario instance captured in this stream."""
        instance = ScenarioInstance(
            scenario=scenario, tid=tid, t0=t0, t1=t1, stream=self
        )
        self.instances.append(instance)
        return instance

    def admits_instance(self, tid: int, t0: int, t1: int) -> bool:
        """Whether an instance window would satisfy the schema invariants.

        The lenient loaders use this to prune instance records that a
        salvaged (shortened) stream can no longer support: inverted
        windows, windows entirely outside the surviving event span, and
        initiating threads missing from the thread table.  Mirrors the
        instance checks of :func:`repro.trace.validate.collect_violations`.
        """
        if t1 < t0:
            return False
        if self.events:
            start, end = self.span
            if t1 < start or t0 > end:
                return False
        if self.threads and tid not in self.threads:
            return False
        return True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    @property
    def span(self) -> Tuple[int, int]:
        """(first start, last end) over all events; (0, 0) when empty."""
        if not self.events:
            return (0, 0)
        first = self.events[0].timestamp
        last = max(event.end for event in self.events)
        return (first, last)

    def thread_info(self, tid: int) -> ThreadInfo:
        """Thread metadata, synthesizing a placeholder for unknown tids."""
        info = self.threads.get(tid)
        if info is None:
            info = ThreadInfo(tid=tid, process="?", name=f"tid{tid}")
        return info

    def _thread_indexes(self) -> Dict[int, _ThreadIndex]:
        if self._by_thread is None:
            buckets: Dict[int, List[Event]] = {}
            for event in self.events:
                buckets.setdefault(event.tid, []).append(event)
            self._by_thread = {
                tid: _ThreadIndex(bucket) for tid, bucket in buckets.items()
            }
        return self._by_thread

    def events_of_thread(
        self, tid: int, t0: Optional[int] = None, t1: Optional[int] = None
    ) -> List[Event]:
        """Events triggered by one thread, optionally windowed."""
        index = self._thread_indexes().get(tid)
        if index is None:
            return []
        if t0 is None and t1 is None:
            return list(index.events)
        start, end = self.span
        window_start = start if t0 is None else t0
        window_end = end if t1 is None else t1
        return index.in_window(window_start, window_end)

    def unwaits_targeting(
        self, tid: int, t0: Optional[int] = None, t1: Optional[int] = None
    ) -> List[Event]:
        """Unwait events whose ``wtid`` is the given thread, windowed."""
        if self._unwaits_for is None:
            table: Dict[int, List[Event]] = {}
            for event in self.events:
                if event.kind is EventKind.UNWAIT and event.wtid is not None:
                    table.setdefault(event.wtid, []).append(event)
            self._unwaits_for = table
        candidates = self._unwaits_for.get(tid, [])
        if t0 is None and t1 is None:
            return list(candidates)
        out = []
        for event in candidates:
            if t0 is not None and event.timestamp < t0:
                continue
            if t1 is not None and event.timestamp > t1:
                continue
            out.append(event)
        return out

    def events_of_kind(self, kind: EventKind) -> List[Event]:
        """All events of one kind, in stream order."""
        return [event for event in self.events if event.kind is kind]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceStream(id={self.stream_id!r}, events={len(self.events)}, "
            f"threads={len(self.threads)}, instances={len(self.instances)})"
        )
