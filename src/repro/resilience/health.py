"""Run-health accounting for fault-isolated corpus runs.

A hostile corpus — truncated captures, bit-rotted sections, garbage
files, traces that crash a worker — must not abort a run, but it also
must not fail *silently*: every drop, salvage and retry is recorded.
:class:`TraceFailure` is the structured record of one trace-level
incident; :class:`RunHealth` aggregates them with executor-level
counters (retries, worker restarts, sequential fallbacks) into the
report surfaced by ``--verbose``, ``repro corpus doctor`` and the
``--health-json`` CI sidecar.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Union

from repro.errors import ConfigError

#: The three ingestion/error policies of the fault-isolation layer.
ON_ERROR_POLICIES = ("strict", "skip", "salvage")


def validate_on_error(policy: str) -> str:
    """Return ``policy`` if it is a known ``on_error`` value, else raise.

    Shared by the CLI flag validation and the pipeline entry points so
    both reject unknown policies with the same :class:`ConfigError`
    message style as the ``--workers``/``--chunk-size`` checks.
    """
    if policy not in ON_ERROR_POLICIES:
        raise ConfigError(
            f"--on-error must be one of {', '.join(ON_ERROR_POLICIES)}, "
            f"got {policy!r}"
        )
    return policy


def validate_max_retries(max_retries: int) -> int:
    """Return ``max_retries`` if it is a usable retry budget, else raise."""
    if max_retries < 0:
        raise ConfigError(
            f"--max-retries must be >= 0, got {max_retries} "
            "(0 = no retries, N = N extra attempts per chunk)"
        )
    return max_retries


@dataclass(frozen=True)
class TraceFailure:
    """One trace-level incident recorded during a fault-isolated run.

    ``action`` says how the run proceeded:

    * ``"skipped"`` — the trace was dropped (unreadable, or its analysis
      raised under the ``skip`` policy);
    * ``"salvaged"`` — a valid prefix of a damaged trace was recovered
      and analyzed in place of the full stream;
    * ``"quarantined"`` — the trace persistently crashed workers and was
      dropped after retry/bisection exhausted the budget.
    """

    source: str
    #: which layer hit the problem: ``"ingest"`` (loading/parsing),
    #: ``"analysis"`` (wait-graph construction and accumulation) or
    #: ``"executor"`` (worker process death).
    stage: str
    action: str
    error: str
    error_type: str

    def to_json(self) -> Dict[str, str]:
        """A plain-dict rendering for the JSON sidecar."""
        return asdict(self)


@dataclass
class RunHealth:
    """Aggregate health of one pipeline run over a (possibly hostile) corpus.

    Filled in place by the parallel entry points when passed via their
    ``health=`` keyword, exactly like ``MapPhaseStats`` — the analysis
    result itself is unaffected.
    """

    #: streams that contributed to the result (salvaged ones included).
    analyzed: int = 0
    skipped: int = 0
    salvaged: int = 0
    quarantined: int = 0
    #: chunk attempts beyond the first (includes innocent chunks whose
    #: pool a poison neighbour tore down).
    retries: int = 0
    #: process pools torn down by worker death and rebuilt.
    worker_restarts: int = 0
    #: single-trace chunks that fell back to in-process execution after
    #: exhausting their retry budget.
    sequential_fallbacks: int = 0
    failures: List[TraceFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every trace was analyzed un-salvaged, no recovery used."""
        return not self.failures and self.retries == 0

    def record_failure(self, failure: TraceFailure) -> None:
        """Append one incident and bump its action counter."""
        self.failures.append(failure)
        if failure.action == "skipped":
            self.skipped += 1
        elif failure.action == "salvaged":
            self.salvaged += 1
        elif failure.action == "quarantined":
            self.quarantined += 1

    def summary(self) -> str:
        """The one-line human-readable rendering (``--verbose`` stderr)."""
        line = (
            f"run health: {self.analyzed} analyzed, {self.skipped} skipped, "
            f"{self.salvaged} salvaged, {self.quarantined} quarantined"
        )
        if self.retries or self.worker_restarts or self.sequential_fallbacks:
            line += (
                f" [retries={self.retries} "
                f"worker_restarts={self.worker_restarts} "
                f"sequential_fallbacks={self.sequential_fallbacks}]"
            )
        return line

    def to_json(self) -> Dict:
        """A plain-dict rendering for the ``--health-json`` sidecar."""
        return {
            "analyzed": self.analyzed,
            "skipped": self.skipped,
            "salvaged": self.salvaged,
            "quarantined": self.quarantined,
            "retries": self.retries,
            "worker_restarts": self.worker_restarts,
            "sequential_fallbacks": self.sequential_fallbacks,
            "failures": [failure.to_json() for failure in self.failures],
        }

    def write_json(self, path: Union[str, os.PathLike]) -> None:
        """Write the JSON sidecar (used by the hostile-corpus CI gate)."""
        with open(os.fspath(path), "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_json(cls, data: Dict) -> "RunHealth":
        """Rebuild a health report from its sidecar dict."""
        health = cls(
            analyzed=int(data.get("analyzed", 0)),
            skipped=int(data.get("skipped", 0)),
            salvaged=int(data.get("salvaged", 0)),
            quarantined=int(data.get("quarantined", 0)),
            retries=int(data.get("retries", 0)),
            worker_restarts=int(data.get("worker_restarts", 0)),
            sequential_fallbacks=int(data.get("sequential_fallbacks", 0)),
        )
        for record in data.get("failures", []):
            health.failures.append(TraceFailure(**record))
        return health


def failure_from_exception(
    source: str,
    stage: str,
    action: str,
    error: BaseException,
    note: Optional[str] = None,
) -> TraceFailure:
    """Build a :class:`TraceFailure` from a caught exception."""
    message = str(error) or error.__class__.__name__
    if note:
        message = f"{note}: {message}"
    return TraceFailure(
        source=str(source),
        stage=stage,
        action=action,
        error=message,
        error_type=error.__class__.__name__,
    )
