"""Critical-path extraction from Wait Graphs.

The motivating example explains a delay as a numbered chain of
propagation hops — "(1) se.sys propagates the disk time ... (6) T_{B,W0}
propagates its delay ... to T_{B,UI}" (Figure 1).  This module makes that
chain a first-class object: from a Wait Graph, extract the *critical
path* — the chain of wait events (ending in a running or hardware leaf)
that accounts for the largest share of the instance's delay — with one
:class:`PropagationHop` per edge, ready to print exactly like the paper's
annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.trace.events import Event, EventKind
from repro.trace.signatures import ComponentFilter
from repro.units import format_duration
from repro.waitgraph.graph import WaitGraph


@dataclass(frozen=True)
class PropagationHop:
    """One hop of a propagation chain: who waited, on what, for how long."""

    event: Event
    thread_label: str
    signature: str
    cost: int

    def describe(self) -> str:
        kind = {
            EventKind.WAIT: "waited in",
            EventKind.RUNNING: "ran",
            EventKind.HW_SERVICE: "hardware service",
        }[self.event.kind]
        return (
            f"{self.thread_label} {kind} {self.signature} "
            f"for {format_duration(self.cost)}"
        )


@dataclass
class CriticalPath:
    """The heaviest root-to-leaf chain of one scenario instance."""

    hops: List[PropagationHop]
    total_cost: int
    instance_duration: int

    @property
    def depth(self) -> int:
        return len(self.hops)

    @property
    def share_of_instance(self) -> float:
        if not self.instance_duration:
            return 0.0
        return min(1.0, self.hops[0].cost / self.instance_duration) if self.hops else 0.0

    def describe(self) -> str:
        """The Figure 1-style numbered chain, innermost cause first."""
        lines = []
        for number, hop in enumerate(reversed(self.hops), start=1):
            lines.append(f"({number}) {hop.describe()}")
        return "\n".join(lines)


def _signature_of(
    event: Event, component_filter: Optional[ComponentFilter]
) -> str:
    if component_filter is not None:
        match = component_filter.component_signature(event.stack)
        if match:
            return match
    return event.leaf or "<hardware>"


def critical_path(
    graph: WaitGraph,
    component_filter: Optional[ComponentFilter] = None,
) -> CriticalPath:
    """Extract the costliest wait chain of a Wait Graph.

    From each root wait, follow the child with the largest cost
    (recursively, memoized over the DAG) down to a leaf; pick the overall
    heaviest chain.  Running/hardware leaves terminate chains; a wait
    without children terminates too (unresolved wait).
    """
    stream = graph.instance.stream
    memo: Dict[int, Tuple[int, List[Event]]] = {}

    def best_chain(event: Event, on_path: frozenset) -> Tuple[int, List[Event]]:
        if event.seq in memo:
            return memo[event.seq]
        if event.seq in on_path:  # defensive
            return (event.cost, [event])
        children = (
            graph.children(event) if event.kind is EventKind.WAIT else []
        )
        # A chain is weighted by its head's cost — the head wait's
        # duration already contains the nested costs, so summing along
        # the chain would double count.  Descend into the child whose own
        # cost is largest (the dominant constituent of this wait).
        best: Tuple[int, List[Event]] = (0, [])
        for child in children:
            child_cost, child_chain = best_chain(
                child, on_path | {event.seq}
            )
            if child_cost > best[0]:
                best = (child_cost, child_chain)
        result = (event.cost, [event] + best[1])
        memo[event.seq] = result
        return result

    overall: Tuple[int, List[Event]] = (0, [])
    for root in graph.roots:
        if root.kind is not EventKind.WAIT:
            continue
        cost, chain = best_chain(root, frozenset())
        if cost > overall[0]:
            overall = (cost, chain)

    hops = [
        PropagationHop(
            event=event,
            thread_label=stream.thread_info(event.tid).label,
            signature=_signature_of(event, component_filter),
            cost=event.cost,
        )
        for event in overall[1]
    ]
    return CriticalPath(
        hops=hops,
        total_cost=overall[0],
        instance_duration=graph.instance.duration,
    )
