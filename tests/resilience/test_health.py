"""Tests for run-health accounting and the resilience policy validators."""

import json

import pytest

from repro.errors import ConfigError
from repro.resilience import (
    ON_ERROR_POLICIES,
    RunHealth,
    TraceFailure,
    failure_from_exception,
    validate_max_retries,
    validate_on_error,
)


class TestValidators:
    @pytest.mark.parametrize("policy", ON_ERROR_POLICIES)
    def test_known_policies_pass_through(self, policy):
        assert validate_on_error(policy) == policy

    @pytest.mark.parametrize("policy", ["", "lenient", "Strict", None])
    def test_unknown_policies_rejected(self, policy):
        with pytest.raises(ConfigError, match="--on-error must be one of"):
            validate_on_error(policy)

    @pytest.mark.parametrize("retries", [0, 1, 7])
    def test_retry_budgets_pass_through(self, retries):
        assert validate_max_retries(retries) == retries

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError, match="--max-retries must be >= 0"):
            validate_max_retries(-1)


class TestTraceFailure:
    def test_from_exception_captures_type_and_message(self):
        failure = failure_from_exception(
            "corpus/a.jsonl", "ingest", "skipped", ValueError("boom")
        )
        assert failure.source == "corpus/a.jsonl"
        assert failure.stage == "ingest"
        assert failure.action == "skipped"
        assert failure.error == "boom"
        assert failure.error_type == "ValueError"

    def test_empty_message_falls_back_to_class_name(self):
        failure = failure_from_exception("t", "analysis", "skipped", OSError())
        assert failure.error == "OSError"

    def test_note_prefixes_message(self):
        failure = failure_from_exception(
            "t", "ingest", "salvaged", ValueError("bad"), note="while loading"
        )
        assert failure.error.startswith("while loading: ")

    def test_to_json_is_plain_data(self):
        failure = failure_from_exception(
            "t", "ingest", "skipped", ValueError("x")
        )
        assert json.loads(json.dumps(failure.to_json())) == failure.to_json()


class TestRunHealth:
    def test_fresh_health_is_ok(self):
        health = RunHealth()
        assert health.ok
        assert health.analyzed == 0

    def test_record_failure_bumps_action_counter(self):
        health = RunHealth()
        health.record_failure(failure_from_exception(
            "a", "ingest", "skipped", ValueError("x")))
        health.record_failure(failure_from_exception(
            "b", "ingest", "salvaged", ValueError("y")))
        health.record_failure(failure_from_exception(
            "c", "analysis", "quarantined", ValueError("z")))
        assert (health.skipped, health.salvaged, health.quarantined) == (1, 1, 1)
        assert len(health.failures) == 3
        assert not health.ok

    def test_any_failure_breaks_ok(self):
        health = RunHealth()
        health.record_failure(failure_from_exception(
            "a", "ingest", "salvaged", ValueError("x")))
        assert not health.ok

    def test_retries_alone_break_ok(self):
        health = RunHealth()
        health.retries = 1
        assert not health.ok

    def test_summary_mentions_every_counter(self):
        health = RunHealth()
        health.analyzed = 5
        text = health.summary()
        assert "5 analyzed" in text
        assert "skipped" in text and "salvaged" in text

    def test_json_round_trip(self, tmp_path):
        health = RunHealth()
        health.analyzed = 3
        health.retries = 2
        health.worker_restarts = 1
        health.record_failure(failure_from_exception(
            "a", "ingest", "skipped", ValueError("x")))
        path = tmp_path / "health.json"
        health.write_json(path)
        restored = RunHealth.from_json(json.loads(path.read_text()))
        assert restored.analyzed == 3
        assert restored.retries == 2
        assert restored.worker_restarts == 1
        assert restored.skipped == 1
        assert restored.failures[0].source == "a"
