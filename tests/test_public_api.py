"""The public API surface: every advertised name exists and resolves."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.trace",
    "repro.sim",
    "repro.sim.explore",
    "repro.sim.sched",
    "repro.sim.workloads",
    "repro.waitgraph",
    "repro.impact",
    "repro.causality",
    "repro.baselines",
    "repro.evaluation",
    "repro.report",
    "repro.resilience",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_is_sorted_unique(package_name):
    package = importlib.import_module(package_name)
    names = list(package.__all__)
    assert len(names) == len(set(names)), f"{package_name} has duplicates"


def test_version():
    import repro

    assert repro.__version__


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_items_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    for name in package.__all__:
        item = getattr(package, name)
        if callable(item) or isinstance(item, type):
            assert item.__doc__, f"{package_name}.{name} lacks a docstring"
