"""§5.1 — Impact analysis of device drivers over the whole corpus.

Paper numbers: IA_wait ≈ 36.4%, IA_run ≈ 1.6%, IA_opt ≈ 26%,
D_wait / D_waitdist ≈ 3.5.  On the synthetic corpus the *shape* must
hold: drivers dominate wait time rather than CPU time; a substantial
share of driver wait time is introduced by cost propagation; each
distinct driver wait affects more than one scenario instance on average.
"""

from benchmarks.conftest import print_banner
from repro.impact import ImpactAnalysis
from repro.report.tables import Table, fmt_pct, fmt_ratio

PAPER = {
    "IA_wait": 0.364,
    "IA_run": 0.016,
    "IA_opt": 0.26,
    "wait multiplicity": 3.5,
}


def test_bench_impact_analysis(benchmark, bench_corpus):
    analysis = ImpactAnalysis(["*.sys"])

    def run():
        # Fresh analysis per round so the graph cache does not turn later
        # rounds into lookups.
        return ImpactAnalysis(["*.sys"]).analyze_corpus(bench_corpus)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    print_banner("Section 5.1 - Impact analysis on device drivers (*.sys)")
    table = Table(["Metric", "Paper", "Measured"])
    measured = {
        "IA_wait": result.ia_wait,
        "IA_run": result.ia_run,
        "IA_opt": result.ia_opt,
        "wait multiplicity": result.wait_multiplicity,
    }
    for metric, paper_value in PAPER.items():
        if metric == "wait multiplicity":
            table.add_row(metric, fmt_ratio(paper_value), fmt_ratio(measured[metric]))
        else:
            table.add_row(metric, fmt_pct(paper_value), fmt_pct(measured[metric]))
    table.add_row("instances analyzed", "505,500", f"{result.graphs:,}")
    print(table.render())

    # Shape assertions (who wins, by roughly what factor).
    assert result.ia_wait > 0.2, "drivers must dominate wait time"
    assert result.ia_run < result.ia_wait / 3, "drivers must not dominate CPU"
    assert result.ia_opt > 0.0, "cost propagation must be visible"
    assert result.wait_multiplicity > 1.1, (
        "distinct driver waits must affect more than one instance"
    )
