"""Signature Set Tuples (paper Definition 5).

A Signature Set Tuple (SST) generalizes the runtime interactions along a
path segment of an Aggregated Wait Graph into three signature sets:

* the **wait** set — signatures that caused threads to suspend;
* the **unwait** set — signatures that signalled suspended threads;
* the **running** set — signatures of the running (or hardware-service)
  operations whose cost propagated through the unwait→wait direction.

Sets (rather than sequences) deliberately merge execution-order variants
of the same propagation structure: two drivers contending a resource held
by a third produce the same SST regardless of who acquired it first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence, Tuple

from repro.waitgraph.aggregate import HARDWARE, RUNNING, WAITING, AwgNode


@dataclass(frozen=True)
class SignatureSetTuple:
    """The three-set pattern representation of causality analysis."""

    wait_signatures: FrozenSet[str]
    unwait_signatures: FrozenSet[str]
    running_signatures: FrozenSet[str]

    @classmethod
    def from_segment(cls, segment: Sequence[AwgNode]) -> "SignatureSetTuple":
        """Build the SST of a path segment: ``⟨⋃v.w, ⋃v.u, ⋃v.r⟩``."""
        waits = set()
        unwaits = set()
        runnings = set()
        for node in segment:
            if node.status == WAITING:
                if node.wait_sig:
                    waits.add(node.wait_sig)
                if node.unwait_sig:
                    unwaits.add(node.unwait_sig)
            elif node.status in (RUNNING, HARDWARE):
                if node.run_sig:
                    runnings.add(node.run_sig)
        return cls(frozenset(waits), frozenset(unwaits), frozenset(runnings))

    def contains(self, other: "SignatureSetTuple") -> bool:
        """Component-wise superset test (used to match meta-patterns)."""
        return (
            other.wait_signatures <= self.wait_signatures
            and other.unwait_signatures <= self.unwait_signatures
            and other.running_signatures <= self.running_signatures
        )

    @property
    def all_signatures(self) -> FrozenSet[str]:
        """Union of the three sets (used for driver-type categorization)."""
        return (
            self.wait_signatures
            | self.unwait_signatures
            | self.running_signatures
        )

    @property
    def size(self) -> int:
        """Total number of signatures across the three sets."""
        return (
            len(self.wait_signatures)
            + len(self.unwait_signatures)
            + len(self.running_signatures)
        )

    def render(self, indent: str = "") -> str:
        """Multi-line rendering in the paper's §2.3 presentation style."""

        def fmt(signatures: Iterable[str]) -> str:
            return "{" + ", ".join(sorted(signatures)) + "}"

        return (
            f"{indent}wait signatures    : {fmt(self.wait_signatures)}\n"
            f"{indent}unwait signatures  : {fmt(self.unwait_signatures)}\n"
            f"{indent}running signatures : {fmt(self.running_signatures)}"
        )

    def sort_key(self) -> Tuple:
        """Deterministic ordering key (for stable reports and tests)."""
        return (
            tuple(sorted(self.wait_signatures)),
            tuple(sorted(self.unwait_signatures)),
            tuple(sorted(self.running_signatures)),
        )
