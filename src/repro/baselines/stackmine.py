"""StackMine-style costly-pattern mining baseline (paper [16], §6).

StackMine — the authors' prior work this paper complements — mines costly
*callstack patterns* from wait events: recurring within-thread stack
shapes that account for much execution time.  It captures *within-thread*
behaviour; the paper's contribution adds *cross-thread* contrast patterns
(who unwaited whom, what ran meanwhile).

This simplified implementation clusters the slow class's wait events by
the component-frame suffix of their callstacks and ranks clusters by
total cost.  Comparing its output with the causality analysis on the same
instances shows exactly what the cross-thread view adds: StackMine sees
``fv.sys!QueryFileTable`` waits are expensive, but only the Signature Set
Tuple links them to the MDU region and the storage stack below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.trace.events import EventKind
from repro.trace.signatures import ComponentFilter
from repro.trace.stream import ScenarioInstance


@dataclass
class StackPattern:
    """A recurring costly callstack shape among wait events."""

    suffix: Tuple[str, ...]  # component-relevant stack suffix
    total_cost: int = 0
    occurrences: int = 0
    max_cost: int = 0

    @property
    def mean_cost(self) -> float:
        return self.total_cost / self.occurrences if self.occurrences else 0.0

    @property
    def label(self) -> str:
        return " / ".join(self.suffix)


def _component_suffix(
    stack: Sequence[str], component_filter: ComponentFilter
) -> Tuple[str, ...]:
    """The stack suffix starting at the outermost component frame.

    ``(Browser!TabCreate, kernel!OpenFile, fv.sys!Q, kernel!AcquireLock)``
    with filter ``*.sys`` yields ``(fv.sys!Q, kernel!AcquireLock)``.
    """
    for index, frame in enumerate(stack):
        if component_filter.matches_signature(frame):
            return tuple(stack[index:])
    return ()


class StackMineAnalysis:
    """Within-thread costly-pattern mining over wait events."""

    def __init__(self, component_patterns: Sequence[str] = ("*.sys",)):
        self.component_filter = ComponentFilter(component_patterns)
        self._patterns: Dict[Tuple[str, ...], StackPattern] = {}
        self.total_wait_cost = 0

    def add_instances(self, instances: Iterable[ScenarioInstance]) -> None:
        """Mine the wait events inside the given instances' windows."""
        for instance in instances:
            stream = instance.stream
            for event in stream.events_of_thread(
                instance.tid, instance.t0, instance.t1
            ):
                self._add_event(event)

    def add_events(self, events: Iterable) -> None:
        for event in events:
            self._add_event(event)

    def _add_event(self, event) -> None:
        if event.kind is not EventKind.WAIT:
            return
        suffix = _component_suffix(event.stack, self.component_filter)
        if not suffix:
            return
        pattern = self._patterns.get(suffix)
        if pattern is None:
            pattern = StackPattern(suffix)
            self._patterns[suffix] = pattern
        pattern.total_cost += event.cost
        pattern.occurrences += 1
        pattern.max_cost = max(pattern.max_cost, event.cost)
        self.total_wait_cost += event.cost

    def top_patterns(self, count: int = 10) -> List[StackPattern]:
        """Costliest stack patterns, highest total cost first."""
        return sorted(
            self._patterns.values(),
            key=lambda pattern: (-pattern.total_cost, pattern.suffix),
        )[:count]

    def coverage_of_top(self, count: int = 10) -> float:
        """Share of total mined wait cost the top patterns explain."""
        if not self.total_wait_cost:
            return 0.0
        covered = sum(p.total_cost for p in self.top_patterns(count))
        return covered / self.total_wait_cost


def mine_stack_patterns(
    instances: Iterable[ScenarioInstance],
    component_patterns: Sequence[str] = ("*.sys",),
) -> StackMineAnalysis:
    """Run the StackMine-style baseline over scenario instances."""
    analysis = StackMineAnalysis(component_patterns)
    analysis.add_instances(instances)
    return analysis
