"""Pipeline micro-benchmarks: throughput of each analysis stage.

Not a paper table — these quantify the cost of trace generation, Wait
Graph construction, aggregation and mining so corpus sizes can be chosen
for a time budget (the paper processed 19,500 traces / 339 hours).
"""

import os
import time

import pytest

from benchmarks.conftest import BENCH_SEED, print_banner
from repro.causality.mining import enumerate_meta_patterns
from repro.pipeline import parallel_impact, parallel_study
from repro.report.markdown import study_to_markdown
from repro.sim.corpus import CorpusConfig, generate_corpus, generate_stream
from repro.trace.serialization import (
    dump_corpus,
    dumps_stream,
    iter_corpus_paths,
    loads_stream,
)
from repro.trace.signatures import ALL_DRIVERS
from repro.waitgraph.aggregate import aggregate_wait_graphs
from repro.waitgraph.builder import build_wait_graph


def test_bench_trace_generation(benchmark):
    config = CorpusConfig(streams=1, seed=99)
    stream = benchmark.pedantic(
        lambda: generate_stream(0, config), rounds=3, iterations=1
    )
    print_banner("Perf - one trace stream")
    print(f"events={len(stream.events)} instances={len(stream.instances)}")
    assert len(stream.events) > 100


def test_bench_serialization_roundtrip(benchmark, bench_corpus):
    stream = bench_corpus[0]

    def roundtrip():
        return loads_stream(dumps_stream(stream))

    restored = benchmark(roundtrip)
    assert restored.events == stream.events


def test_bench_wait_graph_construction(benchmark, bench_corpus):
    stream = max(bench_corpus, key=lambda s: len(s.instances))

    def build_all():
        return [build_wait_graph(i) for i in stream.instances]

    graphs = benchmark(build_all)
    assert len(graphs) == len(stream.instances)


def test_bench_awg_aggregation(benchmark, bench_corpus):
    instances = [
        instance
        for stream in bench_corpus[:8]
        for instance in stream.instances
    ]
    graphs = [build_wait_graph(instance) for instance in instances]

    def aggregate():
        return aggregate_wait_graphs(graphs, ALL_DRIVERS)

    awg = benchmark(aggregate)
    assert awg.source_graphs == len(graphs)


def test_bench_meta_pattern_enumeration(benchmark, bench_corpus):
    instances = [
        instance
        for stream in bench_corpus[:8]
        for instance in stream.instances
    ]
    graphs = [build_wait_graph(instance) for instance in instances]
    awg = aggregate_wait_graphs(graphs, ALL_DRIVERS)

    def mine():
        return enumerate_meta_patterns(awg, k=5)

    patterns = benchmark(mine)
    assert patterns


# --- Parallel map-reduce pipeline: sequential vs. 1/2/4 workers ---------

PARALLEL_STREAMS = int(os.environ.get("REPRO_BENCH_PARALLEL_STREAMS", "40"))
PARALLEL_WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def parallel_corpus_paths(tmp_path_factory):
    corpus = generate_corpus(
        CorpusConfig(streams=PARALLEL_STREAMS, seed=BENCH_SEED)
    )
    directory = tmp_path_factory.mktemp("bench-parallel-corpus")
    dump_corpus(corpus, directory)
    return iter_corpus_paths(directory)


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def test_bench_parallel_generation_scaling():
    config = CorpusConfig(streams=PARALLEL_STREAMS, seed=BENCH_SEED)
    rows = []
    for workers in PARALLEL_WORKER_COUNTS:
        corpus, elapsed = _timed(lambda: generate_corpus(config, workers=workers))
        rows.append((workers, elapsed, len(corpus)))
    base = rows[0][1]
    print_banner(f"Perf - corpus generation ({PARALLEL_STREAMS} streams)")
    print(f"{'workers':>7}  {'seconds':>8}  {'speedup':>7}")
    for workers, elapsed, _ in rows:
        print(f"{workers:>7}  {elapsed:>8.2f}  {base / elapsed:>6.2f}x")
    assert all(count == PARALLEL_STREAMS for _, _, count in rows)


def test_bench_parallel_study_scaling(parallel_corpus_paths):
    """Map-reduce study at 1/2/4 workers: identical tables, wall-clock speedup.

    Speedup is printed, not asserted — it tracks the host's core count
    (single-core CI boxes will show ~1.0x; the >=2x acceptance target
    needs a 4-core machine).
    """
    results = {}
    timings = []
    for workers in PARALLEL_WORKER_COUNTS:
        study, elapsed = _timed(
            lambda: parallel_study(parallel_corpus_paths, workers=workers)
        )
        results[workers] = study_to_markdown(study)
        timings.append((workers, elapsed))
    base = timings[0][1]
    print_banner(f"Perf - map-reduce study ({PARALLEL_STREAMS} streams)")
    print(f"{'workers':>7}  {'seconds':>8}  {'speedup':>7}")
    for workers, elapsed in timings:
        print(f"{workers:>7}  {elapsed:>8.2f}  {base / elapsed:>6.2f}x")
    # Determinism is non-negotiable at any worker count.
    for workers in PARALLEL_WORKER_COUNTS[1:]:
        assert results[workers] == results[PARALLEL_WORKER_COUNTS[0]]


def test_bench_parallel_impact_scaling(parallel_corpus_paths):
    results = {}
    timings = []
    for workers in PARALLEL_WORKER_COUNTS:
        result, elapsed = _timed(
            lambda: parallel_impact(parallel_corpus_paths, workers=workers)
        )
        results[workers] = result
        timings.append((workers, elapsed))
    base = timings[0][1]
    print_banner(f"Perf - map-reduce impact ({PARALLEL_STREAMS} streams)")
    print(f"{'workers':>7}  {'seconds':>8}  {'speedup':>7}")
    for workers, elapsed in timings:
        print(f"{workers:>7}  {elapsed:>8.2f}  {base / elapsed:>6.2f}x")
    for workers in PARALLEL_WORKER_COUNTS[1:]:
        assert results[workers] == results[PARALLEL_WORKER_COUNTS[0]]
