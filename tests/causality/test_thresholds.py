"""Tests for threshold suggestion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.causality.thresholds import (
    suggest_for_corpus,
    suggest_for_instances,
    suggest_thresholds,
)
from repro.errors import AnalysisError
from tests.conftest import make_event, make_stream


class TestSuggestThresholds:
    def test_basic_quantiles(self):
        durations = list(range(1, 101))  # 1..100
        suggestion = suggest_thresholds(durations, "S")
        assert suggestion.t_fast == 41
        assert suggestion.t_slow >= 71
        assert suggestion.sample_size == 100

    def test_gap_enforced_on_tight_distribution(self):
        durations = [100] * 50 + [101] * 50
        suggestion = suggest_thresholds(durations, "S")
        assert suggestion.t_slow >= suggestion.t_fast * 1.5

    def test_needs_enough_samples(self):
        with pytest.raises(AnalysisError, match="at least 10"):
            suggest_thresholds([1, 2, 3], "S")

    def test_quantile_validation(self):
        with pytest.raises(AnalysisError):
            suggest_thresholds(list(range(100)), "S",
                               fast_quantile=0.8, slow_quantile=0.5)

    def test_fractions_reported(self):
        durations = list(range(1, 101))
        suggestion = suggest_thresholds(durations, "S")
        assert 0.0 < suggestion.fast_fraction < 1.0
        assert 0.0 <= suggestion.slow_fraction < 1.0

    @given(st.lists(st.integers(1, 10**7), min_size=10, max_size=200))
    def test_invariants_hold_for_any_distribution(self, durations):
        suggestion = suggest_thresholds(durations, "S")
        assert suggestion.t_fast < suggestion.t_slow
        assert suggestion.gap > 0
        assert suggestion.t_fast >= 1


class TestInstanceHelpers:
    def build_instances(self, durations, scenario="S"):
        stream = make_stream(events=[make_event(cost=100_000_000)])
        return [
            stream.add_instance(scenario, tid=1, t0=0, t1=duration)
            for duration in durations
        ]

    def test_suggest_for_instances(self):
        instances = self.build_instances(list(range(1, 51)))
        suggestion = suggest_for_instances(instances)
        assert suggestion.scenario == "S"
        assert suggestion.sample_size == 50

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            suggest_for_instances([])

    def test_rejects_mixed_scenarios(self):
        mixed = self.build_instances([10] * 10, "A") + self.build_instances(
            [20] * 10, "B"
        )
        with pytest.raises(AnalysisError, match="multiple scenarios"):
            suggest_for_instances(mixed)

    def test_suggest_for_corpus(self, small_corpus):
        suggestions = suggest_for_corpus(small_corpus)
        assert suggestions
        for suggestion in suggestions:
            assert suggestion.t_fast < suggestion.t_slow
            assert suggestion.sample_size >= 10

    def test_min_samples_filter(self, small_corpus):
        strict = suggest_for_corpus(small_corpus, min_samples=10**6)
        assert strict == []
