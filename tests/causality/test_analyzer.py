"""End-to-end causality analysis tests on engineered machines."""

import pytest

from repro.causality.analyzer import CausalityAnalysis
from repro.errors import AnalysisError
from repro.sim.machine import Machine, MachineConfig
from repro.units import MILLISECONDS as MS


def engineered_instances(slow_iterations=4, fast_iterations=6):
    """A machine producing clearly fast and clearly slow instances.

    Fast instances: cached fv query (microseconds).  Slow instances: a
    contended fv->fs->disk chain behind a worker holding the lock across
    a big read — the Figure 1 propagation shape.
    """
    machine = Machine("eng", MachineConfig(
        seed=2,
        file_table_lock_count=1,
        mdu_lock_count=1,
        disk_read_median_us=20_000,
        hard_fault_rate=0.0,
    ))

    def ui_program(ctx):
        with ctx.frame("Browser!UIThread"):
            for index in range(fast_iterations + slow_iterations):
                slow = index >= fast_iterations
                with ctx.scenario("TabOpen"):
                    with ctx.frame("kernel!OpenFile"):
                        yield from machine.fv.query_file_table(
                            ctx, 0, resolve=slow, cached=not slow,
                            size_factor=4.0,
                        )
                yield from ctx.delay(60 * MS)

    def interferer(ctx):
        with ctx.frame("Browser!Worker"):
            while ctx.now < 2_000_000:
                with ctx.frame("kernel!CreateFile"):
                    yield from machine.fv.query_file_table(
                        ctx, 0, resolve=True, cached=False, size_factor=4.0
                    )
                yield from ctx.delay(10 * MS)

    machine.spawn(ui_program, "Browser", "UI")
    machine.spawn(interferer, "Browser", "W0", start_at=1 * MS)
    stream = machine.run_and_trace(until=5_000_000)
    return [i for i in stream.instances if i.scenario == "TabOpen"]


class TestEndToEnd:
    def test_requires_instances(self):
        with pytest.raises(AnalysisError):
            CausalityAnalysis(["*.sys"]).analyze([], 100, 300)

    def test_segment_bound_validated(self):
        with pytest.raises(AnalysisError):
            CausalityAnalysis(["*.sys"], segment_bound=0)

    def test_discovers_propagation_pattern(self):
        instances = engineered_instances()
        report = CausalityAnalysis(["*.sys"]).analyze(
            instances, t_fast=5 * MS, t_slow=20 * MS, scenario="TabOpen"
        )
        assert report.classes.fast
        assert report.classes.slow
        assert report.patterns, "no contrast patterns discovered"
        top = report.patterns[0]
        waits = top.sst.wait_signatures
        # The propagation chain shows the fv wait signature; the chain
        # below it surfaces fs/se behaviour in the pattern's union.
        assert any("fv.sys" in s for s in waits)
        union = top.sst.all_signatures
        assert any("fs.sys" in s or "se.sys" in s for s in union)

    def test_report_summary_and_top(self):
        instances = engineered_instances()
        report = CausalityAnalysis(["*.sys"]).analyze(
            instances, t_fast=5 * MS, t_slow=20 * MS, scenario="TabOpen"
        )
        assert "TabOpen" in report.summary()
        assert len(report.top(1)) == 1
        assert report.top(1)[0] is report.patterns[0]

    def test_ranked_by_impact(self):
        instances = engineered_instances()
        report = CausalityAnalysis(["*.sys"]).analyze(
            instances, t_fast=5 * MS, t_slow=20 * MS, scenario="TabOpen"
        )
        impacts = [pattern.impact for pattern in report.patterns]
        assert impacts == sorted(impacts, reverse=True)

    def test_graph_cache_shared(self):
        instances = engineered_instances()
        cache = {}
        analysis = CausalityAnalysis(["*.sys"])
        analysis.analyze(
            instances, 5 * MS, 20 * MS, scenario="TabOpen", graph_cache=cache
        )
        assert len(cache) == len(instances) - len(
            [i for i in instances if 5 * MS <= i.duration <= 20 * MS]
        )

    def test_smaller_k_fewer_or_equal_metas(self):
        instances = engineered_instances()
        small = CausalityAnalysis(["*.sys"], segment_bound=1).analyze(
            instances, 5 * MS, 20 * MS, scenario="TabOpen"
        )
        large = CausalityAnalysis(["*.sys"], segment_bound=5).analyze(
            instances, 5 * MS, 20 * MS, scenario="TabOpen"
        )
        assert len(small.slow_meta_patterns) <= len(large.slow_meta_patterns)
