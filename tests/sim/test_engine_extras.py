"""Additional engine edge cases: holding(), shutdown, nested frames."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.locks import Lock
from repro.sim.tracer import Tracer
from repro.trace.events import EventKind


def traced_engine(cores=4):
    tracer = Tracer("t")
    return Engine(cores=cores, tracer=tracer), tracer


class TestHolding:
    def test_holding_releases_on_normal_exit(self):
        engine, _ = traced_engine()
        lock = Lock("L")

        def body(ctx):
            yield from ctx.compute(1_000)

        def program(ctx):
            with ctx.frame("app!X"):
                yield from ctx.holding(lock, body(ctx))

        engine.spawn(program, "P", "A")
        engine.run()
        assert lock.holder is None

    def test_holding_releases_on_exception(self):
        engine, _ = traced_engine()
        lock = Lock("L")
        errors = []

        def body(ctx):
            yield from ctx.compute(100)
            raise RuntimeError("boom")

        def program(ctx):
            with ctx.frame("app!X"):
                try:
                    yield from ctx.holding(lock, body(ctx))
                except RuntimeError as error:
                    errors.append(error)

        engine.spawn(program, "P", "A")
        engine.run()
        assert errors
        assert lock.holder is None


class TestShutdown:
    def test_shutdown_clears_parked_threads(self):
        engine, _ = traced_engine()
        lock = Lock("L")

        def program(ctx):
            with ctx.frame("app!X"):
                yield from ctx.acquire(lock)  # A holds, B parks forever

        engine.spawn(program, "P", "A")
        engine.spawn(program, "P", "B")
        engine.run(until=1_000)
        engine.shutdown()
        assert engine._live_threads == {}

    def test_shutdown_idempotent(self):
        engine, _ = traced_engine()
        engine.run()
        engine.shutdown()
        engine.shutdown()


class TestFrames:
    def test_nested_frames_restore_on_exit(self):
        engine, tracer = traced_engine()
        depths = []

        def program(ctx):
            with ctx.frame("a!1"):
                with ctx.frame("b!2"):
                    yield from ctx.compute(1_000)
                depths.append(tuple(ctx.thread.stack))
                yield from ctx.compute(1_000)

        engine.spawn(program, "P", "A")
        engine.run()
        # After the inner with, only the root + a!1 remain.
        assert depths == [("P!A", "a!1")]
        stacks = {
            event.stack
            for event in tracer.finalize().events_of_kind(EventKind.RUNNING)
        }
        assert ("P!A", "a!1", "b!2") in stacks
        assert ("P!A", "a!1") in stacks

    def test_root_frame_is_process_and_name(self):
        engine, tracer = traced_engine()

        def program(ctx):
            yield from ctx.compute(500)

        engine.spawn(program, "Browser", "UI")
        engine.run()
        event = tracer.finalize().events[0]
        assert event.stack == ("Browser!UI",)
