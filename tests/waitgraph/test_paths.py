"""Tests for critical-path extraction."""

from repro.sim.casestudy import run_case_study
from repro.trace.signatures import ALL_DRIVERS
from repro.waitgraph.builder import build_wait_graph
from repro.waitgraph.paths import critical_path


class TestOnFixture:
    def test_chain_follows_heaviest_waits(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        path = critical_path(graph, ALL_DRIVERS)
        assert path.depth == 3
        # UI lock wait -> worker disk wait -> hardware service.
        signatures = [hop.signature for hop in path.hops]
        assert signatures[0] == "fv.sys!QueryFileTable"
        assert signatures[1] == "fs.sys!Read"
        assert path.hops[2].event.kind.value == "hw_service"

    def test_chain_weight_is_head_cost(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        path = critical_path(graph, ALL_DRIVERS)
        assert path.total_cost == 8_000  # the UI's wait duration

    def test_describe_numbers_innermost_first(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        path = critical_path(graph, ALL_DRIVERS)
        text = path.describe()
        lines = text.splitlines()
        assert lines[0].startswith("(1)")
        assert "hardware service" in lines[0]
        assert "fv.sys!QueryFileTable" in lines[-1]

    def test_thread_labels(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        path = critical_path(graph, ALL_DRIVERS)
        assert path.hops[0].thread_label == "App/UI"
        assert path.hops[1].thread_label == "App/Worker"

    def test_share_of_instance(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        path = critical_path(graph, ALL_DRIVERS)
        assert 0.5 < path.share_of_instance <= 1.0


class TestOnCaseStudy:
    def test_figure1_chain_spans_the_cast(self):
        result = run_case_study()
        graph = build_wait_graph(result.slow_instance)
        path = critical_path(graph, ALL_DRIVERS)
        assert path.depth >= 3
        labels = {hop.thread_label for hop in path.hops}
        assert "Browser/UI" in labels
        text = path.describe()
        assert "fv.sys!QueryFileTable" in text

    def test_no_wait_roots_gives_empty_path(self, small_corpus):
        # Find an instance with only running roots (if any) — otherwise
        # just assert extraction never crashes corpus-wide.
        for stream in small_corpus[:2]:
            for instance in stream.instances:
                path = critical_path(build_wait_graph(instance))
                assert path.depth >= 0
                assert path.total_cost >= 0
