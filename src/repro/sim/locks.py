"""Kernel synchronization primitives for the simulator.

:class:`Lock` is a FIFO mutex — the mechanism behind the paper's lock
contention regions (File Table lock, MDU lock).  :class:`SimEvent` is a
one-shot signalled event used for request/response interactions between
threads (e.g. a UI thread waiting on a network worker) and for hard-fault
page-in completion.

Both classes are pure state containers; the :class:`repro.sim.engine.Engine`
performs all transitions so that blocking and waking are traced uniformly.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.engine import SimThread


class Lock:
    """A named FIFO mutex.

    The name identifies the protected resource (``'fv.sys/FileTable'``);
    it reaches traces only through the ``resource`` provenance field that
    baseline analyzers consume.
    """

    __slots__ = ("name", "holder", "waiters")

    def __init__(self, name: str):
        self.name = name
        self.holder: Optional["SimThread"] = None
        self.waiters: Deque["SimThread"] = deque()

    @property
    def contended(self) -> bool:
        """True when at least one thread is queued behind the holder."""
        return bool(self.waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        holder = self.holder.tid if self.holder else None
        return f"Lock({self.name!r}, holder={holder}, waiters={len(self.waiters)})"


class Mailbox:
    """A FIFO message queue for cross-thread requests (IPC).

    Posting never blocks; taking blocks until an item is available.  The
    poster's unwait is attributed to its callstack at post time, so Wait
    Graphs see who handed work to a waiting service thread.
    """

    __slots__ = ("name", "items", "takers")

    def __init__(self, name: str):
        self.name = name
        self.items: Deque[Any] = deque()
        self.takers: Deque["SimThread"] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Mailbox({self.name!r}, items={len(self.items)}, "
            f"takers={len(self.takers)})"
        )


class SimEvent:
    """A one-shot signalled event carrying an optional value.

    Threads block on it with ``ctx.wait_for``; one thread fires it with
    ``ctx.fire``.  Waiting on an already-fired event returns immediately.
    """

    __slots__ = ("name", "fired", "value", "waiters")

    def __init__(self, name: str):
        self.name = name
        self.fired = False
        self.value: Any = None
        self.waiters: List["SimThread"] = []

    def fire(self, value: Any = None) -> None:
        """Mark the event as signalled (the engine wakes the waiters)."""
        self.fired = True
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimEvent({self.name!r}, fired={self.fired})"
