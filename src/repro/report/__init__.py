"""Report rendering: ASCII tables and Wait Graph / AWG figures."""

from repro.report.figures import (
    awg_to_dot,
    render_awg,
    render_wait_graph,
    wait_graph_to_dot,
)
from repro.report.graphs import (
    awg_to_networkx,
    propagation_hubs,
    wait_graph_to_networkx,
)
from repro.report.markdown import save_study_markdown, study_to_markdown
from repro.report.svg import awg_to_svg, save_awg_svg
from repro.report.tables import Table, fmt_pct, fmt_ratio, fmt_us

__all__ = [
    "Table",
    "awg_to_dot",
    "awg_to_networkx",
    "awg_to_svg",
    "fmt_pct",
    "fmt_ratio",
    "fmt_us",
    "render_awg",
    "save_awg_svg",
    "save_study_markdown",
    "propagation_hubs",
    "render_wait_graph",
    "study_to_markdown",
    "wait_graph_to_networkx",
    "wait_graph_to_dot",
]
