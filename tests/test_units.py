"""Tests for time-unit helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.units import (
    DEFAULT_SAMPLE_INTERVAL_US,
    HOURS,
    MILLISECONDS,
    MINUTES,
    SECONDS,
    format_duration,
    ms_from_us,
    us_from_ms,
)


class TestConstants:
    def test_scale(self):
        assert SECONDS == 1_000 * MILLISECONDS
        assert MINUTES == 60 * SECONDS
        assert HOURS == 60 * MINUTES
        assert DEFAULT_SAMPLE_INTERVAL_US == MILLISECONDS


class TestConversions:
    def test_us_from_ms(self):
        assert us_from_ms(1.5) == 1_500

    def test_ms_from_us(self):
        assert ms_from_us(2_500) == 2.5

    @given(st.integers(0, 10**12))
    def test_round_trip(self, microseconds):
        assert us_from_ms(ms_from_us(microseconds)) == microseconds


class TestFormatting:
    def test_microseconds(self):
        assert format_duration(800) == "800us"

    def test_milliseconds(self):
        assert format_duration(482_300) == "482.3ms"

    def test_seconds(self):
        assert format_duration(4_730_000) == "4.73s"

    @given(st.integers(0, 10**12))
    def test_always_has_unit_suffix(self, microseconds):
        text = format_duration(microseconds)
        assert text.endswith(("us", "ms", "s"))
