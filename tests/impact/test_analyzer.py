"""Tests for the impact-analysis driver."""

import pytest

from repro.errors import AnalysisError
from repro.impact.analyzer import ImpactAnalysis, collect_instances


class TestCollectInstances:
    def test_collects_all(self, small_corpus):
        instances = collect_instances(small_corpus)
        assert len(instances) == sum(
            len(stream.instances) for stream in small_corpus
        )

    def test_scenario_filter(self, small_corpus):
        instances = collect_instances(small_corpus, ["MenuDisplay"])
        assert all(i.scenario == "MenuDisplay" for i in instances)


class TestImpactAnalysis:
    def test_empty_instances_rejected(self):
        with pytest.raises(AnalysisError):
            ImpactAnalysis(["*.sys"]).analyze_instances([])

    def test_corpus_analysis_shape(self, small_corpus):
        result = ImpactAnalysis(["*.sys"]).analyze_corpus(small_corpus)
        assert result.graphs > 0
        assert 0 < result.ia_wait < 1
        assert 0 <= result.ia_run < result.ia_wait
        assert result.d_waitdist <= result.d_wait

    def test_graph_cache_reused(self, small_corpus):
        analysis = ImpactAnalysis(["*.sys"])
        analysis.analyze_corpus(small_corpus)
        cached = len(analysis._graph_cache)
        analysis.analyze_corpus(small_corpus)
        assert len(analysis._graph_cache) == cached

    def test_per_scenario(self, small_corpus):
        results = ImpactAnalysis(["*.sys"]).analyze_per_scenario(small_corpus)
        assert len(results) >= 2
        for result in results.values():
            assert result.graphs > 0

    def test_narrow_component_scope_smaller_wait(self, small_corpus):
        all_drivers = ImpactAnalysis(["*.sys"]).analyze_corpus(small_corpus)
        fv_only = ImpactAnalysis(["fv.sys"]).analyze_corpus(small_corpus)
        assert fv_only.d_wait <= all_drivers.d_wait
