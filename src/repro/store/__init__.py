"""Content-addressed artifact store for incremental analysis runs.

The paper's corpus study (~19,500 traces) and the continuous-monitoring
deployments it anticipates re-run analysis as traces accumulate.  Every
per-trace partial the map phase produces is a pure function of the trace
*bytes* and the map-phase *configuration*, so this package caches them
persistently under the key ``(trace content hash, analysis
fingerprint)``: a grown corpus only pays for its new traces, a changed
configuration misses cleanly, and corrupt entries quarantine themselves
and recompute.  See ``docs/STORE.md``.
"""

from repro.store.artifacts import (
    ArtifactStore,
    EntryInfo,
    GcReport,
    StoreStats,
    VerifyReport,
)
from repro.store.fingerprint import (
    STORE_SCHEMA_VERSION,
    analysis_fingerprint,
)

__all__ = [
    "ArtifactStore",
    "EntryInfo",
    "GcReport",
    "STORE_SCHEMA_VERSION",
    "StoreStats",
    "VerifyReport",
    "analysis_fingerprint",
]
