"""networkx export of Wait Graphs and Aggregated Wait Graphs.

For downstream analysis (centrality of propagation hubs, path queries,
visualization with external tooling), both graph structures convert to
:class:`networkx.DiGraph` with informative node/edge attributes.
"""

from __future__ import annotations

import networkx as nx

from repro.waitgraph.aggregate import AggregatedWaitGraph
from repro.waitgraph.graph import WaitGraph


def wait_graph_to_networkx(graph: WaitGraph) -> "nx.DiGraph":
    """Convert a Wait Graph to a networkx DiGraph.

    Nodes are event ``seq`` numbers with ``kind``, ``cost``, ``tid``,
    ``frame`` attributes; edges point from each wait event to the events
    performed within its wait interval.
    """
    out = nx.DiGraph(
        scenario=graph.instance.scenario,
        stream=graph.stream_id,
        t0=graph.instance.t0,
        t1=graph.instance.t1,
    )
    for event in graph.events():
        out.add_node(
            event.seq,
            kind=event.kind.value,
            cost=event.cost,
            timestamp=event.timestamp,
            tid=event.tid,
            frame=event.leaf,
        )
        for child in graph.children(event):
            out.add_edge(event.seq, child.seq)
    out.graph["roots"] = [event.seq for event in graph.roots]
    return out


def awg_to_networkx(awg: AggregatedWaitGraph) -> "nx.DiGraph":
    """Convert an Aggregated Wait Graph to a networkx DiGraph.

    Node ids are the trie paths (tuples of node keys), so aggregated
    nodes that share a signature but sit under different prefixes remain
    distinct, exactly as in the AWG.
    """
    out = nx.DiGraph(
        source_graphs=awg.source_graphs,
        reduced_hw_cost=awg.reduced_hw_cost,
    )

    def walk(node, path):
        node_id = path + (node.key,)
        out.add_node(
            node_id,
            status=node.status,
            label=node.label,
            cost=node.cost,
            count=node.count,
            max_single=node.max_single,
        )
        if path:
            out.add_edge(path, node_id)
        for child in node.children.values():
            walk(child, node_id)

    for root in awg.roots.values():
        walk(root, ())
    return out


def propagation_hubs(graph: WaitGraph, top: int = 5):
    """The events most paths flow through (betweenness on the DAG).

    A quick triage helper: high-betweenness wait events are the
    chokepoints a propagation chain funnels through.
    """
    dag = wait_graph_to_networkx(graph)
    if not dag:
        return []
    centrality = nx.betweenness_centrality(dag)
    ranked = sorted(centrality.items(), key=lambda kv: -kv[1])[:top]
    by_seq = {event.seq: event for event in graph.events()}
    return [
        (by_seq[seq], score) for seq, score in ranked if seq in by_seq
    ]
