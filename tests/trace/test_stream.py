"""Tests for TraceStream construction and queries."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.trace.events import Event, EventKind
from repro.trace.stream import ScenarioInstance, ThreadInfo, TraceStream
from tests.conftest import make_event, make_stream


class TestConstruction:
    def test_from_events_sorts_and_renumbers(self):
        events = [
            make_event(timestamp=500, seq=99),
            make_event(timestamp=100, seq=42),
        ]
        stream = make_stream(events=events)
        assert [event.timestamp for event in stream.events] == [100, 500]
        assert [event.seq for event in stream.events] == [0, 1]

    def test_direct_construction_requires_matching_seq(self):
        with pytest.raises(TraceError, match="seq"):
            TraceStream("s", [make_event(seq=3)])

    def test_direct_construction_requires_sorted_timestamps(self):
        events = [
            make_event(timestamp=500, seq=0),
            make_event(timestamp=100, seq=1),
        ]
        with pytest.raises(TraceError, match="sorted"):
            TraceStream("s", events)

    def test_empty_stream(self):
        stream = make_stream()
        assert len(stream) == 0
        assert stream.span == (0, 0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 10_000), st.integers(0, 1_000)),
            max_size=30,
        )
    )
    def test_from_events_always_sorted(self, raw):
        events = [
            make_event(timestamp=timestamp, cost=cost, seq=index)
            for index, (timestamp, cost) in enumerate(raw)
        ]
        stream = make_stream(events=events)
        timestamps = [event.timestamp for event in stream.events]
        assert timestamps == sorted(timestamps)
        assert [event.seq for event in stream.events] == list(range(len(raw)))


class TestQueries:
    def test_span(self):
        stream = make_stream(events=[
            make_event(timestamp=100, cost=50),
            make_event(timestamp=120, cost=500),
        ])
        assert stream.span == (100, 620)

    def test_thread_info_known(self, simple_threads):
        stream = make_stream(threads=simple_threads)
        assert stream.thread_info(1).process == "App"
        assert stream.thread_info(1).label == "App/UI"

    def test_thread_info_placeholder(self):
        stream = make_stream()
        info = stream.thread_info(99)
        assert info.process == "?"
        assert info.tid == 99

    def test_events_of_thread(self):
        stream = make_stream(events=[
            make_event(tid=1, timestamp=0),
            make_event(tid=2, timestamp=10),
            make_event(tid=1, timestamp=20),
        ])
        assert len(stream.events_of_thread(1)) == 2
        assert len(stream.events_of_thread(2)) == 1
        assert stream.events_of_thread(3) == []

    def test_events_of_thread_window(self):
        stream = make_stream(events=[
            make_event(tid=1, timestamp=0, cost=100),
            make_event(tid=1, timestamp=1000, cost=100),
            make_event(tid=1, timestamp=5000, cost=100),
        ])
        windowed = stream.events_of_thread(1, 900, 1200)
        assert [event.timestamp for event in windowed] == [1000]

    def test_events_of_thread_window_reaches_back(self):
        # An event starting before the window but overlapping it counts.
        stream = make_stream(events=[
            make_event(tid=1, timestamp=0, cost=2_000),
            make_event(tid=1, timestamp=3_000, cost=100),
        ])
        windowed = stream.events_of_thread(1, 1_000, 2_500)
        assert [event.timestamp for event in windowed] == [0]

    def test_unwaits_targeting(self):
        stream = make_stream(events=[
            make_event(EventKind.UNWAIT, timestamp=10, cost=0, tid=2, wtid=1),
            make_event(EventKind.UNWAIT, timestamp=20, cost=0, tid=3, wtid=1),
            make_event(EventKind.UNWAIT, timestamp=30, cost=0, tid=2, wtid=4),
        ])
        assert len(stream.unwaits_targeting(1)) == 2
        assert len(stream.unwaits_targeting(1, 15, 25)) == 1
        assert stream.unwaits_targeting(9) == []

    def test_events_of_kind(self):
        stream = make_stream(events=[
            make_event(EventKind.RUNNING),
            make_event(EventKind.HW_SERVICE, stack=(), timestamp=5),
        ])
        assert len(stream.events_of_kind(EventKind.RUNNING)) == 1
        assert len(stream.events_of_kind(EventKind.HW_SERVICE)) == 1
        assert stream.events_of_kind(EventKind.WAIT) == []


class TestScenarioInstances:
    def test_add_instance(self):
        stream = make_stream(events=[make_event(cost=10_000)])
        instance = stream.add_instance("Demo", tid=1, t0=0, t1=5_000)
        assert instance.duration == 5_000
        assert stream.instances == [instance]

    def test_instance_rejects_negative_duration(self):
        stream = make_stream()
        with pytest.raises(TraceError):
            stream.add_instance("Demo", tid=1, t0=100, t1=50)

    def test_instance_key_identifies(self):
        stream = make_stream(events=[make_event(cost=10_000)])
        instance = stream.add_instance("Demo", tid=1, t0=0, t1=500)
        assert instance.key == ("test", "Demo", 1, 0, 500)

    def test_instance_equality_ignores_stream_object(self):
        stream_a = make_stream("same", events=[make_event(cost=10_000)])
        stream_b = make_stream("same", events=[make_event(cost=10_000)])
        instance_a = stream_a.add_instance("Demo", 1, 0, 10)
        instance_b = stream_b.add_instance("Demo", 1, 0, 10)
        assert instance_a == instance_b
        assert hash(instance_a) == hash(instance_b)
