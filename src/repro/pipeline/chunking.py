"""Deterministic corpus chunking for the map–reduce pipeline.

Chunks are **contiguous, in-order slices** of the corpus source list.
That invariant is what makes the parallel pipeline's output provably
identical to a sequential run: folding per-chunk partial results in
chunk order visits every stream — and therefore inserts every AWG trie
node and accumulator entry — in exactly the corpus order a single-pass
analysis would use.
"""

from __future__ import annotations

import math
from typing import List, Sequence, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")

#: Target number of chunks handed to each worker.  More than one chunk
#: per worker smooths load imbalance (streams vary in event count)
#: without flooding the pool with per-task pickling overhead.
CHUNKS_PER_WORKER = 4


def default_chunk_size(source_count: int, workers: int) -> int:
    """A chunk size giving each worker a few chunks to balance load."""
    if source_count <= 0:
        return 1
    if workers <= 1:
        return source_count
    return max(1, math.ceil(source_count / (workers * CHUNKS_PER_WORKER)))


def chunk_sources(sources: Sequence[T], chunk_size: int) -> List[List[T]]:
    """Split sources into contiguous chunks of at most ``chunk_size``.

    Order is preserved both across and within chunks; the concatenation
    of the returned chunks is exactly the input sequence.
    """
    if chunk_size < 1:
        raise ConfigError(f"chunk_size must be >= 1, got {chunk_size}")
    items = list(sources)
    return [
        items[start : start + chunk_size]
        for start in range(0, len(items), chunk_size)
    ]
