"""Tracing events (paper §2.1).

Each event in a trace stream is one of four kinds:

* ``RUNNING`` — CPU usage sampled at a constant interval (1 ms in ETW).
* ``WAIT`` — a thread entered the waiting state on a blocking operation.
* ``UNWAIT`` — a running thread signalled a waiting thread to continue.
* ``HW_SERVICE`` — a hardware operation with a start timestamp and duration.

The fields mirror the paper's schema: callstack ``e.S``, timestamp ``e.T``,
cost ``e.C``, owning thread ``e.TID`` and, for unwaits, the target thread
``e.WTID``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import TraceError


class EventKind(enum.Enum):
    """The four tracing-event types of the trace-stream schema."""

    RUNNING = "running"
    WAIT = "wait"
    UNWAIT = "unwait"
    HW_SERVICE = "hw_service"


@dataclass(frozen=True, slots=True)
class Event:
    """One tracing event.

    Attributes
    ----------
    kind:
        One of the four :class:`EventKind` values.
    stack:
        The callstack, root-first (outermost caller at index 0).
    timestamp:
        Start time in integer microseconds (``e.T``).
    cost:
        Duration in integer microseconds (``e.C``).  For wait events this is
        the restored wait duration; for running events the sampled slice;
        for hardware events the service time.
    tid:
        The thread that triggered the event (``e.TID``).  Hardware events
        carry the pseudo-tid of the servicing device.
    seq:
        Position of the event in its trace stream.  ``(stream_id, seq)``
        identifies an event globally, which is what the distinct-wait
        deduplication of impact analysis relies on.
    wtid:
        For unwait events only: the thread being woken (``e.WTID``).
    resource:
        Optional name of the lock/device involved.  Real ETW traces do not
        label waits with resources; this provenance field exists solely so
        the *baseline* analyzers (gprof-style and per-lock contention) have
        the ground truth they assume.  The paper's approach never reads it.
    """

    kind: EventKind
    stack: Tuple[str, ...]
    timestamp: int
    cost: int
    tid: int
    seq: int
    wtid: Optional[int] = None
    resource: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise TraceError(f"negative timestamp: {self.timestamp}")
        if self.cost < 0:
            raise TraceError(f"negative cost: {self.cost}")
        if not self.stack and self.kind is not EventKind.HW_SERVICE:
            raise TraceError(f"{self.kind.value} event requires a callstack")
        if self.wtid is not None and self.kind is not EventKind.UNWAIT:
            raise TraceError("wtid is only meaningful on unwait events")
        if self.kind is EventKind.UNWAIT and self.wtid is None:
            raise TraceError("unwait event requires a wtid")

    @property
    def end(self) -> int:
        """Exclusive end time (``timestamp + cost``)."""
        return self.timestamp + self.cost

    @property
    def leaf(self) -> str:
        """The innermost frame of the callstack."""
        return self.stack[-1] if self.stack else ""

    def overlaps(self, t0: int, t1: int) -> bool:
        """Return True when the event's span intersects ``[t0, t1)``."""
        return self.timestamp < t1 and self.end > t0

    def key(self, stream_id: str) -> Tuple[str, int]:
        """Globally unique identity of this event."""
        return (stream_id, self.seq)
