"""Markdown report generation for a full study.

Turns a :class:`~repro.evaluation.study.StudyResult` into a shareable
markdown document: the §5.1 impact metrics, Tables 1–4, and the top
patterns per scenario rendered as Signature Set Tuples — the artifact an
analyst attaches to a bug or posts to a dashboard.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.evaluation.drivertypes import DRIVER_TYPE_ORDER
from repro.evaluation.study import StudyResult
from repro.report.tables import fmt_pct, fmt_ratio
from repro.units import format_duration


def _md_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    lines = [
        "| " + " | ".join(str(cell) for cell in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def study_to_markdown(
    study: StudyResult,
    title: str = "Performance comprehension report",
    top_patterns: int = 3,
) -> str:
    """Render a study result as a markdown document."""
    sections: List[str] = [f"# {title}", ""]

    impact = study.impact
    sections.append("## Impact analysis (all device drivers)")
    sections.append("")
    sections.append(_md_table(
        ["Metric", "Value"],
        [
            ["Scenario instances analyzed", f"{impact.graphs:,}"],
            ["IA_wait", fmt_pct(impact.ia_wait)],
            ["IA_run", fmt_pct(impact.ia_run)],
            ["IA_opt (cost propagation)", fmt_pct(impact.ia_opt)],
            ["D_wait / D_waitdist", fmt_ratio(impact.wait_multiplicity)],
        ],
    ))
    sections.append("")

    sections.append("## Scenarios and contrast classes")
    sections.append("")
    rows = []
    for name, total, fast, slow in sorted(study.table1_rows()):
        rows.append([name, total, fast, slow])
    sections.append(_md_table(
        ["Scenario", "#Instances", "fast", "slow"], rows
    ))
    sections.append("")

    sections.append("## Coverages and ranking")
    sections.append("")
    rows = []
    for name in sorted(study.scenarios):
        scenario_study = study.scenarios[name]
        coverage = scenario_study.coverage
        top10, top20, top30 = scenario_study.ranking_coverage
        rows.append([
            name,
            fmt_pct(coverage.driver_cost_share),
            fmt_pct(coverage.itc),
            fmt_pct(coverage.ttc),
            scenario_study.report.pattern_count,
            fmt_pct(top10),
            fmt_pct(top30),
        ])
    sections.append(_md_table(
        ["Scenario", "Driver cost", "ITC", "TTC", "#Patterns",
         "top 10%", "top 30%"],
        rows,
    ))
    sections.append("")

    sections.append("## Driver types in top-10 patterns")
    sections.append("")
    rows = []
    table4 = study.table4_rows()
    for name in sorted(table4):
        counts = table4[name]
        rows.append(
            [name] + [counts.get(t, 0) for t in DRIVER_TYPE_ORDER]
        )
    sections.append(_md_table(["Scenario"] + list(DRIVER_TYPE_ORDER), rows))
    sections.append("")

    sections.append("## Top contrast patterns per scenario")
    sections.append("")
    for name in sorted(study.scenarios):
        report = study.scenarios[name].report
        if not report.patterns:
            continue
        sections.append(f"### {name}")
        sections.append("")
        for rank, pattern in enumerate(report.top(top_patterns), start=1):
            high = (
                " **HIGH IMPACT**"
                if pattern.is_high_impact(report.t_slow)
                else ""
            )
            sections.append(
                f"{rank}. impact {format_duration(round(pattern.impact))} "
                f"per occurrence, N={pattern.count}, worst single execution "
                f"{format_duration(pattern.max_single)}{high}"
            )
            sections.append("")
            sections.append("   ```")
            for line in pattern.sst.render().splitlines():
                sections.append(f"   {line}")
            sections.append("   ```")
            sections.append("")
    return "\n".join(sections)


def save_study_markdown(
    study: StudyResult, path: str, title: str = "Performance comprehension report"
) -> None:
    """Write the markdown report to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(study_to_markdown(study, title=title))
