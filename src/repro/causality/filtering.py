"""By-design behaviour filtering (paper §5.2.5).

The paper observes false positives: some drivers are *designed* to block
(the Disk Protection driver halts all disk IO when the machine is in
motion), so their appearance in contrast patterns is expected behaviour,
not a problem.  It suggests "incorporat[ing] such knowledge to filter
out some known and exceptional cases" — this module is that knowledge
base: analysts register by-design signatures or whole driver modules,
and discovered patterns are annotated or filtered accordingly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Set, Tuple

from repro.causality.mining import ContrastPattern
from repro.trace.signatures import module_of

#: Driver modules the paper's study identified as by-design blockers.
DEFAULT_BY_DESIGN_MODULES: Tuple[str, ...] = ("dp.sys",)


@dataclass
class ByDesignKnowledge:
    """Analyst knowledge of expected (non-problematic) driver behaviour.

    ``modules`` marks entire drivers as by-design blockers; ``signatures``
    marks individual functions (e.g. a legitimate flush barrier inside an
    otherwise interesting driver).
    """

    modules: Set[str] = field(default_factory=set)
    signatures: Set[str] = field(default_factory=set)

    @classmethod
    def default(cls) -> "ByDesignKnowledge":
        """The knowledge base seeded with the paper's known case."""
        return cls(modules=set(DEFAULT_BY_DESIGN_MODULES))

    def add_module(self, module: str) -> None:
        self.modules.add(module.lower())

    def add_signature(self, signature: str) -> None:
        self.signatures.add(signature)

    def explains(self, pattern: ContrastPattern) -> bool:
        """True when every *wait* signature of the pattern is by-design.

        A pattern is only excused when all of its blocking behaviour is
        expected; a by-design driver appearing alongside an unexplained
        contention region still deserves inspection.
        """
        waits = pattern.sst.wait_signatures
        if not waits:
            return False
        for signature in waits:
            if signature in self.signatures:
                continue
            if module_of(signature).lower() in self.modules:
                continue
            return False
        return True

    def touches(self, pattern: ContrastPattern) -> bool:
        """True when any signature of the pattern is by-design."""
        for signature in pattern.sst.all_signatures:
            if signature in self.signatures:
                return True
            if module_of(signature).lower() in self.modules:
                return True
        return False


@dataclass(frozen=True)
class FilteredPatterns:
    """Partition of discovered patterns by the knowledge base."""

    actionable: List[ContrastPattern]
    by_design: List[ContrastPattern]
    flagged: List[ContrastPattern]  # actionable but touching by-design code

    @property
    def suppressed_count(self) -> int:
        return len(self.by_design)


def filter_by_design(
    patterns: Sequence[ContrastPattern],
    knowledge: ByDesignKnowledge,
) -> FilteredPatterns:
    """Split patterns into actionable / by-design / flagged groups.

    Ordering within each group follows the input (keep them ranked).
    """
    actionable: List[ContrastPattern] = []
    by_design: List[ContrastPattern] = []
    flagged: List[ContrastPattern] = []
    for pattern in patterns:
        if knowledge.explains(pattern):
            by_design.append(pattern)
            continue
        actionable.append(pattern)
        if knowledge.touches(pattern):
            flagged.append(pattern)
    return FilteredPatterns(
        actionable=actionable, by_design=by_design, flagged=flagged
    )
