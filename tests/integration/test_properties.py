"""Property-based tests over randomized simulations.

These drive the engine with randomized-but-well-formed thread programs
and assert the global invariants every trace must satisfy: validity
(every wait paired), time monotonicity, cost conservation, and Wait Graph
construction termination.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.devices import QueuedDevice
from repro.sim.engine import Engine
from repro.sim.locks import Lock
from repro.sim.tracer import Tracer
from repro.trace.events import EventKind
from repro.trace.validate import collect_violations
from repro.waitgraph.builder import build_wait_graph

# One action per step: (kind, argument)
action = st.one_of(
    st.tuples(st.just("compute"), st.integers(1, 5_000)),
    st.tuples(st.just("lock"), st.integers(0, 2)),
    st.tuples(st.just("io"), st.integers(1, 5_000)),
    st.tuples(st.just("delay"), st.integers(1, 3_000)),
)
program_strategy = st.lists(action, min_size=1, max_size=8)


def run_random_simulation(programs):
    tracer = Tracer("random")
    engine = Engine(cores=2, tracer=tracer)
    locks = [Lock(f"lock{i}") for i in range(3)]
    disk = QueuedDevice(engine, "Disk")

    def make_program(actions, index):
        def program(ctx):
            with ctx.frame(f"drv{index}.sys!Work"):
                with ctx.scenario(f"S{index}"):
                    for kind, argument in actions:
                        if kind == "compute":
                            yield from ctx.compute(argument)
                        elif kind == "lock":
                            lock = locks[argument]
                            yield from ctx.acquire(lock)
                            yield from ctx.compute(100)
                            yield from ctx.release(lock)
                        elif kind == "io":
                            yield from ctx.hardware(disk, argument)
                        elif kind == "delay":
                            yield from ctx.delay(argument)

        return program

    for index, actions in enumerate(programs):
        engine.spawn(make_program(actions, index), "App", f"T{index}")
    engine.run()
    return tracer.finalize()


@settings(max_examples=40, deadline=None)
@given(st.lists(program_strategy, min_size=1, max_size=4))
def test_random_simulations_produce_valid_traces(programs):
    stream = run_random_simulation(programs)
    assert collect_violations(stream) == []


@settings(max_examples=40, deadline=None)
@given(st.lists(program_strategy, min_size=1, max_size=4))
def test_unwaits_always_follow_their_waits(programs):
    stream = run_random_simulation(programs)
    for event in stream.events_of_kind(EventKind.WAIT):
        unwaits = [
            candidate
            for candidate in stream.unwaits_targeting(event.tid)
            if candidate.timestamp == event.end
        ]
        assert unwaits, "wait without closing unwait"


@settings(max_examples=25, deadline=None)
@given(st.lists(program_strategy, min_size=1, max_size=4))
def test_wait_graphs_always_build(programs):
    stream = run_random_simulation(programs)
    for instance in stream.instances:
        graph = build_wait_graph(instance)
        # Traversal terminates, dedups, and stays within the stream.
        events = list(graph.events())
        assert len(events) == len({event.seq for event in events})
        for event in events:
            assert 0 <= event.seq < len(stream.events)


@settings(max_examples=25, deadline=None)
@given(st.lists(program_strategy, min_size=1, max_size=3))
def test_running_time_is_conserved(programs):
    """Total RUNNING cost equals the computed durations requested."""
    expected = 0
    for actions in programs:
        for kind, argument in actions:
            if kind == "compute":
                expected += argument
            elif kind == "lock":
                expected += 100
    stream = run_random_simulation(programs)
    total = sum(
        event.cost for event in stream.events_of_kind(EventKind.RUNNING)
    )
    assert total == expected
