"""Pipeline micro-benchmarks: throughput of each analysis stage.

Not a paper table — these quantify the cost of trace generation, Wait
Graph construction, aggregation and mining so corpus sizes can be chosen
for a time budget (the paper processed 19,500 traces / 339 hours).
"""

from benchmarks.conftest import print_banner
from repro.causality.mining import enumerate_meta_patterns
from repro.sim.corpus import CorpusConfig, generate_stream
from repro.trace.serialization import dumps_stream, loads_stream
from repro.trace.signatures import ALL_DRIVERS
from repro.waitgraph.aggregate import aggregate_wait_graphs
from repro.waitgraph.builder import build_wait_graph


def test_bench_trace_generation(benchmark):
    config = CorpusConfig(streams=1, seed=99)
    stream = benchmark.pedantic(
        lambda: generate_stream(0, config), rounds=3, iterations=1
    )
    print_banner("Perf - one trace stream")
    print(f"events={len(stream.events)} instances={len(stream.instances)}")
    assert len(stream.events) > 100


def test_bench_serialization_roundtrip(benchmark, bench_corpus):
    stream = bench_corpus[0]

    def roundtrip():
        return loads_stream(dumps_stream(stream))

    restored = benchmark(roundtrip)
    assert restored.events == stream.events


def test_bench_wait_graph_construction(benchmark, bench_corpus):
    stream = max(bench_corpus, key=lambda s: len(s.instances))

    def build_all():
        return [build_wait_graph(i) for i in stream.instances]

    graphs = benchmark(build_all)
    assert len(graphs) == len(stream.instances)


def test_bench_awg_aggregation(benchmark, bench_corpus):
    instances = [
        instance
        for stream in bench_corpus[:8]
        for instance in stream.instances
    ]
    graphs = [build_wait_graph(instance) for instance in instances]

    def aggregate():
        return aggregate_wait_graphs(graphs, ALL_DRIVERS)

    awg = benchmark(aggregate)
    assert awg.source_graphs == len(graphs)


def test_bench_meta_pattern_enumeration(benchmark, bench_corpus):
    instances = [
        instance
        for stream in bench_corpus[:8]
        for instance in stream.instances
    ]
    graphs = [build_wait_graph(instance) for instance in instances]
    awg = aggregate_wait_graphs(graphs, ALL_DRIVERS)

    def mine():
        return enumerate_meta_patterns(awg, k=5)

    patterns = benchmark(mine)
    assert patterns
