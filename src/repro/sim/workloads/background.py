"""Background interference threads.

These are the "other applications" of the paper's motivating example: an
AntiVirus worker scanning files, a Configuration Manager reading and
writing configuration, a backup agent sweeping the disk, a disk-protection
monitor, ACPI power activity, and a graphics system worker.  They are not
scenario initiators; their activity shows up *inside* scenario instances'
Wait Graphs through lock contention and shared devices — which is exactly
how cost propagation multiplies one delay across several scenario
instances (``D_wait / D_waitdist > 1``).
"""

from __future__ import annotations

from typing import Generator

from repro.sim.distributions import bernoulli, exponential_us, skewed_file_id, uniform_us
from repro.sim.engine import ThreadContext
from repro.sim.machine import Machine
from repro.units import MILLISECONDS, SECONDS


def install_av_scanner(
    machine: Machine,
    duration_us: int,
    aggressiveness: float = 0.5,
) -> None:
    """An AntiVirus worker scanning files until ``duration_us``."""
    pause = int(250 * MILLISECONDS * (1.15 - aggressiveness))

    def program(ctx: ThreadContext) -> Generator:
        with ctx.frame("AntiVirus!ScanLoop"):
            while ctx.now < duration_us:
                file_id = skewed_file_id(machine.rng)
                with ctx.frame("kernel!OpenFile"):
                    yield from machine.av.scan_file(ctx, file_id)
                if bernoulli(machine.rng, 0.4):
                    with ctx.frame("kernel!OpenFile"):
                        yield from machine.fs.read_file(
                            ctx, file_id, cached=bernoulli(machine.rng, 0.6)
                        )
                yield from ctx.delay(exponential_us(machine.rng, pause))

    machine.spawn(program, "AntiVirus", "Worker")


def install_config_manager(machine: Machine, duration_us: int) -> None:
    """A Configuration Manager worker reading/writing config files."""

    def program(ctx: ThreadContext) -> Generator:
        with ctx.frame("ConfigMgr!Worker"):
            while ctx.now < duration_us:
                file_id = skewed_file_id(machine.rng, cold_range=1 << 10)
                with ctx.frame("kernel!OpenFile"):
                    if bernoulli(machine.rng, 0.7):
                        yield from machine.fs.read_file(
                            ctx, file_id, cached=bernoulli(machine.rng, 0.5)
                        )
                    else:
                        yield from machine.fs.write_file(ctx, file_id)
                yield from ctx.delay(
                    exponential_us(machine.rng, 350 * MILLISECONDS)
                )

    machine.spawn(program, "ConfigMgr", "Worker")


def install_backup_agent(machine: Machine, duration_us: int) -> None:
    """A storage-backup agent sweeping batches of files via bkup.sys."""

    def program(ctx: ThreadContext) -> Generator:
        with ctx.frame("BackupService!Sweep"):
            while ctx.now < duration_us:
                batch = [
                    skewed_file_id(machine.rng)
                    for _ in range(machine.rng.randint(2, 4))
                ]
                yield from machine.bkup.backup_pass(ctx, batch)
                yield from ctx.delay(
                    exponential_us(machine.rng, 600 * MILLISECONDS)
                )

    machine.spawn(program, "BackupService", "Sweep")


def install_dp_monitor(machine: Machine, duration_us: int) -> None:
    """The disk-protection monitor, engaging the gate now and then."""
    if machine.dp is None:
        return

    def program(ctx: ThreadContext) -> Generator:
        with ctx.frame("System!DiskProtectionMonitor"):
            while ctx.now < duration_us:
                yield from ctx.delay(
                    exponential_us(machine.rng, 2 * SECONDS)
                )
                halt = uniform_us(
                    machine.rng, 80 * MILLISECONDS, 400 * MILLISECONDS
                )
                yield from machine.dp.engage(ctx, halt)

    machine.spawn(program, "System", "DpMonitor")


def install_acpi_activity(machine: Machine, duration_us: int) -> None:
    """Periodic ACPI power transitions holding the firmware lock."""

    def program(ctx: ThreadContext) -> Generator:
        with ctx.frame("System!PowerManager"):
            while ctx.now < duration_us:
                yield from ctx.delay(
                    exponential_us(machine.rng, 4 * SECONDS)
                )
                yield from machine.acpi.power_transition(
                    ctx, uniform_us(machine.rng, 5 * MILLISECONDS, 40 * MILLISECONDS)
                )

    machine.spawn(program, "System", "PowerMgr")


def install_graphics_system_worker(machine: Machine, duration_us: int) -> None:
    """The system worker running graphics event routines (may hard-fault)."""

    def program(ctx: ThreadContext) -> Generator:
        with ctx.frame("System!Worker"):
            while ctx.now < duration_us:
                yield from ctx.delay(
                    exponential_us(machine.rng, 600 * MILLISECONDS)
                )
                yield from machine.graphics.system_routine(ctx)

    machine.spawn(program, "System", "GfxWorker")


def install_service_clients(machine: Machine, duration_us: int) -> None:
    """Background applications using the shared services.

    Other running applications (mail client, indexer, updater) also open
    protected files and paint — keeping the security and render services
    loaded so scenario requests queue behind them, as on real desktops.
    """
    from repro.sim.ops import render_batch, security_inspection

    def office_program(ctx: ThreadContext) -> Generator:
        with ctx.frame("OfficeApp!AutoSave"):
            while ctx.now < duration_us:
                yield from machine.security_service.submit(
                    ctx,
                    security_inspection(machine, skewed_file_id(machine.rng)),
                    "OfficeApp!WaitAccessCheck",
                )
                yield from ctx.delay(
                    exponential_us(machine.rng, 150 * MILLISECONDS)
                )

    def widget_program(ctx: ThreadContext) -> Generator:
        with ctx.frame("Widgets!Refresh"):
            while ctx.now < duration_us:
                yield from machine.render_service.submit(
                    ctx,
                    render_batch(machine, complexity=0.5),
                    "Widgets!WaitForRender",
                )
                yield from ctx.delay(
                    exponential_us(machine.rng, 200 * MILLISECONDS)
                )

    def indexer_program(ctx: ThreadContext) -> Generator:
        with ctx.frame("Indexer!Crawl"):
            while ctx.now < duration_us:
                yield from machine.security_service.submit(
                    ctx,
                    security_inspection(machine, skewed_file_id(machine.rng)),
                    "Indexer!WaitAccessCheck",
                )
                yield from ctx.delay(
                    exponential_us(machine.rng, 220 * MILLISECONDS)
                )

    def mail_program(ctx: ThreadContext) -> Generator:
        from repro.sim.ops import fetch_resources

        with ctx.frame("Mail!Sync"):
            while ctx.now < duration_us:
                yield from machine.fetch_service.submit(
                    ctx,
                    fetch_resources(machine, 1, 0.3, 1.0),
                    "Mail!WaitForSync",
                )
                yield from ctx.delay(
                    exponential_us(machine.rng, 350 * MILLISECONDS)
                )

    machine.spawn(office_program, "OfficeApp", "AutoSave")
    machine.spawn(widget_program, "Widgets", "Refresh")
    machine.spawn(indexer_program, "Indexer", "Crawl")
    machine.spawn(mail_program, "Mail", "Sync")


def install_standard_background(
    machine: Machine,
    duration_us: int,
    av_aggressiveness: float = 0.5,
) -> None:
    """Install the default interference mix used by corpus generation."""
    install_av_scanner(machine, duration_us, av_aggressiveness)
    install_service_clients(machine, duration_us)
    install_config_manager(machine, duration_us)
    install_backup_agent(machine, duration_us)
    install_dp_monitor(machine, duration_us)
    install_acpi_activity(machine, duration_us)
    install_graphics_system_worker(machine, duration_us)
