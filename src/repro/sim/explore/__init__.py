"""Systematic schedule exploration over the discrete-event simulator.

Sweeps scheduling-policy × seed grids (:mod:`~repro.sim.explore.runner`),
deduplicates the interleavings each cell reaches by wait-graph shape
(:mod:`~repro.sim.explore.fingerprint`), and holds the full analysis
stack against injected, labeled contention pathologies
(:mod:`~repro.sim.explore.oracle`).
"""

from repro.sim.explore.fingerprint import (
    FINGERPRINT_LENGTH,
    distinct_shapes,
    shape_fingerprint,
)
from repro.sim.explore.oracle import (
    DEFAULT_ORACLE_POLICIES,
    OracleVerdict,
    judge_report,
    negative_control,
    verify_all_pathologies,
    verify_pathology,
)
from repro.sim.explore.runner import (
    CellResult,
    CoverageReport,
    ExploreCell,
    ExploreConfig,
    explore_schedules,
    run_cell,
    run_cell_streams,
    smoke_config,
    stable_seed,
)

__all__ = [
    "CellResult",
    "CoverageReport",
    "DEFAULT_ORACLE_POLICIES",
    "ExploreCell",
    "ExploreConfig",
    "FINGERPRINT_LENGTH",
    "OracleVerdict",
    "distinct_shapes",
    "explore_schedules",
    "judge_report",
    "negative_control",
    "run_cell",
    "run_cell_streams",
    "shape_fingerprint",
    "smoke_config",
    "stable_seed",
    "verify_all_pathologies",
    "verify_pathology",
]
