"""Tests for the discrete-event simulation engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.devices import QueuedDevice
from repro.sim.engine import Compute, Engine
from repro.sim.locks import Lock, Mailbox, SimEvent
from repro.sim.tracer import Tracer
from repro.trace.events import EventKind


def traced_engine(cores=4):
    tracer = Tracer("t")
    return Engine(cores=cores, tracer=tracer), tracer


class TestTimeAndScheduling:
    def test_engine_requires_cores(self):
        with pytest.raises(SimulationError):
            Engine(cores=0)

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.now = 100
        with pytest.raises(SimulationError):
            engine.at(50, lambda: None)

    def test_compute_advances_time(self):
        engine, _ = traced_engine()

        def program(ctx):
            yield from ctx.compute(5_000)

        engine.spawn(program, "P", "T")
        engine.run()
        assert engine.now == 5_000

    def test_delay_is_untraced(self):
        engine, tracer = traced_engine()

        def program(ctx):
            yield from ctx.delay(9_000)

        engine.spawn(program, "P", "T")
        engine.run()
        assert engine.now == 9_000
        assert tracer.finalize().events == []

    def test_run_until_stops_early(self):
        engine, _ = traced_engine()

        def program(ctx):
            yield from ctx.delay(50_000)

        engine.spawn(program, "P", "T")
        engine.run(until=10_000)
        assert engine.now == 10_000

    def test_start_at(self):
        engine, tracer = traced_engine()

        def program(ctx):
            yield from ctx.compute(1_000)

        engine.spawn(program, "P", "T", start_at=7_000)
        engine.run()
        stream = tracer.finalize()
        assert stream.events[0].timestamp == 7_000


class TestCpuCores:
    def test_single_core_serializes(self):
        engine, tracer = traced_engine(cores=1)

        def program(ctx):
            with ctx.frame("app!Work"):
                yield from ctx.compute(3_000)

        engine.spawn(program, "P", "A")
        engine.spawn(program, "P", "B")
        engine.run()
        assert engine.now == 6_000
        running = tracer.finalize().events_of_kind(EventKind.RUNNING)
        # Slices from the two threads never overlap on one core.
        spans = sorted((event.timestamp, event.end) for event in running)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert start_b >= end_a

    def test_two_cores_parallel(self):
        engine, _ = traced_engine(cores=2)

        def program(ctx):
            with ctx.frame("app!Work"):
                yield from ctx.compute(3_000)

        engine.spawn(program, "P", "A")
        engine.spawn(program, "P", "B")
        engine.run()
        assert engine.now == 3_000

    def test_zero_compute_is_noop(self):
        engine, tracer = traced_engine()

        def program(ctx):
            yield from ctx.compute(0)

        engine.spawn(program, "P", "T")
        engine.run()
        assert tracer.finalize().events == []


class TestLocks:
    def test_fifo_ordering(self):
        engine, tracer = traced_engine()
        lock = Lock("L")
        order = []

        def program(name, hold):
            def inner(ctx):
                with ctx.frame("app!Crit"):
                    yield from ctx.acquire(lock)
                    order.append(name)
                    yield from ctx.compute(hold)
                    yield from ctx.release(lock)

            return inner

        engine.spawn(program("a", 1_000), "P", "A", start_at=0)
        engine.spawn(program("b", 1_000), "P", "B", start_at=10)
        engine.spawn(program("c", 1_000), "P", "C", start_at=20)
        engine.run()
        assert order == ["a", "b", "c"]

    def test_contention_emits_wait_unwait_pair(self):
        engine, tracer = traced_engine()
        lock = Lock("L")

        def program(ctx):
            with ctx.frame("fs.sys!Read"):
                yield from ctx.acquire(lock)
                yield from ctx.compute(2_000)
                yield from ctx.release(lock)

        engine.spawn(program, "P", "A")
        engine.spawn(program, "P", "B", start_at=100)
        engine.run()
        stream = tracer.finalize()
        waits = stream.events_of_kind(EventKind.WAIT)
        unwaits = stream.events_of_kind(EventKind.UNWAIT)
        assert len(waits) == 1
        assert len(unwaits) == 1
        assert waits[0].cost == 1_900
        assert unwaits[0].wtid == waits[0].tid
        assert unwaits[0].timestamp == waits[0].end
        assert "kernel!AcquireLock" in waits[0].stack
        assert "kernel!ReleaseLock" in unwaits[0].stack

    def test_uncontended_acquire_emits_nothing(self):
        engine, tracer = traced_engine()
        lock = Lock("L")

        def program(ctx):
            with ctx.frame("app!X"):
                yield from ctx.acquire(lock)
                yield from ctx.release(lock)

        engine.spawn(program, "P", "A")
        engine.run()
        assert tracer.finalize().events == []

    def test_release_not_held_raises(self):
        engine, _ = traced_engine()
        lock = Lock("L")

        def program(ctx):
            with ctx.frame("app!X"):
                yield from ctx.release(lock)

        engine.spawn(program, "P", "A")
        with pytest.raises(SimulationError, match="does not hold"):
            engine.run()

    def test_deadlock_detected(self):
        engine, _ = traced_engine()
        lock_a, lock_b = Lock("A"), Lock("B")

        def program(first, second):
            def inner(ctx):
                with ctx.frame("app!X"):
                    yield from ctx.acquire(first)
                    yield from ctx.compute(1_000)
                    yield from ctx.acquire(second)

            return inner

        engine.spawn(program(lock_a, lock_b), "P", "A")
        engine.spawn(program(lock_b, lock_a), "P", "B")
        with pytest.raises(DeadlockError, match="blocked threads"):
            engine.run()

    def test_bounded_run_tolerates_parked_threads(self):
        engine, _ = traced_engine()
        lock = Lock("L")

        def program(ctx):
            with ctx.frame("app!X"):
                yield from ctx.acquire(lock)  # never released: parks forever

        engine.spawn(program, "P", "A")
        engine.spawn(program, "P", "B")
        engine.run(until=1_000)  # must not raise
        assert engine.now == 1_000


class TestEventsAndMailboxes:
    def test_wait_for_fire_passes_value(self):
        engine, tracer = traced_engine()
        event = SimEvent("E")
        got = []

        def waiter(ctx):
            with ctx.frame("app!Wait"):
                value = yield from ctx.wait_for(event)
                got.append(value)

        def firer(ctx):
            with ctx.frame("app!Fire"):
                yield from ctx.compute(1_000)
                yield from ctx.fire(event, "payload")

        engine.spawn(waiter, "P", "W")
        engine.spawn(firer, "P", "F")
        engine.run()
        assert got == ["payload"]
        waits = tracer.finalize().events_of_kind(EventKind.WAIT)
        assert len(waits) == 1
        assert waits[0].cost == 1_000

    def test_wait_on_fired_event_returns_immediately(self):
        engine, tracer = traced_engine()
        event = SimEvent("E")
        event.fire("early")
        got = []

        def waiter(ctx):
            with ctx.frame("app!Wait"):
                value = yield from ctx.wait_for(event)
                got.append(value)

        engine.spawn(waiter, "P", "W")
        engine.run()
        assert got == ["early"]
        assert tracer.finalize().events == []

    def test_fire_wakes_all_waiters(self):
        engine, _ = traced_engine()
        event = SimEvent("E")
        woken = []

        def waiter(name):
            def inner(ctx):
                with ctx.frame("app!Wait"):
                    yield from ctx.wait_for(event)
                    woken.append(name)

            return inner

        def firer(ctx):
            with ctx.frame("app!Fire"):
                yield from ctx.compute(100)
                yield from ctx.fire(event)

        engine.spawn(waiter("a"), "P", "A")
        engine.spawn(waiter("b"), "P", "B")
        engine.spawn(firer, "P", "F")
        engine.run()
        assert sorted(woken) == ["a", "b"]

    def test_mailbox_take_blocks_until_post(self):
        engine, tracer = traced_engine()
        mailbox = Mailbox("M")
        got = []

        def taker(ctx):
            with ctx.frame("svc!Loop"):
                item = yield from ctx.take(mailbox)
                got.append(item)

        def poster(ctx):
            with ctx.frame("app!Post"):
                yield from ctx.compute(2_000)
                yield from ctx.post(mailbox, 42)

        engine.spawn(taker, "S", "T")
        engine.spawn(poster, "P", "A")
        engine.run()
        assert got == [42]
        waits = tracer.finalize().events_of_kind(EventKind.WAIT)
        assert len(waits) == 1
        assert "kernel!WaitForMessage" in waits[0].stack

    def test_mailbox_preserves_fifo_order(self):
        engine, _ = traced_engine()
        mailbox = Mailbox("M")
        got = []

        def taker(ctx):
            with ctx.frame("svc!Loop"):
                for _ in range(3):
                    item = yield from ctx.take(mailbox)
                    got.append(item)

        def poster(ctx):
            with ctx.frame("app!Post"):
                for value in (1, 2, 3):
                    yield from ctx.post(mailbox, value)
                    yield from ctx.compute(100)

        engine.spawn(taker, "S", "T")
        engine.spawn(poster, "P", "A")
        engine.run()
        assert got == [1, 2, 3]


class TestSpawnAndHardware:
    def test_spawn_returns_thread(self):
        engine, _ = traced_engine()
        seen = []

        def child(ctx):
            yield from ctx.compute(500)

        def parent(ctx):
            from repro.trace.stream import ThreadInfo

            thread = yield from ctx.spawn(
                ThreadInfo(tid=-1, process="P", name="Child"), child
            )
            seen.append(thread.info.name)

        engine.spawn(parent, "P", "Parent")
        engine.run()
        assert seen == ["Child"]
        assert engine.now == 500

    def test_hardware_emits_wait_hw_unwait(self):
        engine, tracer = traced_engine()
        disk = QueuedDevice(engine, "Disk")

        def program(ctx):
            with ctx.frame("fs.sys!Read"):
                yield from ctx.hardware(disk, 4_000)

        engine.spawn(program, "P", "A")
        engine.run()
        stream = tracer.finalize()
        kinds = [event.kind for event in stream.events]
        assert EventKind.WAIT in kinds
        assert EventKind.HW_SERVICE in kinds
        assert EventKind.UNWAIT in kinds
        hw = stream.events_of_kind(EventKind.HW_SERVICE)[0]
        assert hw.cost == 4_000
        unwait = stream.events_of_kind(EventKind.UNWAIT)[0]
        assert unwait.tid == disk.pseudo_tid

    def test_unknown_request_raises(self):
        engine, _ = traced_engine()

        def program(ctx):
            yield "not-a-request"

        engine.spawn(program, "P", "A")
        with pytest.raises(SimulationError, match="unknown request"):
            engine.run()
