"""Ablations of the design choices DESIGN.md calls out.

* Segment length bound k (1 vs 3 vs 5): more context per meta-pattern at
  higher mining cost.
* Non-optimizable hardware reduction on vs off: without the reduction,
  direct-hardware waits pollute the AWG (and therefore the patterns)
  with cost developers cannot act on.
* Set generalization vs exact sequences: the Signature Set Tuple merges
  ordering variants of the same propagation structure; counting distinct
  exact node-sequences shows how much fragmentation sets avoid.
"""

import time

from benchmarks.conftest import print_banner
from repro.causality.analyzer import CausalityAnalysis
from repro.causality.mining import enumerate_meta_patterns
from repro.causality.sst import SignatureSetTuple
from repro.evaluation.study import group_by_scenario
from repro.report.tables import Table
from repro.sim.workloads.registry import scenario_spec
from repro.trace.signatures import ALL_DRIVERS
from repro.waitgraph.aggregate import aggregate_wait_graphs
from repro.waitgraph.builder import build_wait_graph


def _largest_scenario(bench_corpus):
    grouped = group_by_scenario(bench_corpus)
    name, instances = max(grouped.items(), key=lambda kv: len(kv[1]))
    return name, instances


def test_bench_ablation_segment_bound(benchmark, bench_corpus):
    name, instances = _largest_scenario(bench_corpus)
    spec = scenario_spec(name)
    cache = {}

    def analyze(k):
        analysis = CausalityAnalysis(["*.sys"], segment_bound=k)
        return analysis.analyze(
            instances, spec.t_fast, spec.t_slow, scenario=name,
            graph_cache=cache,
        )

    benchmark.pedantic(lambda: analyze(5), rounds=1, iterations=1)

    print_banner(f"Ablation - segment bound k (scenario {name})")
    table = Table(["k", "meta-patterns", "contrasts", "patterns", "time (s)"])
    metas_by_k = {}
    for k in (1, 3, 5):
        start = time.perf_counter()
        report = analyze(k)
        elapsed = time.perf_counter() - start
        metas_by_k[k] = len(report.slow_meta_patterns)
        table.add_row(
            k,
            len(report.slow_meta_patterns),
            len(report.contrast_metas),
            report.pattern_count,
            f"{elapsed:.2f}",
        )
    print(table.render())
    # Longer segments can only add meta-patterns.
    assert metas_by_k[1] <= metas_by_k[3] <= metas_by_k[5]


def test_bench_ablation_hw_reduction(benchmark, bench_corpus):
    name, instances = _largest_scenario(bench_corpus)
    spec = scenario_spec(name)
    slow = [i for i in instances if i.duration > spec.t_slow]
    graphs = [build_wait_graph(instance) for instance in slow]

    def aggregate(reduce_hw):
        return aggregate_wait_graphs(graphs, ALL_DRIVERS, reduce_hw=reduce_hw)

    benchmark(lambda: aggregate(True))

    reduced = aggregate(True)
    unreduced = aggregate(False)
    print_banner(f"Ablation - non-optimizable hw reduction (scenario {name})")
    table = Table(["Variant", "AWG nodes", "root cost", "hw cost removed"])
    table.add_row("with reduction", reduced.node_count(),
                  reduced.total_cost(), reduced.reduced_hw_cost)
    table.add_row("without reduction", unreduced.node_count(),
                  unreduced.total_cost(), 0)
    print(table.render())

    assert reduced.node_count() <= unreduced.node_count()
    assert reduced.total_cost() + reduced.reduced_hw_cost == unreduced.total_cost()


def test_bench_ablation_contrast_criteria(benchmark, bench_corpus):
    """Slow-only criterion alone vs adding the cost-ratio criterion.

    Criterion 2 (common pattern, cost ratio > T_slow/T_fast) catches the
    expensive-but-necessary behaviours that appear in both classes; the
    ablation measures how many contrasts it contributes.
    """
    from repro.causality.mining import discover_contrast_meta_patterns

    name, instances = _largest_scenario(bench_corpus)
    spec = scenario_spec(name)
    report = CausalityAnalysis(["*.sys"]).analyze(
        instances, spec.t_fast, spec.t_slow, scenario=name
    )

    def discover_full():
        return discover_contrast_meta_patterns(
            report.slow_meta_patterns, report.fast_meta_patterns,
            spec.t_fast, spec.t_slow,
        )

    full = benchmark(discover_full)
    slow_only = {
        sst: criteria
        for sst, criteria in full.items()
        if criteria.slow_only
    }
    ratio_based = len(full) - len(slow_only)

    print_banner(f"Ablation - contrast criteria (scenario {name})")
    table = Table(["Criterion", "contrast meta-patterns"])
    table.add_row("slow-only (criterion 1)", len(slow_only))
    table.add_row("+ cost ratio (criterion 2)", ratio_based)
    table.add_row("total", len(full))
    print(table.render())

    assert len(slow_only) <= len(full)


def test_bench_ablation_sets_vs_sequences(benchmark, bench_corpus):
    name, instances = _largest_scenario(bench_corpus)
    spec = scenario_spec(name)
    slow = [i for i in instances if i.duration > spec.t_slow]
    awg = aggregate_wait_graphs(
        [build_wait_graph(instance) for instance in slow], ALL_DRIVERS
    )

    def count_set_patterns():
        return len(enumerate_meta_patterns(awg, k=5))

    set_count = benchmark(count_set_patterns)

    # Exact-sequence variant: key segments by the ordered node-key tuple.
    sequence_keys = set()
    for node in awg.nodes():
        chain = []
        current = node
        while current is not None and len(chain) < 5:
            chain.append(current.key)
            current = current.parent
        for length in range(1, len(chain) + 1):
            sequence_keys.add(tuple(reversed(chain[:length])))

    print_banner(f"Ablation - sets vs exact sequences (scenario {name})")
    table = Table(["Representation", "distinct patterns (k=5)"])
    table.add_row("Signature Set Tuples", set_count)
    table.add_row("exact node sequences", len(sequence_keys))
    print(table.render())

    # Set generalization can only merge, never split.
    assert set_count <= len(sequence_keys)
