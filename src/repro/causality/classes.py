"""Contrast-class classification (paper §4.2.1).

Scenario instances are split by their recorded execution time against the
vendor-specified thresholds ``T_fast`` (upper bound of normal
performance) and ``T_slow`` (lower bound of degradation): the fast class
holds expected behaviour, the slow class holds the problems to identify,
and the gap between the thresholds keeps the classes unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.errors import AnalysisError
from repro.trace.stream import ScenarioInstance


@dataclass
class ContrastClasses:
    """The fast/slow split of one scenario's instances."""

    scenario: str
    t_fast: int
    t_slow: int
    fast: List[ScenarioInstance] = field(default_factory=list)
    slow: List[ScenarioInstance] = field(default_factory=list)
    between: List[ScenarioInstance] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.fast) + len(self.slow) + len(self.between)

    def summary(self) -> str:
        return (
            f"{self.scenario}: {self.total} instances -> "
            f"{len(self.fast)} fast (<{self.t_fast}us), "
            f"{len(self.slow)} slow (>{self.t_slow}us), "
            f"{len(self.between)} between"
        )


def classify_instances(
    instances: Iterable[ScenarioInstance],
    t_fast: int,
    t_slow: int,
    scenario: str = "",
) -> ContrastClasses:
    """Split instances into contrast classes by execution time.

    Instances between the thresholds belong to neither class — they are
    kept for accounting but excluded from mining, preserving the paper's
    ``T_slow - T_fast >> 0`` separation.
    """
    if not t_fast < t_slow:
        raise AnalysisError(
            f"T_fast ({t_fast}) must be strictly below T_slow ({t_slow})"
        )
    classes = ContrastClasses(scenario=scenario, t_fast=t_fast, t_slow=t_slow)
    for instance in instances:
        if scenario and instance.scenario != scenario:
            raise AnalysisError(
                f"instance of {instance.scenario!r} passed to the "
                f"{scenario!r} classifier"
            )
        duration = instance.duration
        if duration < t_fast:
            classes.fast.append(instance)
        elif duration > t_slow:
            classes.slow.append(instance)
        else:
            classes.between.append(instance)
    return classes
