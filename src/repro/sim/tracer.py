"""ETW-like tracer: turns engine callbacks into a trace stream.

The tracer implements the observation model of the paper's §2.1:

* CPU execution is reported as RUNNING events sampled at a constant
  interval (1 ms by default, like ETW/DTrace).  A compute slice of
  duration *d* yields ``ceil(d / interval)`` samples whose costs add up to
  exactly *d* — a cost-exact idealization of wall-clock sampling.
* Blocking produces one WAIT event whose ``cost`` is the restored wait
  duration and whose callstack is the blocker's stack at block time.
* Wake-ups produce one UNWAIT event attributed to the waking thread (or a
  device pseudo-thread for IO completions) with ``wtid`` set.
* Device activity produces HW_SERVICE events with start and duration.

Call :meth:`Tracer.finalize` once the simulation has drained to obtain an
ordered, validated :class:`~repro.trace.stream.TraceStream`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.trace.events import Event, EventKind
from repro.trace.stream import ThreadInfo, TraceStream
from repro.units import DEFAULT_SAMPLE_INTERVAL_US


class Tracer:
    """Collects tracing events during a simulation run."""

    def __init__(
        self,
        stream_id: str,
        sample_interval: int = DEFAULT_SAMPLE_INTERVAL_US,
    ):
        if sample_interval < 1:
            raise SimulationError("sample interval must be >= 1 microsecond")
        self.stream_id = stream_id
        self.sample_interval = sample_interval
        self._events: List[Event] = []
        self._threads: List[ThreadInfo] = []
        self._scenarios: List[Tuple[str, int, int, int]] = []
        self._finalized: Optional[TraceStream] = None

    # -- engine callbacks ---------------------------------------------------

    def on_thread_created(self, info: ThreadInfo) -> None:
        self._threads.append(info)

    def on_compute(
        self, tid: int, stack: Tuple[str, ...], start: int, duration: int
    ) -> None:
        """Emit RUNNING samples covering ``[start, start + duration)``."""
        offset = 0
        while offset < duration:
            slice_cost = min(self.sample_interval, duration - offset)
            self._append(
                EventKind.RUNNING,
                stack=stack,
                timestamp=start + offset,
                cost=slice_cost,
                tid=tid,
            )
            offset += slice_cost

    def on_wait(
        self,
        tid: int,
        stack: Tuple[str, ...],
        start: int,
        end: int,
        resource: Optional[str],
    ) -> None:
        if end <= start:
            return
        self._append(
            EventKind.WAIT,
            stack=stack,
            timestamp=start,
            cost=end - start,
            tid=tid,
            resource=resource,
        )

    def on_unwait(
        self,
        tid: int,
        stack: Tuple[str, ...],
        timestamp: int,
        wtid: int,
        resource: Optional[str],
    ) -> None:
        self._append(
            EventKind.UNWAIT,
            stack=stack,
            timestamp=timestamp,
            cost=0,
            tid=tid,
            wtid=wtid,
            resource=resource,
        )

    def on_hw_service(
        self, tid: int, start: int, duration: int, resource: Optional[str]
    ) -> None:
        self._append(
            EventKind.HW_SERVICE,
            stack=(),
            timestamp=start,
            cost=duration,
            tid=tid,
            resource=resource,
        )

    def on_scenario(self, name: str, tid: int, t0: int, t1: int) -> None:
        self._scenarios.append((name, tid, t0, t1))

    # -- finalization ------------------------------------------------------

    def _append(
        self,
        kind: EventKind,
        stack: Tuple[str, ...],
        timestamp: int,
        cost: int,
        tid: int,
        wtid: Optional[int] = None,
        resource: Optional[str] = None,
    ) -> None:
        if self._finalized is not None:
            raise SimulationError("tracer already finalized")
        self._events.append(
            Event(
                kind=kind,
                stack=stack,
                timestamp=timestamp,
                cost=cost,
                tid=tid,
                seq=len(self._events),
                wtid=wtid,
                resource=resource,
            )
        )

    def finalize(self) -> TraceStream:
        """Sort, renumber and package everything into a TraceStream."""
        if self._finalized is None:
            stream = TraceStream.from_events(
                self.stream_id, self._events, self._threads
            )
            for name, tid, t0, t1 in self._scenarios:
                stream.add_instance(name, tid, t0, t1)
            self._finalized = stream
        return self._finalized
