"""Pluggable scheduling policies for the discrete-event engine.

The engine (:mod:`repro.sim.engine`) takes every scheduling decision —
which same-timestamp heap action runs first, which lock waiter is woken
on release, in what order a fired event's waiters resume, whether a lock
handoff is delayed — through a :class:`SchedulerPolicy`.  The default
:class:`FifoPolicy` reproduces the engine's historical behaviour exactly
(deterministic FIFO everywhere, zero added delay), so existing seeds
generate byte-identical traces.

The seeded alternatives deliberately sample *other* legal interleavings
of the same workload, which is how schedule exploration
(:mod:`repro.sim.explore`) drives rare contention pathologies — lock
convoys, priority inversions, near-deadlock serialization, wakeup
storms — that a single FIFO interleaving per seed under-represents:

* :class:`RandomTiebreakPolicy` randomizes the order of same-timestamp
  events (the schedule's only degrees of freedom in a deterministic
  discrete-event world);
* :class:`PctPolicy` assigns every thread a random priority and
  re-draws ``change_points`` of them mid-run, after the PCT randomized
  scheduler of Burckhardt et al.;
* :class:`ConvoyPolicy` injects small delays between a contended lock's
  release and the next holder's wakeup — the classic convoy amplifier;
* :class:`ShuffleWakeupPolicy` picks lock/mailbox waiters at random and
  shuffles the wake order of fired events (non-FIFO OS wait queues).

Every policy is seeded and pure-deterministic: the same ``(policy name,
seed)`` replays the same schedule decision for decision, so exploration
sweeps are reproducible and any interesting interleaving can be
regenerated from its grid coordinates alone.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

__all__ = [
    "ConvoyPolicy",
    "FifoPolicy",
    "POLICY_FACTORIES",
    "POLICY_NAMES",
    "PctPolicy",
    "RandomTiebreakPolicy",
    "SchedulerPolicy",
    "ShuffleWakeupPolicy",
    "make_policy",
]


class SchedulerPolicy:
    """Scheduling decision points the engine delegates.

    Subclasses override any subset; every default reproduces the
    engine's historical FIFO behaviour.  ``attach`` is called once by
    :class:`~repro.sim.engine.Engine.__init__`; policies must not be
    shared between engines (they may keep per-run state).
    """

    #: Registry name; also what ``repr`` and coverage reports show.
    name = "fifo"

    def attach(self, engine) -> None:
        """Bind this policy to the engine it will schedule for."""
        self.engine = engine

    def heap_key(self, timestamp: int, tid: Optional[int]) -> float:
        """Secondary sort key for heap entries at equal timestamps.

        Entries order by ``(timestamp, heap_key, seq)``; returning a
        constant leaves the engine-global FIFO sequence in charge.
        ``tid`` is the thread the scheduled action advances, or ``None``
        for actions without a single owning thread.
        """
        return 0.0

    def pick_waiter(self, resource: str, waiters: Sequence) -> int:
        """Index of the waiter to hand a lock/mailbox item to.

        ``resource`` is the provenance string (``"lock:..."`` or
        ``"mailbox:..."``); ``waiters`` is the non-empty FIFO queue of
        blocked :class:`~repro.sim.engine.SimThread` objects.
        """
        return 0

    def wake_order(self, waiters: Sequence) -> List[int]:
        """Order (indices) in which a fired event's waiters wake."""
        return list(range(len(waiters)))

    def release_delay(self, lock) -> int:
        """Extra microseconds between a lock release and the handoff wake.

        Models wakeup/scheduling latency; non-zero values extend the
        next holder's observed wait and let convoys build behind it.
        """
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}({self.name!r})"


class FifoPolicy(SchedulerPolicy):
    """The engine's historical deterministic behaviour, made explicit.

    Heap ties break by engine-global insertion sequence, lock and
    mailbox waiters are served FIFO, fired events wake waiters in
    registration order, and lock handoffs are immediate.  An engine
    constructed without a policy uses this one, so traces from existing
    seeds are byte-identical to pre-policy builds.
    """

    name = "fifo"


class _SeededPolicy(SchedulerPolicy):
    """Shared base for policies driven by a private seeded generator.

    The generator is deliberately separate from the machine/workload
    RNG: scheduling decisions perturb *when* programs run, never the
    random durations the programs themselves draw.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        # String seeding is hash-randomization-proof (seeded via SHA-512
        # of the bytes), so forked sweep workers and fresh processes
        # derive the identical decision stream from the same grid cell.
        self.rng = random.Random(f"sched/{self.name}/{seed}")


class RandomTiebreakPolicy(_SeededPolicy):
    """Uniformly random ordering among same-timestamp heap actions.

    Every heap push draws a fresh key, so two actions scheduled for the
    same microsecond run in seeded-random order instead of insertion
    order.  This is the broadest, least opinionated exploration policy:
    it perturbs every simultaneous-event race in the run.
    """

    name = "random"

    def heap_key(self, timestamp: int, tid: Optional[int]) -> float:
        return self.rng.random()


class PctPolicy(_SeededPolicy):
    """PCT-style random thread priorities with ``change_points`` demotions.

    Each thread receives a random priority on first sight; heap ties
    then resolve lowest-key-first, so high-priority threads win every
    same-timestamp race (including freed CPU cores and lock handoffs,
    whose wakes are heap actions).  At ``change_points`` pre-drawn
    scheduling decisions the currently winning thread is demoted below
    everyone, mimicking the priority change points that give PCT its
    probabilistic bug-depth guarantee.
    """

    name = "pct"

    #: Decision horizon the change points are drawn from.  Runs longer
    #: than this still perturb (priorities keep applying); shorter runs
    #: simply hit fewer change points.
    DECISION_SPAN = 4_000

    def __init__(self, seed: int = 0, change_points: int = 3):
        super().__init__(seed)
        if change_points < 0:
            raise ConfigError(
                f"pct change_points must be >= 0, got {change_points}"
            )
        self.change_points = change_points
        self._priorities: Dict[int, float] = {}
        self._decisions = 0
        self._demotions = 0
        self._change_at = frozenset(
            self.rng.randrange(1, self.DECISION_SPAN)
            for _ in range(change_points)
        )

    def _priority(self, tid: int) -> float:
        priority = self._priorities.get(tid)
        if priority is None:
            priority = self.rng.random()
            self._priorities[tid] = priority
        return priority

    def heap_key(self, timestamp: int, tid: Optional[int]) -> float:
        if tid is None:
            return 0.5  # neutral: un-owned actions sit mid-pack
        self._decisions += 1
        if self._decisions in self._change_at:
            # Demote the thread winning this decision below every
            # existing priority (which all lie in [0, 1)).
            self._demotions += 1
            self._priorities[tid] = 1.0 + self._demotions
        return self._priority(tid)

    def pick_waiter(self, resource: str, waiters: Sequence) -> int:
        best = 0
        best_priority = self._priority(waiters[0].tid)
        for index in range(1, len(waiters)):
            priority = self._priority(waiters[index].tid)
            if priority < best_priority:
                best, best_priority = index, priority
        return best

    def wake_order(self, waiters: Sequence) -> List[int]:
        return sorted(
            range(len(waiters)),
            key=lambda index: self._priority(waiters[index].tid),
        )


class ConvoyPolicy(_SeededPolicy):
    """Delay-injection on contended lock releases (convoy driver).

    With probability ``delay_probability``, a lock released while other
    threads queue behind it hands off only after a random delay in
    ``[delay_min_us, delay_max_us]`` — the OS-level wakeup latency that
    turns a briefly-held hot lock into a convoy: while the next holder
    is still waking, new arrivals pile onto the queue, and the lock's
    service rate collapses to one handoff per wakeup latency.
    """

    name = "convoy"

    def __init__(
        self,
        seed: int = 0,
        delay_probability: float = 0.4,
        delay_min_us: int = 100,
        delay_max_us: int = 1_500,
    ):
        super().__init__(seed)
        if not 0.0 <= delay_probability <= 1.0:
            raise ConfigError(
                f"delay_probability must be in [0, 1], got {delay_probability}"
            )
        if not 0 <= delay_min_us <= delay_max_us:
            raise ConfigError(
                "delay bounds need 0 <= delay_min_us <= delay_max_us, got "
                f"[{delay_min_us}, {delay_max_us}]"
            )
        self.delay_probability = delay_probability
        self.delay_min_us = delay_min_us
        self.delay_max_us = delay_max_us

    def release_delay(self, lock) -> int:
        if not lock.waiters:
            return 0
        if self.rng.random() >= self.delay_probability:
            return 0
        return self.rng.randint(self.delay_min_us, self.delay_max_us)


class ShuffleWakeupPolicy(_SeededPolicy):
    """Random waiter selection and shuffled broadcast wake order.

    Models non-FIFO OS wait queues: a released lock or posted mailbox
    item goes to a seeded-random waiter (unfair — a thread can starve
    at the back of the queue for many handoffs), and a fired event's
    waiters stampede in shuffled order.  Drives wakeup-storm and
    starvation shapes FIFO service can never exhibit.
    """

    name = "shuffle"

    def pick_waiter(self, resource: str, waiters: Sequence) -> int:
        return self.rng.randrange(len(waiters))

    def wake_order(self, waiters: Sequence) -> List[int]:
        order = list(range(len(waiters)))
        self.rng.shuffle(order)
        return order


#: Name -> constructor for every registered policy.  Constructors take
#: ``seed`` plus policy-specific keyword parameters.
POLICY_FACTORIES: Dict[str, Callable[..., SchedulerPolicy]] = {
    "fifo": lambda seed=0, **params: FifoPolicy(),
    "random": RandomTiebreakPolicy,
    "pct": PctPolicy,
    "convoy": ConvoyPolicy,
    "shuffle": ShuffleWakeupPolicy,
}

#: Registered policy names, stable order (fifo first, then exploration).
POLICY_NAMES: Tuple[str, ...] = tuple(POLICY_FACTORIES)


def make_policy(name: str, seed: int = 0, **params) -> SchedulerPolicy:
    """Construct a registered scheduling policy by name.

    Raises :class:`~repro.errors.ConfigError` — never silently falls
    back to FIFO — when ``name`` is unknown, so a typoed policy in a
    sweep grid or on the CLI fails loudly instead of quietly exploring
    nothing.
    """
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError:
        known = ", ".join(POLICY_NAMES)
        raise ConfigError(
            f"unknown scheduler policy {name!r}; known: {known}"
        ) from None
    return factory(seed=seed, **params)
