"""Additional engine edge cases: holding(), shutdown, nested frames,
bounded-run quiescence vs deadlock detection."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine
from repro.sim.locks import Lock, Mailbox
from repro.sim.tracer import Tracer
from repro.trace.events import EventKind


def traced_engine(cores=4):
    tracer = Tracer("t")
    return Engine(cores=cores, tracer=tracer), tracer


class TestHolding:
    def test_holding_releases_on_normal_exit(self):
        engine, _ = traced_engine()
        lock = Lock("L")

        def body(ctx):
            yield from ctx.compute(1_000)

        def program(ctx):
            with ctx.frame("app!X"):
                yield from ctx.holding(lock, body(ctx))

        engine.spawn(program, "P", "A")
        engine.run()
        assert lock.holder is None

    def test_holding_releases_on_exception(self):
        engine, _ = traced_engine()
        lock = Lock("L")
        errors = []

        def body(ctx):
            yield from ctx.compute(100)
            raise RuntimeError("boom")

        def program(ctx):
            with ctx.frame("app!X"):
                try:
                    yield from ctx.holding(lock, body(ctx))
                except RuntimeError as error:
                    errors.append(error)

        engine.spawn(program, "P", "A")
        engine.run()
        assert errors
        assert lock.holder is None


class TestShutdown:
    def test_shutdown_clears_parked_threads(self):
        engine, _ = traced_engine()
        lock = Lock("L")

        def program(ctx):
            with ctx.frame("app!X"):
                yield from ctx.acquire(lock)  # A holds, B parks forever

        engine.spawn(program, "P", "A")
        engine.spawn(program, "P", "B")
        engine.run(until=1_000)
        engine.shutdown()
        assert engine._live_threads == {}

    def test_shutdown_idempotent(self):
        engine, _ = traced_engine()
        engine.run()
        engine.shutdown()
        engine.shutdown()


class TestRunUntil:
    def test_unbounded_run_raises_on_lock_deadlock(self):
        engine, _ = traced_engine()
        lock = Lock("L")

        def holder(ctx):
            yield from ctx.acquire(lock)
            yield from ctx.compute(1_000)
            # Never releases: B can never wake.

        def blocked(ctx):
            yield from ctx.delay(100)
            yield from ctx.acquire(lock)

        engine.spawn(holder, "P", "A")
        engine.spawn(blocked, "P", "B")
        with pytest.raises(DeadlockError, match="lock:L"):
            engine.run()

    def test_unbounded_run_treats_parked_mailbox_takers_as_quiescent(self):
        # A service thread waiting on an empty mailbox is an idle daemon,
        # not a deadlock: the unbounded run must drain cleanly.
        engine, _ = traced_engine()
        mailbox = Mailbox("Requests")

        def server(ctx):
            while True:
                item = yield from ctx.take(mailbox)
                yield from ctx.compute(item)

        def client(ctx):
            yield from ctx.post(mailbox, 500)
            yield from ctx.compute(200)

        engine.spawn(server, "Svc", "Worker")
        engine.spawn(client, "App", "Main")
        engine.run()  # must not raise

    def test_bounded_run_never_diagnoses_deadlock(self):
        # With ``until`` the engine cannot distinguish "will never wake"
        # from "would wake later": blocked threads are daemons.
        engine, _ = traced_engine()
        lock = Lock("L")

        def holder(ctx):
            yield from ctx.acquire(lock)
            yield from ctx.compute(1_000)

        def blocked(ctx):
            yield from ctx.delay(100)
            yield from ctx.acquire(lock)

        engine.spawn(holder, "P", "A")
        engine.spawn(blocked, "P", "B")
        engine.run(until=50_000)  # must not raise
        assert engine.now == 50_000

    def test_bounded_run_stops_the_clock_at_until(self):
        engine, _ = traced_engine()
        fired = []

        def program(ctx):
            yield from ctx.delay(10_000)
            fired.append(ctx.now)
            yield from ctx.delay(10_000)
            fired.append(ctx.now)

        engine.spawn(program, "P", "A")
        engine.run(until=15_000)
        assert fired == [10_000]
        assert engine.now == 15_000
        # Resuming past the horizon delivers the held-back event.
        engine.run()
        assert fired == [10_000, 20_000]


class TestFrames:
    def test_nested_frames_restore_on_exit(self):
        engine, tracer = traced_engine()
        depths = []

        def program(ctx):
            with ctx.frame("a!1"):
                with ctx.frame("b!2"):
                    yield from ctx.compute(1_000)
                depths.append(tuple(ctx.thread.stack))
                yield from ctx.compute(1_000)

        engine.spawn(program, "P", "A")
        engine.run()
        # After the inner with, only the root + a!1 remain.
        assert depths == [("P!A", "a!1")]
        stacks = {
            event.stack
            for event in tracer.finalize().events_of_kind(EventKind.RUNNING)
        }
        assert ("P!A", "a!1", "b!2") in stacks
        assert ("P!A", "a!1") in stacks

    def test_root_frame_is_process_and_name(self):
        engine, tracer = traced_engine()

        def program(ctx):
            yield from ctx.compute(500)

        engine.spawn(program, "Browser", "UI")
        engine.run()
        event = tracer.finalize().events[0]
        assert event.stack == ("Browser!UI",)
