"""Function signatures and component matching.

A *signature* identifies a function on a callstack and is written
``module!Function`` exactly as ETW renders symbols (paper §2.1, e.g.
``fv.sys!QueryFileTable`` or ``kernel!AcquireLock``).  Callstacks are stored
root-first: index 0 is the outermost caller and the last element is the
frame that was executing when the event fired.

A :class:`ComponentFilter` selects the *chosen components* of an analysis
(paper §3).  Patterns are shell-style wildcards matched against the module
part of a signature; the paper's device-driver study uses the single
pattern ``*.sys``.
"""

from __future__ import annotations

import fnmatch
import re
from functools import lru_cache
from typing import Iterable, Optional, Sequence, Tuple

SIGNATURE_SEPARATOR = "!"

#: Dummy signature representing hardware service time on Aggregated Wait
#: Graph nodes (paper Definition 3 gives hardware-service nodes a dummy
#: signature; Figure 2 labels it "hardware service").
HARDWARE_SIGNATURE = "Hardware!Service"

Stack = Tuple[str, ...]


def make_signature(module: str, function: str) -> str:
    """Build a ``module!Function`` signature string."""
    return f"{module}{SIGNATURE_SEPARATOR}{function}"


@lru_cache(maxsize=65536)
def module_of(signature: str) -> str:
    """Return the module part of a signature (``'fv.sys'``).

    Signatures without a separator are treated as bare module names, which
    lets hardware dummy signatures and raw component names flow through the
    same matching code.  The result is memoized: analyses call this once
    per frame per event, and real corpora repeat a small signature
    vocabulary millions of times.
    """
    head, _, _ = signature.partition(SIGNATURE_SEPARATOR)
    return head


def function_of(signature: str) -> str:
    """Return the function part of a signature (``'QueryFileTable'``)."""
    _, _, tail = signature.partition(SIGNATURE_SEPARATOR)
    return tail


class ComponentFilter:
    """Matches signatures against a set of component-name patterns.

    Parameters
    ----------
    patterns:
        Shell-style wildcard patterns applied to the *module* part of each
        signature, e.g. ``["*.sys"]`` for all device drivers or
        ``["fv.sys", "fs.sys"]`` for two specific ones.  Matching is
        case-insensitive, as Windows module names are.
    """

    #: Bound on the per-instance callstack caches.  Stacks repeat heavily
    #: (the simulator and real traces alike produce a bounded stack
    #: vocabulary), so a modest LRU captures nearly every lookup.
    STACK_CACHE_SIZE = 65536

    def __init__(self, patterns: Iterable[str]):
        self._patterns: Tuple[str, ...] = tuple(patterns)
        if not self._patterns:
            raise ValueError("ComponentFilter requires at least one pattern")
        joined = "|".join(
            fnmatch.translate(pattern.lower()) for pattern in self._patterns
        )
        self._regex = re.compile(joined)
        self._module_cache: dict = {}
        self._stack_match = lru_cache(maxsize=self.STACK_CACHE_SIZE)(
            self._matches_stack_uncached
        )
        self._stack_component = lru_cache(maxsize=self.STACK_CACHE_SIZE)(
            self._component_signature_uncached
        )

    def __getstate__(self) -> dict:
        # Compiled regexes and lru_cache wrappers don't need to travel
        # (and the wrappers can't be pickled); the patterns fully define
        # the filter, so rebuild everything on the other side.
        return {"patterns": self._patterns}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["patterns"])

    @property
    def patterns(self) -> Tuple[str, ...]:
        return self._patterns

    def matches_module(self, module: str) -> bool:
        """Return True when a module name matches any pattern."""
        cached = self._module_cache.get(module)
        if cached is None:
            cached = bool(self._regex.match(module.lower()))
            self._module_cache[module] = cached
        return cached

    def matches_signature(self, signature: str) -> bool:
        """Return True when the signature's module matches any pattern."""
        return self.matches_module(module_of(signature))

    def matches_stack(self, stack: Sequence[str]) -> bool:
        """Return True when any frame on the callstack matches.

        Whole-stack results are memoized per filter instance: analyses
        consult the same (interned, tuple-valued) stacks once per frame
        per event, so the cache turns the hot path into one dict lookup.
        """
        return self._stack_match(tuple(stack))

    def _matches_stack_uncached(self, stack: Tuple[str, ...]) -> bool:
        return any(self.matches_signature(frame) for frame in stack)

    def component_signature(self, stack: Sequence[str]) -> Optional[str]:
        """Return *the* component signature of a callstack, if any.

        The paper (Definition 2 preamble) reduces an event to "the topmost
        signature related to the chosen components on the callstack": the
        innermost (deepest) matching frame, i.e. the most specific component
        function responsible for the event.  For the stack
        ``(Browser!TabCreate, kernel!OpenFile, fv.sys!QueryFileTable,
        kernel!AcquireLock)`` with pattern ``*.sys`` this is
        ``fv.sys!QueryFileTable``.  Memoized like :meth:`matches_stack`.
        """
        return self._stack_component(tuple(stack))

    def _component_signature_uncached(
        self, stack: Tuple[str, ...]
    ) -> Optional[str]:
        for frame in reversed(stack):
            if self.matches_signature(frame):
                return frame
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ComponentFilter(patterns={self._patterns!r})"


#: Unset marker for :class:`StackTableMatcher` memo slots (``None`` is a
#: valid component-signature result).
_UNSET = object()


class StackTableMatcher:
    """Array-backed :class:`ComponentFilter` twin over a stack table.

    A columnar trace stream stores each distinct callstack once and
    refers to it by integer id.  This matcher memoizes the three
    per-stack questions the analyses ask — *does any frame match*, *what
    is the component signature*, *what is the node signature* — in flat
    lists indexed by stack id, so the hot loops of wait-graph
    aggregation and impact accumulation reduce to one list lookup per
    event instead of a tuple hash per frame.  Results are exactly those
    of the underlying filter applied to the materialized stack tuples.
    """

    __slots__ = ("_filter", "_stacks", "_matches", "_node_sigs")

    def __init__(
        self,
        component_filter: ComponentFilter,
        stacks: Sequence[Tuple[str, ...]],
    ):
        self._filter = component_filter
        self._stacks = stacks
        self._matches: list = [None] * len(stacks)
        self._node_sigs: list = [_UNSET] * len(stacks)

    def matches(self, stack_id: int) -> bool:
        """``matches_stack`` by stack id."""
        matched = self._matches[stack_id]
        if matched is None:
            matched = self._filter.matches_stack(self._stacks[stack_id])
            self._matches[stack_id] = matched
        return matched

    def component_signature(self, stack_id: int) -> Optional[str]:
        """``component_signature`` by stack id."""
        return self._filter.component_signature(self._stacks[stack_id])

    def node_signature(self, stack_id: int) -> str:
        """The AWG node signature of a non-hardware event's stack.

        The topmost component-related signature when one exists,
        otherwise the innermost frame, otherwise (empty stack) the
        hardware dummy signature — mirroring
        ``AggregatedWaitGraph._signature_of`` for events that are not
        hardware services and not on device pseudo-threads.
        """
        signature = self._node_sigs[stack_id]
        if signature is _UNSET:
            stack = self._stacks[stack_id]
            signature = self._filter.component_signature(stack)
            if signature is None:
                signature = stack[-1] if stack else HARDWARE_SIGNATURE
            self._node_sigs[stack_id] = signature
        return signature


#: The filter used throughout the paper's evaluation: all device drivers.
ALL_DRIVERS = ComponentFilter(["*.sys"])
