#!/usr/bin/env python3
"""Full corpus study: regenerate every table of the paper's evaluation.

Generates a corpus, optionally persists it to JSONL (``--save DIR``),
runs the complete §5 evaluation (impact analysis plus per-scenario
causality analysis with coverage, ranking, and driver-type
categorization), and prints Tables 1–4 alongside the §5.1 impact numbers.

Run:  python examples/corpus_study.py [--streams N] [--save DIR]
"""

import argparse

from repro import CorpusConfig, generate_corpus
from repro.evaluation.drivertypes import DRIVER_TYPE_ORDER
from repro.evaluation.study import run_study
from repro.report.tables import Table, fmt_pct, fmt_ratio
from repro.trace import dump_corpus, load_corpus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--streams", type=int, default=16,
                        help="number of trace streams to simulate")
    parser.add_argument("--seed", type=int, default=20140301)
    parser.add_argument("--save", metavar="DIR",
                        help="persist the corpus as JSONL and reload it")
    args = parser.parse_args()

    print(f"Generating {args.streams} trace streams ...")
    corpus = generate_corpus(
        CorpusConfig(streams=args.streams, seed=args.seed)
    )
    if args.save:
        paths = dump_corpus(corpus, args.save)
        print(f"Saved {len(paths)} streams to {args.save}; reloading ...")
        corpus = list(load_corpus(args.save))

    print("Running the full evaluation (this builds every Wait Graph) ...\n")
    study = run_study(corpus)

    # §5.1 impact numbers.
    impact = study.impact
    table = Table(["Metric", "Value"], title="Impact analysis (section 5.1)")
    table.add_row("IA_wait", fmt_pct(impact.ia_wait))
    table.add_row("IA_run", fmt_pct(impact.ia_run))
    table.add_row("IA_opt", fmt_pct(impact.ia_opt))
    table.add_row("D_wait/D_waitdist", fmt_ratio(impact.wait_multiplicity))
    print(table.render())
    print()

    # Table 1.
    table = Table(["Scenario", "#Instances", "fast", "slow"],
                  title="Table 1 - Selected scenarios")
    for name, total, fast, slow in sorted(study.table1_rows()):
        table.add_row(name, total, fast, slow)
    print(table.render())
    print()

    # Table 2.
    table = Table(["Scenario", "Driver Cost", "ITC", "TTC"],
                  title="Table 2 - Coverages")
    for name, cost, itc, ttc in sorted(study.table2_rows()):
        table.add_row(name, fmt_pct(cost), fmt_pct(itc), fmt_pct(ttc))
    print(table.render())
    print()

    # Table 3.
    table = Table(["Scenario", "#Patterns", "10%", "20%", "30%"],
                  title="Table 3 - Coverage by ranking")
    for name, count, top10, top20, top30 in sorted(study.table3_rows()):
        table.add_row(name, count, fmt_pct(top10), fmt_pct(top20),
                      fmt_pct(top30))
    print(table.render())
    print()

    # Table 4.
    headers = ["Scenario"] + [t.split("/")[0][:8] for t in DRIVER_TYPE_ORDER]
    table = Table(headers, title="Table 4 - Driver types in top-10 patterns")
    for name, counts in sorted(study.table4_rows().items()):
        table.add_row(
            name, *(counts.get(t, 0) for t in DRIVER_TYPE_ORDER)
        )
    print(table.render())


if __name__ == "__main__":
    main()
