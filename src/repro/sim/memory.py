"""Virtual memory with hard faults.

A hard fault forces the memory manager to read the page back from disk:
the faulting thread blocks, a system pager worker performs the page-in
through the file system (and through storage encryption when enabled),
then signals the faulting thread.  This is the "subtler interaction" of
the paper's §5.2.4: a graphics routine that never knowingly touches the
disk ends up waiting on ``fs.sys`` and ``se.sys`` for seconds.
"""

from __future__ import annotations

import random
from typing import Generator

from repro.sim.distributions import bernoulli, lognormal_us, pareto_us
from repro.sim.drivers import FileSystemDriver, io_call
from repro.sim.engine import Engine, ThreadContext
from repro.sim.locks import SimEvent
from repro.trace.signatures import make_signature
from repro.trace.stream import ThreadInfo


class PagedMemory:
    """Pageable memory: each touch may hard-fault with ``fault_rate``.

    Parameters
    ----------
    engine, fs:
        Simulation kernel and the file-system driver used for page-in.
    fault_rate:
        Probability that a touch misses resident memory.
    page_read_size:
        Size factor handed to ``fs.paging_read`` for an ordinary fault.
    severe_fault_rate:
        Fraction of faults that page in a large cluster (Pareto-tailed),
        producing the multi-second stalls of the paper's graphics case.
    """

    def __init__(
        self,
        engine: Engine,
        fs: FileSystemDriver,
        rng: random.Random,
        fault_rate: float = 0.03,
        page_read_size: float = 6.0,
        severe_fault_rate: float = 0.2,
    ):
        self.engine = engine
        self.fs = fs
        self.rng = rng
        self.fault_rate = fault_rate
        self.page_read_size = page_read_size
        self.severe_fault_rate = severe_fault_rate
        self.fault_count = 0
        self._pager_index = 0

    def touch(self, ctx: ThreadContext) -> Generator:
        """Access pageable memory; block on a page-in when it hard-faults."""
        if not bernoulli(self.rng, self.fault_rate):
            # Resident: the access costs nothing observable at 1 ms sampling.
            return
        self.fault_count += 1
        self._pager_index += 1
        pager_name = f"Pager{self._pager_index}"
        completed = SimEvent(f"pagein/{pager_name}")
        file_id = self.rng.randrange(1 << 16)
        if bernoulli(self.rng, self.severe_fault_rate):
            size = self.page_read_size * pareto_us(self.rng, 4, alpha=1.5, cap_us=40)
        else:
            size = self.page_read_size
        fs = self.fs

        def pager_program(pager_ctx: ThreadContext) -> Generator:
            with pager_ctx.frame(make_signature("kernel", "PageFaultHandler")):
                yield from io_call(
                    pager_ctx, fs.paging_read(pager_ctx, file_id, size)
                )
                yield from pager_ctx.fire(completed)

        info = ThreadInfo(tid=-1, process="System", name=pager_name)
        with ctx.frame(make_signature("kernel", "PageFault")):
            yield from ctx.spawn(info, pager_program)
            yield from ctx.wait_for(completed)
