"""Property tests: ``merge_awgs`` over chunked partials ≡ single-pass
``aggregate_wait_graphs`` over the concatenated Wait Graph list.

This is the correctness foundation of the map–reduce pipeline: chunked
aggregation followed by a merge must be node-for-node identical (keys,
``C``, ``N``, max single cost — and even trie insertion order) to the
sequential Algorithm 1, across seeds and chunk sizes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WaitGraphError
from repro.sim.corpus import CorpusConfig, generate_corpus
from repro.trace.signatures import ALL_DRIVERS, ComponentFilter
from repro.waitgraph.aggregate import aggregate_wait_graphs, merge_awgs
from repro.waitgraph.builder import build_wait_graph

_GRAPH_CACHE = {}


def graphs_for_seed(seed: int):
    """All Wait Graphs of a small seeded corpus (cached per seed)."""
    graphs = _GRAPH_CACHE.get(seed)
    if graphs is None:
        corpus = generate_corpus(CorpusConfig(streams=2, seed=seed))
        graphs = [
            build_wait_graph(instance)
            for stream in corpus
            for instance in stream.instances
        ]
        _GRAPH_CACHE[seed] = graphs
    return graphs


def awg_snapshot(awg):
    """Full structural snapshot: keys *in insertion order*, C, N, max."""

    def node_snapshot(node):
        return (
            node.key,
            node.cost,
            node.count,
            node.max_single,
            [node_snapshot(child) for child in node.children.values()],
        )

    return {
        "roots": [node_snapshot(root) for root in awg.roots.values()],
        "root_keys": list(awg.roots.keys()),
        "reduced_hw": (awg.reduced_hw_cost, awg.reduced_hw_count),
        "source_graphs": awg.source_graphs,
    }


@settings(max_examples=12, deadline=None)
@given(
    seed=st.sampled_from([11, 29, 31]),
    chunk_size=st.integers(min_value=1, max_value=7),
    reduce_hw=st.booleans(),
)
def test_chunked_merge_equals_single_pass(seed, chunk_size, reduce_hw):
    graphs = graphs_for_seed(seed)
    single = aggregate_wait_graphs(graphs, ALL_DRIVERS, reduce_hw=reduce_hw)
    partials = [
        aggregate_wait_graphs(
            graphs[start : start + chunk_size], ALL_DRIVERS, reduce_hw=False
        )
        for start in range(0, len(graphs), chunk_size)
    ]
    merged = merge_awgs(partials, reduce_hw=reduce_hw)
    assert awg_snapshot(merged) == awg_snapshot(single)


def test_merge_of_one_partial_is_identity():
    graphs = graphs_for_seed(11)
    single = aggregate_wait_graphs(graphs, ALL_DRIVERS, reduce_hw=False)
    merged = merge_awgs([single], reduce_hw=False)
    assert awg_snapshot(merged) == awg_snapshot(single)


def test_merge_requires_a_partial():
    with pytest.raises(WaitGraphError):
        merge_awgs([])


def test_merge_rejects_mismatched_filters():
    graphs = graphs_for_seed(11)
    a = aggregate_wait_graphs(graphs[:2], ALL_DRIVERS, reduce_hw=False)
    b = aggregate_wait_graphs(
        graphs[2:4], ComponentFilter(["fv.sys"]), reduce_hw=False
    )
    with pytest.raises(WaitGraphError):
        merge_awgs([a, b])


def test_merge_sums_prior_reductions():
    """Partials that already reduced hardware keep their accounting."""
    graphs = graphs_for_seed(29)
    half = len(graphs) // 2
    a = aggregate_wait_graphs(graphs[:half], ALL_DRIVERS, reduce_hw=True)
    b = aggregate_wait_graphs(graphs[half:], ALL_DRIVERS, reduce_hw=True)
    merged = merge_awgs([a, b])
    assert merged.reduced_hw_cost == a.reduced_hw_cost + b.reduced_hw_cost
    assert merged.reduced_hw_count == a.reduced_hw_count + b.reduced_hw_count
    assert merged.source_graphs == len(graphs)
