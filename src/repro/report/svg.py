"""Self-contained SVG rendering of Aggregated Wait Graphs.

Produces a Figure 2-style picture — boxes for aggregated waiting /
running / hardware nodes, arrows for wait-for links, cost/occurrence
annotations — with no dependency beyond the standard library.  Useful for
embedding in reports or viewing in a browser.
"""

from __future__ import annotations

import html
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.units import format_duration
from repro.waitgraph.aggregate import (
    AggregatedWaitGraph,
    AwgNode,
    HARDWARE,
    RUNNING,
    WAITING,
)

_BOX_WIDTH = 260
_BOX_HEIGHT = 46
_H_GAP = 28
_V_GAP = 34
_MARGIN = 20

_FILL = {
    WAITING: "#fde9d9",   # waiting: warm
    RUNNING: "#dbe9f6",   # running: cool
    HARDWARE: "#e2efda",  # hardware: green
}
_STROKE = {
    WAITING: "#c55a11",
    RUNNING: "#2e75b6",
    HARDWARE: "#538135",
}


@dataclass
class _Layout:
    """Positions of every rendered node."""

    positions: Dict[int, Tuple[float, int]]  # id(node) -> (x_center, depth)
    width: float
    depth: int


def _layout(roots: List[AwgNode], min_cost: int) -> _Layout:
    """Tidy-tree layout: leaves get slots, parents center over children."""
    positions: Dict[int, Tuple[float, int]] = {}
    next_slot = [0]
    max_depth = [0]

    def place(node: AwgNode, depth: int) -> Optional[float]:
        if node.cost < min_cost:
            return None
        max_depth[0] = max(max_depth[0], depth)
        child_centers = [
            center
            for center in (
                place(child, depth + 1)
                for child in sorted(
                    node.children.values(), key=lambda n: -n.cost
                )
            )
            if center is not None
        ]
        if child_centers:
            center = sum(child_centers) / len(child_centers)
        else:
            center = next_slot[0] + 0.5
            next_slot[0] += 1
        positions[id(node)] = (center, depth)
        return center

    for root in sorted(roots, key=lambda n: -n.cost):
        place(root, 0)
    return _Layout(
        positions=positions,
        width=max(next_slot[0], 1),
        depth=max_depth[0],
    )


def _node_svg(node: AwgNode, x: float, y: float) -> List[str]:
    fill = _FILL[node.status]
    stroke = _STROKE[node.status]
    title = html.escape(node.label)
    metrics = (
        f"C={format_duration(node.cost)}  N={node.count}  "
        f"avg={format_duration(round(node.mean_cost))}"
    )
    return [
        f'<rect x="{x:.1f}" y="{y:.1f}" width="{_BOX_WIDTH}" '
        f'height="{_BOX_HEIGHT}" rx="6" fill="{fill}" stroke="{stroke}" '
        'stroke-width="1.5"/>',
        f'<text x="{x + _BOX_WIDTH / 2:.1f}" y="{y + 18:.1f}" '
        'text-anchor="middle" font-size="11" font-family="monospace">'
        f"{title}</text>",
        f'<text x="{x + _BOX_WIDTH / 2:.1f}" y="{y + 35:.1f}" '
        'text-anchor="middle" font-size="10" font-family="monospace" '
        f'fill="#555">{html.escape(metrics)}</text>',
    ]


def awg_to_svg(
    awg: AggregatedWaitGraph,
    min_cost: int = 0,
    title: str = "",
) -> str:
    """Render an Aggregated Wait Graph as an SVG document string.

    ``min_cost`` elides nodes cheaper than the bound, keeping big graphs
    legible (pass e.g. 1% of the root cost).
    """
    roots = list(awg.roots.values())
    layout = _layout(roots, min_cost)

    def pixel_position(node: AwgNode) -> Optional[Tuple[float, float]]:
        entry = layout.positions.get(id(node))
        if entry is None:
            return None
        center, depth = entry
        x = _MARGIN + center * (_BOX_WIDTH + _H_GAP) - _BOX_WIDTH / 2
        y = _MARGIN + 30 + depth * (_BOX_HEIGHT + _V_GAP)
        return (x, y)

    width = _MARGIN * 2 + layout.width * (_BOX_WIDTH + _H_GAP)
    height = (
        _MARGIN * 2 + 30
        + (layout.depth + 1) * (_BOX_HEIGHT + _V_GAP)
    )
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height}" viewBox="0 0 {width:.0f} {height}">',
        '<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" '
        'markerWidth="7" markerHeight="7" orient="auto-start-reverse">'
        '<path d="M 0 0 L 10 5 L 0 10 z" fill="#888"/></marker></defs>',
        f'<rect width="100%" height="100%" fill="white"/>',
    ]
    heading = title or (
        f"Aggregated Wait Graph — {awg.source_graphs} source graphs, "
        f"reduced hw {format_duration(awg.reduced_hw_cost)}"
    )
    parts.append(
        f'<text x="{_MARGIN}" y="{_MARGIN + 4}" font-size="13" '
        f'font-family="sans-serif">{html.escape(heading)}</text>'
    )

    # Edges first (under the boxes).
    def draw_edges(node: AwgNode) -> None:
        parent_pixel = pixel_position(node)
        if parent_pixel is None:
            return
        for child in node.children.values():
            child_pixel = pixel_position(child)
            if child_pixel is None:
                continue
            x1 = parent_pixel[0] + _BOX_WIDTH / 2
            y1 = parent_pixel[1] + _BOX_HEIGHT
            x2 = child_pixel[0] + _BOX_WIDTH / 2
            y2 = child_pixel[1]
            parts.append(
                f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" '
                f'y2="{y2:.1f}" stroke="#888" stroke-width="1.2" '
                'marker-end="url(#arrow)"/>'
            )
            draw_edges(child)

    for root in roots:
        draw_edges(root)

    def draw_nodes(node: AwgNode) -> None:
        pixel = pixel_position(node)
        if pixel is None:
            return
        parts.extend(_node_svg(node, pixel[0], pixel[1]))
        for child in node.children.values():
            draw_nodes(child)

    for root in roots:
        draw_nodes(root)

    parts.append("</svg>")
    return "\n".join(parts)


def save_awg_svg(
    awg: AggregatedWaitGraph,
    path: str,
    min_cost: int = 0,
    title: str = "",
) -> None:
    """Write the SVG rendering to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(awg_to_svg(awg, min_cost=min_cost, title=title))
