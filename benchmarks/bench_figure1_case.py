"""Figure 1 / §2.2–§2.3 — The motivating cost-propagation case.

Reconstructs the incident: three drivers (fv.sys → fs.sys → se.sys), two
lock-contention regions chained by hierarchical dependencies, six
threads, and a BrowserTabCreate that takes over 800 ms.  Renders the
thread-level Wait Graph snapshot (the Figure 1 view) and asserts that
causality analysis discovers the §2.3 Signature Set Tuple.
"""

from benchmarks.conftest import print_banner
from repro.causality import CausalityAnalysis
from repro.report.figures import render_wait_graph
from repro.sim.casestudy import SCENARIO, T_FAST, T_SLOW, run_case_study
from repro.units import MILLISECONDS
from repro.waitgraph.builder import build_wait_graph


def test_bench_figure1_case(benchmark):
    result = benchmark.pedantic(run_case_study, rounds=1, iterations=1)

    print_banner("Figure 1 - Cost propagation among device drivers")
    print(
        f"BrowserTabCreate instances: {len(result.instances)}; "
        f"slow one took {result.slow_instance.duration / 1000:.1f} ms "
        "(paper: over 800 ms)"
    )
    graph = build_wait_graph(result.slow_instance)
    print(render_wait_graph(graph, max_depth=6))

    # The paper's headline: the contended instance exceeds 800 ms while
    # quiet ones stay well under T_fast.
    assert result.slow_instance.duration > 800 * MILLISECONDS
    assert len(result.fast_instances) >= 5

    # §2.3: causality analysis discovers the pattern whose wait/unwait
    # sets hold fv.sys!QueryFileTable and fs.sys!AcquireMDU, with the
    # storage running signatures beneath.
    report = CausalityAnalysis(["*.sys"]).analyze(
        result.instances, T_FAST, T_SLOW, scenario=SCENARIO
    )
    assert report.patterns
    print_banner("Section 2.3 - Discovered contrast pattern (top ranked)")
    top = report.patterns[0]
    print(top.sst.render())
    print(
        f"impact={top.impact / 1000:.1f} ms, N={top.count}, "
        f"max single execution={top.max_single / 1000:.0f} ms"
    )
    assert "fv.sys!QueryFileTable" in top.sst.wait_signatures
    assert "fs.sys!AcquireMDU" in top.sst.wait_signatures
    assert "fv.sys!QueryFileTable" in top.sst.unwait_signatures
    assert "fs.sys!AcquireMDU" in top.sst.unwait_signatures
    # The propagated cost comes from storage: hardware service and/or the
    # se.sys decrypt surface as running signatures across the pattern set.
    running_union = set()
    for pattern in report.patterns:
        running_union |= pattern.sst.running_signatures
    assert any(
        "se.sys" in signature or "Hardware" in signature
        for signature in running_union
    )
    assert top.is_high_impact(T_SLOW)
