"""The full evaluation study (paper §5) as a reusable driver.

``run_study`` executes, over a generated (or loaded) corpus, everything
the paper's evaluation section reports: per-scenario contrast classes
(Table 1), causality reports with ITC/TTC coverages (Table 2), ranking
coverages (Table 3), driver-type categorization of top patterns
(Table 4), and the corpus-wide impact metrics (§5.1).  Benchmarks and
examples consume the resulting :class:`StudyResult`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.causality.analyzer import CausalityAnalysis, CausalityReport
from repro.causality.mining import DEFAULT_SEGMENT_BOUND
from repro.causality.ranking import coverage_curve
from repro.evaluation.coverage import CoverageResult, evaluate_coverage
from repro.evaluation.drivertypes import categorize_top_patterns
from repro.impact.analyzer import ImpactAnalysis, collect_instances
from repro.impact.metrics import ImpactResult
from repro.sim.workloads.registry import SCENARIO_NAMES, scenario_spec
from repro.trace.stream import ScenarioInstance, TraceStream

RANKING_FRACTIONS = (0.1, 0.2, 0.3)


@dataclass
class ScenarioStudy:
    """Everything the evaluation produces for one scenario."""

    report: CausalityReport
    coverage: CoverageResult
    ranking_coverage: List[float]
    top_driver_types: Counter


@dataclass
class StudyResult:
    """The complete §5 evaluation over one corpus."""

    impact: ImpactResult
    scenarios: Dict[str, ScenarioStudy] = field(default_factory=dict)

    def table1_rows(self) -> List[tuple]:
        """(scenario, #instances, #fast, #slow) rows, Table 1 order."""
        rows = []
        for name, study in self.scenarios.items():
            classes = study.report.classes
            rows.append((name, classes.total, len(classes.fast), len(classes.slow)))
        return rows

    def table2_rows(self) -> List[tuple]:
        """(scenario, driver cost, ITC, TTC) rows, Table 2 order."""
        return [
            (
                name,
                study.coverage.driver_cost_share,
                study.coverage.itc,
                study.coverage.ttc,
            )
            for name, study in self.scenarios.items()
        ]

    def table3_rows(self) -> List[tuple]:
        """(scenario, #patterns, top-10%, top-20%, top-30%) rows."""
        return [
            (name, study.report.pattern_count, *study.ranking_coverage)
            for name, study in self.scenarios.items()
        ]

    def table4_rows(self) -> Dict[str, Counter]:
        """Scenario → driver-type counts among top-10 patterns."""
        return {
            name: study.top_driver_types
            for name, study in self.scenarios.items()
        }


def group_by_scenario(
    streams: Iterable[TraceStream],
    scenarios: Optional[Sequence[str]] = None,
) -> Dict[str, List[ScenarioInstance]]:
    """Group a corpus's instances per scenario, in registry order."""
    instances = collect_instances(streams, scenarios)
    grouped: Dict[str, List[ScenarioInstance]] = {}
    order = scenarios if scenarios is not None else SCENARIO_NAMES
    for name in order:
        grouped[name] = []
    for instance in instances:
        grouped.setdefault(instance.scenario, []).append(instance)
    return {name: found for name, found in grouped.items() if found}


def run_study(
    streams: Sequence[TraceStream],
    scenarios: Optional[Sequence[str]] = None,
    component_patterns: Sequence[str] = ("*.sys",),
    segment_bound: int = DEFAULT_SEGMENT_BOUND,
    top_n: int = 10,
    workers: int = 1,
    chunk_size: Optional[int] = None,
) -> StudyResult:
    """Run the full paper §5 evaluation over a corpus.

    A single Wait Graph cache is shared across impact analysis, causality
    analysis and coverage evaluation, so each instance's graph is
    constructed exactly once.

    ``workers > 1`` delegates to the map–reduce pipeline
    (:func:`repro.pipeline.parallel_study`): streams are analyzed in
    chunks across a process pool and the partial results merge into a
    study identical to the sequential one.
    """
    if workers > 1:
        from repro.pipeline import parallel_study

        return parallel_study(
            list(streams),
            scenarios=scenarios,
            component_patterns=component_patterns,
            segment_bound=segment_bound,
            top_n=top_n,
            workers=workers,
            chunk_size=chunk_size,
        )
    impact_analysis = ImpactAnalysis(component_patterns)
    impact = impact_analysis.analyze_corpus(streams, scenarios=None)
    graph_cache = impact_analysis.graph_cache

    causality = CausalityAnalysis(component_patterns, segment_bound)
    result = StudyResult(impact=impact)
    for name, instances in group_by_scenario(streams, scenarios).items():
        spec = scenario_spec(name)
        report = causality.analyze(
            instances,
            spec.t_fast,
            spec.t_slow,
            scenario=name,
            graph_cache=graph_cache,
        )
        coverage = evaluate_coverage(
            report, causality.component_filter, graph_cache=graph_cache
        )
        result.scenarios[name] = ScenarioStudy(
            report=report,
            coverage=coverage,
            ranking_coverage=coverage_curve(report.patterns, RANKING_FRACTIONS),
            top_driver_types=categorize_top_patterns(report.patterns, top_n),
        )
    return result
