"""Corpus summary statistics.

Descriptive statistics performance analysts want before diving into the
two-step analysis: per-scenario duration percentiles, event-kind mix,
thread/process inventory, and per-stream instance density.  These back
the corpus sections of EXPERIMENTS.md and the examples.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.trace.events import EventKind
from repro.trace.stream import TraceStream


def percentile(sorted_values: Sequence[int], fraction: float) -> int:
    """The value at a fraction of a pre-sorted sequence (0 when empty)."""
    if not sorted_values:
        return 0
    index = min(len(sorted_values) - 1, int(len(sorted_values) * fraction))
    return sorted_values[index]


@dataclass
class ScenarioDurationStats:
    """Duration distribution of one scenario's instances (microseconds)."""

    scenario: str
    count: int
    p10: int
    p50: int
    p90: int
    maximum: int

    @classmethod
    def from_durations(
        cls, scenario: str, durations: Sequence[int]
    ) -> "ScenarioDurationStats":
        ordered = sorted(durations)
        return cls(
            scenario=scenario,
            count=len(ordered),
            p10=percentile(ordered, 0.10),
            p50=percentile(ordered, 0.50),
            p90=percentile(ordered, 0.90),
            maximum=ordered[-1] if ordered else 0,
        )


@dataclass
class CorpusStatistics:
    """Aggregate description of a trace corpus."""

    streams: int = 0
    events: int = 0
    instances: int = 0
    total_span_us: int = 0
    event_kinds: Counter = field(default_factory=Counter)
    processes: Counter = field(default_factory=Counter)
    scenario_durations: Dict[str, ScenarioDurationStats] = field(
        default_factory=dict
    )

    @property
    def instances_per_stream(self) -> float:
        return self.instances / self.streams if self.streams else 0.0


def summarize_corpus(streams: Iterable[TraceStream]) -> CorpusStatistics:
    """Compute summary statistics over a corpus."""
    stats = CorpusStatistics()
    durations: Dict[str, List[int]] = {}
    for stream in streams:
        stats.streams += 1
        stats.events += len(stream.events)
        start, end = stream.span
        stats.total_span_us += end - start
        for event in stream.events:
            stats.event_kinds[event.kind.value] += 1
        for info in stream.threads.values():
            stats.processes[info.process] += 1
        for instance in stream.instances:
            stats.instances += 1
            durations.setdefault(instance.scenario, []).append(
                instance.duration
            )
    for scenario, values in sorted(durations.items()):
        stats.scenario_durations[scenario] = (
            ScenarioDurationStats.from_durations(scenario, values)
        )
    return stats
