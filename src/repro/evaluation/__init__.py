"""Evaluation metrics and the full study driver (paper §5)."""

from repro.evaluation.compare import (
    ImpactDelta,
    PatternComparison,
    PatternDelta,
    compare_impact,
    compare_patterns,
)
from repro.evaluation.coverage import CoverageResult, evaluate_coverage
from repro.evaluation.drivertypes import (
    DRIVER_TYPES,
    DRIVER_TYPE_ORDER,
    categorize_top_patterns,
    driver_modules,
    driver_type_of,
    types_in_sst,
)
from repro.evaluation.statistics import (
    CorpusStatistics,
    ScenarioDurationStats,
    summarize_corpus,
)
from repro.evaluation.study import (
    RANKING_FRACTIONS,
    ScenarioStudy,
    StudyResult,
    group_by_scenario,
    run_study,
)

__all__ = [
    "CorpusStatistics",
    "CoverageResult",
    "ImpactDelta",
    "PatternComparison",
    "PatternDelta",
    "compare_impact",
    "compare_patterns",
    "DRIVER_TYPES",
    "DRIVER_TYPE_ORDER",
    "RANKING_FRACTIONS",
    "ScenarioStudy",
    "StudyResult",
    "categorize_top_patterns",
    "driver_modules",
    "driver_type_of",
    "evaluate_coverage",
    "group_by_scenario",
    "run_study",
    "summarize_corpus",
    "ScenarioDurationStats",
    "types_in_sst",
]
