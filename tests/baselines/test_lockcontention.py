"""Tests for the per-lock contention baseline."""

from repro.baselines.lockcontention import analyze_lock_contention
from repro.trace.events import EventKind
from tests.conftest import make_event, make_stream


def contention_stream():
    events = [
        make_event(EventKind.WAIT, ("a!f", "kernel!AcquireLock"),
                   timestamp=0, cost=5_000, tid=1, resource="lock:L1"),
        make_event(EventKind.WAIT, ("a!g", "kernel!AcquireLock"),
                   timestamp=100, cost=2_000, tid=2, resource="lock:L1"),
        make_event(EventKind.WAIT, ("a!h", "kernel!AcquireLock"),
                   timestamp=200, cost=1_000, tid=3, resource="lock:L2"),
        make_event(EventKind.WAIT, ("a!i", "kernel!WaitForHardware"),
                   timestamp=300, cost=50_000, tid=4, resource="device:Disk"),
        make_event(EventKind.UNWAIT, ("x!y",), timestamp=5_000, cost=0,
                   tid=9, wtid=1),
        make_event(EventKind.UNWAIT, ("x!y",), timestamp=2_100, cost=0,
                   tid=9, wtid=2),
        make_event(EventKind.UNWAIT, ("x!y",), timestamp=1_200, cost=0,
                   tid=9, wtid=3),
        make_event(EventKind.UNWAIT, ("x!y",), timestamp=50_300, cost=0,
                   tid=9, wtid=4),
    ]
    return make_stream(events=events)


class TestLockContention:
    def test_per_lock_totals(self):
        analysis = analyze_lock_contention([contention_stream()])
        l1 = analysis.lock("lock:L1")
        assert l1.total_wait == 7_000
        assert l1.waits == 2
        assert l1.max_wait == 5_000
        assert l1.mean_wait == 3_500
        assert l1.waiting_threads == {1, 2}

    def test_device_waits_excluded(self):
        analysis = analyze_lock_contention([contention_stream()])
        assert analysis.lock("device:Disk") is None
        assert analysis.total_wait == 8_000

    def test_top_locks_order(self):
        analysis = analyze_lock_contention([contention_stream()])
        top = analysis.top_locks()
        assert [profile.resource for profile in top] == ["lock:L1", "lock:L2"]

    def test_isolated_view(self):
        analysis = analyze_lock_contention([contention_stream()])
        combined, biggest = analysis.isolated_view_of(["lock:L1", "lock:L2"])
        assert combined == 8_000
        assert biggest == 7_000

    def test_isolated_view_unknown_locks(self):
        analysis = analyze_lock_contention([contention_stream()])
        assert analysis.isolated_view_of(["lock:nope"]) == (0, 0)

    def test_unknown_lock_lookup(self):
        analysis = analyze_lock_contention([])
        assert analysis.lock("lock:L1") is None


class TestOnCorpus:
    def test_finds_simulated_locks(self, small_corpus):
        analysis = analyze_lock_contention(small_corpus)
        resources = {profile.resource for profile in analysis.top_locks(50)}
        # The simulator's hot locks should surface.
        assert any("MDU" in resource for resource in resources) or any(
            "FileTable" in resource for resource in resources
        )

    def test_single_lock_view_understates_chains(self, small_corpus):
        """No single lock accounts for all lock wait time — the chains the
        causality analysis reveals span multiple locks."""
        analysis = analyze_lock_contention(small_corpus)
        top = analysis.top_locks(1)
        if top and analysis.total_wait:
            assert top[0].total_wait < analysis.total_wait
