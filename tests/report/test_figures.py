"""Tests for Wait Graph / AWG rendering."""

from repro.report.figures import (
    awg_to_dot,
    render_awg,
    render_wait_graph,
    wait_graph_to_dot,
)
from repro.trace.signatures import ALL_DRIVERS
from repro.waitgraph.aggregate import aggregate_wait_graphs
from repro.waitgraph.builder import build_wait_graph


class TestWaitGraphRendering:
    def test_render_contains_chain(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        text = render_wait_graph(graph)
        assert "Click" in text
        assert "fv.sys!QueryFileTable" in text.replace("kernel!AcquireLock", "")
        assert "wait" in text
        assert "hw" in text

    def test_render_respects_max_lines(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        text = render_wait_graph(graph, max_lines=2)
        assert "truncated" in text

    def test_dot_export(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        dot = wait_graph_to_dot(graph)
        assert dot.startswith("digraph")
        assert "->" in dot
        assert dot.rstrip().endswith("}")


class TestAwgRendering:
    def test_render_awg(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        text = render_awg(awg)
        assert "AggregatedWaitGraph" in text
        assert "->" in text
        assert "N=1" in text

    def test_render_awg_min_cost_elides(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        full = render_awg(awg)
        elided = render_awg(awg, min_cost=10**9)
        assert len(elided) < len(full)

    def test_awg_dot(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        dot = awg_to_dot(awg)
        assert dot.startswith("digraph")
        assert "C=" in dot

    def test_render_on_simulated_data(self, small_corpus):
        stream = small_corpus[0]
        graphs = [build_wait_graph(i) for i in stream.instances[:5]]
        awg = aggregate_wait_graphs(graphs, ALL_DRIVERS)
        assert render_awg(awg)
