"""Tests for markdown report generation."""

import pytest

from repro.evaluation.study import run_study
from repro.report.markdown import save_study_markdown, study_to_markdown


@pytest.fixture(scope="module")
def small_study(request):
    small_corpus = request.getfixturevalue("small_corpus")
    return run_study(small_corpus)


class TestMarkdown:
    def test_contains_all_sections(self, small_study):
        markdown = study_to_markdown(small_study)
        assert "# Performance comprehension report" in markdown
        assert "## Impact analysis" in markdown
        assert "## Scenarios and contrast classes" in markdown
        assert "## Coverages and ranking" in markdown
        assert "## Driver types in top-10 patterns" in markdown
        assert "IA_wait" in markdown

    def test_tables_are_valid_markdown(self, small_study):
        markdown = study_to_markdown(small_study)
        for line in markdown.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_patterns_rendered_when_present(self, small_study):
        markdown = study_to_markdown(small_study, top_patterns=2)
        if any(
            study.report.patterns
            for study in small_study.scenarios.values()
        ):
            assert "wait signatures" in markdown

    def test_custom_title(self, small_study):
        markdown = study_to_markdown(small_study, title="Build 42 vs 41")
        assert markdown.startswith("# Build 42 vs 41")

    def test_save(self, small_study, tmp_path):
        path = tmp_path / "report.md"
        save_study_markdown(small_study, str(path))
        assert path.read_text().startswith("#")
