"""Rendering of Wait Graphs and Aggregated Wait Graphs.

``render_wait_graph`` produces the thread-level snapshot style of the
paper's Figure 1 (who waited on whom, with callstacks); ``render_awg``
produces the aggregated-path view of Figure 2.  Both also export Graphviz
``dot`` text for external rendering.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.trace.events import Event, EventKind
from repro.units import format_duration
from repro.waitgraph.aggregate import AggregatedWaitGraph, AwgNode
from repro.waitgraph.graph import WaitGraph

_KIND_MARK = {
    EventKind.RUNNING: "run ",
    EventKind.WAIT: "wait",
    EventKind.UNWAIT: "unwt",
    EventKind.HW_SERVICE: "hw  ",
}


def _event_line(graph: WaitGraph, event: Event, depth: int) -> str:
    stream = graph.instance.stream
    info = stream.thread_info(event.tid)
    frame = event.stack[-1] if event.stack else "<hardware>"
    indent = "  " * depth
    return (
        f"{indent}{_KIND_MARK[event.kind]} {format_duration(event.cost):>8} "
        f"[{info.label}] {frame}"
    )


def render_wait_graph(
    graph: WaitGraph,
    max_depth: int = 8,
    max_children: int = 12,
    max_lines: int = 400,
) -> str:
    """Render a Wait Graph as an indented tree (Figure 1 style)."""
    lines: List[str] = [
        f"WaitGraph: {graph.instance.scenario} "
        f"({format_duration(graph.instance.duration)}) "
        f"initiated by tid {graph.instance.tid}"
    ]
    expanded: Set[int] = set()

    def walk(event: Event, depth: int) -> None:
        if len(lines) >= max_lines:
            return
        lines.append(_event_line(graph, event, depth))
        if event.seq in expanded:
            if graph.children(event):
                lines.append("  " * (depth + 1) + "(shared subtree above)")
            return
        expanded.add(event.seq)
        if depth >= max_depth:
            if graph.children(event):
                lines.append("  " * (depth + 1) + "...")
            return
        children = graph.children(event)
        for child in children[:max_children]:
            walk(child, depth + 1)
        if len(children) > max_children:
            lines.append(
                "  " * (depth + 1)
                + f"... and {len(children) - max_children} more"
            )

    for root in graph.roots:
        walk(root, 0)
        if len(lines) >= max_lines:
            lines.append("... (truncated)")
            break
    return "\n".join(lines)


def render_awg(
    awg: AggregatedWaitGraph,
    max_depth: int = 10,
    min_cost: int = 0,
) -> str:
    """Render an Aggregated Wait Graph as an indented tree (Figure 2 style).

    Nodes cheaper than ``min_cost`` are elided to keep big graphs legible.
    """
    lines: List[str] = [
        f"AggregatedWaitGraph: {awg.source_graphs} source graphs, "
        f"{awg.node_count()} nodes, reduced hw cost "
        f"{format_duration(awg.reduced_hw_cost)}"
    ]

    def walk(node: AwgNode, depth: int) -> None:
        if node.cost < min_cost or depth > max_depth:
            return
        indent = "  " * depth
        lines.append(
            f"{indent}{node.label}  "
            f"C={format_duration(node.cost)} N={node.count} "
            f"avg={format_duration(round(node.mean_cost))}"
        )
        for child in sorted(
            node.children.values(), key=lambda n: -n.cost
        ):
            walk(child, depth + 1)

    for root in sorted(awg.roots.values(), key=lambda n: -n.cost):
        walk(root, 0)
    return "\n".join(lines)


def wait_graph_to_dot(graph: WaitGraph, max_nodes: int = 200) -> str:
    """Export a Wait Graph as Graphviz dot text."""
    lines = ["digraph waitgraph {", '  rankdir="TB";', "  node [shape=box];"]
    emitted: Set[int] = set()

    def node_id(event: Event) -> str:
        return f"e{event.seq}"

    def emit(event: Event) -> None:
        if event.seq in emitted or len(emitted) >= max_nodes:
            return
        emitted.add(event.seq)
        frame = event.stack[-1] if event.stack else "<hardware>"
        label = f"{event.kind.value}\\n{frame}\\n{format_duration(event.cost)}"
        lines.append(f'  {node_id(event)} [label="{label}"];')
        for child in graph.children(event):
            emit(child)
            if child.seq in emitted:
                lines.append(f"  {node_id(event)} -> {node_id(child)};")

    for root in graph.roots:
        emit(root)
    lines.append("}")
    return "\n".join(lines)


def awg_to_dot(awg: AggregatedWaitGraph, min_cost: int = 0) -> str:
    """Export an Aggregated Wait Graph as Graphviz dot text."""
    lines = ["digraph awg {", '  rankdir="TB";', "  node [shape=box];"]
    counter = [0]

    def walk(node: AwgNode, parent_id: Optional[str]) -> None:
        if node.cost < min_cost:
            return
        counter[0] += 1
        this_id = f"n{counter[0]}"
        label = (
            f"{node.label}\\nC={format_duration(node.cost)} N={node.count}"
        )
        lines.append(f'  {this_id} [label="{label}"];')
        if parent_id is not None:
            lines.append(f"  {parent_id} -> {this_id};")
        for child in node.children.values():
            walk(child, this_id)

    for root in awg.roots.values():
        walk(root, None)
    lines.append("}")
    return "\n".join(lines)
