"""Workload framework: scenario specs and the installable-workload base.

A *scenario* (paper §2.1) is a named user-visible operation with
vendor-specified performance thresholds ``T_fast`` (upper bound of normal
performance) and ``T_slow`` (lower bound of degradation).  A *workload*
installs one initiating thread that performs the scenario repeatedly —
each repetition marked as a scenario instance — plus any helper threads
the scenario naturally brings along (browser worker threads, etc.).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Generator

from repro.errors import ConfigError
from repro.sim.distributions import exponential_us
from repro.sim.engine import ThreadContext
from repro.sim.machine import Machine
from repro.units import MILLISECONDS


@dataclass(frozen=True)
class ScenarioSpec:
    """A scenario's identity and its performance specification."""

    name: str
    t_fast: int
    t_slow: int
    description: str = ""

    def __post_init__(self) -> None:
        if not self.t_fast < self.t_slow:
            raise ConfigError(
                f"scenario {self.name}: T_fast ({self.t_fast}) must be below "
                f"T_slow ({self.t_slow})"
            )

    def classify(self, duration: int) -> str:
        """``'fast'``, ``'slow'`` or ``'between'`` for an instance duration."""
        if duration < self.t_fast:
            return "fast"
        if duration > self.t_slow:
            return "slow"
        return "between"


class Workload(abc.ABC):
    """Base class for installable scenario workloads.

    Parameters
    ----------
    repeats:
        Number of scenario instances the initiating thread performs.
    think_median_us:
        Mean think time between instances (exponential).
    start_offset_us:
        Delay before the first instance, used to stagger workloads.
    intensity:
        Abstract 0..1 knob scaling how much work each instance does and
        how aggressive the helper threads are; the corpus generator draws
        it per machine so the corpus spans calm and loaded systems.
    """

    spec: ScenarioSpec  # set by subclasses

    def __init__(
        self,
        repeats: int = 10,
        think_median_us: int = 250 * MILLISECONDS,
        start_offset_us: int = 0,
        intensity: float = 0.5,
    ):
        if repeats < 1:
            raise ConfigError("workload needs repeats >= 1")
        if not 0.0 <= intensity <= 1.0:
            raise ConfigError(f"intensity must be in [0, 1], got {intensity}")
        self.repeats = repeats
        self.think_median_us = think_median_us
        self.start_offset_us = start_offset_us
        self.intensity = intensity

    @abc.abstractmethod
    def install(self, machine: Machine) -> None:
        """Spawn this workload's threads onto the machine."""

    # -- helpers shared by subclasses ---------------------------------------

    @staticmethod
    def activity_factor(now_us: int, period_us: int = 4_000_000) -> float:
        """Bursty user activity: short thinks in busy phases, long in lulls.

        Real desktop activity is correlated — the user does several things
        in quick succession, then pauses.  Alternating busy/idle phases
        make scenario arrivals pile onto the shared services together,
        which is where cost propagation multiplies one delay across many
        concurrently-open instances.
        """
        return 0.35 if (now_us // period_us) % 2 == 0 else 2.2

    def _iterate(
        self, ctx: ThreadContext, machine: Machine, body_factory
    ) -> Generator:
        """Run ``repeats`` scenario instances with think time in between.

        ``body_factory(ctx, iteration)`` returns the generator for one
        instance body; the scenario marker wraps exactly that body.
        """
        yield from ctx.delay(self.start_offset_us)
        for iteration in range(self.repeats):
            with ctx.scenario(self.spec.name):
                yield from body_factory(ctx, iteration)
            think = round(
                self.think_median_us * self.activity_factor(ctx.now)
            )
            yield from ctx.delay(exponential_us(machine.rng, max(think, 1)))
