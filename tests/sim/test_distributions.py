"""Tests for random-duration helpers."""

import random

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.distributions import (
    bernoulli,
    exponential_us,
    lognormal_us,
    pareto_us,
    skewed_file_id,
    uniform_us,
)


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = random.Random(5)
        b = random.Random(5)
        assert [lognormal_us(a, 1_000) for _ in range(10)] == [
            lognormal_us(b, 1_000) for _ in range(10)
        ]


class TestBounds:
    @given(st.integers(0, 2**31), st.floats(1, 1e6), st.floats(0.01, 2))
    def test_lognormal_positive(self, seed, median, sigma):
        rng = random.Random(seed)
        assert lognormal_us(rng, median, sigma) >= 1

    @given(st.integers(0, 2**31), st.floats(1, 1e5), st.floats(1, 1e5))
    def test_uniform_within_bounds(self, seed, low, high):
        rng = random.Random(seed)
        low, high = min(low, high), max(low, high)
        value = uniform_us(rng, low, high)
        assert 1 <= value <= round(high) + 1

    @given(st.integers(0, 2**31))
    def test_exponential_positive(self, seed):
        rng = random.Random(seed)
        assert exponential_us(rng, 1_000) >= 1

    @given(st.integers(0, 2**31))
    def test_pareto_capped(self, seed):
        rng = random.Random(seed)
        assert 1 <= pareto_us(rng, 100, cap_us=5_000) <= 5_000

    def test_bernoulli_extremes(self):
        rng = random.Random(1)
        assert not bernoulli(rng, 0.0)
        assert bernoulli(rng, 1.0)

    @given(st.integers(0, 2**31))
    def test_skewed_file_id_in_range(self, seed):
        rng = random.Random(seed)
        value = skewed_file_id(rng, hot_prob=0.5, hot_set=8, cold_range=100)
        assert 0 <= value < 100

    def test_skewed_file_id_is_skewed(self):
        rng = random.Random(7)
        samples = [
            skewed_file_id(rng, hot_prob=0.7, hot_set=4, cold_range=1 << 20)
            for _ in range(2_000)
        ]
        hot = sum(1 for value in samples if value < 4)
        assert hot / len(samples) > 0.6


class TestStatisticalShape:
    def test_lognormal_median_roughly_right(self):
        rng = random.Random(11)
        samples = sorted(lognormal_us(rng, 10_000, 0.5) for _ in range(4_001))
        median = samples[len(samples) // 2]
        assert 8_000 < median < 12_500

    def test_pareto_has_heavy_tail(self):
        rng = random.Random(11)
        samples = [pareto_us(rng, 100, alpha=1.5, cap_us=10**9) for _ in range(4_000)]
        assert max(samples) > 20 * 100
