"""Shared worker services reached over IPC mailboxes.

Real Windows scenarios rarely have the UI thread take kernel driver locks
itself: work is posted to worker threads and shared service processes
(the security service with its single inspection database, render
workers, browser IO workers), and the requester blocks on an IPC reply.
That structure is what makes one driver delay fan out over several
concurrent scenario instances — every requester's Wait Graph reaches the
*same* service-thread wait events, giving ``D_wait / D_waitdist`` ratios
well above 1 (paper §3.2, §5.1).

A :class:`WorkerService` owns a mailbox and one or more worker threads.
Clients call :meth:`WorkerService.submit` with a *request factory* — a
callable producing the generator the worker should execute — and block
until the worker fires the completion event.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.sim.engine import Engine, ThreadContext
from repro.sim.locks import Mailbox, SimEvent

RequestFactory = Callable[[ThreadContext], Generator]


class WorkerService:
    """A mailbox-fed pool of worker threads executing request generators.

    Parameters
    ----------
    engine:
        The simulation engine to spawn workers onto.
    process, name_prefix:
        Thread identity: workers are ``{process}/{name_prefix}{i}``.
    workers:
        Pool size.  1 serializes all requests (the paper's single-database
        security service); more workers trade sharing for throughput.
    handler_frame:
        Callstack frame pushed around each handled request, e.g.
        ``"SecuritySvc!HandleRequest"``.
    """

    def __init__(
        self,
        engine: Engine,
        process: str,
        name_prefix: str = "Worker",
        workers: int = 1,
        handler_frame: str = "",
    ):
        self.engine = engine
        self.process = process
        self.mailbox = Mailbox(f"{process}/requests")
        self.handler_frame = handler_frame or f"{process}!HandleRequest"
        self.submitted = 0
        self.completed = 0
        for index in range(workers):
            engine.spawn(self._worker_program, process, f"{name_prefix}{index}")

    def _worker_program(self, ctx: ThreadContext) -> Generator:
        with ctx.frame(f"{self.process}!MainLoop"):
            while True:
                request = yield from ctx.take(self.mailbox)
                factory, done = request
                with ctx.frame(self.handler_frame):
                    yield from factory(ctx)
                yield from ctx.fire(done)
                self.completed += 1

    def post_only(
        self,
        ctx: ThreadContext,
        factory: RequestFactory,
    ) -> Generator:
        """Post a request without waiting for its completion (fire/forget)."""
        self.submitted += 1
        done = SimEvent(f"{self.process}/reply#{self.submitted}")
        yield from ctx.post(self.mailbox, (factory, done))

    def submit(
        self,
        ctx: ThreadContext,
        factory: RequestFactory,
        wait_frame: str,
    ) -> Generator:
        """Post a request and block until a worker completes it.

        ``wait_frame`` is the requester-side frame around the reply wait
        (e.g. ``"Browser!WaitForIo"``) — deliberately *not* a driver frame,
        since the requester itself is not executing driver code.
        """
        self.submitted += 1
        done = SimEvent(f"{self.process}/reply#{self.submitted}")
        yield from ctx.post(self.mailbox, (factory, done))
        with ctx.frame(wait_frame):
            yield from ctx.wait_for(done)


class ScenarioWorkerService(WorkerService):
    """A worker service whose request handling *is* a scenario instance.

    Real scenarios trigger each other: a page navigation spawns sub-frame
    creations on a renderer thread, whose execution is itself a
    ``BrowserFrameCreate`` instance.  The triggering instance suspends on
    the triggered one, so the triggered instance's wait events appear in
    both Wait Graphs — the instance overlap the paper's §2.1 calls "a
    typical manifestation of cost propagation".
    """

    def __init__(self, *args, scenario: str, **kwargs):
        self.scenario = scenario
        super().__init__(*args, **kwargs)

    def _worker_program(self, ctx: ThreadContext) -> Generator:
        with ctx.frame(f"{self.process}!MainLoop"):
            while True:
                request = yield from ctx.take(self.mailbox)
                factory, done = request
                with ctx.scenario(self.scenario):
                    with ctx.frame(self.handler_frame):
                        yield from factory(ctx)
                yield from ctx.fire(done)
                self.completed += 1
