"""Trace-codec benchmarks: JSONL vs RTB parse and map-phase throughput.

This bench is the acceptance gate for the binary columnar format (and
runs as a CI step): over the same logical corpus,

* **parse** — loading every stream ready for analysis must be ≥5×
  faster from RTB than from JSONL (the mmap reader decodes only the
  string/stack tables; JSONL pays ``json.loads`` per event);
* **map phase** — a single-worker ``parallel_impact`` must be ≥5×
  faster over the RTB corpus (target ~10×; the array-backed wait-graph
  kernels never materialize ``Event`` objects);
* **determinism** — the RTB impact result must equal the JSONL one.

Corpus size follows ``REPRO_BENCH_CODEC_STREAMS`` (default 6 — the
ratios are stable in corpus size, so CI stays quick).
"""

import os
import time

import pytest

from benchmarks.conftest import BENCH_SEED, print_banner
from repro.pipeline import parallel_impact
from repro.sim.corpus import CorpusConfig, generate_corpus
from repro.trace import dump_corpus, iter_corpus_paths, load_stream

CODEC_STREAMS = int(os.environ.get("REPRO_BENCH_CODEC_STREAMS", "6"))

#: The asserted floor; the observed ratio is typically far higher (the
#: issue's target is ~10× for the map phase).
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def codec_dirs(tmp_path_factory):
    corpus = generate_corpus(
        CorpusConfig(streams=CODEC_STREAMS, seed=BENCH_SEED)
    )
    jsonl_dir = tmp_path_factory.mktemp("codec-jsonl")
    rtb_dir = tmp_path_factory.mktemp("codec-rtb")
    dump_corpus(corpus, jsonl_dir)
    dump_corpus(corpus, rtb_dir, format="rtb")
    return jsonl_dir, rtb_dir


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def _parse_all(paths):
    """Load every stream to analysis-ready form; return the event total."""
    return sum(len(load_stream(path)) for path in paths)


def test_bench_codec_parse_throughput(codec_dirs):
    jsonl_dir, rtb_dir = codec_dirs
    jsonl_paths = iter_corpus_paths(jsonl_dir)
    rtb_paths = iter_corpus_paths(rtb_dir)

    events, jsonl_elapsed = _timed(lambda: _parse_all(jsonl_paths))
    rtb_events, rtb_elapsed = _timed(lambda: _parse_all(rtb_paths))
    assert rtb_events == events

    ratio = jsonl_elapsed / rtb_elapsed
    jsonl_bytes = sum(os.path.getsize(path) for path in jsonl_paths)
    rtb_bytes = sum(os.path.getsize(path) for path in rtb_paths)

    print_banner(f"Trace codec - parse ({CODEC_STREAMS} streams, {events} events)")
    print(f"{'format':>7}  {'seconds':>8}  {'events/s':>12}  {'bytes':>10}")
    print(f"{'jsonl':>7}  {jsonl_elapsed:>8.3f}  "
          f"{events / jsonl_elapsed:>12,.0f}  {jsonl_bytes:>10,}")
    print(f"{'rtb':>7}  {rtb_elapsed:>8.3f}  "
          f"{events / rtb_elapsed:>12,.0f}  {rtb_bytes:>10,}")
    print(f"parse speedup: {ratio:.1f}x  "
          f"(size ratio {rtb_bytes / jsonl_bytes:.2f})")

    assert ratio >= MIN_SPEEDUP, (
        f"RTB parse is only {ratio:.1f}x faster than JSONL "
        f"(required >= {MIN_SPEEDUP}x)"
    )


def test_bench_codec_map_phase_throughput(codec_dirs):
    jsonl_dir, rtb_dir = codec_dirs
    jsonl_paths = iter_corpus_paths(jsonl_dir)
    rtb_paths = iter_corpus_paths(rtb_dir)

    jsonl_result, jsonl_elapsed = _timed(lambda: parallel_impact(jsonl_paths))
    rtb_result, rtb_elapsed = _timed(lambda: parallel_impact(rtb_paths))
    assert rtb_result == jsonl_result, (
        "RTB and JSONL impact results diverged"
    )

    ratio = jsonl_elapsed / rtb_elapsed
    print_banner(
        f"Trace codec - single-worker map phase ({CODEC_STREAMS} streams)"
    )
    print(f"{'format':>7}  {'seconds':>8}")
    print(f"{'jsonl':>7}  {jsonl_elapsed:>8.2f}")
    print(f"{'rtb':>7}  {rtb_elapsed:>8.2f}")
    print(f"map-phase speedup: {ratio:.1f}x (byte-identical output)")

    assert ratio >= MIN_SPEEDUP, (
        f"RTB map phase is only {ratio:.1f}x faster than JSONL "
        f"(required >= {MIN_SPEEDUP}x)"
    )
