"""Tests for coverage evaluation and the full study driver."""

import pytest

from repro.evaluation.coverage import evaluate_coverage
from repro.evaluation.study import group_by_scenario, run_study
from repro.causality.analyzer import CausalityAnalysis
from repro.sim.workloads.registry import scenario_spec
from repro.trace.signatures import ComponentFilter


@pytest.fixture(scope="module")
def study(medium_corpus):
    return run_study(medium_corpus)


class TestGrouping:
    def test_group_by_scenario(self, medium_corpus):
        grouped = group_by_scenario(medium_corpus)
        assert grouped
        for name, instances in grouped.items():
            assert all(instance.scenario == name for instance in instances)


class TestCoverage:
    def test_coverage_on_real_report(self, medium_corpus):
        grouped = group_by_scenario(medium_corpus)
        name, instances = max(grouped.items(), key=lambda kv: len(kv[1]))
        spec = scenario_spec(name)
        analysis = CausalityAnalysis(["*.sys"])
        report = analysis.analyze(instances, spec.t_fast, spec.t_slow, name)
        coverage = evaluate_coverage(report, analysis.component_filter)
        assert coverage.scenario == name
        assert coverage.slow_instances == len(report.classes.slow)
        assert 0.0 <= coverage.itc <= coverage.ttc
        if coverage.driver_time:
            assert 0.0 <= coverage.driver_cost_share <= 1.5
            assert 0.0 <= coverage.non_optimizable_share

    def test_itc_subset_of_ttc(self, study):
        for scenario in study.scenarios.values():
            assert scenario.coverage.itc_time <= scenario.coverage.ttc_time


class TestStudy:
    def test_impact_shape(self, study):
        impact = study.impact
        assert impact.ia_run < impact.ia_wait
        assert 0 < impact.ia_wait < 1
        assert impact.wait_multiplicity >= 1.0
        assert impact.ia_opt >= 0.0

    def test_all_tables_have_rows(self, study):
        assert study.table1_rows()
        assert study.table2_rows()
        assert study.table3_rows()
        assert study.table4_rows()

    def test_table1_counts_consistent(self, study):
        for name, total, fast, slow in study.table1_rows():
            assert fast + slow <= total
            classes = study.scenarios[name].report.classes
            assert total == classes.total

    def test_table3_coverage_monotone(self, study):
        for name, count, top10, top20, top30 in study.table3_rows():
            assert top10 <= top20 + 1e-9
            assert top20 <= top30 + 1e-9

    def test_ranking_coverage_front_loaded(self, study):
        """Top 30% of patterns must cover well over 30% of the time."""
        rows = [row for row in study.table3_rows() if row[1] >= 10]
        if rows:
            average_top30 = sum(row[4] for row in rows) / len(rows)
            assert average_top30 > 0.4

    def test_scenario_subset(self, medium_corpus):
        result = run_study(medium_corpus, scenarios=["MenuDisplay"])
        assert set(result.scenarios) <= {"MenuDisplay"}
