"""Parallel pipeline ≡ sequential analysis, end to end.

The acceptance bar for the map–reduce pipeline: for any worker count and
chunk size, `parallel_impact` / `parallel_causality` / `parallel_study`
must reproduce the sequential analyzers exactly — down to the rendered
study tables being byte-identical.
"""

import pytest

from repro.causality import CausalityAnalysis
from repro.errors import AnalysisError
from repro.evaluation.study import run_study
from repro.impact import ImpactAnalysis
from repro.pipeline import (
    parallel_causality,
    parallel_impact,
    parallel_study,
)
from repro.report.markdown import study_to_markdown
from repro.sim.workloads.registry import scenario_spec
from repro.trace import dump_corpus, iter_corpus_paths


@pytest.fixture(scope="module")
def corpus_paths(small_corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("pipeline-corpus")
    dump_corpus(small_corpus, directory)
    return iter_corpus_paths(directory)


class TestParallelImpact:
    def test_matches_sequential(self, small_corpus, corpus_paths):
        sequential = ImpactAnalysis(["*.sys"]).analyze_corpus(small_corpus)
        for workers, chunk_size in [(1, None), (4, 1), (4, 2), (2, 3)]:
            parallel = parallel_impact(
                corpus_paths, workers=workers, chunk_size=chunk_size
            )
            assert parallel == sequential

    def test_scenario_filter_matches(self, small_corpus, corpus_paths):
        scenarios = ["WebPageNavigation"]
        sequential = ImpactAnalysis(["*.sys"]).analyze_corpus(
            small_corpus, scenarios=scenarios
        )
        parallel = parallel_impact(
            corpus_paths, scenarios=scenarios, workers=3
        )
        assert parallel == sequential

    def test_in_memory_sources(self, small_corpus):
        sequential = ImpactAnalysis(["*.sys"]).analyze_corpus(small_corpus)
        parallel = parallel_impact(list(small_corpus), workers=2)
        assert parallel == sequential

    def test_empty_corpus_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            parallel_impact([], workers=2)


class TestParallelCausality:
    def test_matches_sequential(self, small_corpus, corpus_paths):
        name = "WebPageNavigation"
        spec = scenario_spec(name)
        instances = [
            instance
            for stream in small_corpus
            for instance in stream.instances
            if instance.scenario == name
        ]
        sequential = CausalityAnalysis(["*.sys"]).analyze(
            instances, spec.t_fast, spec.t_slow, scenario=name
        )
        parallel = parallel_causality(
            corpus_paths, name, spec.t_fast, spec.t_slow, workers=4
        )
        assert parallel.summary() == sequential.summary()
        assert parallel.patterns == sequential.patterns
        assert parallel.contrast_metas == sequential.contrast_metas
        assert parallel.slow_meta_patterns == sequential.slow_meta_patterns
        assert (
            parallel.slow_awg.node_count()
            == sequential.slow_awg.node_count()
        )
        assert [i.key for i in parallel.classes.slow] == [
            i.key for i in sequential.classes.slow
        ]

    def test_missing_scenario_reports_present_ones(self, corpus_paths):
        with pytest.raises(AnalysisError, match="scenarios present"):
            parallel_causality(
                corpus_paths, "NoSuchScenario", 1000, 2000, workers=2
            )

    def test_bad_thresholds_rejected(self, corpus_paths):
        with pytest.raises(AnalysisError):
            parallel_causality(
                corpus_paths, "WebPageNavigation", 2000, 1000, workers=1
            )


class TestParallelStudy:
    def test_tables_byte_identical_across_worker_counts(
        self, small_corpus, corpus_paths
    ):
        sequential = study_to_markdown(run_study(small_corpus))
        for workers, chunk_size in [(1, None), (4, 1), (4, None), (2, 3)]:
            parallel = study_to_markdown(
                parallel_study(
                    corpus_paths, workers=workers, chunk_size=chunk_size
                )
            )
            assert parallel == sequential

    def test_run_study_workers_delegates(self, small_corpus):
        sequential = study_to_markdown(run_study(small_corpus))
        parallel = study_to_markdown(run_study(small_corpus, workers=2))
        assert parallel == sequential

    def test_scenario_subset(self, small_corpus, corpus_paths):
        wanted = ["WebPageNavigation", "BrowserTabCreate"]
        sequential = run_study(small_corpus, scenarios=wanted)
        parallel = parallel_study(corpus_paths, scenarios=wanted, workers=3)
        assert list(parallel.scenarios) == list(sequential.scenarios)
        assert parallel.table1_rows() == sequential.table1_rows()
        assert parallel.table2_rows() == sequential.table2_rows()
        assert parallel.table3_rows() == sequential.table3_rows()
        assert parallel.table4_rows() == sequential.table4_rows()
