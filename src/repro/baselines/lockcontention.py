"""Single-lock contention analysis baseline (Tallent et al., paper [36]).

Lock-contention analyzers report, per lock, how long threads waited on
it.  The paper's §1 names this the second limitation of existing
techniques: each lock is analyzed in isolation, so the *combinatorial*
effect — multiple contention regions on different locks chained by
hierarchical dependencies, amplified by hardware — never surfaces.

This baseline consumes the ``resource`` provenance field the simulator
attaches to wait events (ground truth a lock profiler would get from
instrumented synchronization APIs).  The core approach never reads that
field; the point of the baseline is to show that even *with* perfect
per-lock attribution, per-lock totals cannot explain cross-lock
propagation chains the causality analysis finds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.trace.events import EventKind
from repro.trace.stream import TraceStream


@dataclass
class LockProfile:
    """Aggregate contention statistics of one lock."""

    resource: str
    total_wait: int = 0
    waits: int = 0
    max_wait: int = 0
    waiting_threads: Set[int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.waiting_threads is None:
            self.waiting_threads = set()

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.waits if self.waits else 0.0


class LockContentionAnalysis:
    """Per-lock contention totals over a corpus."""

    def __init__(self) -> None:
        self._locks: Dict[str, LockProfile] = {}
        self.total_wait = 0

    def add_stream(self, stream: TraceStream) -> None:
        for event in stream.events:
            if event.kind is not EventKind.WAIT:
                continue
            if not event.resource or not event.resource.startswith("lock:"):
                continue
            profile = self._locks.get(event.resource)
            if profile is None:
                profile = LockProfile(event.resource)
                self._locks[event.resource] = profile
            profile.total_wait += event.cost
            profile.waits += 1
            profile.max_wait = max(profile.max_wait, event.cost)
            profile.waiting_threads.add(event.tid)
            self.total_wait += event.cost

    def top_locks(self, count: int = 10) -> List[LockProfile]:
        """Most contended locks by total wait time."""
        return sorted(
            self._locks.values(),
            key=lambda profile: (-profile.total_wait, profile.resource),
        )[:count]

    def lock(self, resource: str) -> Optional[LockProfile]:
        return self._locks.get(resource)

    def isolated_view_of(self, resources: Iterable[str]) -> Tuple[int, int]:
        """(combined wait, max single-lock wait) for a set of locks.

        A per-lock analyzer sees only the individual totals; comparing
        the max single-lock wait to what causality analysis attributes to
        the *chain* across those locks quantifies what the isolated view
        misses.
        """
        totals = [
            self._locks[resource].total_wait
            for resource in resources
            if resource in self._locks
        ]
        if not totals:
            return (0, 0)
        return (sum(totals), max(totals))


def analyze_lock_contention(
    streams: Iterable[TraceStream],
) -> LockContentionAnalysis:
    """Run the per-lock baseline over a corpus."""
    analysis = LockContentionAnalysis()
    for stream in streams:
        analysis.add_stream(stream)
    return analysis
