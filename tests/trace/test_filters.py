"""Tests for trace filtering helpers."""

from repro.trace.events import EventKind
from repro.trace.filters import (
    by_component,
    by_kind,
    in_window,
    instance_events,
    instances_by_scenario,
    select,
    total_cost,
)
from repro.trace.signatures import ALL_DRIVERS
from tests.conftest import make_event, make_stream


class TestPredicates:
    def test_by_kind(self):
        predicate = by_kind(EventKind.WAIT)
        assert predicate(make_event(EventKind.WAIT, cost=1))
        assert not predicate(make_event(EventKind.RUNNING))

    def test_by_component(self):
        predicate = by_component(ALL_DRIVERS)
        assert predicate(make_event(stack=("app!a", "fs.sys!Read")))
        assert not predicate(make_event(stack=("app!a",)))

    def test_in_window(self):
        predicate = in_window(100, 200)
        assert predicate(make_event(timestamp=150, cost=10))
        assert not predicate(make_event(timestamp=300, cost=10))

    def test_select_combines(self):
        events = [
            make_event(EventKind.WAIT, stack=("fs.sys!Read",), timestamp=0, cost=10),
            make_event(EventKind.WAIT, stack=("app!Main",), timestamp=0, cost=10),
            make_event(EventKind.RUNNING, stack=("fs.sys!Read",), timestamp=0),
        ]
        selected = list(
            select(events, by_kind(EventKind.WAIT), by_component(ALL_DRIVERS))
        )
        assert len(selected) == 1


class TestInstanceHelpers:
    def test_instance_events(self):
        stream = make_stream(events=[
            make_event(tid=1, timestamp=0, cost=100),
            make_event(tid=2, timestamp=50, cost=100),
            make_event(tid=1, timestamp=5_000, cost=100),
        ])
        instance = stream.add_instance("Demo", tid=1, t0=0, t1=200)
        events = instance_events(instance)
        assert len(events) == 2  # both overlapping events, any thread

    def test_instances_by_scenario(self):
        stream_a = make_stream("a", events=[make_event(cost=10_000)])
        stream_a.add_instance("X", 1, 0, 10)
        stream_a.add_instance("Y", 1, 20, 30)
        stream_b = make_stream("b", events=[make_event(cost=10_000)])
        stream_b.add_instance("X", 1, 0, 10)
        grouped = instances_by_scenario([stream_a, stream_b])
        assert len(grouped["X"]) == 2
        assert len(grouped["Y"]) == 1

    def test_total_cost(self):
        events = [make_event(cost=10), make_event(cost=20)]
        assert total_cost(events) == 30
