#!/usr/bin/env python3
"""Regression watch: compare two builds' traces for emerging problems.

A production workflow built from the library's extension tooling:

1. simulate a *baseline* build and a *candidate* build whose file-system
   update accidentally coarsened the MDU locks (fewer locks, more
   contention);
2. derive performance thresholds from the baseline when no specification
   exists (``suggest_thresholds``);
3. run causality analysis on both and diff the discovered patterns
   (``compare_patterns``) — emerged or regressed patterns are the release
   blockers;
4. dump the slow class's Aggregated Wait Graph to SVG for the bug report.

Run:  python examples/regression_watch.py
"""

from dataclasses import replace

from repro.causality import CausalityAnalysis
from repro.causality.thresholds import suggest_for_instances
from repro.evaluation.compare import compare_impact, compare_patterns
from repro.impact import ImpactAnalysis
from repro.report.svg import save_awg_svg
from repro.report.tables import Table, fmt_pct
from repro.sim.corpus import CorpusConfig, draw_machine_config, generate_corpus
from repro.sim import corpus as corpus_module


def build_corpus(streams, seed, mdu_locks=None):
    """Generate a corpus; optionally force MDU lock granularity."""
    if mdu_locks is None:
        return generate_corpus(CorpusConfig(streams=streams, seed=seed))
    original = corpus_module.draw_machine_config

    def patched(rng):
        return replace(original(rng), mdu_lock_count=mdu_locks)

    corpus_module.draw_machine_config = patched
    try:
        return generate_corpus(CorpusConfig(streams=streams, seed=seed))
    finally:
        corpus_module.draw_machine_config = original


def main() -> None:
    scenario = "BrowserTabCreate"
    print("Simulating the baseline build (8 streams) ...")
    baseline_corpus = build_corpus(8, seed=99)
    print("Simulating the candidate build (MDU locks coarsened to 1) ...\n")
    candidate_corpus = build_corpus(8, seed=99, mdu_locks=1)

    def instances_of(corpus):
        return [
            instance
            for stream in corpus
            for instance in stream.instances
            if instance.scenario == scenario
        ]

    baseline_instances = instances_of(baseline_corpus)
    candidate_instances = instances_of(candidate_corpus)

    # No vendor spec? Derive thresholds from the baseline distribution.
    suggestion = suggest_for_instances(baseline_instances)
    print(f"Derived thresholds for {scenario}: "
          f"T_fast={suggestion.t_fast // 1000} ms, "
          f"T_slow={suggestion.t_slow // 1000} ms "
          f"(from {suggestion.sample_size} baseline instances)\n")

    analysis = CausalityAnalysis(["*.sys"])
    baseline_report = analysis.analyze(
        baseline_instances, suggestion.t_fast, suggestion.t_slow, scenario
    )
    candidate_report = analysis.analyze(
        candidate_instances, suggestion.t_fast, suggestion.t_slow, scenario
    )

    # Impact movement.
    baseline_impact = ImpactAnalysis(["*.sys"]).analyze_instances(
        baseline_instances
    )
    candidate_impact = ImpactAnalysis(["*.sys"]).analyze_instances(
        candidate_instances
    )
    delta = compare_impact(baseline_impact, candidate_impact)
    table = Table(["Metric", "Baseline", "Candidate"],
                  title="Impact movement")
    table.add_row("IA_wait", fmt_pct(baseline_impact.ia_wait),
                  fmt_pct(candidate_impact.ia_wait))
    table.add_row("IA_opt", fmt_pct(baseline_impact.ia_opt),
                  fmt_pct(candidate_impact.ia_opt))
    print(table.render())
    print(f"Delta: {delta.summary()}\n")

    # Pattern diff.
    comparison = compare_patterns(
        baseline_report.patterns, candidate_report.patterns
    )
    print(f"Pattern diff: {comparison.summary()}")
    for pattern in comparison.emerged[:2]:
        print("\nEMERGED (release blocker candidate):")
        print(pattern.sst.render(indent="  "))
    for movement in comparison.regressed[:2]:
        print(f"\nREGRESSED x{movement.ratio:.1f}:")
        print(movement.sst.render(indent="  "))

    if comparison.has_regressions:
        save_awg_svg(
            candidate_report.slow_awg,
            "candidate_slow_awg.svg",
            title=f"{scenario} slow class - candidate build",
        )
        print("\nWrote candidate_slow_awg.svg for the bug report.")


if __name__ == "__main__":
    main()
