"""Tests for the deterministic trace fuzzer."""

import pytest

from repro.errors import ConfigError
from repro.resilience import (
    CORRUPTORS,
    corrupt_bytes,
    corrupt_file,
    fuzz_corpus,
    resolve_corruptors,
)

SAMPLE = b"header line\n" + b"".join(
    b"line %d with some payload bytes\n" % i for i in range(40)
)


def _write_corpus(directory, files=5):
    directory.mkdir(parents=True, exist_ok=True)
    for index in range(files):
        (directory / f"stream{index:05d}.jsonl").write_bytes(
            SAMPLE + b"tail %d\n" % index
        )
    return directory


class TestRegistry:
    def test_expected_corruptors_present(self):
        assert set(CORRUPTORS) == {
            "truncate", "bit-flip", "mangle-section",
            "duplicate-line", "reorder-lines", "zero-length",
        }

    def test_resolve_none_is_all(self):
        assert resolve_corruptors(None) == list(CORRUPTORS)

    def test_resolve_keeps_given_order(self):
        assert resolve_corruptors(["zero-length", "truncate"]) == [
            "zero-length", "truncate",
        ]

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ConfigError, match="--corruptor must be one of"):
            resolve_corruptors(["rot13"])


class TestCorruptBytes:
    @pytest.mark.parametrize("name", sorted(CORRUPTORS))
    def test_deterministic(self, name):
        assert corrupt_bytes(SAMPLE, name, 99) == corrupt_bytes(SAMPLE, name, 99)

    @pytest.mark.parametrize(
        "name", ["truncate", "bit-flip", "mangle-section", "duplicate-line"]
    )
    def test_actually_damages(self, name):
        assert corrupt_bytes(SAMPLE, name, 7) != SAMPLE

    def test_truncate_shortens(self):
        assert len(corrupt_bytes(SAMPLE, "truncate", 3)) < len(SAMPLE)

    def test_zero_length_empties(self):
        assert corrupt_bytes(SAMPLE, "zero-length", 0) == b""

    def test_duplicate_line_grows_by_one_line(self):
        damaged = corrupt_bytes(SAMPLE, "duplicate-line", 5)
        assert damaged.count(b"\n") == SAMPLE.count(b"\n") + 1

    def test_bit_flip_preserves_length(self):
        assert len(corrupt_bytes(SAMPLE, "bit-flip", 11)) == len(SAMPLE)


class TestCorruptFile:
    def test_in_place(self, tmp_path):
        victim = tmp_path / "t.jsonl"
        victim.write_bytes(SAMPLE)
        record = corrupt_file(victim, "truncate", 21)
        assert record.path == str(victim)
        assert victim.read_bytes() == corrupt_bytes(SAMPLE, "truncate", 21)

    def test_to_destination_keeps_source(self, tmp_path):
        source = tmp_path / "t.jsonl"
        dest = tmp_path / "damaged.jsonl"
        source.write_bytes(SAMPLE)
        corrupt_file(source, "bit-flip", 4, destination=dest)
        assert source.read_bytes() == SAMPLE
        assert dest.read_bytes() == corrupt_bytes(SAMPLE, "bit-flip", 4)

    def test_record_is_json_serializable(self, tmp_path):
        import json

        victim = tmp_path / "t.jsonl"
        victim.write_bytes(SAMPLE)
        record = corrupt_file(victim, "truncate", 21)
        assert json.dumps(record.to_json())


class TestFuzzCorpus:
    def test_same_seed_same_damage(self, tmp_path):
        first = _write_corpus(tmp_path / "a")
        second = _write_corpus(tmp_path / "b")
        records_a = fuzz_corpus(first, seed=1234)
        records_b = fuzz_corpus(second, seed=1234)
        assert [
            (r.path.rsplit("/", 1)[-1], r.corruptor, r.seed)
            for r in records_a
        ] == [
            (r.path.rsplit("/", 1)[-1], r.corruptor, r.seed)
            for r in records_b
        ]
        for name in sorted(p.name for p in first.iterdir()):
            assert (first / name).read_bytes() == (second / name).read_bytes()

    def test_different_seed_different_damage(self, tmp_path):
        first = _write_corpus(tmp_path / "a")
        second = _write_corpus(tmp_path / "b")
        bytes_a = sorted(p.read_bytes() for p in first.iterdir())
        fuzz_corpus(first, seed=1)
        fuzz_corpus(second, seed=2)
        assert sorted(p.read_bytes() for p in first.iterdir()) != bytes_a
        assert sorted(p.read_bytes() for p in first.iterdir()) != sorted(
            p.read_bytes() for p in second.iterdir()
        )

    def test_fraction_scales_victim_count(self, tmp_path):
        corpus = _write_corpus(tmp_path / "c", files=10)
        records = fuzz_corpus(corpus, seed=5, fraction=0.3)
        assert len(records) == 3

    def test_at_least_one_victim(self, tmp_path):
        corpus = _write_corpus(tmp_path / "c", files=4)
        assert len(fuzz_corpus(corpus, seed=5, fraction=0.01)) == 1

    def test_restricted_corruptors_respected(self, tmp_path):
        corpus = _write_corpus(tmp_path / "c")
        records = fuzz_corpus(
            corpus, seed=8, fraction=1.0, corruptors=["zero-length"]
        )
        assert {r.corruptor for r in records} == {"zero-length"}
        assert all(
            p.stat().st_size == 0 for p in corpus.glob("*.jsonl")
        )

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_bad_fraction_rejected(self, tmp_path, fraction):
        corpus = _write_corpus(tmp_path / "c")
        with pytest.raises(ConfigError, match="--fraction must be in"):
            fuzz_corpus(corpus, seed=1, fraction=fraction)
