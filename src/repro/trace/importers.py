"""Importing traces from external formats.

Real deployments already have trace data — ETW exports, DTrace output,
custom profilers.  These importers map common tabular/JSON shapes onto
the :mod:`repro.trace` schema so the analyses run on them unchanged:

* :func:`import_csv` — one event per row; columns configurable through a
  :class:`FieldMap`.  Callstacks are a single cell with a frame
  separator (``;`` by default, innermost frame last).
* :func:`import_json_events` — a list of JSON objects with the same
  logical fields.

Both return a validated :class:`~repro.trace.stream.TraceStream`.  Wait
durations may be supplied directly (a ``cost`` column) or restored from
wait/unwait pairing when the source only logs transitions
(``restore_wait_durations=True``).
"""

from __future__ import annotations

import csv
import io
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, TextIO, Union

from repro.errors import SerializationError
from repro.trace.events import Event, EventKind
from repro.trace.stream import ThreadInfo, TraceStream
from repro.trace.validate import validate_stream

PathOrFile = Union[str, os.PathLike, TextIO]

#: Accepted spellings for each event kind in external data.
_KIND_ALIASES: Dict[str, EventKind] = {
    "running": EventKind.RUNNING,
    "run": EventKind.RUNNING,
    "cpu": EventKind.RUNNING,
    "sample": EventKind.RUNNING,
    "wait": EventKind.WAIT,
    "block": EventKind.WAIT,
    "blocked": EventKind.WAIT,
    "unwait": EventKind.UNWAIT,
    "ready": EventKind.UNWAIT,
    "readythread": EventKind.UNWAIT,
    "signal": EventKind.UNWAIT,
    "hw_service": EventKind.HW_SERVICE,
    "hw": EventKind.HW_SERVICE,
    "diskio": EventKind.HW_SERVICE,
    "hardware": EventKind.HW_SERVICE,
}


@dataclass(frozen=True)
class FieldMap:
    """Column/key names of the source data."""

    kind: str = "kind"
    timestamp: str = "timestamp"
    cost: str = "cost"
    tid: str = "tid"
    wtid: str = "wtid"
    stack: str = "stack"
    resource: str = "resource"
    stack_separator: str = ";"


def _parse_kind(raw: str, where: str) -> EventKind:
    try:
        return _KIND_ALIASES[str(raw).strip().lower()]
    except KeyError:
        known = ", ".join(sorted(_KIND_ALIASES))
        raise SerializationError(
            f"{where}: unknown event kind {raw!r} (known: {known})"
        ) from None


def _parse_int(raw, name: str, where: str, default: Optional[int] = None) -> int:
    if raw is None or raw == "":
        if default is not None:
            return default
        raise SerializationError(f"{where}: missing required field {name!r}")
    try:
        return int(float(raw))
    except (TypeError, ValueError):
        raise SerializationError(
            f"{where}: field {name!r} is not a number: {raw!r}"
        ) from None


def _record_to_event(
    record: Dict, fields: FieldMap, seq: int, where: str
) -> Event:
    kind = _parse_kind(record.get(fields.kind), where)
    raw_stack = record.get(fields.stack) or ""
    if isinstance(raw_stack, str):
        frames = tuple(
            frame.strip()
            for frame in raw_stack.split(fields.stack_separator)
            if frame.strip()
        )
    else:  # JSON may carry a real list
        frames = tuple(str(frame) for frame in raw_stack)
    wtid_raw = record.get(fields.wtid)
    wtid = None
    if kind is EventKind.UNWAIT:
        wtid = _parse_int(wtid_raw, fields.wtid, where)
    resource = record.get(fields.resource) or None
    try:
        return Event(
            kind=kind,
            stack=frames,
            timestamp=_parse_int(record.get(fields.timestamp),
                                 fields.timestamp, where),
            cost=_parse_int(record.get(fields.cost), fields.cost, where,
                            default=0),
            tid=_parse_int(record.get(fields.tid), fields.tid, where),
            seq=seq,
            wtid=wtid,
            resource=resource if resource else None,
        )
    except SerializationError:
        raise
    except Exception as exc:  # schema violations from Event.__post_init__
        raise SerializationError(f"{where}: {exc}") from exc


def _restore_wait_durations(events: List[Event]) -> List[Event]:
    """Fill zero-cost wait events from their matching unwaits.

    Sources that log only state transitions emit waits with unknown
    duration; the matching unwait (same target tid, first one at or after
    the wait's start) defines the end.
    """
    unwaits_by_target: Dict[int, List[Event]] = {}
    for event in events:
        if event.kind is EventKind.UNWAIT and event.wtid is not None:
            unwaits_by_target.setdefault(event.wtid, []).append(event)
    for queue in unwaits_by_target.values():
        queue.sort(key=lambda event: event.timestamp)

    used: set = set()
    restored: List[Event] = []
    for event in events:
        if event.kind is EventKind.WAIT and event.cost == 0:
            candidates = unwaits_by_target.get(event.tid, [])
            match = next(
                (
                    candidate
                    for candidate in candidates
                    if candidate.seq not in used
                    and candidate.timestamp >= event.timestamp
                ),
                None,
            )
            if match is not None:
                used.add(match.seq)
                event = Event(
                    kind=event.kind,
                    stack=event.stack,
                    timestamp=event.timestamp,
                    cost=match.timestamp - event.timestamp,
                    tid=event.tid,
                    seq=event.seq,
                    resource=event.resource,
                )
        restored.append(event)
    return restored


def import_records(
    records: Iterable[Dict],
    stream_id: str,
    fields: FieldMap = FieldMap(),
    threads: Iterable[ThreadInfo] = (),
    restore_wait_durations: bool = False,
    validate: bool = True,
) -> TraceStream:
    """Import an iterable of dict records (the core of both importers)."""
    events: List[Event] = []
    for index, record in enumerate(records):
        events.append(
            _record_to_event(record, fields, seq=index, where=f"record {index}")
        )
    if restore_wait_durations:
        events = _restore_wait_durations(events)
    stream = TraceStream.from_events(stream_id, events, threads)
    if validate:
        validate_stream(stream)
    return stream


def import_csv(
    source: PathOrFile,
    stream_id: str = "",
    fields: FieldMap = FieldMap(),
    restore_wait_durations: bool = False,
    validate: bool = True,
) -> TraceStream:
    """Import a CSV file (header row required) as a trace stream."""
    if isinstance(source, (str, os.PathLike)):
        resolved_id = stream_id or os.path.splitext(
            os.path.basename(os.fspath(source))
        )[0]
        with open(source, "r", encoding="utf-8", newline="") as handle:
            return _import_csv_handle(
                handle, resolved_id, fields, restore_wait_durations, validate
            )
    return _import_csv_handle(
        source, stream_id or "imported", fields, restore_wait_durations,
        validate,
    )


def _import_csv_handle(
    handle: TextIO,
    stream_id: str,
    fields: FieldMap,
    restore_wait_durations: bool,
    validate: bool,
) -> TraceStream:
    reader = csv.DictReader(handle)
    if reader.fieldnames is None:
        raise SerializationError("CSV source has no header row")
    missing = {fields.kind, fields.timestamp, fields.tid} - set(
        reader.fieldnames
    )
    if missing:
        raise SerializationError(
            f"CSV header lacks required columns: {sorted(missing)}"
        )
    return import_records(
        reader,
        stream_id,
        fields,
        restore_wait_durations=restore_wait_durations,
        validate=validate,
    )


def import_csv_text(text: str, **kwargs) -> TraceStream:
    """Import CSV from a string (testing/notebook convenience)."""
    return import_csv(io.StringIO(text), **kwargs)


def import_json_events(
    records: Iterable[Dict],
    stream_id: str = "imported",
    fields: FieldMap = FieldMap(),
    restore_wait_durations: bool = False,
    validate: bool = True,
) -> TraceStream:
    """Import a list of JSON-style dict events as a trace stream."""
    return import_records(
        records,
        stream_id,
        fields,
        restore_wait_durations=restore_wait_durations,
        validate=validate,
    )
