"""Tests for the StackMine-style within-thread baseline."""

from repro.baselines.stackmine import (
    StackMineAnalysis,
    _component_suffix,
    mine_stack_patterns,
)
from repro.trace.events import EventKind
from repro.trace.signatures import ALL_DRIVERS
from tests.conftest import make_event, make_stream


class TestSuffixExtraction:
    def test_starts_at_outermost_component_frame(self):
        stack = (
            "Browser!TabCreate", "kernel!OpenFile",
            "fv.sys!Q", "fs.sys!R", "kernel!AcquireLock",
        )
        assert _component_suffix(stack, ALL_DRIVERS) == (
            "fv.sys!Q", "fs.sys!R", "kernel!AcquireLock",
        )

    def test_no_component_frame(self):
        assert _component_suffix(("a!b", "c!d"), ALL_DRIVERS) == ()


class TestMining:
    def build_instance(self):
        events = [
            make_event(EventKind.WAIT,
                       ("App!X", "fv.sys!Q", "kernel!AcquireLock"),
                       timestamp=0, cost=5_000, tid=1),
            make_event(EventKind.UNWAIT, ("x!y",), timestamp=5_000,
                       cost=0, tid=2, wtid=1),
            make_event(EventKind.WAIT,
                       ("App!Y", "fv.sys!Q", "kernel!AcquireLock"),
                       timestamp=6_000, cost=2_000, tid=1),
            make_event(EventKind.UNWAIT, ("x!y",), timestamp=8_000,
                       cost=0, tid=2, wtid=1),
            make_event(EventKind.WAIT, ("App!Z", "kernel!WaitForObject"),
                       timestamp=9_000, cost=9_000, tid=1),
            make_event(EventKind.UNWAIT, ("x!y",), timestamp=18_000,
                       cost=0, tid=2, wtid=1),
        ]
        stream = make_stream(events=events)
        return stream.add_instance("S", tid=1, t0=0, t1=18_000)

    def test_same_suffix_clusters(self):
        analysis = mine_stack_patterns([self.build_instance()])
        top = analysis.top_patterns(1)[0]
        assert top.suffix == ("fv.sys!Q", "kernel!AcquireLock")
        assert top.occurrences == 2
        assert top.total_cost == 7_000
        assert top.max_cost == 5_000
        assert top.mean_cost == 3_500

    def test_non_driver_waits_ignored(self):
        analysis = mine_stack_patterns([self.build_instance()])
        assert analysis.total_wait_cost == 7_000

    def test_coverage(self):
        analysis = mine_stack_patterns([self.build_instance()])
        assert analysis.coverage_of_top(10) == 1.0
        assert StackMineAnalysis().coverage_of_top(10) == 0.0

    def test_label(self):
        analysis = mine_stack_patterns([self.build_instance()])
        assert "fv.sys!Q" in analysis.top_patterns(1)[0].label


class TestWithinVsCrossThread:
    def test_stackmine_misses_the_holder_side(self, small_corpus):
        """StackMine only sees the initiating threads' own waits — it
        never attributes cost to the service/holder threads the causality
        analysis reaches through unwait chains."""
        instances = [
            instance
            for stream in small_corpus
            for instance in stream.instances
        ]
        analysis = mine_stack_patterns(instances[:60])
        # Every mined pattern is a within-thread stack: it names at most
        # the blocking site, never a (wait, unwait, running) interaction.
        for pattern in analysis.top_patterns(20):
            assert isinstance(pattern.suffix, tuple)
            assert pattern.occurrences >= 1
