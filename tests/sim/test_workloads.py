"""Tests for scenario workloads and the registry."""

import pytest

from repro.errors import ConfigError
from repro.sim.machine import Machine, MachineConfig
from repro.sim.workloads.base import ScenarioSpec, Workload
from repro.sim.workloads.registry import (
    SCENARIO_NAMES,
    SCENARIO_SPECS,
    WORKLOAD_CLASSES,
    scenario_spec,
    workload_class,
)
from repro.units import SECONDS


class TestScenarioSpec:
    def test_classify(self):
        spec = ScenarioSpec("S", t_fast=100, t_slow=300)
        assert spec.classify(50) == "fast"
        assert spec.classify(200) == "between"
        assert spec.classify(400) == "slow"

    def test_boundaries_are_between(self):
        spec = ScenarioSpec("S", t_fast=100, t_slow=300)
        assert spec.classify(100) == "between"
        assert spec.classify(300) == "between"

    def test_thresholds_must_be_ordered(self):
        with pytest.raises(ConfigError):
            ScenarioSpec("S", t_fast=300, t_slow=100)


class TestRegistry:
    def test_eight_scenarios(self):
        assert len(SCENARIO_NAMES) == 8

    def test_table1_order(self):
        assert SCENARIO_NAMES == [
            "AppAccessControl",
            "AppNonResponsive",
            "BrowserFrameCreate",
            "BrowserTabClose",
            "BrowserTabCreate",
            "BrowserTabSwitch",
            "MenuDisplay",
            "WebPageNavigation",
        ]

    def test_lookup(self):
        cls = workload_class("BrowserTabCreate")
        assert cls.spec.name == "BrowserTabCreate"
        assert scenario_spec("MenuDisplay") is SCENARIO_SPECS["MenuDisplay"]

    def test_unknown_scenario(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            workload_class("NopeScenario")
        with pytest.raises(ConfigError, match="unknown scenario"):
            scenario_spec("NopeScenario")

    def test_all_specs_have_gap(self):
        for spec in SCENARIO_SPECS.values():
            assert spec.t_fast < spec.t_slow


class TestWorkloadValidation:
    def test_repeats_must_be_positive(self):
        cls = workload_class("MenuDisplay")
        with pytest.raises(ConfigError):
            cls(repeats=0)

    def test_intensity_bounds(self):
        cls = workload_class("MenuDisplay")
        with pytest.raises(ConfigError):
            cls(intensity=1.5)


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_each_workload_produces_its_instances(name):
    """Installing one workload yields instances of (at least) its scenario."""
    machine = Machine(f"wl-{name}", MachineConfig(seed=31))
    cls = workload_class(name)
    kwargs = dict(repeats=3, think_median_us=50_000, intensity=0.5)
    if hasattr(cls, "worker_count"):
        workload = cls(horizon_us=4 * SECONDS, **kwargs)
    else:
        workload = cls(**kwargs)
    workload.install(machine)
    stream = machine.run_and_trace(until=20 * SECONDS)
    scenarios = {instance.scenario for instance in stream.instances}
    assert name in scenarios
    own = [i for i in stream.instances if i.scenario == name]
    assert len(own) >= 3
    for instance in own:
        assert instance.duration > 0
