"""Coverage edge cases: empty slow classes, zero denominators."""

from repro.causality.analyzer import CausalityAnalysis
from repro.evaluation.coverage import CoverageResult, evaluate_coverage
from repro.trace.signatures import ComponentFilter
from tests.conftest import make_event, make_stream


class TestEmptySlowClass:
    def test_no_slow_instances(self):
        stream = make_stream(events=[make_event(cost=10_000_000)])
        instances = [
            stream.add_instance("S", tid=1, t0=0, t1=10) for _ in range(3)
        ]
        analysis = CausalityAnalysis(["*.sys"])
        report = analysis.analyze(instances, 100, 300, scenario="S")
        coverage = evaluate_coverage(report, analysis.component_filter)
        assert coverage.slow_instances == 0
        assert coverage.itc == 0.0
        assert coverage.ttc == 0.0
        assert coverage.driver_cost_share == 0.0
        assert coverage.non_optimizable_share == 0.0


class TestZeroDenominators:
    def test_result_properties_safe(self):
        result = CoverageResult(
            scenario="S",
            slow_instances=0,
            slow_total_time=0,
            distinct_driver_time=0,
            driver_time=0,
            itc_time=0,
            ttc_time=0,
            reduced_hw_time=0,
            pattern_count=0,
            high_impact_count=0,
        )
        assert result.itc == 0.0
        assert result.ttc == 0.0
        assert result.driver_cost_share == 0.0
        assert result.non_optimizable_share == 0.0
