"""Call-graph profiling baseline (gprof-style, paper [14]).

A classic sampling profiler sees only CPU time: it attributes each
running sample to every frame on its callstack (inclusive time) and to
the leaf frame (exclusive time).  The paper's §1 names this the first
limitation of existing techniques — it covers only the call-dependency
aspect, so wait time (96+% of the device-driver impact) is invisible.

This baseline exists to reproduce that contrast: on the same corpus the
call-graph profile reports drivers as a tiny CPU consumer while impact
analysis shows them dominating wait time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.trace.events import EventKind
from repro.trace.signatures import ComponentFilter
from repro.trace.stream import TraceStream


@dataclass
class FunctionProfile:
    """Per-signature CPU profile entry."""

    signature: str
    inclusive: int = 0
    exclusive: int = 0
    samples: int = 0


class CallGraphProfile:
    """A flat+inclusive CPU profile built from running events only."""

    def __init__(self) -> None:
        self._functions: Dict[str, FunctionProfile] = {}
        self.total_cpu = 0

    def add_stream(self, stream: TraceStream) -> None:
        """Accumulate every running sample of a trace stream."""
        for event in stream.events:
            if event.kind is not EventKind.RUNNING:
                continue
            self.total_cpu += event.cost
            seen_on_stack = set()
            for frame in event.stack:
                # A recursive frame contributes inclusive time once.
                if frame not in seen_on_stack:
                    seen_on_stack.add(frame)
                    entry = self._entry(frame)
                    entry.inclusive += event.cost
            leaf = self._entry(event.leaf)
            leaf.exclusive += event.cost
            leaf.samples += 1

    def _entry(self, signature: str) -> FunctionProfile:
        entry = self._functions.get(signature)
        if entry is None:
            entry = FunctionProfile(signature)
            self._functions[signature] = entry
        return entry

    def top_inclusive(self, count: int = 20) -> List[FunctionProfile]:
        """Hottest functions by inclusive CPU time."""
        return sorted(
            self._functions.values(),
            key=lambda entry: (-entry.inclusive, entry.signature),
        )[:count]

    def top_exclusive(self, count: int = 20) -> List[FunctionProfile]:
        """Hottest functions by exclusive CPU time."""
        return sorted(
            self._functions.values(),
            key=lambda entry: (-entry.exclusive, entry.signature),
        )[:count]

    def component_cpu_share(self, component_filter: ComponentFilter) -> float:
        """CPU share of a component set (exclusive time of matching leaves).

        This is the only impact number a CPU profiler can report for
        device drivers — the quantity the paper measures as IA_run.
        """
        if not self.total_cpu:
            return 0.0
        matched = sum(
            entry.exclusive
            for entry in self._functions.values()
            if component_filter.matches_signature(entry.signature)
        )
        return matched / self.total_cpu


def profile_corpus(streams: Iterable[TraceStream]) -> CallGraphProfile:
    """Profile every stream of a corpus."""
    profile = CallGraphProfile()
    for stream in streams:
        profile.add_stream(stream)
    return profile
