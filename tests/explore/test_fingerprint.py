"""Tests for wait-graph shape fingerprints."""

from repro.sim.explore.fingerprint import (
    FINGERPRINT_LENGTH,
    distinct_shapes,
    shape_fingerprint,
)
from repro.sim.explore.runner import ExploreCell, run_cell_streams
from repro.trace.events import Event, EventKind
from repro.waitgraph.builder import build_wait_graph
from repro.waitgraph.graph import WaitGraph


def wait(seq, resource, frame, timestamp=0, cost=100, tid=1):
    return Event(
        kind=EventKind.WAIT,
        stack=("App!Main", frame),
        timestamp=timestamp,
        cost=cost,
        tid=tid,
        seq=seq,
        resource=resource,
    )


def running(seq, timestamp=0, cost=100, tid=1):
    return Event(
        kind=EventKind.RUNNING,
        stack=("App!Main",),
        timestamp=timestamp,
        cost=cost,
        tid=tid,
        seq=seq,
    )


def hw(seq, resource, timestamp=0, cost=100, tid=9):
    return Event(
        kind=EventKind.HW_SERVICE,
        stack=(),
        timestamp=timestamp,
        cost=cost,
        tid=tid,
        seq=seq,
        resource=resource,
    )


def graph(roots, children=None):
    children = children or {}
    return WaitGraph(None, roots, children, {})


class TestCanonicalization:
    def test_fingerprint_is_fixed_length_hex(self):
        fingerprint = shape_fingerprint(
            graph([wait(0, "lock:L", "a.sys!F")])
        )
        assert len(fingerprint) == FINGERPRINT_LENGTH
        int(fingerprint, 16)  # raises if not hex

    def test_empty_graph_has_a_shape_too(self):
        assert shape_fingerprint(graph([])) == shape_fingerprint(
            graph([running(0)])
        )

    def test_durations_and_timestamps_do_not_matter(self):
        fast = graph([wait(0, "lock:L", "a.sys!F", timestamp=5, cost=10)])
        slow = graph([wait(3, "lock:L", "a.sys!F", timestamp=900, cost=10**6)])
        assert shape_fingerprint(fast) == shape_fingerprint(slow)

    def test_thread_identity_does_not_matter(self):
        first = graph([wait(0, "lock:L", "a.sys!F", tid=1)])
        second = graph([wait(0, "lock:L", "a.sys!F", tid=42)])
        assert shape_fingerprint(first) == shape_fingerprint(second)

    def test_sibling_order_does_not_matter(self):
        parent = wait(0, "lock:L", "a.sys!F")
        alpha = wait(1, "lock:A", "b.sys!G")
        beta = wait(2, "lock:B", "c.sys!H")
        forward = graph([parent], {0: [alpha, beta]})
        backward = graph([parent], {0: [beta, alpha]})
        assert shape_fingerprint(forward) == shape_fingerprint(backward)

    def test_resource_and_frame_both_matter(self):
        base = shape_fingerprint(graph([wait(0, "lock:L", "a.sys!F")]))
        other_resource = shape_fingerprint(
            graph([wait(0, "lock:M", "a.sys!F")])
        )
        other_frame = shape_fingerprint(graph([wait(0, "lock:L", "a.sys!G")]))
        assert base != other_resource
        assert base != other_frame

    def test_nesting_matters(self):
        outer = wait(0, "lock:L", "a.sys!F")
        inner = wait(1, "lock:M", "b.sys!G")
        nested = graph([outer], {0: [inner]})
        flat = graph([outer, inner])
        assert shape_fingerprint(nested) != shape_fingerprint(flat)

    def test_hardware_children_render_by_resource(self):
        parent = wait(0, "lock:L", "a.sys!F")
        disk = graph([parent], {0: [hw(1, "device:Disk")]})
        network = graph([parent], {0: [hw(1, "device:Network")]})
        assert shape_fingerprint(disk) != shape_fingerprint(network)

    def test_running_children_are_ignored(self):
        parent = wait(0, "lock:L", "a.sys!F")
        bare = graph([parent])
        with_running = graph([parent], {0: [running(1)]})
        assert shape_fingerprint(bare) == shape_fingerprint(with_running)

    def test_cyclic_graph_terminates(self):
        # Malformed input (a wait reachable from itself) must not recurse
        # forever; the fingerprint marks the back-edge and finishes.
        first = wait(0, "lock:L", "a.sys!F")
        second = wait(1, "lock:M", "b.sys!G")
        cyclic = graph([first], {0: [second], 1: [first]})
        assert len(shape_fingerprint(cyclic)) == FINGERPRINT_LENGTH

    def test_distinct_shapes_deduplicates(self):
        graphs = [
            graph([wait(0, "lock:L", "a.sys!F")]),
            graph([wait(5, "lock:L", "a.sys!F", cost=999)]),
            graph([wait(0, "lock:M", "a.sys!F")]),
        ]
        assert len(distinct_shapes(graphs)) == 2


class TestOnRealTraces:
    def test_fingerprints_are_deterministic_on_simulated_instances(self):
        cell = ExploreCell(
            scenario="LockConvoy",
            policy="fifo",
            seed=0,
            intensities=(0.5,),
            repeats=3,
            cores=8,
            think_median_us=20_000,
        )

        def fingerprints():
            return [
                shape_fingerprint(build_wait_graph(instance))
                for stream in run_cell_streams(cell)
                for instance in stream.instances
                if instance.scenario == "LockConvoy"
            ]

        first = fingerprints()
        assert first == fingerprints()
        assert all(len(f) == FINGERPRINT_LENGTH for f in first)
