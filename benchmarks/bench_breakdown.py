"""Per-module impact breakdown — the analyst's scoping step (§2.3).

"The analyst may conduct impact analysis on different scopes to realize
performance impacts of different components": this bench ranks every
driver module by wait impact in one pass and checks the expected
hierarchy — the storage stack (fs/se/stor) and network carry the bulk of
driver wait time, while peripherals (mouse, acpi) are negligible.
"""

from benchmarks.conftest import print_banner
from repro.impact.breakdown import breakdown_by_module
from repro.report.tables import Table, fmt_pct, fmt_ratio, fmt_us


def test_bench_module_breakdown(benchmark, bench_corpus):
    breakdown = benchmark.pedantic(
        lambda: breakdown_by_module(bench_corpus), rounds=1, iterations=1
    )

    print_banner("Per-module impact breakdown (one pass, all drivers)")
    table = Table([
        "Module", "wait", "distinct wait", "multiplicity", "run",
        "scenarios",
    ])
    for entry in breakdown.ranked()[:12]:
        table.add_row(
            entry.module,
            fmt_us(entry.wait_time),
            fmt_us(entry.distinct_wait_time),
            fmt_ratio(entry.wait_multiplicity),
            fmt_us(entry.run_time),
            len(entry.scenarios),
        )
    print(table.render())

    ranked = breakdown.ranked()
    by_name = {entry.module: entry for entry in ranked}
    top3 = {entry.module for entry in ranked[:3]}
    # The storage stack and/or network dominate driver wait time.
    assert top3 & {"fs.sys", "se.sys", "stor.sys", "net.sys"}
    # Peripherals are negligible next to the leader.
    leader = ranked[0]
    for peripheral in ("mouse.sys", "acpi.sys"):
        if peripheral in by_name:
            assert by_name[peripheral].wait_time < leader.wait_time / 10
    # Wait multiplicity above 1 for the shared-service-driven modules.
    assert any(entry.wait_multiplicity > 1.2 for entry in ranked[:5])
