"""Impact analysis: scope and measure component performance impact (§3)."""

from repro.impact.analyzer import ImpactAnalysis, collect_instances
from repro.impact.breakdown import (
    ImpactBreakdown,
    ModuleImpact,
    breakdown_by_module,
)
from repro.impact.metrics import ImpactAccumulator, ImpactResult

__all__ = [
    "ImpactAccumulator",
    "ImpactAnalysis",
    "ImpactBreakdown",
    "ImpactResult",
    "ModuleImpact",
    "breakdown_by_module",
    "collect_instances",
]
