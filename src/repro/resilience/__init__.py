"""Fault isolation for hostile corpora (``repro.resilience``).

Real-world trace corpora are hostile: captures get truncated mid-write,
files bit-rot, a single pathological trace can crash a worker process.
The paper's methodology only pays off if a 10,000-trace overnight run
survives all of that — one damaged stream must cost *that stream*, not
the run.

This package is the fault-isolation layer the pipeline and loaders lean
on:

* **policies** — the ``on_error`` ingestion policies (``strict`` /
  ``skip`` / ``salvage``) with their shared validators;
* **health** — :class:`RunHealth` and :class:`TraceFailure`, the
  structured accounting of every drop, salvage, retry and worker
  restart, surfaced by ``--verbose``, ``repro corpus doctor`` and the
  ``--health-json`` CI sidecar;
* **fuzz** — deterministic seeded corruptors and
  :func:`~repro.resilience.fuzz.fuzz_corpus`, the fault-injection
  harness that proves the recovery properties instead of asserting
  them.

The lenient loaders live with their formats
(``repro.trace.serialization``, ``repro.trace.binary``); the resilient
executor lives with the pipeline (``repro.pipeline.executor``).  See
``docs/RESILIENCE.md`` for the end-to-end story.
"""

from repro.resilience.fuzz import (
    CORRUPTORS,
    FuzzRecord,
    corrupt_bytes,
    corrupt_file,
    fuzz_corpus,
    resolve_corruptors,
)
from repro.resilience.health import (
    ON_ERROR_POLICIES,
    RunHealth,
    TraceFailure,
    failure_from_exception,
    validate_max_retries,
    validate_on_error,
)

__all__ = [
    "CORRUPTORS",
    "FuzzRecord",
    "ON_ERROR_POLICIES",
    "RunHealth",
    "TraceFailure",
    "corrupt_bytes",
    "corrupt_file",
    "failure_from_exception",
    "fuzz_corpus",
    "resolve_corruptors",
    "validate_max_retries",
    "validate_on_error",
]
