"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause
while still distinguishing the failing subsystem by subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class TraceError(ReproError):
    """A trace stream is malformed or an event violates the schema."""


class TraceValidationError(TraceError):
    """Raised by :mod:`repro.trace.validate` when invariants are violated."""


class SerializationError(TraceError):
    """A trace file could not be parsed or written."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No runnable process remains but blocked processes still exist."""


class WaitGraphError(ReproError):
    """Wait Graph construction or aggregation failed."""


class AnalysisError(ReproError):
    """Impact or causality analysis received invalid inputs."""


class ConfigError(ReproError):
    """A configuration object holds contradictory or out-of-range values."""


class StoreError(ReproError):
    """The artifact store directory is unusable (not a store, wrong layout)."""


class ResilienceError(ReproError):
    """The fault-isolation layer could not keep a corpus run alive.

    Base class for everything raised by ``repro.resilience``: salvage
    attempts that found nothing recoverable, worker crashes that
    exhausted their retry budget, and invalid ``on_error`` policies.
    """


class TraceSalvageError(ResilienceError):
    """A damaged trace could not be salvaged into a valid stream.

    Raised by the lenient loaders (``on_error="salvage"``) when no valid
    event prefix survives — the header is unreadable, or what remains
    after trimming fails :func:`repro.trace.validate.validate_stream`.
    Under corpus-level policies the trace is then skipped and recorded
    as a :class:`repro.resilience.TraceFailure` instead of aborting.
    """


class WorkerCrashError(ResilienceError):
    """A pipeline worker process died (non-zero exit, signal, OOM kill).

    Distinct from an exception *raised* inside a worker: the process
    vanished mid-chunk, taking its pool with it.  The resilient executor
    retries the chunk with backoff, bisects it to isolate the poison
    trace, and raises this only when recovery is impossible (or reports
    it inside a :class:`repro.resilience.TraceFailure` when the policy
    allows dropping the trace).
    """
