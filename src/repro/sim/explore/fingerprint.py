"""Wait-graph shape fingerprints for interleaving deduplication.

Exploration sweeps run the same workload under many scheduling policies
and seeds; most cells reproduce contention structure already seen.  The
*shape fingerprint* canonicalizes a wait graph down to what distinguishes
one contention pathology from another — the nesting of waits, what
resource each wait blocked on, and which component frame was waiting —
while discarding everything timing-dependent (durations, timestamps,
thread ids, sample counts).  Two interleavings with the same fingerprint
stalled on the same resources through the same code paths in the same
causal nesting; coverage is then "how many distinct shapes did the sweep
find", not "how many runs did it do".
"""

from __future__ import annotations

import hashlib
from typing import FrozenSet, Iterable, List

from repro.trace.events import Event, EventKind
from repro.waitgraph.graph import WaitGraph

#: Hex digest length of a shape fingerprint (64 bits of SHA-256).
FINGERPRINT_LENGTH = 16


def _wait_label(event: Event) -> str:
    """The shape-relevant identity of one wait: resource + waiting frame."""
    resource = event.resource or "?"
    frame = event.stack[-1] if event.stack else "?"
    return f"{resource}|{frame}"


def _render(graph: WaitGraph, event: Event, on_path: FrozenSet[int]) -> str:
    if event.kind is EventKind.HW_SERVICE:
        return f"H[{event.resource or '?'}]"
    if event.kind is not EventKind.WAIT:
        return ""  # RUNNING slices carry timing, not contention shape
    if event.seq in on_path:
        return "CYCLE"  # defensive: malformed graphs must still terminate
    nested = on_path | {event.seq}
    children = sorted(
        rendering
        for child in graph.children(event)
        if (rendering := _render(graph, child, nested))
    )
    return f"W[{_wait_label(event)}]({','.join(children)})"


def shape_fingerprint(graph: WaitGraph) -> str:
    """Canonical hash of a wait graph's contention shape.

    Sibling subtrees are rendered in sorted order, so graphs differing
    only in the arrival order of identical waiters collapse to one
    fingerprint; durations, timestamps and thread identity are excluded
    entirely.  A graph with no waits fingerprints the empty shape —
    "this interleaving had no traced contention" is itself a shape.
    """
    rendered = sorted(
        rendering
        for root in graph.roots
        if root.kind is EventKind.WAIT
        and (rendering := _render(graph, root, frozenset()))
    )
    canonical = ";".join(rendered)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return digest[:FINGERPRINT_LENGTH]


def distinct_shapes(graphs: Iterable[WaitGraph]) -> List[str]:
    """Sorted distinct shape fingerprints of a collection of wait graphs."""
    return sorted({shape_fingerprint(graph) for graph in graphs})
