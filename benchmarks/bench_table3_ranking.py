"""Table 3 — Execution-time coverage of top-ranked patterns.

Patterns are ranked by impact (average cost); the paper reports the
coverage of the top 10/20/30%.  Shape: the ranking is steeply
front-loaded — a small top fraction of patterns covers a large share of
the pattern-attributed time (paper averages: 47.9%, 80.1%, 95.9%).
"""

from benchmarks.conftest import print_banner
from repro.causality.ranking import coverage_curve, rank_patterns
from repro.report.tables import Table, fmt_pct

PAPER_ROWS = {
    "AppAccessControl": (4875, 0.553, 0.911, 0.983),
    "AppNonResponsive": (1158, 0.296, 0.392, 0.951),
    "BrowserFrameCreate": (1933, 0.516, 0.920, 0.968),
    "BrowserTabClose": (1075, 0.551, 0.900, 0.935),
    "BrowserTabCreate": (5045, 0.490, 0.875, 0.970),
    "BrowserTabSwitch": (1514, 0.423, 0.649, 0.980),
    "MenuDisplay": (1855, 0.645, 0.865, 0.919),
    "WebPageNavigation": (5122, 0.356, 0.893, 0.965),
}


def test_bench_table3_ranking(benchmark, bench_study):
    # Benchmark the ranking + coverage computation itself.
    all_patterns = [
        pattern
        for study in bench_study.scenarios.values()
        for pattern in study.report.patterns
    ]

    def rank_and_cover():
        ranked = rank_patterns(all_patterns)
        return coverage_curve(ranked)

    benchmark(rank_and_cover)

    print_banner("Table 3 - Coverage by ranking (paper values in brackets)")
    table = Table(["Scenario", "#Patterns", "top 10%", "top 20%", "top 30%"])
    front_loaded = []
    for name, study in sorted(bench_study.scenarios.items()):
        count = study.report.pattern_count
        top10, top20, top30 = study.ranking_coverage
        paper = PAPER_ROWS.get(name, (0, 0, 0, 0))
        table.add_row(
            name,
            f"{count} [{paper[0]}]",
            f"{fmt_pct(top10)} [{fmt_pct(paper[1])}]",
            f"{fmt_pct(top20)} [{fmt_pct(paper[2])}]",
            f"{fmt_pct(top30)} [{fmt_pct(paper[3])}]",
        )
        if count >= 10:
            front_loaded.append((top10, top30))
    print(table.render())

    # Shape: front-loaded ranking wherever there are enough patterns.
    assert front_loaded, "no scenario produced enough patterns to rank"
    average_top10 = sum(pair[0] for pair in front_loaded) / len(front_loaded)
    average_top30 = sum(pair[1] for pair in front_loaded) / len(front_loaded)
    assert average_top10 > 0.15, "top 10% must cover far more than 10%"
    assert average_top30 > 0.45, "top 30% must cover far more than 30%"
