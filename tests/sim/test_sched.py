"""Tests for pluggable scheduler policies (repro.sim.sched)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.sim.corpus import CorpusConfig, generate_stream
from repro.sim.engine import Engine
from repro.sim.locks import Lock
from repro.sim.machine import Machine, MachineConfig
from repro.sim.sched import (
    POLICY_NAMES,
    ConvoyPolicy,
    FifoPolicy,
    PctPolicy,
    RandomTiebreakPolicy,
    SchedulerPolicy,
    ShuffleWakeupPolicy,
    make_policy,
)
from repro.sim.tracer import Tracer
from repro.trace.events import EventKind
from repro.trace.serialization import dumps_stream


def run_machine(scheduler="fifo", scheduler_seed=None, seed=99):
    config = MachineConfig(
        seed=seed, cores=4, scheduler=scheduler, scheduler_seed=scheduler_seed
    )
    machine = Machine("sched-test", config)
    lock = Lock("Shared")

    def program(ctx):
        with ctx.frame("app.sys!Worker"):
            for _ in range(4):
                yield from ctx.acquire(lock)
                yield from ctx.compute(1_000)
                yield from ctx.release(lock)
                yield from ctx.compute(500)

    for index in range(4):
        machine.spawn(program, "P", f"T{index}", start_at=index * 100)
    return machine.run_and_trace()


class TestRegistry:
    def test_all_registered_policies_construct(self):
        for name in POLICY_NAMES:
            policy = make_policy(name, seed=3)
            assert isinstance(policy, SchedulerPolicy)
            assert policy.name == name

    def test_unknown_policy_raises_config_error(self):
        with pytest.raises(ConfigError, match="unknown scheduler policy"):
            make_policy("nosuch")

    def test_policy_params_validated(self):
        with pytest.raises(ConfigError, match="change_points"):
            PctPolicy(change_points=-1)
        with pytest.raises(ConfigError, match="delay_probability"):
            ConvoyPolicy(delay_probability=1.5)
        with pytest.raises(ConfigError, match="delay bounds"):
            ConvoyPolicy(delay_min_us=500, delay_max_us=100)

    def test_machine_config_rejects_unknown_scheduler(self):
        with pytest.raises(ConfigError, match="unknown scheduler policy"):
            MachineConfig(scheduler="nosuch").validate()


class TestFifoEquivalence:
    def test_default_engine_uses_fifo(self):
        engine = Engine()
        assert isinstance(engine.policy, FifoPolicy)

    def test_explicit_fifo_is_byte_identical_to_default(self):
        baseline = dumps_stream(run_machine())
        explicit = dumps_stream(run_machine(scheduler="fifo"))
        assert explicit == baseline

    def test_corpus_stream_unchanged_by_fifo_plumbing(self):
        config = CorpusConfig(streams=1, seed=11)
        first = dumps_stream(generate_stream(0, config))
        second = dumps_stream(generate_stream(0, config))
        assert first == second


class TestDeterminism:
    @pytest.mark.parametrize("policy", [p for p in POLICY_NAMES])
    def test_same_seed_same_trace(self, policy):
        first = dumps_stream(run_machine(scheduler=policy, scheduler_seed=5))
        second = dumps_stream(run_machine(scheduler=policy, scheduler_seed=5))
        assert first == second

    @pytest.mark.parametrize("policy", ["random", "pct", "shuffle"])
    def test_different_seed_different_schedule(self, policy):
        # Different policy seeds must be able to reach different
        # interleavings (this is the entire point of exploration).
        streams = {
            dumps_stream(run_machine(scheduler=policy, scheduler_seed=seed))
            for seed in range(4)
        }
        assert len(streams) > 1

    @settings(max_examples=10, deadline=None)
    @given(
        policy=st.sampled_from(POLICY_NAMES),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_any_policy_seed_pair_is_reproducible(self, policy, seed):
        first = dumps_stream(
            run_machine(scheduler=policy, scheduler_seed=seed)
        )
        second = dumps_stream(
            run_machine(scheduler=policy, scheduler_seed=seed)
        )
        assert first == second


class TestTieBreakStability:
    def test_heap_tiebreak_sequence_is_engine_global(self):
        # Two same-timestamp actions keep insertion order under FIFO:
        # the engine-global monotone sequence breaks the tie, and a
        # policy returning a constant key cannot reorder across it.
        engine = Engine(cores=2, tracer=Tracer("t"))
        order = []
        engine.at(10, lambda: order.append("first"))
        engine.at(10, lambda: order.append("second"))
        engine.at(5, lambda: order.append("early"))
        engine.run()
        assert order == ["early", "first", "second"]

    def test_policy_only_reorders_within_one_timestamp(self):
        # A randomizing policy may reorder same-timestamp actions, but
        # never across different timestamps.
        engine = Engine(
            cores=2, tracer=Tracer("t"),
            policy=RandomTiebreakPolicy(seed=7),
        )
        order = []
        engine.at(5, lambda: order.append("early"))
        engine.at(10, lambda: order.append("a"))
        engine.at(10, lambda: order.append("b"))
        engine.at(20, lambda: order.append("late"))
        engine.run()
        assert order[0] == "early"
        assert order[-1] == "late"
        assert sorted(order[1:3]) == ["a", "b"]


class TestPolicyMechanics:
    def test_fifo_pick_waiter_is_head_of_queue(self):
        policy = FifoPolicy()
        assert policy.pick_waiter("lock:L", ["a", "b", "c"]) == 0
        assert policy.wake_order(["a", "b"]) == [0, 1]
        assert policy.release_delay(Lock("L")) == 0

    def test_pct_demotes_at_change_points(self):
        policy = PctPolicy(seed=1, change_points=50)
        tids = [1, 2, 3]
        for _ in range(400):
            for tid in tids:
                policy.heap_key(0, tid)
        demoted = [
            tid for tid, pri in policy._priorities.items() if pri > 1.0
        ]
        assert demoted  # at least one change point fired

    def test_pct_unowned_actions_get_neutral_key(self):
        policy = PctPolicy(seed=1)
        assert policy.heap_key(0, None) == 0.5

    def test_convoy_delay_only_when_waiters_queue(self):
        policy = ConvoyPolicy(seed=2, delay_probability=1.0)
        lock = Lock("L")
        assert policy.release_delay(lock) == 0  # no waiters: no convoy
        lock.waiters.append(object())
        delay = policy.release_delay(lock)
        assert policy.delay_min_us <= delay <= policy.delay_max_us

    def test_shuffle_wake_order_is_permutation(self):
        policy = ShuffleWakeupPolicy(seed=3)
        order = policy.wake_order(list("abcdef"))
        assert sorted(order) == list(range(6))

    def test_seeded_policy_rng_is_hash_randomization_proof(self):
        # String-seeded Random must not depend on PYTHONHASHSEED.
        assert random.Random("sched/pct/1").random() == random.Random(
            "sched/pct/1"
        ).random()


class TestPolicyEffects:
    def test_convoy_policy_extends_waits(self):
        fifo = run_machine(scheduler="fifo")
        convoy_cfg = MachineConfig(
            seed=99, cores=4, scheduler="convoy", scheduler_seed=1
        )
        # Re-run the same workload under convoy delays: total wait time
        # must grow (every injected handoff delay extends a wait).
        machine = Machine("sched-test", convoy_cfg)
        lock = Lock("Shared")

        def program(ctx):
            with ctx.frame("app.sys!Worker"):
                for _ in range(4):
                    yield from ctx.acquire(lock)
                    yield from ctx.compute(1_000)
                    yield from ctx.release(lock)
                    yield from ctx.compute(500)

        for index in range(4):
            machine.spawn(program, "P", f"T{index}", start_at=index * 100)
        convoy = machine.run_and_trace()

        def total_wait(stream):
            return sum(
                event.cost
                for event in stream.events_of_kind(EventKind.WAIT)
            )

        assert total_wait(convoy) > total_wait(fifo)
