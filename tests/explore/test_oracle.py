"""Oracle regression tests: mining must rediscover each planted cause.

These are the end-to-end checks of the analysis stack — wait-graph
construction, impact metrics and contrast-pattern mining all have to
surface the labeled pathology.  Parameters are scaled down from the CI
oracle run but kept large enough that the fast/slow contrast is real.
"""

import pytest

from repro.errors import ConfigError
from repro.sim.explore.oracle import (
    DEFAULT_ORACLE_POLICIES,
    negative_control,
    verify_pathology,
)
from repro.sim.workloads.registry import PATHOLOGY_SCENARIO_NAMES

ORACLE_PARAMS = dict(
    seeds=(0,),
    intensities=(0.15, 0.85),
    repeats=4,
    top_k=5,
)


@pytest.mark.parametrize("scenario", PATHOLOGY_SCENARIO_NAMES)
def test_mining_rediscovers_planted_cause(scenario):
    verdict = verify_pathology(scenario, **ORACLE_PARAMS)
    assert verdict.passed, verdict.summary()
    assert verdict.rank is not None and verdict.rank <= 5
    assert verdict.graph_ok  # wait graphs reach the planted resource
    assert verdict.impact_ok  # planted cost concentrates in slow class


def test_negative_control_finds_nothing_planted():
    assert negative_control(
        scenario="FileCopy", seeds=(0,), intensities=(0.2, 0.8), repeats=4
    )


def test_oracle_rejects_unplanted_scenario():
    with pytest.raises(ConfigError, match="plants no signatures"):
        verify_pathology("FileCopy")


def test_every_pathology_has_default_policies():
    assert set(DEFAULT_ORACLE_POLICIES) == set(PATHOLOGY_SCENARIO_NAMES)
    for policies in DEFAULT_ORACLE_POLICIES.values():
        assert "fifo" in policies  # baseline always in the corpus
