"""Tests for IPC worker services."""

from repro.sim.engine import Engine
from repro.sim.machine import Machine, MachineConfig
from repro.sim.services import ScenarioWorkerService, WorkerService
from repro.sim.tracer import Tracer
from repro.trace.events import EventKind


def make_service(workers=1):
    tracer = Tracer("t")
    engine = Engine(tracer=tracer)
    service = WorkerService(engine, "Svc", workers=workers)
    return engine, tracer, service


class TestWorkerService:
    def test_submit_blocks_until_handled(self):
        engine, tracer, service = make_service()
        done_at = []

        def request(ctx):
            yield from ctx.compute(5_000)

        def client(ctx):
            with ctx.frame("App!Main"):
                yield from service.submit(ctx, request, "App!WaitForSvc")
                done_at.append(ctx.now)

        engine.spawn(client, "App", "C")
        engine.run(until=100_000)
        assert done_at == [5_000]
        assert service.completed == 1

    def test_single_worker_serializes(self):
        engine, _, service = make_service(workers=1)
        done_at = {}

        def request(ctx):
            yield from ctx.compute(3_000)

        def client(name):
            def inner(ctx):
                with ctx.frame("App!Main"):
                    yield from service.submit(ctx, request, "App!Wait")
                    done_at[name] = ctx.now

            return inner

        engine.spawn(client("a"), "App", "A")
        engine.spawn(client("b"), "App", "B")
        engine.run(until=100_000)
        assert sorted(done_at.values()) == [3_000, 6_000]

    def test_two_workers_parallel(self):
        engine, _, service = make_service(workers=2)
        done_at = []

        def request(ctx):
            yield from ctx.compute(3_000)

        def client(ctx):
            with ctx.frame("App!Main"):
                yield from service.submit(ctx, request, "App!Wait")
                done_at.append(ctx.now)

        engine.spawn(client, "App", "A")
        engine.spawn(client, "App", "B")
        engine.run(until=100_000)
        assert done_at == [3_000, 3_000]

    def test_queued_request_wait_covers_predecessor(self):
        """The second client's wait window covers the first request's work
        — the sharing mechanism behind D_wait / D_waitdist > 1."""
        engine, tracer, service = make_service(workers=1)

        def request(ctx):
            with ctx.frame("fs.sys!Read"):
                yield from ctx.compute(4_000)

        def client(ctx):
            with ctx.frame("App!Main"):
                yield from service.submit(ctx, request, "App!Wait")

        engine.spawn(client, "App", "A")
        engine.spawn(client, "App", "B", start_at=100)
        engine.run(until=100_000)
        stream = tracer.finalize()
        waits = stream.events_of_kind(EventKind.WAIT)
        ipc_waits = [w for w in waits if "App!Wait" in w.stack]
        assert len(ipc_waits) == 2
        longest = max(ipc_waits, key=lambda w: w.cost)
        # B waited for its own request plus A's in-flight request.
        assert longest.cost > 4_000

    def test_post_only_does_not_block(self):
        engine, _, service = make_service()
        times = []

        def request(ctx):
            yield from ctx.compute(50_000)

        def client(ctx):
            with ctx.frame("App!Main"):
                yield from service.post_only(ctx, request)
                times.append(ctx.now)

        engine.spawn(client, "App", "C")
        engine.run(until=200_000)
        assert times == [0]
        assert service.completed == 1


class TestScenarioWorkerService:
    def test_handled_requests_become_instances(self):
        tracer = Tracer("t")
        engine = Engine(tracer=tracer)
        service = ScenarioWorkerService(
            engine, "Browser", scenario="BrowserFrameCreate", workers=1
        )

        def request(ctx):
            yield from ctx.compute(2_000)

        def client(ctx):
            with ctx.frame("App!Main"):
                yield from service.submit(ctx, request, "App!Wait")
                yield from service.submit(ctx, request, "App!Wait")

        engine.spawn(client, "App", "C")
        engine.run(until=100_000)
        stream = tracer.finalize()
        instances = [
            instance
            for instance in stream.instances
            if instance.scenario == "BrowserFrameCreate"
        ]
        assert len(instances) == 2
        assert all(instance.duration == 2_000 for instance in instances)
        # The instance's initiating thread is the worker, not the client.
        worker_info = stream.thread_info(instances[0].tid)
        assert worker_info.process == "Browser"


class TestInstanceOverlap:
    def test_nested_instance_waits_shared_between_graphs(self):
        """A scenario service's instance overlaps the triggering thread's
        own instance; the inner instance's driver waits appear in both
        Wait Graphs (the §2.1 overlap / D_wait sharing mechanism)."""
        from repro.sim.machine import Machine, MachineConfig
        from repro.trace.events import EventKind as EK
        from repro.trace.signatures import ALL_DRIVERS
        from repro.waitgraph.builder import build_wait_graph

        machine = Machine("nest", MachineConfig(seed=8))
        service = ScenarioWorkerService(
            machine.engine, "Browser", scenario="Inner", workers=1
        )

        def inner_request(ctx):
            with ctx.frame("kernel!OpenFile"):
                yield from machine.fs.read_file(ctx, 1, cached=False)

        def outer_program(ctx):
            with ctx.scenario("Outer"):
                with ctx.frame("App!Outer"):
                    yield from service.submit(ctx, inner_request, "App!Wait")

        machine.spawn(outer_program, "App", "Main")
        stream = machine.run_and_trace(until=60_000_000)
        by_name = {i.scenario: i for i in stream.instances}
        assert {"Inner", "Outer"} <= set(by_name)
        # The instances overlap in time.
        inner, outer = by_name["Inner"], by_name["Outer"]
        assert inner.t0 < outer.t1 and outer.t0 < inner.t1

        def driver_wait_seqs(instance):
            graph = build_wait_graph(instance)
            return {
                event.seq
                for event in graph.wait_events()
                if ALL_DRIVERS.matches_stack(event.stack)
            }

        shared = driver_wait_seqs(inner) & driver_wait_seqs(outer)
        assert shared, "the inner driver waits must appear in both graphs"


class TestMachineServices:
    def test_machine_has_standard_services(self):
        machine = Machine("test", MachineConfig(seed=1))
        assert machine.security_service.mailbox.name == "SecuritySvc/requests"
        assert machine.render_service is not None
        assert machine.browser_io_service is not None
        assert machine.fetch_service is not None
