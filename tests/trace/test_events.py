"""Tests for the Event schema and its invariants."""

import pytest

from repro.errors import TraceError
from repro.trace.events import Event, EventKind
from tests.conftest import make_event


class TestEventValidation:
    def test_negative_timestamp_rejected(self):
        with pytest.raises(TraceError):
            make_event(timestamp=-1)

    def test_negative_cost_rejected(self):
        with pytest.raises(TraceError):
            make_event(cost=-1)

    def test_empty_stack_rejected_for_running(self):
        with pytest.raises(TraceError):
            make_event(EventKind.RUNNING, stack=())

    def test_empty_stack_allowed_for_hw_service(self):
        event = make_event(EventKind.HW_SERVICE, stack=())
        assert event.leaf == ""

    def test_wtid_only_on_unwait(self):
        with pytest.raises(TraceError):
            make_event(EventKind.RUNNING, wtid=2)

    def test_unwait_requires_wtid(self):
        with pytest.raises(TraceError):
            make_event(EventKind.UNWAIT)

    def test_valid_unwait(self):
        event = make_event(EventKind.UNWAIT, wtid=7, cost=0)
        assert event.wtid == 7


class TestEventProperties:
    def test_end(self):
        event = make_event(timestamp=100, cost=50)
        assert event.end == 150

    def test_leaf(self):
        event = make_event(stack=("a!b", "c!d"))
        assert event.leaf == "c!d"

    def test_overlaps_inside(self):
        event = make_event(timestamp=100, cost=100)
        assert event.overlaps(150, 160)

    def test_overlaps_partial(self):
        event = make_event(timestamp=100, cost=100)
        assert event.overlaps(0, 101)
        assert event.overlaps(199, 500)

    def test_overlaps_disjoint(self):
        event = make_event(timestamp=100, cost=100)
        assert not event.overlaps(0, 100)      # ends exactly at event start
        assert not event.overlaps(200, 300)    # starts exactly at event end

    def test_key_includes_stream_and_seq(self):
        event = make_event(seq=5)
        assert event.key("s1") == ("s1", 5)

    def test_resource_not_compared(self):
        a = make_event(resource="lock:x")
        b = make_event(resource="lock:y")
        assert a == b

    def test_frozen(self):
        event = make_event()
        with pytest.raises(AttributeError):
            event.cost = 5  # type: ignore[misc]
