"""Table 2 — Impactful-time and total-time coverages.

For each scenario: the slow class's driver-cost share, the ITC (coverage
of automated-rule high-impact patterns) and the TTC (coverage of all
contrast patterns).  Shape: 0 <= ITC <= TTC <= driver share of the class,
with TTC a substantial fraction of driver time (paper averages: driver
cost 54.2%, ITC 24.9%, TTC 36.0%).
"""

from benchmarks.conftest import print_banner
from repro.causality.analyzer import CausalityAnalysis
from repro.evaluation.study import group_by_scenario
from repro.report.tables import Table, fmt_pct
from repro.sim.workloads.registry import scenario_spec

PAPER_ROWS = {
    "AppAccessControl": (0.664, 0.189, 0.355),
    "AppNonResponsive": (0.646, 0.410, 0.487),
    "BrowserFrameCreate": (0.765, 0.241, 0.354),
    "BrowserTabClose": (0.219, 0.271, 0.380),
    "BrowserTabCreate": (0.513, 0.231, 0.353),
    "BrowserTabSwitch": (0.410, 0.078, 0.175),
    "MenuDisplay": (0.770, 0.392, 0.492),
    "WebPageNavigation": (0.347, 0.184, 0.285),
}


def test_bench_table2_coverage(benchmark, bench_corpus, bench_study):
    # Benchmark one representative causality analysis (the full study is
    # computed once in the session fixture).
    grouped = group_by_scenario(bench_corpus)
    name, instances = max(grouped.items(), key=lambda kv: len(kv[1]))
    spec = scenario_spec(name)

    def analyze_one():
        return CausalityAnalysis(["*.sys"]).analyze(
            instances, spec.t_fast, spec.t_slow, scenario=name
        )

    benchmark.pedantic(analyze_one, rounds=1, iterations=1)

    print_banner("Table 2 - Coverages (paper values in brackets)")
    table = Table(["Scenario", "Driver Cost", "ITC", "TTC", "non-opt hw"])
    itc_values, ttc_values = [], []
    for scenario_name, study in sorted(bench_study.scenarios.items()):
        coverage = study.coverage
        paper = PAPER_ROWS.get(scenario_name, (0, 0, 0))
        table.add_row(
            scenario_name,
            f"{fmt_pct(coverage.driver_cost_share)} [{fmt_pct(paper[0])}]",
            f"{fmt_pct(coverage.itc)} [{fmt_pct(paper[1])}]",
            f"{fmt_pct(coverage.ttc)} [{fmt_pct(paper[2])}]",
            fmt_pct(coverage.non_optimizable_share),
        )
        itc_values.append(coverage.itc)
        ttc_values.append(coverage.ttc)
    print(table.render())

    # Shape: ITC never exceeds TTC; patterns explain a real share of
    # driver time in most scenarios.
    for itc, ttc in zip(itc_values, ttc_values):
        assert itc <= ttc + 1e-9
    assert sum(ttc_values) / len(ttc_values) > 0.05
