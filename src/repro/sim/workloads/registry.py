"""Registry of the eight evaluation scenarios (paper Table 1).

Maps scenario names to workload classes and exposes the per-scenario
performance thresholds used by contrast classification.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.errors import ConfigError
from repro.sim.workloads.base import ScenarioSpec, Workload
from repro.sim.workloads.browser import (
    BrowserFrameCreate,
    BrowserTabClose,
    BrowserTabCreate,
    BrowserTabSwitch,
    WebPageNavigation,
)
from repro.sim.workloads.extra import EXTRA_WORKLOAD_CLASSES
from repro.sim.workloads.menu import MenuDisplay
from repro.sim.workloads.pathology import PATHOLOGY_WORKLOAD_CLASSES
from repro.sim.workloads.responsiveness import AppNonResponsive
from repro.sim.workloads.security import AppAccessControl

#: The eight selected scenarios, in the paper's Table 1 order.
WORKLOAD_CLASSES: List[Type[Workload]] = [
    AppAccessControl,
    AppNonResponsive,
    BrowserFrameCreate,
    BrowserTabClose,
    BrowserTabCreate,
    BrowserTabSwitch,
    MenuDisplay,
    WebPageNavigation,
]

#: Additional scenarios usable in corpora but outside the Table 1–4
#: evaluation (the paper selected 8 of its 1,364 scenarios).
EXTRA_SCENARIO_NAMES: List[str] = [
    cls.spec.name for cls in EXTRA_WORKLOAD_CLASSES
]

#: Injected contention pathologies with labeled causes, used by the
#: schedule-exploration oracle harness (:mod:`repro.sim.explore`).
PATHOLOGY_SCENARIO_NAMES: List[str] = [
    cls.spec.name for cls in PATHOLOGY_WORKLOAD_CLASSES
]

WORKLOADS_BY_NAME: Dict[str, Type[Workload]] = {
    cls.spec.name: cls
    for cls in [
        *WORKLOAD_CLASSES,
        *EXTRA_WORKLOAD_CLASSES,
        *PATHOLOGY_WORKLOAD_CLASSES,
    ]
}

SCENARIO_SPECS: Dict[str, ScenarioSpec] = {
    cls.spec.name: cls.spec
    for cls in [
        *WORKLOAD_CLASSES,
        *EXTRA_WORKLOAD_CLASSES,
        *PATHOLOGY_WORKLOAD_CLASSES,
    ]
}

SCENARIO_NAMES: List[str] = [cls.spec.name for cls in WORKLOAD_CLASSES]


def workload_class(name: str) -> Type[Workload]:
    """Look up a workload class by scenario name."""
    try:
        return WORKLOADS_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(WORKLOADS_BY_NAME))
        raise ConfigError(f"unknown scenario {name!r}; known: {known}") from None


def scenario_spec(name: str) -> ScenarioSpec:
    """Look up a scenario's performance specification by name."""
    try:
        return SCENARIO_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_SPECS))
        raise ConfigError(f"unknown scenario {name!r}; known: {known}") from None
