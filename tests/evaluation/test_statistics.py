"""Tests for corpus summary statistics."""

from repro.evaluation.statistics import (
    ScenarioDurationStats,
    percentile,
    summarize_corpus,
)


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0

    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 0.5) == 3

    def test_extremes(self):
        values = list(range(100))
        assert percentile(values, 0.0) == 0
        assert percentile(values, 0.99) == 99


class TestScenarioDurationStats:
    def test_from_durations(self):
        stats = ScenarioDurationStats.from_durations("S", [10, 20, 30, 40])
        assert stats.count == 4
        assert stats.p50 == 30
        assert stats.maximum == 40

    def test_empty(self):
        stats = ScenarioDurationStats.from_durations("S", [])
        assert stats.count == 0
        assert stats.maximum == 0


class TestSummarize:
    def test_on_corpus(self, small_corpus):
        stats = summarize_corpus(small_corpus)
        assert stats.streams == len(small_corpus)
        assert stats.events == sum(len(s.events) for s in small_corpus)
        assert stats.instances == sum(
            len(s.instances) for s in small_corpus
        )
        assert stats.instances_per_stream > 1
        assert stats.event_kinds["running"] > 0
        assert stats.event_kinds["wait"] == stats.event_kinds["unwait"]
        assert "Browser" in stats.processes or "App" in stats.processes
        for duration_stats in stats.scenario_durations.values():
            assert duration_stats.p10 <= duration_stats.p50 <= duration_stats.p90
            assert duration_stats.p90 <= duration_stats.maximum

    def test_empty_corpus(self):
        stats = summarize_corpus([])
        assert stats.streams == 0
        assert stats.instances_per_stream == 0.0
