"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def corpus_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli-corpus")
    code = main([
        "generate", "--streams", "3", "--seed", "11", "--out", str(path),
    ])
    assert code == 0
    return path


class TestGenerateAndValidate:
    def test_generate_writes_jsonl(self, corpus_dir):
        files = list(corpus_dir.glob("*.jsonl"))
        assert len(files) == 3

    def test_validate_passes(self, corpus_dir, capsys):
        assert main(["validate", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert out.count("ok") >= 3

    def test_validate_single_file(self, corpus_dir):
        first = sorted(corpus_dir.glob("*.jsonl"))[0]
        assert main(["validate", str(first)]) == 0

    def test_missing_traces_errors(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["validate", str(empty)]) == 2


class TestImpact:
    def test_impact_prints_metrics(self, corpus_dir, capsys):
        assert main(["impact", str(corpus_dir)]) == 0
        out = capsys.readouterr().out
        assert "IA_wait" in out
        assert "D_wait/D_waitdist" in out

    def test_impact_scenario_scope(self, corpus_dir, capsys):
        assert main([
            "impact", str(corpus_dir), "--scenario", "WebPageNavigation",
        ]) == 0

    def test_impact_custom_components(self, corpus_dir, capsys):
        assert main([
            "impact", str(corpus_dir), "--components", "fv.sys", "fs.sys",
        ]) == 0
        assert "fv.sys" in capsys.readouterr().out


class TestCausality:
    def test_known_scenario_uses_registry_thresholds(self, corpus_dir, capsys):
        code = main([
            "causality", str(corpus_dir),
            "--scenario", "WebPageNavigation", "--top", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wait signatures" in out or "0 contrast patterns" in out

    def test_unknown_scenario_without_thresholds(self, corpus_dir, capsys):
        code = main([
            "causality", str(corpus_dir), "--scenario", "NoSuchScenario",
        ])
        assert code == 1

    def test_filter_by_design_flag(self, corpus_dir, capsys):
        code = main([
            "causality", str(corpus_dir),
            "--scenario", "WebPageNavigation", "--filter-by-design",
        ])
        assert code == 0
        assert "by-design filtering" in capsys.readouterr().out


class TestThresholds:
    def test_thresholds_table(self, corpus_dir, capsys):
        code = main(["thresholds", str(corpus_dir), "--min-samples", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "T_fast" in out

    def test_thresholds_no_data(self, corpus_dir, capsys):
        code = main([
            "thresholds", str(corpus_dir), "--min-samples", "99999",
        ])
        assert code == 1


class TestStudy:
    def test_study_with_markdown(self, corpus_dir, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main([
            "study", str(corpus_dir), "--markdown", str(out_file),
        ])
        assert code == 0
        assert out_file.read_text().startswith("#")
        out = capsys.readouterr().out
        assert "Tables 1-3 combined" in out


class TestCompare:
    def test_compare_same_corpus_is_stable(self, corpus_dir, capsys):
        code = main([
            "compare", str(corpus_dir), str(corpus_dir),
            "--scenario", "WebPageNavigation",
        ])
        # Identical corpora: no regressions -> exit 0.
        assert code == 0
        out = capsys.readouterr().out
        assert "Pattern diff" in out

    def test_compare_unknown_scenario_errors(self, corpus_dir):
        assert main([
            "compare", str(corpus_dir), str(corpus_dir),
            "--scenario", "NoSuch",
        ]) == 2


class TestPipelineOptionValidation:
    @pytest.mark.parametrize("command", ["impact", "causality", "study"])
    def test_workers_below_one_rejected(self, corpus_dir, command, capsys):
        argv = [command, str(corpus_dir), "--workers", "0"]
        if command == "causality":
            argv += ["--scenario", "WebPageNavigation"]
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "--workers must be >= 1" in err

    def test_negative_workers_rejected(self, corpus_dir, capsys):
        assert main(["study", str(corpus_dir), "--workers", "-3"]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_chunk_size_below_one_rejected(self, corpus_dir, capsys):
        assert main([
            "study", str(corpus_dir), "--workers", "2", "--chunk-size", "0",
        ]) == 2
        assert "--chunk-size must be >= 1" in capsys.readouterr().err

    def test_generate_workers_validated(self, tmp_path, capsys):
        assert main([
            "generate", "--streams", "2", "--out", str(tmp_path / "c"),
            "--workers", "0",
        ]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_prewarm_workers_validated(self, corpus_dir, tmp_path, capsys):
        assert main([
            "store", "prewarm", str(tmp_path / "store"), str(corpus_dir),
            "--workers", "0",
        ]) == 2
        assert "--workers must be >= 1" in capsys.readouterr().err


class TestResilienceOptionValidation:
    @pytest.mark.parametrize("command", ["impact", "causality", "study"])
    def test_unknown_on_error_rejected(self, corpus_dir, command, capsys):
        argv = [command, str(corpus_dir), "--on-error", "lenient"]
        if command == "causality":
            argv += ["--scenario", "WebPageNavigation"]
        assert main(argv) == 2
        assert "--on-error must be one of" in capsys.readouterr().err

    def test_negative_max_retries_rejected(self, corpus_dir, capsys):
        assert main([
            "study", str(corpus_dir), "--max-retries", "-1",
        ]) == 2
        assert "--max-retries must be >= 0" in capsys.readouterr().err


class TestResilienceCli:
    @pytest.fixture()
    def damaged_corpus(self, corpus_dir, tmp_path):
        import shutil

        directory = tmp_path / "damaged"
        shutil.copytree(corpus_dir, directory)
        victim = sorted(directory.glob("*.jsonl"))[0]
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size // 2])
        return directory

    def test_skip_matches_survivor_study(self, damaged_corpus, capsys):
        broken = sorted(damaged_corpus.glob("*.jsonl"))[0]
        broken_name = broken.name
        broken.rename(broken.with_suffix(".bad"))
        assert main(["study", str(damaged_corpus)]) == 0
        survivors_only = capsys.readouterr().out
        broken.with_suffix(".bad").rename(broken)

        assert main([
            "study", str(damaged_corpus), "--on-error", "skip",
        ]) == 0
        assert capsys.readouterr().out == survivors_only

    def test_health_json_sidecar_written(self, damaged_corpus, tmp_path, capsys):
        import json

        sidecar = tmp_path / "health.json"
        assert main([
            "study", str(damaged_corpus),
            "--on-error", "skip", "--health-json", str(sidecar),
        ]) == 0
        capsys.readouterr()
        data = json.loads(sidecar.read_text())
        assert data["analyzed"] == 2
        assert data["skipped"] == 1
        assert data["failures"][0]["action"] == "skipped"

    def test_verbose_prints_health_summary(self, damaged_corpus, capsys):
        assert main([
            "study", str(damaged_corpus), "--on-error", "salvage", "--verbose",
        ]) == 0
        err = capsys.readouterr().err
        assert "run health:" in err

    def test_strict_run_still_fails_loudly(self, damaged_corpus, capsys):
        assert main(["study", str(damaged_corpus)]) == 2

    def test_doctor_triages_and_exits_by_policy(self, damaged_corpus, capsys):
        code = main(["corpus", "doctor", str(damaged_corpus)])
        out = capsys.readouterr().out
        # Default policy is salvage: the truncated file either recovers
        # (exit 0, "salvaged") or is reported broken (exit 1).
        assert ("salvaged" in out) == (code == 0)
        assert out.count("ok") >= 2

        assert main([
            "corpus", "doctor", str(damaged_corpus), "--on-error", "strict",
        ]) == 1
        assert "BROKEN" in capsys.readouterr().out

    def test_doctor_flags_duplicate_stems(self, corpus_dir, tmp_path, capsys):
        import shutil

        directory = tmp_path / "dupes"
        shutil.copytree(corpus_dir, directory)
        first = sorted(directory.glob("*.jsonl"))[0]
        assert main([
            "trace", "convert", str(first), str(first.with_suffix(".rtb")),
        ]) == 0
        capsys.readouterr()
        assert main(["corpus", "doctor", str(directory)]) == 1
        assert "DUPLICATE" in capsys.readouterr().out

    def test_doctor_writes_health_json(self, damaged_corpus, tmp_path, capsys):
        import json

        sidecar = tmp_path / "doctor.json"
        main([
            "corpus", "doctor", str(damaged_corpus),
            "--health-json", str(sidecar),
        ])
        capsys.readouterr()
        data = json.loads(sidecar.read_text())
        assert data["analyzed"] + data["skipped"] == 3

    def test_fuzz_is_deterministic_and_reported(
        self, corpus_dir, tmp_path, capsys
    ):
        import shutil

        first = tmp_path / "fuzz-a"
        second = tmp_path / "fuzz-b"
        shutil.copytree(corpus_dir, first)
        shutil.copytree(corpus_dir, second)
        assert main(["corpus", "fuzz", str(first), "--seed", "77"]) == 0
        out = capsys.readouterr().out
        assert "corrupted" in out
        assert main(["corpus", "fuzz", str(second), "--seed", "77"]) == 0
        capsys.readouterr()
        for name in sorted(p.name for p in first.glob("*.jsonl")):
            assert (first / name).read_bytes() == (second / name).read_bytes()

    def test_fuzz_rejects_unknown_corruptor(self, corpus_dir, tmp_path, capsys):
        import shutil

        directory = tmp_path / "fuzz-bad"
        shutil.copytree(corpus_dir, directory)
        assert main([
            "corpus", "fuzz", str(directory), "--seed", "1",
            "--corruptor", "rot13",
        ]) == 2
        assert "--corruptor must be one of" in capsys.readouterr().err

    def test_fuzz_then_skip_study_never_crashes(self, corpus_dir, tmp_path, capsys):
        import shutil

        directory = tmp_path / "fuzz-study"
        shutil.copytree(corpus_dir, directory)
        assert main([
            "corpus", "fuzz", str(directory), "--seed", "13",
            "--fraction", "0.5",
        ]) == 0
        capsys.readouterr()
        code = main(["study", str(directory), "--on-error", "skip"])
        assert code == 0


class TestStoreCli:
    def test_store_runs_are_byte_identical_and_reported(
        self, corpus_dir, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert main(["study", str(corpus_dir)]) == 0
        baseline = capsys.readouterr().out
        assert main(["study", str(corpus_dir), "--store", str(store)]) == 0
        cold = capsys.readouterr()
        assert main(["study", str(corpus_dir), "--store", str(store)]) == 0
        warm = capsys.readouterr()
        assert cold.out == baseline
        assert warm.out == baseline
        assert "0 hits, 3 misses" in cold.err
        assert "3 hits, 0 misses" in warm.err

    def test_impact_and_causality_accept_store(
        self, corpus_dir, tmp_path, capsys
    ):
        store = tmp_path / "store"
        assert main([
            "impact", str(corpus_dir), "--store", str(store),
        ]) == 0
        assert "3 misses" in capsys.readouterr().err
        assert main([
            "causality", str(corpus_dir),
            "--scenario", "WebPageNavigation", "--store", str(store),
        ]) == 0

    def test_stats_verify_gc(self, corpus_dir, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["study", str(corpus_dir), "--store", str(store)]) == 0
        capsys.readouterr()

        assert main(["store", "stats", str(store)]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "quarantined" in out

        assert main(["store", "verify", str(store), "--deep"]) == 0
        assert "0 corrupt" in capsys.readouterr().out

        assert main(["store", "gc", str(store), "--corpus", str(corpus_dir)]) == 0
        assert "kept 3" in capsys.readouterr().out

    def test_verify_flags_corruption(self, corpus_dir, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(["study", str(corpus_dir), "--store", str(store)]) == 0
        capsys.readouterr()
        victim = next((store / "objects").rglob("*.partial"))
        victim.write_bytes(b"rotten")
        assert main(["store", "verify", str(store)]) == 1
        assert "1 corrupt" in capsys.readouterr().out
        # The bad entry is quarantined; a re-verify is clean.
        assert main(["store", "verify", str(store)]) == 0

    def test_prewarm_then_study_all_hits(self, corpus_dir, tmp_path, capsys):
        store = tmp_path / "store"
        assert main([
            "store", "prewarm", str(store), str(corpus_dir), "--workers", "2",
        ]) == 0
        assert "3 streams computed" in capsys.readouterr().out
        assert main(["study", str(corpus_dir), "--store", str(store)]) == 0
        assert "3 hits, 0 misses" in capsys.readouterr().err


class TestTraceUtilities:
    def test_generate_rtb_corpus(self, tmp_path, capsys):
        out_dir = tmp_path / "rtb-corpus"
        assert main([
            "generate", "--streams", "2", "--seed", "11",
            "--out", str(out_dir), "--format", "rtb",
        ]) == 0
        assert "2 rtb streams" in capsys.readouterr().out
        assert len(list(out_dir.glob("*.rtb"))) == 2
        assert not list(out_dir.glob("*.jsonl"))

    def test_convert_corpus_directory_and_analyze(
        self, corpus_dir, tmp_path, capsys
    ):
        converted = tmp_path / "rtb"
        assert main([
            "trace", "convert", str(corpus_dir), str(converted),
        ]) == 0
        assert "converted 3 streams to rtb" in capsys.readouterr().out
        assert len(list(converted.glob("*.rtb"))) == 3
        assert main(["impact", str(converted)]) == 0
        rtb_out = capsys.readouterr().out
        assert main(["impact", str(corpus_dir)]) == 0
        assert capsys.readouterr().out == rtb_out

    def test_convert_single_file_round_trip(self, corpus_dir, tmp_path, capsys):
        from repro.trace import load_stream

        source = sorted(corpus_dir.glob("*.jsonl"))[0]
        rtb = tmp_path / "one.rtb"
        back = tmp_path / "back.jsonl"
        assert main(["trace", "convert", str(source), str(rtb)]) == 0
        assert main(["trace", "convert", str(rtb), str(back)]) == 0
        capsys.readouterr()
        assert back.read_bytes() == source.read_bytes()
        assert load_stream(rtb).events == load_stream(source).events

    def test_convert_needs_inferable_format(self, corpus_dir, tmp_path):
        source = sorted(corpus_dir.glob("*.jsonl"))[0]
        assert main([
            "trace", "convert", str(source), str(tmp_path / "out.bin"),
        ]) == 2

    def test_info_reports_format_and_hash(self, corpus_dir, tmp_path, capsys):
        source = sorted(corpus_dir.glob("*.jsonl"))[0]
        rtb = tmp_path / "one.rtb"
        assert main(["trace", "convert", str(source), str(rtb)]) == 0
        capsys.readouterr()
        assert main(["trace", "info", str(rtb)]) == 0
        out = capsys.readouterr().out
        assert "rtb" in out
        assert "content hash" in out
        assert main(["trace", "info", str(source)]) == 0
        assert "jsonl" in capsys.readouterr().out


class TestVerboseTiming:
    def test_verbose_prints_map_phase_summary(self, corpus_dir, capsys):
        assert main(["impact", str(corpus_dir), "--verbose"]) == 0
        captured = capsys.readouterr()
        assert "map phase:" in captured.err
        assert "events/s" in captured.err
        assert "3 jsonl" in captured.err
        assert "map phase" not in captured.out

    def test_verbose_output_matches_quiet_run(self, corpus_dir, capsys):
        assert main(["study", str(corpus_dir)]) == 0
        quiet = capsys.readouterr().out
        assert main(["study", str(corpus_dir), "--verbose"]) == 0
        captured = capsys.readouterr()
        assert captured.out == quiet
        assert "map phase:" in captured.err

    def test_verbose_reports_store_hit_rate(self, corpus_dir, tmp_path, capsys):
        store = tmp_path / "store"
        assert main([
            "impact", str(corpus_dir), "--store", str(store), "--verbose",
        ]) == 0
        capsys.readouterr()
        assert main([
            "impact", str(corpus_dir), "--store", str(store), "--verbose",
        ]) == 0
        err = capsys.readouterr().err
        assert "store: 3/3 hits (100.0%)" in err


class TestExplore:
    TINY_GRID = [
        "explore",
        "--scenarios", "LockConvoy",
        "--policies", "fifo", "shuffle",
        "--seeds", "0",
        "--intensities", "0.4",
        "--repeats", "2",
    ]

    def test_tiny_grid_renders_coverage_table(self, capsys):
        assert main(self.TINY_GRID) == 0
        out = capsys.readouterr().out
        assert "Schedule exploration coverage" in out
        assert "LockConvoy" in out
        assert "total distinct contention shapes" in out

    def test_json_report_is_byte_identical_across_workers(self, capsys):
        import json

        reports = []
        for workers in ("1", "2"):
            assert main(
                self.TINY_GRID + ["--json", "--workers", workers]
            ) == 0
            reports.append(capsys.readouterr().out)
        assert reports[0] == reports[1]
        payload = json.loads(reports[0])
        assert payload["cells"]

    def test_unknown_policy_is_config_error_not_fallback(self, capsys):
        # Satellite requirement: a typoed policy must exit 2 loudly,
        # never silently fall back to FIFO.
        argv = [arg for arg in self.TINY_GRID]
        argv[argv.index("shuffle")] = "fifoo"
        assert main(argv) == 2
        assert "unknown scheduler policy 'fifoo'" in capsys.readouterr().err

    def test_unknown_scenario_is_config_error(self, capsys):
        argv = [arg for arg in self.TINY_GRID]
        argv[argv.index("LockConvoy")] = "NoSuchScenario"
        assert main(argv) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_case_requires_valid_name(self):
        with pytest.raises(SystemExit):
            main(["case", "nope"])

    def test_store_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["store"])

    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_corpus_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["corpus"])

    def test_fuzz_requires_seed(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["corpus", "fuzz", str(tmp_path)])
