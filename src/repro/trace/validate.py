"""Trace-stream validation.

The analyses downstream (Wait Graph construction in particular) assume a
handful of schema invariants.  :func:`validate_stream` checks them all and
raises :class:`~repro.errors.TraceValidationError` with every violation
collected, so a malformed synthetic generator or importer fails loudly and
with full context instead of producing quietly wrong graphs.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import TraceValidationError
from repro.trace.events import Event, EventKind
from repro.trace.stream import TraceStream


def collect_violations(stream: TraceStream) -> List[str]:
    """Return a list of human-readable invariant violations (empty = valid)."""
    problems: List[str] = []
    last_timestamp = None
    for event in stream.events:
        where = f"event #{event.seq}"
        if last_timestamp is not None and event.timestamp < last_timestamp:
            problems.append(f"{where}: timestamps go backwards")
        last_timestamp = event.timestamp
        if event.kind is EventKind.UNWAIT:
            if event.wtid == event.tid:
                problems.append(f"{where}: thread unwaits itself")
        if event.kind is EventKind.WAIT and event.cost == 0:
            problems.append(f"{where}: wait event with zero duration")

    # Every wait must have a matching unwait that ends it: an unwait by
    # another thread targeting the waiter, timestamped at the wait's end.
    for event in stream.events:
        if event.kind is not EventKind.WAIT:
            continue
        matches = [
            unwait
            for unwait in stream.unwaits_targeting(
                event.tid, event.timestamp, event.end
            )
            if unwait.timestamp == event.end
        ]
        if not matches:
            problems.append(
                f"event #{event.seq}: wait of thread {event.tid} at "
                f"{event.timestamp} has no unwait at its end {event.end}"
            )

    for instance in stream.instances:
        start, end = stream.span
        # Instances may begin or end during untraced idle time at the
        # stream's edges; only windows entirely outside the recorded span
        # indicate a marker bug.
        if stream.events and (instance.t1 < start or instance.t0 > end):
            problems.append(
                f"instance {instance.scenario}@{instance.t0} lies outside "
                f"the stream span {start}..{end}"
            )
        if instance.tid not in stream.threads and stream.threads:
            problems.append(
                f"instance {instance.scenario}@{instance.t0} initiated by "
                f"unknown thread {instance.tid}"
            )
    return problems


def validate_stream(stream: TraceStream) -> None:
    """Raise :class:`TraceValidationError` when any invariant is violated."""
    problems = collect_violations(stream)
    if problems:
        summary = "\n  - ".join(problems[:25])
        more = f"\n  ... and {len(problems) - 25} more" if len(problems) > 25 else ""
        raise TraceValidationError(
            f"trace stream {stream.stream_id!r} is invalid:\n  - {summary}{more}"
        )


def is_valid_stream(stream: TraceStream) -> bool:
    """True when the stream satisfies every schema invariant."""
    return not collect_violations(stream)


def salvage_events(events: Iterable[Event]) -> Tuple[List[Event], int]:
    """The largest self-consistent subset of a damaged stream's events.

    Used by the lenient loaders (``on_error="salvage"``): given the
    events that survived parsing a truncated or corrupted trace, return
    ``(kept, dropped)`` where ``kept`` is sorted, per-event valid
    (no zero-cost waits, no self-unwaits) and **closed under wait
    matching** — every wait kept has its resolving unwait kept too, so
    :func:`validate_stream` has nothing to object to at the event level.
    Truncation typically cuts a stream mid-wait; dropping the dangling
    wait is what turns "invalid file" into "the first N microseconds of
    a valid one".  Unwaits never depend on their wait being present, so
    only unmatched waits are removed.
    """
    dropped = 0
    cleaned: List[Event] = []
    for event in events:
        if event.kind is EventKind.WAIT and event.cost == 0:
            dropped += 1
            continue
        if event.kind is EventKind.UNWAIT and event.wtid == event.tid:
            dropped += 1
            continue
        cleaned.append(event)
    cleaned.sort(key=lambda event: (event.timestamp, event.seq))

    # A wait is resolvable when some other thread's unwait targets the
    # waiter at exactly the wait's end.
    unwait_keys = {
        (event.wtid, event.timestamp)
        for event in cleaned
        if event.kind is EventKind.UNWAIT and event.wtid is not None
    }
    kept: List[Event] = []
    for event in cleaned:
        if (
            event.kind is EventKind.WAIT
            and (event.tid, event.end) not in unwait_keys
        ):
            dropped += 1
            continue
        kept.append(event)

    renumbered = [
        Event(
            kind=event.kind,
            stack=event.stack,
            timestamp=event.timestamp,
            cost=event.cost,
            tid=event.tid,
            seq=index,
            wtid=event.wtid,
            resource=event.resource,
        )
        for index, event in enumerate(kept)
    ]
    return renumbered, dropped
