"""Tests for the schedule-exploration sweep and its coverage report."""

import json

import pytest

from repro.errors import ConfigError
from repro.sim.explore.runner import (
    CellResult,
    CoverageReport,
    ExploreCell,
    ExploreConfig,
    explore_schedules,
    run_cell,
    smoke_config,
    stable_seed,
)

TINY = ExploreConfig(
    scenarios=("LockConvoy",),
    policies=("fifo", "shuffle"),
    seeds=(0, 1),
    intensities=(0.4,),
    repeats=2,
    think_median_us=20_000,
)


class TestConfig:
    def test_grid_is_scenario_major_and_complete(self):
        cells = TINY.cells()
        assert len(cells) == 4  # 1 scenario x 2 policies x 2 seeds
        assert [(c.policy, c.seed) for c in cells] == [
            ("fifo", 0), ("fifo", 1), ("shuffle", 0), ("shuffle", 1),
        ]

    def test_unknown_scenario_rejected(self):
        config = ExploreConfig(scenarios=("NoSuchScenario",))
        with pytest.raises(ConfigError, match="unknown scenario"):
            config.validate()

    def test_unknown_policy_rejected(self):
        config = ExploreConfig(policies=("nosuch",))
        with pytest.raises(ConfigError, match="unknown scheduler policy"):
            config.validate()

    def test_empty_grid_dimensions_rejected(self):
        for broken in (
            ExploreConfig(scenarios=()),
            ExploreConfig(policies=()),
            ExploreConfig(seeds=()),
            ExploreConfig(intensities=()),
            ExploreConfig(repeats=0),
        ):
            with pytest.raises(ConfigError):
                broken.validate()

    def test_default_and_smoke_configs_validate(self):
        ExploreConfig().validate()
        smoke_config().validate()

    def test_stable_seed_is_pure(self):
        assert stable_seed("explore", "LockConvoy", "fifo", 0, 0.5) == (
            stable_seed("explore", "LockConvoy", "fifo", 0, 0.5)
        )
        assert stable_seed("a") != stable_seed("b")
        assert 0 <= stable_seed("anything") < (1 << 30)


class TestRunCell:
    def test_cell_result_summarizes_instances(self):
        cell = TINY.cells()[0]
        result = run_cell(cell)
        assert result.scenario == "LockConvoy"
        assert result.policy == "fifo"
        # repeats per intensity, one intensity in the tiny grid
        assert result.instances == 2
        assert len(result.durations) == 2
        assert result.fingerprints == tuple(sorted(set(result.fingerprints)))
        assert 0 < result.planted_wait_us <= result.total_wait_us


class TestCoverageReport:
    @pytest.fixture(scope="class")
    def report(self):
        return explore_schedules(TINY, workers=1)

    def test_byte_identical_across_worker_counts(self, report):
        # The acceptance property: identical grids produce byte-identical
        # coverage reports at workers 1, 2 and 4.
        baseline = report.to_json()
        for workers in (2, 4):
            assert explore_schedules(TINY, workers=workers).to_json() == (
                baseline
            )

    def test_json_is_canonical_and_complete(self, report):
        payload = json.loads(report.to_json())
        assert len(payload["cells"]) == 4
        assert "LockConvoy" in payload["shapes_by_scenario"]
        assert payload["total_distinct_shapes"] >= 1

    def test_novel_shapes_excludes_fifo_baseline(self, report):
        novel = report.novel_shapes()
        assert all(policy != "fifo" for _, policy in novel)
        fifo_shapes = {
            fingerprint
            for cell in report.cells
            if cell.policy == "fifo"
            for fingerprint in cell.fingerprints
        }
        for (_, _), shapes in novel.items():
            assert not set(shapes) & fifo_shapes

    def test_render_mentions_every_policy(self, report):
        rendered = report.render()
        assert "fifo" in rendered and "shuffle" in rendered
        assert "total distinct contention shapes" in rendered

    def test_novel_shape_accounting_from_synthetic_cells(self):
        def cell(policy, fingerprints):
            return CellResult(
                scenario="S", policy=policy, seed=0, instances=1,
                durations=(1,), fingerprints=fingerprints,
                planted_wait_us=0, total_wait_us=0,
            )

        report = CoverageReport(cells=(
            cell("fifo", ("aa", "bb")),
            cell("shuffle", ("bb", "cc")),
        ))
        assert report.novel_shapes() == {("S", "shuffle"): ("cc",)}
        assert report.shapes_by_scenario() == {"S": ("aa", "bb", "cc")}
        assert report.total_distinct_shapes == 3

    def test_invalid_grid_rejected_before_any_work(self):
        with pytest.raises(ConfigError):
            explore_schedules(ExploreConfig(policies=("nosuch",)))
