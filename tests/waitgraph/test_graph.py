"""Tests for the WaitGraph structure (on the hand-crafted fixture)."""

from repro.trace.events import EventKind
from repro.waitgraph.builder import build_wait_graph


class TestWaitGraphStructure:
    def test_roots_are_initiating_thread_events(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        assert all(event.tid == 1 for event in graph.roots)
        kinds = [event.kind for event in graph.roots]
        assert kinds == [EventKind.RUNNING, EventKind.WAIT, EventKind.RUNNING]

    def test_top_level_duration(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        # 1000 running + 8000 wait + 1000 running
        assert graph.top_level_duration == 10_000

    def test_children_of_lock_wait_are_holder_events(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        lock_wait = graph.roots[1]
        children = graph.children(lock_wait)
        assert all(event.tid == 2 for event in children)
        kinds = [event.kind for event in children]
        assert kinds == [EventKind.RUNNING, EventKind.WAIT, EventKind.RUNNING]

    def test_disk_wait_has_hw_child(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        lock_wait = graph.roots[1]
        disk_wait = graph.children(lock_wait)[1]
        hw_children = graph.children(disk_wait)
        assert len(hw_children) == 1
        assert hw_children[0].kind is EventKind.HW_SERVICE
        assert hw_children[0].cost == 5_000

    def test_unwait_pairing(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        lock_wait = graph.roots[1]
        unwait = graph.unwait_of(lock_wait)
        assert unwait is not None
        assert unwait.tid == 2
        assert unwait.timestamp == lock_wait.end

    def test_events_deduplicated(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        events = list(graph.events())
        assert len(events) == len({event.seq for event in events})
        assert graph.node_count() == len(events)

    def test_depth(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        # root wait -> worker wait -> hw service
        assert graph.depth() == 3

    def test_wait_events(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        waits = list(graph.wait_events())
        assert len(waits) == 2

    def test_stream_id(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        assert graph.stream_id == "prop"
