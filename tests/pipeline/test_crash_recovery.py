"""Worker-death recovery: retry, bisection, in-process fallback, quarantine.

The kill wrappers below are module-level so fork children resolve them by
reference; they guard on PID so a crash is only ever injected inside a
pool worker, never in the pytest process itself.
"""

import os
import shutil

import pytest

import repro.pipeline.api as pipeline_api
from repro.errors import WorkerCrashError
from repro.evaluation.study import run_study
from repro.pipeline import parallel_study, process_map_resilient
from repro.pipeline.worker import analyze_chunk
from repro.report.markdown import study_to_markdown
from repro.resilience import RunHealth
from repro.sim.corpus import CorpusConfig, generate_corpus
from repro.trace import dump_corpus, iter_corpus_paths, load_corpus

MAIN_PID = os.getpid()

TINY = CorpusConfig(
    streams=6, seed=909, workloads_per_stream=(1, 2), repeats_range=(2, 3)
)


def _kill_once_chunk(task):
    """Die the first time any chunk runs, then behave."""
    flag = os.environ["REPRO_TEST_KILL_FLAG"]
    if not os.path.exists(flag) and os.getpid() != MAIN_PID:
        with open(flag, "w", encoding="utf-8") as handle:
            handle.write("crashed once")
        os._exit(1)
    return analyze_chunk(task)


def _kill_poison_chunk(task):
    """Die whenever the chunk holds the poison trace; raise in-process."""
    if any(
        "poison" in os.path.basename(str(source)) for source in task.sources
    ):
        if os.getpid() != MAIN_PID:
            os._exit(1)
        raise RuntimeError("poison trace crashes the in-process fallback too")
    return analyze_chunk(task)


# ---------------------------------------------------------------------------
# Executor-level unit tests (no trace analysis involved)
# ---------------------------------------------------------------------------


def _double(value):
    return [2 * item for item in value]


def _die_on_nine(value):
    if 9 in value and os.getpid() != MAIN_PID:
        os._exit(1)
    if 9 in value:
        raise RuntimeError("nine is unlucky in this process too")
    return [2 * item for item in value]


def _split_list(value):
    if len(value) < 2:
        return None
    middle = len(value) // 2
    return value[:middle], value[middle:]


def _merge_lists(parts):
    return [item for part in parts for item in part]


class TestProcessMapResilient:
    def test_clean_run_matches_plain_map(self):
        tasks = [[1, 2], [3], [4, 5, 6]]
        results = process_map_resilient(
            _double, tasks, workers=2,
            split=_split_list, merge=_merge_lists,
            failed=lambda task, exc: [],
        )
        assert results == [_double(task) for task in tasks]

    def test_poison_task_is_isolated_and_replaced(self):
        tasks = [[1, 2, 3], [8, 9, 10, 11], [4]]
        health = RunHealth()
        results = process_map_resilient(
            _die_on_nine, tasks, workers=2,
            split=_split_list, merge=_merge_lists,
            failed=lambda task, exc: ["failed"] * len(task),
            max_retries=0, backoff_base=0.0, health=health,
        )
        assert results[0] == [2, 4, 6]
        assert results[2] == [8]
        # The poison element 9 is bisected down to a singleton and
        # replaced; its innocent neighbours survive.
        assert results[1] == [16, "failed", 20, 22]
        # With max_retries=0 an innocent single-item task caught in the
        # same broken pool also falls back in-process — at least the
        # poison singleton did.
        assert health.worker_restarts >= 1
        assert health.sequential_fallbacks >= 1

    def test_failed_callback_may_abort_the_run(self):
        def explode(task, exc):
            raise WorkerCrashError(f"gave up on {task}")

        with pytest.raises(WorkerCrashError):
            process_map_resilient(
                _die_on_nine, [[9]], workers=2,
                split=_split_list, merge=_merge_lists,
                failed=explode, max_retries=0, backoff_base=0.0,
            )


# ---------------------------------------------------------------------------
# Pipeline-level recovery (full study through a dying map phase)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def crash_corpus(tmp_path_factory):
    directory = tmp_path_factory.mktemp("crash-corpus")
    dump_corpus(generate_corpus(TINY), directory)
    return directory


@pytest.fixture(scope="module")
def clean_markdown(crash_corpus):
    return study_to_markdown(run_study(list(load_corpus(crash_corpus))))


@pytest.fixture()
def poison_corpus(crash_corpus, tmp_path):
    directory = tmp_path / "poisoned"
    shutil.copytree(crash_corpus, directory)
    victim = sorted(directory.glob("*.jsonl"))[0]
    shutil.copyfile(victim, directory / "zz_poison.jsonl")
    return directory


class TestKillOnceRecovery:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_output_is_byte_identical_after_recovery(
        self, crash_corpus, clean_markdown, workers, monkeypatch, tmp_path
    ):
        flag = tmp_path / f"killed-w{workers}"
        monkeypatch.setenv("REPRO_TEST_KILL_FLAG", str(flag))
        monkeypatch.setattr(pipeline_api, "analyze_chunk", _kill_once_chunk)
        health = RunHealth()
        study = parallel_study(
            iter_corpus_paths(crash_corpus),
            workers=workers,
            on_error="skip",
            health=health,
        )
        assert flag.exists(), "the kill wrapper never ran in a worker"
        assert study_to_markdown(study) == clean_markdown
        assert health.worker_restarts >= 1
        assert health.retries >= 1
        assert health.quarantined == 0
        assert health.skipped == 0


class TestPoisonQuarantine:
    def test_bisection_isolates_and_quarantines_the_poison_trace(
        self, poison_corpus, clean_markdown, monkeypatch
    ):
        monkeypatch.setattr(pipeline_api, "analyze_chunk", _kill_poison_chunk)
        health = RunHealth()
        study = parallel_study(
            iter_corpus_paths(poison_corpus),
            workers=2,
            chunk_size=len(iter_corpus_paths(poison_corpus)),
            on_error="skip",
            max_retries=0,
            health=health,
        )
        # Result equals the clean corpus study: only the poison trace
        # is missing, every innocent chunk neighbour was recovered.
        assert study_to_markdown(study) == clean_markdown
        assert health.quarantined == 1
        assert health.analyzed == len(iter_corpus_paths(poison_corpus)) - 1
        failure = next(
            f for f in health.failures if f.action == "quarantined"
        )
        assert "zz_poison" in failure.source
        assert failure.stage == "executor"

    def test_strict_policy_aborts_with_worker_crash_error(
        self, poison_corpus, monkeypatch
    ):
        monkeypatch.setattr(pipeline_api, "analyze_chunk", _kill_poison_chunk)
        with pytest.raises(WorkerCrashError, match="worker kept dying"):
            parallel_study(
                iter_corpus_paths(poison_corpus),
                workers=2,
                max_retries=0,
            )

    def test_store_receives_the_quarantined_trace(
        self, poison_corpus, monkeypatch, tmp_path
    ):
        monkeypatch.setattr(pipeline_api, "analyze_chunk", _kill_poison_chunk)
        store_dir = tmp_path / "store"
        health = RunHealth()
        parallel_study(
            iter_corpus_paths(poison_corpus),
            workers=2,
            store=str(store_dir),
            on_error="skip",
            max_retries=0,
            health=health,
        )
        assert health.quarantined == 1
        quarantined = list((store_dir / "quarantine").glob("zz_poison*"))
        names = {path.name for path in quarantined}
        assert "zz_poison.jsonl" in names
        assert any(name.endswith(".reason.txt") for name in names)
