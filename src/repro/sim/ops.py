"""Request factories for service-mediated operations.

These build the generators that :class:`~repro.sim.services.WorkerService`
workers execute on behalf of scenario threads: virtual-file opens, session
flushes, security inspections and render batches.  Keeping them in one
module lets several workloads share the exact same service-side behaviour
(and therefore aggregate onto the same Wait Graph signatures).
"""

from __future__ import annotations

from typing import Generator, Sequence

from repro.sim.distributions import bernoulli, uniform_us
from repro.sim.engine import ThreadContext
from repro.sim.services import RequestFactory


def open_virtual_files(
    machine,
    file_ids: Sequence[int],
    resolve_prob: float = 0.6,
    cache_prob: float = 0.4,
    size_factor: float = 1.0,
) -> RequestFactory:
    """Open files through the fv.sys → fs.sys → storage stack."""

    def factory(ctx: ThreadContext) -> Generator:
        if bernoulli(machine.rng, 0.2):
            # Buffer pages for the request may have been evicted.
            yield from machine.memory.touch(ctx)
        for file_id in file_ids:
            with ctx.frame("kernel!OpenFile"):
                yield from machine.fv.query_file_table(
                    ctx,
                    file_id,
                    resolve=bernoulli(machine.rng, resolve_prob),
                    cached=bernoulli(machine.rng, cache_prob),
                    size_factor=size_factor * machine.rng.uniform(0.5, 3.0),
                )

    return factory


def flush_files(machine, file_ids: Sequence[int]) -> RequestFactory:
    """Write files through fs.sys (session state, cache entries)."""

    def factory(ctx: ThreadContext) -> Generator:
        for file_id in file_ids:
            with ctx.frame("kernel!WriteFile"):
                yield from machine.fs.write_file(ctx, file_id)

    return factory


def security_inspection(
    machine, file_id: int, resolve_prob: float = 0.4
) -> RequestFactory:
    """Full security-stack inspection of one access request."""

    def factory(ctx: ThreadContext) -> Generator:
        if bernoulli(machine.rng, 0.3):
            # The inspection engine's rule pages may have been evicted.
            yield from machine.memory.touch(ctx)
        if machine.iocache is not None:
            with ctx.frame("kernel!OpenFile"):
                yield from machine.iocache.lookup(ctx)
        with ctx.frame("kernel!OpenFile"):
            yield from machine.av.scan_file(ctx, file_id)
        if bernoulli(machine.rng, resolve_prob):
            with ctx.frame("kernel!OpenFile"):
                yield from machine.fv.query_file_table(
                    ctx, file_id, resolve=True,
                    cached=bernoulli(machine.rng, 0.5),
                )

    return factory


def render_batch(
    machine, complexity: float = 1.0, surface_prob: float = 0.1
) -> RequestFactory:
    """Render a frame batch on the shared render worker.

    With probability ``surface_prob`` the batch needs a fresh internal
    surface, whose initialization touches pageable memory — the §5.2.4
    hard-fault path.  A fault on the shared render worker stalls every
    queued render request, which is precisely how one page-in freezes
    several scenarios at once.
    """

    def factory(ctx: ThreadContext) -> Generator:
        yield from ctx.compute(uniform_us(machine.rng, 100, 500))
        if bernoulli(machine.rng, surface_prob):
            yield from machine.graphics.initialize_surface(ctx)
        yield from machine.graphics.render(ctx, complexity=complexity)

    return factory


def fetch_resources(
    machine, count: int, size_low: float = 0.5, size_high: float = 3.0
) -> RequestFactory:
    """Fetch ``count`` resources over the network stack (net.sys)."""

    def factory(ctx: ThreadContext) -> Generator:
        for _ in range(count):
            with ctx.frame("kernel!SocketReceive"):
                yield from machine.net.transfer(
                    ctx,
                    size_factor=machine.rng.uniform(size_low, size_high),
                )

    return factory
