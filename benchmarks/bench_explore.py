"""Schedule-exploration benchmarks: sweep throughput and oracle health.

Two questions decide how large an exploration grid is worth running:

* **coverage yield** — how many distinct contention shapes does each
  policy add over the FIFO baseline, per second of sweep time, and how
  does the fork-pool fan-out scale the sweep?
* **oracle cost** — what does the full planted-cause validation (corpus
  generation + thresholds + causality pipeline per pathology) cost, and
  does every pathology still mine at top rank?

Grid size follows ``REPRO_BENCH_EXPLORE_SEEDS`` (default 2 policy
seeds).  Wall-clock ratios are printed, not asserted; determinism and
oracle verdicts are asserted — the sweep must be byte-identical at any
worker count and every planted cause must be rediscovered.
"""

import os
import time

from benchmarks.conftest import print_banner
from repro.sim.explore import (
    ExploreConfig,
    explore_schedules,
    negative_control,
    verify_all_pathologies,
)

EXPLORE_SEEDS = int(os.environ.get("REPRO_BENCH_EXPLORE_SEEDS", "2"))
WORKER_COUNTS = (1, 2, 4)


def _grid() -> ExploreConfig:
    return ExploreConfig(
        seeds=tuple(range(EXPLORE_SEEDS)),
        intensities=(0.3, 0.8),
        repeats=3,
    )


def test_bench_sweep_scaling_and_coverage():
    """Policy × seed sweep: scaling across workers, identical reports."""
    print_banner(
        f"schedule exploration sweep "
        f"(4 pathologies x 5 policies x {EXPLORE_SEEDS} seeds)"
    )
    config = _grid()
    baseline_json = None
    baseline_time = None
    for workers in WORKER_COUNTS:
        start = time.perf_counter()
        report = explore_schedules(config, workers=workers)
        elapsed = time.perf_counter() - start
        if baseline_json is None:
            baseline_json, baseline_time = report.to_json(), elapsed
        else:
            assert report.to_json() == baseline_json
        print(
            f"workers={workers}: {elapsed:6.2f}s "
            f"({baseline_time / elapsed:4.2f}x)"
        )
    report = explore_schedules(config, workers=WORKER_COUNTS[-1])
    print(report.render())
    novel = sum(len(shapes) for shapes in report.novel_shapes().values())
    print(f"novel (non-FIFO) shapes: {novel}")
    assert report.total_distinct_shapes > 0
    assert novel > 0, "exploration added nothing over the FIFO baseline"


def test_bench_mining_oracle():
    """Planted-cause validation: per-pathology cost and verdicts."""
    print_banner("mining oracle (planted-pathology validation)")
    start = time.perf_counter()
    verdicts = verify_all_pathologies(
        seeds=(0,), intensities=(0.15, 0.85), repeats=4
    )
    elapsed = time.perf_counter() - start
    for verdict in verdicts:
        print(f"{verdict.summary()}")
        assert verdict.passed, verdict.summary()
    clean = negative_control(seeds=(0,), intensities=(0.2, 0.8), repeats=4)
    print(f"negative control: {'clean' if clean else 'CONTAMINATED'}")
    assert clean
    print(f"total oracle time: {elapsed:.2f}s "
          f"({elapsed / len(verdicts):.2f}s per pathology)")
