"""Tests for the driver-type taxonomy (Table 4)."""

from collections import Counter

from repro.causality.mining import ContrastPattern
from repro.causality.sst import SignatureSetTuple
from repro.evaluation.drivertypes import (
    DRIVER_TYPE_ORDER,
    DRIVER_TYPES,
    categorize_top_patterns,
    driver_modules,
    driver_type_of,
    types_in_sst,
)


def pattern_with(signatures, cost=100):
    return ContrastPattern(
        sst=SignatureSetTuple(frozenset(signatures), frozenset(), frozenset()),
        cost=cost,
        count=1,
        max_single=cost,
        matched_meta_patterns=1,
    )


class TestTaxonomy:
    def test_every_type_in_column_order(self):
        assert set(DRIVER_TYPES.values()) <= set(DRIVER_TYPE_ORDER)

    def test_driver_type_of_known(self):
        assert driver_type_of("fs.sys") == "FileSystem/GeneralStorage"
        assert driver_type_of("av.sys") == "FileSystemFilter"
        assert driver_type_of("se.sys") == "StorageEncryption"

    def test_driver_type_of_case_insensitive(self):
        assert driver_type_of("FS.SYS") == "FileSystem/GeneralStorage"

    def test_driver_type_of_unknown(self):
        assert driver_type_of("kernel") == ""
        assert driver_type_of("unknown.sys") == ""


class TestCategorization:
    def test_types_in_sst(self):
        sst = SignatureSetTuple(
            frozenset({"fv.sys!Q"}),
            frozenset({"fs.sys!A"}),
            frozenset({"se.sys!D", "kernel!X"}),
        )
        assert types_in_sst(sst) == {
            "FileSystemFilter",
            "FileSystem/GeneralStorage",
            "StorageEncryption",
        }

    def test_categorize_counts_patterns_not_signatures(self):
        patterns = [
            pattern_with({"fs.sys!A", "fs.sys!B"}),  # one pattern, one type
            pattern_with({"fv.sys!Q"}),
        ]
        counts = categorize_top_patterns(patterns)
        assert counts["FileSystem/GeneralStorage"] == 1
        assert counts["FileSystemFilter"] == 1

    def test_top_n_respected(self):
        patterns = [pattern_with({"fs.sys!A"}) for _ in range(15)]
        counts = categorize_top_patterns(patterns, top_n=10)
        assert counts["FileSystem/GeneralStorage"] == 10

    def test_empty(self):
        assert categorize_top_patterns([]) == Counter()

    def test_driver_modules(self):
        modules = driver_modules({"fs.sys!A", "kernel!B", "net.sys!C"})
        assert modules == {"fs.sys", "net.sys"}
