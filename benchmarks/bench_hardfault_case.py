"""§5.2.4 — The hard-fault case: graphics.sys frozen on a page read.

A system graphics routine holding the GPU context hard-faults; the pager
reads the page back through fs.sys and se.sys for seconds (the paper's
incident took ≈ 4.7 s), and the UI thread waiting on the GPU context goes
non-responsive.  The discovered pattern joins graphics.sys with the
storage drivers it "should not" interact with.
"""

from benchmarks.conftest import print_banner
from repro.causality import CausalityAnalysis
from repro.report.figures import render_wait_graph
from repro.sim.casestudy import (
    HARDFAULT_SCENARIO,
    HARDFAULT_T_FAST,
    HARDFAULT_T_SLOW,
    run_hardfault_case,
)
from repro.trace.signatures import module_of
from repro.units import SECONDS
from repro.waitgraph.builder import build_wait_graph


def test_bench_hardfault_case(benchmark):
    result = benchmark.pedantic(run_hardfault_case, rounds=1, iterations=1)

    print_banner("Section 5.2.4 - Hard fault in graphics.sys")
    print(
        f"AppNonResponsive instances: {len(result.instances)}; hang took "
        f"{result.slow_instance.duration / 1e6:.2f} s (paper: ~4.7 s)"
    )
    graph = build_wait_graph(result.slow_instance)
    print(render_wait_graph(graph, max_depth=7))

    # The hang is in the multi-second range.
    assert result.slow_instance.duration > 2 * SECONDS
    assert len(result.fast_instances) >= 4

    report = CausalityAnalysis(["*.sys"]).analyze(
        result.instances,
        HARDFAULT_T_FAST,
        HARDFAULT_T_SLOW,
        scenario=HARDFAULT_SCENARIO,
    )
    assert report.patterns
    print_banner("Discovered pattern: graphics.sys with the storage stack")
    top = report.patterns[0]
    print(top.sst.render())

    modules = {module_of(s) for s in top.sst.all_signatures}
    assert "graphics.sys" in modules, "the faulting driver must appear"
    storage_union = set()
    for pattern in report.patterns:
        storage_union |= {
            module_of(s) for s in pattern.sst.all_signatures
        }
    assert {"se.sys", "fs.sys"} & storage_union, (
        "storage drivers must co-occur with graphics.sys"
    )
    assert top.is_high_impact(HARDFAULT_T_SLOW)
