"""Tests for Signature Set Tuples."""

from hypothesis import given
from hypothesis import strategies as st

from repro.causality.sst import SignatureSetTuple
from repro.waitgraph.aggregate import AwgNode, HARDWARE, RUNNING, WAITING


def waiting(wait_sig, unwait_sig):
    return AwgNode(WAITING, wait_sig=wait_sig, unwait_sig=unwait_sig)


def running(sig):
    return AwgNode(RUNNING, run_sig=sig)


def hardware(sig="Hardware!Service"):
    return AwgNode(HARDWARE, run_sig=sig)


class TestFromSegment:
    def test_empty_segment(self):
        sst = SignatureSetTuple.from_segment([])
        assert sst.size == 0

    def test_motivating_example_shape(self):
        # The §2.3 discovered pattern from the BrowserTabCreate case.
        segment = [
            waiting("fv.sys!QueryFileTable", "fv.sys!QueryFileTable"),
            waiting("fs.sys!AcquireMDU", "fs.sys!AcquireMDU"),
            running("se.sys!ReadDecrypt"),
            hardware("Hardware!DiskService"),
        ]
        sst = SignatureSetTuple.from_segment(segment)
        assert sst.wait_signatures == {
            "fv.sys!QueryFileTable", "fs.sys!AcquireMDU",
        }
        assert sst.unwait_signatures == {
            "fv.sys!QueryFileTable", "fs.sys!AcquireMDU",
        }
        assert sst.running_signatures == {
            "se.sys!ReadDecrypt", "Hardware!DiskService",
        }

    def test_duplicate_signatures_merge(self):
        segment = [waiting("a!b", "c!d"), waiting("a!b", "c!d")]
        sst = SignatureSetTuple.from_segment(segment)
        assert len(sst.wait_signatures) == 1


class TestContainment:
    def make(self, waits=(), unwaits=(), runnings=()):
        return SignatureSetTuple(
            frozenset(waits), frozenset(unwaits), frozenset(runnings)
        )

    def test_contains_subset(self):
        big = self.make({"a!1", "b!2"}, {"c!3"}, {"d!4"})
        small = self.make({"a!1"}, set(), {"d!4"})
        assert big.contains(small)
        assert not small.contains(big)

    def test_contains_reflexive(self):
        sst = self.make({"a!1"}, {"b!2"}, set())
        assert sst.contains(sst)

    def test_contains_empty(self):
        assert self.make().contains(self.make())
        assert self.make({"a!1"}).contains(self.make())

    def test_sets_are_componentwise(self):
        # A wait signature does not satisfy a running-set requirement.
        has_wait = self.make(waits={"x!y"})
        needs_running = self.make(runnings={"x!y"})
        assert not has_wait.contains(needs_running)

    @given(
        st.sets(st.sampled_from(["a!1", "b!2", "c!3", "d!4"])),
        st.sets(st.sampled_from(["a!1", "b!2", "c!3", "d!4"])),
    )
    def test_containment_matches_set_inclusion(self, first, second):
        sst_a = self.make(first, first, first)
        sst_b = self.make(second, second, second)
        assert sst_a.contains(sst_b) == (second <= first)


class TestRendering:
    def test_render_shows_all_sets(self):
        sst = SignatureSetTuple(
            frozenset({"fv.sys!Q"}), frozenset({"fs.sys!A"}), frozenset()
        )
        text = sst.render()
        assert "wait signatures" in text
        assert "fv.sys!Q" in text
        assert "fs.sys!A" in text

    def test_render_sorted_deterministic(self):
        sst = SignatureSetTuple(
            frozenset({"b!2", "a!1"}), frozenset(), frozenset()
        )
        assert "{a!1, b!2}" in sst.render()

    def test_sort_key_total_order(self):
        a = SignatureSetTuple(frozenset({"a!1"}), frozenset(), frozenset())
        b = SignatureSetTuple(frozenset({"b!1"}), frozenset(), frozenset())
        assert sorted([b, a], key=lambda s: s.sort_key())[0] == a

    def test_all_signatures_union(self):
        sst = SignatureSetTuple(
            frozenset({"a!1"}), frozenset({"b!2"}), frozenset({"c!3"})
        )
        assert sst.all_signatures == {"a!1", "b!2", "c!3"}
        assert sst.size == 3

    def test_hashable_and_equal(self):
        a = SignatureSetTuple(frozenset({"a!1"}), frozenset(), frozenset())
        b = SignatureSetTuple(frozenset({"a!1"}), frozenset(), frozenset())
        assert a == b
        assert len({a, b}) == 1
