"""Comparing analyses across corpora (regression detection).

A production use of the pipeline the paper motivates but does not
automate: after a driver update or configuration change, compare the
discovered patterns and impact metrics of the *new* corpus against a
*baseline* corpus.  Patterns are matched by their Signature Set Tuple, so
the comparison survives cosmetic changes in where delays surface:

* **emerged** — patterns present only in the new corpus (a regression
  candidate, exactly criterion 1 of the paper's contrast mining, applied
  across corpora instead of across speed classes);
* **resolved** — patterns that disappeared;
* **regressed / improved** — common patterns whose impact (``P.C/P.N``)
  moved by more than a configurable factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.causality.mining import ContrastPattern
from repro.causality.sst import SignatureSetTuple
from repro.errors import AnalysisError
from repro.impact.metrics import ImpactResult


@dataclass(frozen=True)
class PatternDelta:
    """One common pattern's impact movement between corpora."""

    sst: SignatureSetTuple
    baseline_impact: float
    current_impact: float

    @property
    def ratio(self) -> float:
        if self.baseline_impact <= 0:
            return float("inf")
        return self.current_impact / self.baseline_impact


@dataclass
class PatternComparison:
    """The pattern-level diff between two analyses."""

    emerged: List[ContrastPattern] = field(default_factory=list)
    resolved: List[ContrastPattern] = field(default_factory=list)
    regressed: List[PatternDelta] = field(default_factory=list)
    improved: List[PatternDelta] = field(default_factory=list)
    stable: int = 0

    @property
    def has_regressions(self) -> bool:
        return bool(self.emerged or self.regressed)

    def summary(self) -> str:
        return (
            f"{len(self.emerged)} emerged, {len(self.resolved)} resolved, "
            f"{len(self.regressed)} regressed, {len(self.improved)} "
            f"improved, {self.stable} stable"
        )


def compare_patterns(
    baseline: Sequence[ContrastPattern],
    current: Sequence[ContrastPattern],
    regression_factor: float = 2.0,
) -> PatternComparison:
    """Diff two ranked pattern lists by SST identity and impact.

    ``regression_factor`` is the impact ratio beyond which a common
    pattern counts as regressed (current/baseline) or improved
    (baseline/current).
    """
    if regression_factor <= 1.0:
        raise AnalysisError("regression_factor must exceed 1.0")
    baseline_by_sst: Dict[SignatureSetTuple, ContrastPattern] = {
        pattern.sst: pattern for pattern in baseline
    }
    current_by_sst: Dict[SignatureSetTuple, ContrastPattern] = {
        pattern.sst: pattern for pattern in current
    }
    comparison = PatternComparison()
    for sst, pattern in current_by_sst.items():
        old = baseline_by_sst.get(sst)
        if old is None:
            comparison.emerged.append(pattern)
            continue
        delta = PatternDelta(
            sst=sst,
            baseline_impact=old.impact,
            current_impact=pattern.impact,
        )
        if delta.ratio > regression_factor:
            comparison.regressed.append(delta)
        elif delta.ratio < 1.0 / regression_factor:
            comparison.improved.append(delta)
        else:
            comparison.stable += 1
    for sst, pattern in baseline_by_sst.items():
        if sst not in current_by_sst:
            comparison.resolved.append(pattern)
    # Deterministic ordering: worst movements first.
    comparison.emerged.sort(key=lambda p: (-p.impact, p.sst.sort_key()))
    comparison.resolved.sort(key=lambda p: (-p.impact, p.sst.sort_key()))
    comparison.regressed.sort(key=lambda d: (-d.ratio, d.sst.sort_key()))
    comparison.improved.sort(key=lambda d: (d.ratio, d.sst.sort_key()))
    return comparison


@dataclass(frozen=True)
class ImpactDelta:
    """Impact-metric movement between two corpora."""

    baseline: ImpactResult
    current: ImpactResult

    @property
    def ia_wait_delta(self) -> float:
        return self.current.ia_wait - self.baseline.ia_wait

    @property
    def ia_run_delta(self) -> float:
        return self.current.ia_run - self.baseline.ia_run

    @property
    def ia_opt_delta(self) -> float:
        return self.current.ia_opt - self.baseline.ia_opt

    def summary(self) -> str:
        def arrow(delta: float) -> str:
            return f"{delta:+.1%}"

        return (
            f"IA_wait {arrow(self.ia_wait_delta)}, "
            f"IA_run {arrow(self.ia_run_delta)}, "
            f"IA_opt {arrow(self.ia_opt_delta)}"
        )


def compare_impact(
    baseline: ImpactResult, current: ImpactResult
) -> ImpactDelta:
    """Pair two impact results for delta reporting."""
    return ImpactDelta(baseline=baseline, current=current)
