"""Small composable helpers for slicing trace streams.

These are convenience utilities used by examples and by the baseline
analyzers; the core pipeline builds richer indexes of its own inside
:mod:`repro.waitgraph`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List

from repro.trace.events import Event, EventKind
from repro.trace.signatures import ComponentFilter
from repro.trace.stream import ScenarioInstance, TraceStream

EventPredicate = Callable[[Event], bool]


def by_kind(kind: EventKind) -> EventPredicate:
    """Predicate selecting events of one kind."""
    return lambda event: event.kind is kind


def by_component(component_filter: ComponentFilter) -> EventPredicate:
    """Predicate selecting events whose callstack touches the components."""
    return lambda event: component_filter.matches_stack(event.stack)


def in_window(t0: int, t1: int) -> EventPredicate:
    """Predicate selecting events overlapping ``[t0, t1)``."""
    return lambda event: event.overlaps(t0, t1)


def select(events: Iterable[Event], *predicates: EventPredicate) -> Iterator[Event]:
    """Yield events satisfying every predicate."""
    for event in events:
        if all(predicate(event) for predicate in predicates):
            yield event


def instance_events(instance: ScenarioInstance) -> List[Event]:
    """All events overlapping an instance's window, from any thread."""
    stream = instance.stream
    return [
        event
        for event in stream.events
        if event.overlaps(instance.t0, instance.t1)
    ]


def instances_by_scenario(
    streams: Iterable[TraceStream],
) -> Dict[str, List[ScenarioInstance]]:
    """Group every scenario instance in a corpus by scenario name."""
    grouped: Dict[str, List[ScenarioInstance]] = {}
    for stream in streams:
        for instance in stream.instances:
            grouped.setdefault(instance.scenario, []).append(instance)
    return grouped


def total_cost(events: Iterable[Event]) -> int:
    """Sum of event costs in microseconds."""
    return sum(event.cost for event in events)
