"""JSONL serialization of trace streams.

A trace file holds one JSON object per line:

* one ``header`` line with the stream id and thread table,
* one ``event`` line per tracing event, in stream order,
* one ``instance`` line per scenario instance.

The format is deliberately flat and line-oriented so large corpora can be
streamed, grepped and partially loaded without a real database.  It is
the *interop* encoding; the analysis fast path is the binary columnar
RTB format (``repro.trace.binary``), and the loaders here detect both —
``load_stream``/``load_corpus`` transparently return a columnar stream
for ``*.rtb`` sources.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import sys
from typing import Iterable, Iterator, List, TextIO, Union

from repro.errors import SerializationError, TraceError, TraceSalvageError
from repro.trace.events import Event, EventKind
from repro.trace.stream import ScenarioInstance, ThreadInfo, TraceStream
from repro.trace.validate import is_valid_stream, salvage_events

_FORMAT_VERSION = 1

PathOrFile = Union[str, os.PathLike, TextIO]


def _event_to_record(event: Event) -> dict:
    record = {
        "k": event.kind.value,
        "s": list(event.stack),
        "t": event.timestamp,
        "c": event.cost,
        "tid": event.tid,
    }
    if event.wtid is not None:
        record["wtid"] = event.wtid
    if event.resource is not None:
        record["res"] = event.resource
    return record


def _event_from_record(record: dict, seq: int) -> Event:
    try:
        # Interning collapses the (small) signature vocabulary repeated
        # across millions of frames into shared strings: less memory, and
        # downstream per-signature caches hit on identity-equal keys.
        return Event(
            kind=EventKind(record["k"]),
            stack=tuple(sys.intern(frame) for frame in record["s"]),
            timestamp=record["t"],
            cost=record["c"],
            tid=record["tid"],
            seq=seq,
            wtid=record.get("wtid"),
            resource=record.get("res"),
        )
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"malformed event record: {record!r}") from exc


def dump_stream(stream: TraceStream, destination: PathOrFile) -> None:
    """Write one trace stream to a JSONL file or open text handle."""
    if isinstance(destination, (str, os.PathLike)):
        with open(destination, "w", encoding="utf-8") as handle:
            _dump(stream, handle)
    else:
        _dump(stream, destination)


def _dump(stream: TraceStream, handle: TextIO) -> None:
    header = {
        "type": "header",
        "version": _FORMAT_VERSION,
        "stream_id": stream.stream_id,
        "threads": [
            {"tid": info.tid, "process": info.process, "name": info.name}
            for info in stream.threads.values()
        ],
    }
    handle.write(json.dumps(header) + "\n")
    for event in stream.events:
        handle.write(json.dumps(_event_to_record(event)) + "\n")
    for instance in stream.instances:
        record = {
            "type": "instance",
            "scenario": instance.scenario,
            "tid": instance.tid,
            "t0": instance.t0,
            "t1": instance.t1,
        }
        handle.write(json.dumps(record) + "\n")


def load_stream(source: PathOrFile, on_error: str = "strict") -> TraceStream:
    """Read one trace stream from a trace file or open text handle.

    File sources are format-detected: ``*.rtb`` paths (and any file
    starting with the RTB magic, whatever its name) load through the
    binary columnar reader (``repro.trace.binary``), everything else
    parses as JSONL.  Open handles are always treated as JSONL text.

    ``on_error`` selects the ingestion policy for damaged files.
    ``"strict"`` (and ``"skip"``, whose skipping happens at the corpus
    level) raises :class:`SerializationError` exactly as before;
    ``"salvage"`` falls back to the lenient loaders, which keep the
    valid portion of a truncated or corrupted stream when it still
    passes validation — the result then carries ``.salvaged = True``.
    Raises :class:`~repro.errors.TraceSalvageError` when nothing
    recoverable remains.
    """
    if on_error != "strict":
        from repro.resilience.health import validate_on_error

        validate_on_error(on_error)
    if isinstance(source, (str, os.PathLike)):
        from repro.trace import binary

        path = os.fspath(source)
        if str(path).endswith(binary.RTB_SUFFIX) or binary.is_rtb_file(path):
            return binary.load_stream_binary(path, on_error=on_error)
        if on_error == "salvage":
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    return _load(handle)
            except (TraceError, OSError, UnicodeDecodeError):
                with open(
                    path, "r", encoding="utf-8", errors="replace"
                ) as handle:
                    return _load_salvage(handle, source=path)
        with open(path, "r", encoding="utf-8") as handle:
            return _load(handle)
    if on_error == "salvage":
        try:
            return _load(source)
        except TraceError:
            source.seek(0)
            return _load_salvage(source)
    return _load(source)


def _load(handle: TextIO) -> TraceStream:
    first = handle.readline()
    if not first:
        raise SerializationError("empty trace file")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise SerializationError("first line is not valid JSON") from exc
    if header.get("type") != "header":
        raise SerializationError("trace file does not start with a header line")
    version = header.get("version")
    if version != _FORMAT_VERSION:
        raise SerializationError(f"unsupported trace format version: {version}")

    threads = [
        ThreadInfo(tid=item["tid"], process=item["process"], name=item["name"])
        for item in header.get("threads", [])
    ]
    events: List[Event] = []
    instance_records: List[dict] = []
    for line_number, line in enumerate(handle, start=2):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"line {line_number} is not valid JSON"
            ) from exc
        if record.get("type") == "instance":
            instance_records.append(record)
        else:
            events.append(_event_from_record(record, seq=len(events)))

    stream = TraceStream(header["stream_id"], events, threads)
    for record in instance_records:
        try:
            stream.add_instance(
                scenario=record["scenario"],
                tid=record["tid"],
                t0=record["t0"],
                t1=record["t1"],
            )
        except KeyError as exc:
            raise SerializationError(
                f"malformed instance record: {record!r}"
            ) from exc
    return stream


def _load_salvage(handle: TextIO, source: str = "<stream>") -> TraceStream:
    """Lenient JSONL load: keep every parseable, schema-consistent line.

    The salvage contract: the header must still parse (a stream with no
    identity is unrecoverable), every other line is kept when it parses
    and dropped when it does not, dangling events are trimmed by
    :func:`repro.trace.validate.salvage_events`, and instance records a
    shortened stream can no longer support are pruned.  The result must
    pass the full validator — salvage never trades corruption for a
    quietly wrong analysis — and carries ``.salvaged = True`` plus the
    number of dropped lines/events in ``.salvage_dropped``.
    """
    first = handle.readline()
    try:
        header = json.loads(first) if first else None
    except json.JSONDecodeError:
        header = None
    if (
        not isinstance(header, dict)
        or header.get("type") != "header"
        or header.get("version") != _FORMAT_VERSION
        or not isinstance(header.get("stream_id"), str)
    ):
        raise TraceSalvageError(
            f"cannot salvage {source!r}: header line is unreadable "
            "(a stream with no identity is unrecoverable)"
        )

    threads: List[ThreadInfo] = []
    for item in header.get("threads", []):
        try:
            threads.append(
                ThreadInfo(
                    tid=int(item["tid"]),
                    process=str(item["process"]),
                    name=str(item["name"]),
                )
            )
        except (TypeError, KeyError, ValueError):
            continue

    dropped_lines = 0
    events: List[Event] = []
    instance_records: List[dict] = []
    for line in handle:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            dropped_lines += 1
            continue
        if not isinstance(record, dict):
            dropped_lines += 1
            continue
        if record.get("type") == "instance":
            instance_records.append(record)
            continue
        try:
            events.append(_event_from_record(record, seq=len(events)))
        except (TraceError, TypeError):
            dropped_lines += 1

    kept, dropped_events = salvage_events(events)
    try:
        stream = TraceStream(header["stream_id"], kept, threads)
    except TraceError as exc:  # pragma: no cover - salvage_events sorts
        raise TraceSalvageError(
            f"cannot salvage {source!r}: surviving events are inconsistent"
        ) from exc

    dropped_instances = 0
    for record in instance_records:
        try:
            scenario = str(record["scenario"])
            tid = int(record["tid"])
            t0 = int(record["t0"])
            t1 = int(record["t1"])
        except (TypeError, KeyError, ValueError):
            dropped_instances += 1
            continue
        if not stream.admits_instance(tid, t0, t1):
            dropped_instances += 1
            continue
        stream.add_instance(scenario=scenario, tid=tid, t0=t0, t1=t1)

    if not stream.events and not stream.instances:
        raise TraceSalvageError(
            f"cannot salvage {source!r}: no events or instances survive"
        )
    if not is_valid_stream(stream):
        raise TraceSalvageError(
            f"cannot salvage {source!r}: surviving content still fails "
            "validation"
        )
    stream.salvaged = True
    stream.salvage_dropped = dropped_lines + dropped_events + dropped_instances
    return stream


#: Read granularity of :func:`stream_content_hash` — large enough to hit
#: sequential disk bandwidth, small enough to keep memory flat.
_HASH_BLOCK_SIZE = 1 << 20


def stream_content_hash(path: Union[str, os.PathLike]) -> str:
    """Format-aware SHA-256 identity of a trace file's logical content.

    This is the content half of the artifact store's cache key
    (``repro.store``), and it is *format-independent*: the digest is
    defined as the SHA-256 of the stream's canonical JSONL serialization
    (what ``dumps_stream`` renders), so a trace converted between JSONL
    and RTB addresses the same store entries.

    Neither format pays a parse to be addressed:

    * JSONL files are hashed block-wise over their raw bytes — for
      canonically written files (``dump_corpus``, ``repro trace
      convert``) those bytes *are* the canonical serialization.  A
      hand-edited file with non-canonical spacing hashes to its own
      identity, which is merely a cache miss, never a wrong hit.
    * RTB files carry the canonical digest in their header, computed at
      encode time; addressing one costs a single small read.
    """
    from repro.trace import binary

    fspath = os.fspath(path)
    if str(fspath).endswith(binary.RTB_SUFFIX) or binary.is_rtb_file(fspath):
        return binary.read_content_hash(fspath)
    digest = hashlib.sha256()
    with open(fspath, "rb") as handle:
        for block in iter(lambda: handle.read(_HASH_BLOCK_SIZE), b""):
            digest.update(block)
    return digest.hexdigest()


def dump_corpus(
    streams: Iterable[TraceStream],
    directory: Union[str, os.PathLike],
    format: str = "jsonl",
) -> List[str]:
    """Write each stream to ``<directory>/<stream_id>.<format>``; return paths.

    ``format`` selects the encoding: ``"jsonl"`` (interop default) or
    ``"rtb"`` (binary columnar, ``repro.trace.binary``).  Files whose
    on-disk content already equals the stream's serialization are left
    untouched (same inode, same mtime, same content hash), so re-dumping
    a grown corpus rewrites only new or changed streams and
    artifact-store entries keyed by content hash stay warm.
    """
    from repro.trace import binary

    if format not in ("jsonl", "rtb"):
        raise SerializationError(
            f"unknown corpus format {format!r} (expected 'jsonl' or 'rtb')"
        )
    os.makedirs(directory, exist_ok=True)
    paths = []
    for stream in streams:
        name = f"{stream.stream_id}.{format}"
        path = os.path.join(os.fspath(directory), name)
        if format == "rtb":
            new_hash = binary.logical_content_hash(stream)
            if os.path.exists(path) and stream_content_hash(path) == new_hash:
                paths.append(path)
                continue
            with open(path, "wb") as handle:
                handle.write(
                    binary.dumps_stream_binary(stream, content_hash=new_hash)
                )
            paths.append(path)
            continue
        text = dumps_stream(stream)
        if os.path.exists(path):
            new_hash = hashlib.sha256(text.encode("utf-8")).hexdigest()
            if stream_content_hash(path) == new_hash:
                paths.append(path)
                continue
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(text)
        paths.append(path)
    return paths


#: Suffixes a corpus directory is scanned for, in no particular order;
#: the corpus order is defined over file names, not formats.
TRACE_SUFFIXES = (".jsonl", ".rtb")


def iter_corpus_paths(directory: Union[str, os.PathLike]) -> List[str]:
    """The trace-stream paths of a corpus directory, in corpus order.

    Both ``*.jsonl`` and ``*.rtb`` files are corpus members; corpus
    order is the lexicographic (code-point) order of the file *names* —
    the guarantee documented in ``docs/FORMAT.md``.  It makes every
    corpus traversal deterministic regardless of filesystem enumeration
    order, so sequential runs, chunked parallel runs and re-runs on
    other machines all see streams in the same order.

    A corpus holding the *same stream in both formats* (equal file
    stems, e.g. ``stream00003.jsonl`` next to ``stream00003.rtb``) is
    ambiguous — analyzing it would silently count that trace twice — so
    it is rejected with a :class:`SerializationError`; convert or remove
    one of the duplicates (``repro trace convert``).

    Returning paths instead of loaded streams lets callers ship cheap
    path lists to worker processes, each of which deserializes only its
    own chunk (streaming corpus loading).
    """
    root = os.fspath(directory)
    names = sorted(
        name for name in os.listdir(root) if name.endswith(TRACE_SUFFIXES)
    )
    seen: dict = {}
    for name in names:
        stem = name.rsplit(".", 1)[0]
        other = seen.get(stem)
        if other is not None:
            raise SerializationError(
                f"corpus {root!r} holds stream {stem!r} in two formats "
                f"({other!r} and {name!r}); analyzing both would count the "
                "trace twice - convert or remove one "
                "(repro trace convert)"
            )
        seen[stem] = name
    return [os.path.join(root, name) for name in names]


def load_corpus(
    directory: Union[str, os.PathLike],
    on_error: str = "strict",
    health=None,
) -> Iterator[TraceStream]:
    """Lazily yield a directory's trace streams, in corpus order.

    Streams are loaded one at a time as the iterator is consumed, so a
    corpus much larger than memory can be folded without materializing
    it; ordering follows :func:`iter_corpus_paths`.

    ``on_error`` is the corpus-level ingestion policy.  ``"strict"``
    (the default) raises on the first damaged file; ``"skip"`` drops
    unreadable files and keeps going; ``"salvage"`` additionally tries
    the lenient loaders first and drops a file only when nothing
    recoverable remains.  With ``health`` (a
    :class:`repro.resilience.RunHealth`), every drop and salvage is
    recorded as a structured ``TraceFailure``.
    """
    from repro.resilience.health import failure_from_exception, validate_on_error

    validate_on_error(on_error)
    for path in iter_corpus_paths(directory):
        if on_error == "strict":
            yield load_stream(path)
            continue
        try:
            stream = load_stream(path, on_error=on_error)
        except (TraceError, TraceSalvageError, OSError, UnicodeDecodeError) as exc:
            if health is not None:
                health.record_failure(
                    failure_from_exception(path, "ingest", "skipped", exc)
                )
            continue
        if health is not None and getattr(stream, "salvaged", False):
            health.record_failure(
                failure_from_exception(
                    path,
                    "ingest",
                    "salvaged",
                    TraceSalvageError(
                        f"recovered {len(stream.events)} events, "
                        f"{len(stream.instances)} instances "
                        f"(dropped {getattr(stream, 'salvage_dropped', 0)} "
                        "damaged records)"
                    ),
                )
            )
        yield stream


def dumps_stream(stream: TraceStream) -> str:
    """Serialize a stream to a JSONL string (round-trip convenience)."""
    buffer = io.StringIO()
    _dump(stream, buffer)
    return buffer.getvalue()


def loads_stream(text: str) -> TraceStream:
    """Parse a stream from a JSONL string."""
    return _load(io.StringIO(text))
