"""Random-duration helpers for workload and device models.

All helpers take an explicit ``random.Random`` so simulations stay
deterministic per seed, and all return integer microseconds (>= 1) so the
engine's exact-time arithmetic never sees floats.
"""

from __future__ import annotations

import math
import random


def lognormal_us(rng: random.Random, median_us: float, sigma: float = 0.5) -> int:
    """A log-normal duration around ``median_us``.

    Log-normal matches the heavy right tail of real IO and scheduling
    delays: most samples land near the median, occasional ones are several
    times larger — the raw material for a slow class.
    """
    value = median_us * math.exp(sigma * rng.gauss(0.0, 1.0))
    return max(1, round(value))


def uniform_us(rng: random.Random, low_us: float, high_us: float) -> int:
    """A uniform duration in ``[low_us, high_us]``."""
    return max(1, round(rng.uniform(low_us, high_us)))


def exponential_us(rng: random.Random, mean_us: float) -> int:
    """An exponential duration with the given mean (think times, arrivals)."""
    return max(1, round(rng.expovariate(1.0 / mean_us)))


def bernoulli(rng: random.Random, probability: float) -> bool:
    """A biased coin flip."""
    return rng.random() < probability


def skewed_file_id(
    rng: random.Random,
    hot_prob: float = 0.65,
    hot_set: int = 8,
    cold_range: int = 1 << 12,
) -> int:
    """A file id drawn from a hot-set-skewed popularity distribution.

    Real file access concentrates on a small working set (indexes, shared
    DLLs, the browser profile), which is what makes distinct threads land
    on the *same* MDU or File Table lock and contend.
    """
    if rng.random() < hot_prob:
        return rng.randrange(hot_set)
    return rng.randrange(cold_range)


def pareto_us(
    rng: random.Random, scale_us: float, alpha: float = 1.8, cap_us: float = 10_000_000
) -> int:
    """A Pareto duration: mostly ``scale_us``-ish with rare huge outliers.

    Used for the pathological tail (multi-second page-ins, congested
    links).  ``cap_us`` bounds the tail so a single sample cannot dominate
    an entire corpus.
    """
    value = scale_us * rng.paretovariate(alpha)
    return max(1, round(min(value, cap_us)))
