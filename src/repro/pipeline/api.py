"""Map–reduce entry points: parallel impact, causality and study runs.

Each entry point accepts *corpus sources* — trace-file paths (workers
deserialize their own chunks; nothing heavy crosses the pool) and/or
already-loaded :class:`~repro.trace.stream.TraceStream` objects (shared
with forked workers by address-space inheritance).  Sources are split
into contiguous chunks, fanned out over a fork pool (map), and the
per-chunk partials are folded in chunk order (reduce):

* impact accumulators merge by summation and distinct-event dict union;
* partial AWGs merge via :func:`repro.waitgraph.aggregate.merge_awgs`,
  with Algorithm 1's non-optimizable reduction applied once, post-merge;
* contrast mining, ranking and coverage run on the merged structures.

Because chunks are contiguous and partials fold in order, every entry
point is a drop-in replacement for its sequential counterpart: the
results — down to trie node insertion order and rendered study tables —
are identical for any worker count and chunk size.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.causality.analyzer import CausalityReport, assemble_report
from repro.causality.classes import ContrastClasses
from repro.causality.mining import DEFAULT_SEGMENT_BOUND
from repro.causality.ranking import coverage_curve
from repro.errors import AnalysisError, WorkerCrashError
from repro.evaluation.coverage import coverage_from_impact
from repro.evaluation.drivertypes import categorize_top_patterns
from repro.evaluation.study import (
    RANKING_FRACTIONS,
    ScenarioStudy,
    StudyResult,
)
from repro.impact.metrics import ImpactAccumulator, ImpactResult
from repro.pipeline.chunking import chunk_sources, default_chunk_size
from repro.pipeline.executor import process_map, process_map_resilient
from repro.pipeline.worker import (
    ChunkPartial,
    ChunkTask,
    ScenarioPartial,
    analyze_chunk,
    merge_chunk_partials,
    restore_inherited_corpus,
    set_inherited_corpus,
    source_label,
)
from repro.resilience.health import (
    RunHealth,
    failure_from_exception,
    validate_max_retries,
    validate_on_error,
)
from repro.sim.workloads.registry import (
    SCENARIO_NAMES,
    SCENARIO_SPECS,
    scenario_spec,
)
from repro.store import ArtifactStore, analysis_fingerprint
from repro.trace.signatures import ComponentFilter
from repro.trace.stream import TraceStream
from repro.waitgraph.aggregate import merge_awgs

#: What callers hand us: trace-file paths or loaded streams.
CorpusSource = Union[str, os.PathLike, TraceStream]

#: How callers name an artifact store: a directory (created on demand)
#: or an already-open handle (whose session hit/miss counters the run
#: will update).
StoreInput = Union[str, os.PathLike, ArtifactStore]


def open_store(store: Optional[StoreInput]) -> Optional[ArtifactStore]:
    """Normalize a store argument into an open handle (or ``None``)."""
    if store is None or isinstance(store, ArtifactStore):
        return store
    return ArtifactStore(store)


@dataclass
class MapPhaseStats:
    """Observability counters for one map phase (one ``_run_chunks``).

    Pass an instance via the ``stats=`` keyword of any parallel entry
    point and it is filled in place once the map phase completes — the
    analysis result itself is unaffected.  ``repro impact/causality/study
    --verbose`` render one through :meth:`summary` on stderr.
    """

    #: wall-clock seconds spent in the fan-out (chunking + pool + fold
    #: of the hit/miss counters; reduce time is excluded by design).
    wall_seconds: float = 0.0
    streams: int = 0
    events: int = 0
    chunks: int = 0
    workers: int = 0
    #: corpus sources by encoding: ``"rtb"``, ``"jsonl"`` (any
    #: non-RTB file path) and ``"memory"`` for in-process streams.
    formats: Dict[str, int] = field(default_factory=dict)
    store_hits: int = 0
    store_misses: int = 0

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events / self.wall_seconds

    def summary(self) -> str:
        """The one-line human-readable rendering of these counters."""
        fmt = "+".join(
            f"{count} {name}"
            for name, count in sorted(self.formats.items())
        ) or "none"
        line = (
            f"map phase: {self.events} events / {self.streams} streams "
            f"({fmt}) in {self.wall_seconds:.2f}s = "
            f"{self.events_per_second:,.0f} events/s "
            f"[workers={self.workers} chunks={self.chunks}]"
        )
        lookups = self.store_hits + self.store_misses
        if lookups:
            rate = 100.0 * self.store_hits / lookups
            line += (
                f" store: {self.store_hits}/{lookups} hits ({rate:.1f}%)"
            )
        return line


def _run_chunks(
    sources: Sequence[CorpusSource],
    component_patterns: Sequence[str],
    thresholds: Dict[str, Tuple[int, int]],
    want_impact: bool,
    impact_scenarios: Optional[Sequence[str]],
    workers: int,
    chunk_size: Optional[int],
    store: Optional[StoreInput] = None,
    stats: Optional[MapPhaseStats] = None,
    on_error: str = "strict",
    max_retries: int = 2,
    health: Optional[RunHealth] = None,
) -> List[ChunkPartial]:
    """Chunk the sources, fan out the map phase, return ordered partials.

    With a ``store``, each task carries the store directory plus the
    analysis fingerprint so workers run read-through/write-back per
    stream; the workers' hit/miss counts come back on the partials and
    are folded into the parent-side handle's session counters.  A
    ``stats`` object, when given, is filled with the map phase's
    throughput counters.

    ``on_error``, ``max_retries`` and ``health`` are the fault-isolation
    surface (``repro.resilience``): any non-strict policy — and any
    multi-worker run — executes through the crash-recovering executor,
    per-trace failures recorded inside the partials are folded into
    ``health``, and a trace that persistently kills workers is
    quarantined (non-strict) or aborts with
    :class:`~repro.errors.WorkerCrashError` (strict).
    """
    validate_on_error(on_error)
    validate_max_retries(max_retries)
    started = time.perf_counter()
    sources = list(sources)
    if not sources:
        raise AnalysisError("the pipeline needs at least one corpus source")
    store_handle = open_store(store)
    fingerprint = None
    if store_handle is not None:
        fingerprint = analysis_fingerprint(
            component_patterns, thresholds, want_impact, impact_scenarios
        )
    in_memory: List[TraceStream] = []
    task_sources: List = []
    for source in sources:
        if isinstance(source, TraceStream):
            task_sources.append(len(in_memory))
            in_memory.append(source)
        else:
            task_sources.append(os.fspath(source))
    if chunk_size is None:
        chunk_size = default_chunk_size(len(task_sources), workers)
    tasks = [
        ChunkTask(
            sources=tuple(chunk),
            component_patterns=tuple(component_patterns),
            thresholds=dict(thresholds),
            want_impact=want_impact,
            impact_scenarios=(
                tuple(impact_scenarios)
                if impact_scenarios is not None
                else None
            ),
            store_dir=(
                store_handle.directory if store_handle is not None else None
            ),
            store_fingerprint=fingerprint,
            on_error=on_error,
        )
        for chunk in chunk_sources(task_sources, chunk_size)
    ]

    def split_chunk(task: ChunkTask):
        if len(task.sources) < 2:
            return None
        mid = len(task.sources) // 2
        return (
            replace(task, sources=task.sources[:mid]),
            replace(task, sources=task.sources[mid:]),
        )

    def failed_chunk(task: ChunkTask, exc: BaseException) -> ChunkPartial:
        labels = ", ".join(source_label(s) for s in task.sources)
        if on_error == "strict":
            raise WorkerCrashError(
                f"worker kept dying while analyzing {labels}; retry, "
                "bisection and in-process fallback budgets are exhausted "
                "(rerun with --on-error skip to quarantine the trace)"
            ) from exc
        partial = ChunkPartial(impact=None, scenarios={}, present=[])
        for source in task.sources:
            partial.failures.append(
                failure_from_exception(
                    source_label(source),
                    "executor",
                    "quarantined",
                    exc,
                    note="persistently failing trace",
                )
            )
            if store_handle is not None and isinstance(source, str):
                store_handle.quarantine_trace(
                    source, f"{exc.__class__.__name__}: {exc}"
                )
        return partial

    previous = set_inherited_corpus(in_memory)
    try:
        if on_error == "strict" and workers <= 1:
            partials = process_map(analyze_chunk, tasks, workers)
        else:
            partials = process_map_resilient(
                analyze_chunk,
                tasks,
                workers,
                split=split_chunk,
                merge=lambda parts: merge_chunk_partials(parts, tasks[0]),
                failed=failed_chunk,
                max_retries=max_retries,
                health=health,
            )
    finally:
        restore_inherited_corpus(previous)
    if health is not None:
        health.analyzed += sum(partial.streams for partial in partials)
        for partial in partials:
            for failure in partial.failures:
                health.record_failure(failure)
    if store_handle is not None:
        store_handle.record_session(
            hits=sum(partial.store_hits for partial in partials),
            misses=sum(partial.store_misses for partial in partials),
        )
    if stats is not None:
        stats.wall_seconds = time.perf_counter() - started
        stats.streams = sum(partial.streams for partial in partials)
        stats.events = sum(partial.events for partial in partials)
        stats.chunks = len(tasks)
        stats.workers = workers
        stats.store_hits = sum(p.store_hits for p in partials)
        stats.store_misses = sum(p.store_misses for p in partials)
        for source in sources:
            if isinstance(source, TraceStream):
                name = "memory"
            elif str(os.fspath(source)).endswith(".rtb"):
                name = "rtb"
            else:
                name = "jsonl"
            stats.formats[name] = stats.formats.get(name, 0) + 1
    return partials


def _merge_impact(
    partials: Sequence[ChunkPartial], component_patterns: Sequence[str]
) -> ImpactAccumulator:
    merged = ImpactAccumulator(ComponentFilter(component_patterns))
    for partial in partials:
        if partial.impact is not None:
            merged.merge(partial.impact)
    return merged


def _present_scenarios(partials: Sequence[ChunkPartial]) -> List[str]:
    """Scenario names present in the corpus, first-appearance order."""
    seen = set()
    present: List[str] = []
    for partial in partials:
        for name in partial.present:
            if name not in seen:
                seen.add(name)
                present.append(name)
    return present


def _reduce_scenario(
    name: str,
    t_fast: int,
    t_slow: int,
    partials: Sequence[ChunkPartial],
    segment_bound: int,
    reduce_hw: bool,
) -> Tuple[Optional[CausalityReport], Optional[ImpactResult]]:
    """Merge one scenario's chunk partials into its causality report.

    Returns ``(None, None)`` when the scenario has no instances, and the
    merged slow-class impact result alongside the report otherwise.
    """
    scenario_partials: List[ScenarioPartial] = [
        partial.scenarios[name]
        for partial in partials
        if name in partial.scenarios
    ]
    if not scenario_partials:
        return None, None
    classes = ContrastClasses(scenario=name, t_fast=t_fast, t_slow=t_slow)
    for partial in scenario_partials:
        classes.fast.extend(partial.fast_refs)
        classes.slow.extend(partial.slow_refs)
        classes.between.extend(partial.between_refs)
    fast_awg = merge_awgs(
        [partial.fast_awg for partial in scenario_partials],
        reduce_hw=reduce_hw,
    )
    slow_awg = merge_awgs(
        [partial.slow_awg for partial in scenario_partials],
        reduce_hw=reduce_hw,
    )
    slow_impact = ImpactAccumulator(fast_awg.component_filter)
    for partial in scenario_partials:
        slow_impact.merge(partial.slow_impact)
    report = assemble_report(
        scenario=name,
        t_fast=t_fast,
        t_slow=t_slow,
        classes=classes,
        fast_awg=fast_awg,
        slow_awg=slow_awg,
        segment_bound=segment_bound,
    )
    impact = slow_impact.result() if slow_impact.graphs else None
    return report, impact


def parallel_impact(
    sources: Sequence[CorpusSource],
    component_patterns: Sequence[str] = ("*.sys",),
    scenarios: Optional[Sequence[str]] = None,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    store: Optional[StoreInput] = None,
    stats: Optional[MapPhaseStats] = None,
    on_error: str = "strict",
    max_retries: int = 2,
    health: Optional[RunHealth] = None,
) -> ImpactResult:
    """Impact analysis (§3) over a corpus, fanned out across workers.

    Equivalent to ``ImpactAnalysis(patterns).analyze_corpus(...)`` for
    any worker count, with or without an artifact ``store``.  Under a
    non-strict ``on_error`` policy the result equals the strict analysis
    of the corpus's surviving traces; ``health`` collects what was
    skipped, salvaged and quarantined.
    """
    partials = _run_chunks(
        sources,
        component_patterns,
        thresholds={},
        want_impact=True,
        impact_scenarios=scenarios,
        workers=workers,
        chunk_size=chunk_size,
        store=store,
        stats=stats,
        on_error=on_error,
        max_retries=max_retries,
        health=health,
    )
    merged = _merge_impact(partials, component_patterns)
    if not merged.graphs:
        raise AnalysisError("impact analysis needs at least one instance")
    return merged.result()


def parallel_causality(
    sources: Sequence[CorpusSource],
    scenario: str,
    t_fast: int,
    t_slow: int,
    component_patterns: Sequence[str] = ("*.sys",),
    segment_bound: int = DEFAULT_SEGMENT_BOUND,
    reduce_hw: bool = True,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    store: Optional[StoreInput] = None,
    stats: Optional[MapPhaseStats] = None,
    on_error: str = "strict",
    max_retries: int = 2,
    health: Optional[RunHealth] = None,
) -> CausalityReport:
    """Causality analysis (§4) of one scenario, fanned out across workers.

    Equivalent to ``CausalityAnalysis(...).analyze(...)`` over the
    scenario's instances in corpus order, for any worker count.
    """
    if segment_bound < 1:
        raise AnalysisError("segment_bound must be >= 1")
    if not t_fast < t_slow:
        raise AnalysisError(
            f"T_fast ({t_fast}) must be strictly below T_slow ({t_slow})"
        )
    partials = _run_chunks(
        sources,
        component_patterns,
        thresholds={scenario: (t_fast, t_slow)},
        want_impact=False,
        impact_scenarios=None,
        workers=workers,
        chunk_size=chunk_size,
        store=store,
        stats=stats,
        on_error=on_error,
        max_retries=max_retries,
        health=health,
    )
    report, _ = _reduce_scenario(
        scenario, t_fast, t_slow, partials, segment_bound, reduce_hw
    )
    if report is None:
        present = ", ".join(sorted(_present_scenarios(partials)))
        raise AnalysisError(
            f"no instances of {scenario!r} in the corpus"
            + (f"; scenarios present: {present}" if present else "")
        )
    return report


def _study_thresholds(
    scenarios: Optional[Sequence[str]],
) -> Dict[str, Tuple[int, int]]:
    """The per-scenario threshold table a study run classifies against.

    Unknown requested scenarios are dropped here and fail at reduce time
    only when the corpus actually contains them, matching the sequential
    driver.
    """
    if scenarios is not None:
        return {
            name: (SCENARIO_SPECS[name].t_fast, SCENARIO_SPECS[name].t_slow)
            for name in scenarios
            if name in SCENARIO_SPECS
        }
    return {
        name: (spec.t_fast, spec.t_slow)
        for name, spec in SCENARIO_SPECS.items()
    }


def prewarm_store(
    sources: Sequence[CorpusSource],
    store: StoreInput,
    component_patterns: Sequence[str] = ("*.sys",),
    scenarios: Optional[Sequence[str]] = None,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    stats: Optional[MapPhaseStats] = None,
    on_error: str = "strict",
    max_retries: int = 2,
    health: Optional[RunHealth] = None,
) -> ArtifactStore:
    """Populate a store with full-study partials without reducing them.

    Runs exactly the map phase :func:`parallel_study` would run — same
    thresholds, same fingerprint — so a subsequent ``repro study
    --store`` over the same corpus and configuration is all cache hits.
    Returns the store handle; its session counters say how many streams
    were already warm (``hits``) versus newly computed (``misses``).
    """
    handle = open_store(store)
    _run_chunks(
        sources,
        component_patterns,
        thresholds=_study_thresholds(scenarios),
        want_impact=True,
        impact_scenarios=None,
        workers=workers,
        chunk_size=chunk_size,
        store=handle,
        stats=stats,
        on_error=on_error,
        max_retries=max_retries,
        health=health,
    )
    return handle


def parallel_study(
    sources: Sequence[CorpusSource],
    scenarios: Optional[Sequence[str]] = None,
    component_patterns: Sequence[str] = ("*.sys",),
    segment_bound: int = DEFAULT_SEGMENT_BOUND,
    top_n: int = 10,
    workers: int = 1,
    chunk_size: Optional[int] = None,
    store: Optional[StoreInput] = None,
    stats: Optional[MapPhaseStats] = None,
    on_error: str = "strict",
    max_retries: int = 2,
    health: Optional[RunHealth] = None,
) -> StudyResult:
    """The full §5 evaluation over a corpus, fanned out across workers.

    Equivalent to :func:`repro.evaluation.study.run_study` — same
    tables, same pattern rankings, same coverages — for any worker count
    and chunk size.  The map phase builds each instance's Wait Graph
    exactly once per chunk and ships back only mergeable partials.
    Under ``on_error="skip"``/``"salvage"`` the tables are byte-identical
    to a strict study of the corpus's surviving traces (the fuzz
    property the resilience tests pin down); ``health`` collects every
    skip, salvage, retry and quarantine.
    """
    thresholds = _study_thresholds(scenarios)
    partials = _run_chunks(
        sources,
        component_patterns,
        thresholds=thresholds,
        want_impact=True,
        impact_scenarios=None,
        workers=workers,
        chunk_size=chunk_size,
        store=store,
        stats=stats,
        on_error=on_error,
        max_retries=max_retries,
        health=health,
    )
    merged_impact = _merge_impact(partials, component_patterns)
    if not merged_impact.graphs:
        raise AnalysisError("impact analysis needs at least one instance")
    result = StudyResult(impact=merged_impact.result())

    # Reproduce group_by_scenario's ordering: requested order when given,
    # otherwise Table 1 registry order followed by any other scenarios in
    # corpus appearance order.
    present = _present_scenarios(partials)
    if scenarios is not None:
        ordered = [name for name in scenarios if name in present]
    else:
        ordered = [name for name in SCENARIO_NAMES if name in present]
        ordered += [name for name in present if name not in SCENARIO_NAMES]

    for name in ordered:
        spec = scenario_spec(name)
        report, slow_impact = _reduce_scenario(
            name,
            spec.t_fast,
            spec.t_slow,
            partials,
            segment_bound,
            reduce_hw=True,
        )
        if report is None:
            continue
        coverage = coverage_from_impact(report, slow_impact)
        result.scenarios[name] = ScenarioStudy(
            report=report,
            coverage=coverage,
            ranking_coverage=coverage_curve(
                report.patterns, RANKING_FRACTIONS
            ),
            top_driver_types=categorize_top_patterns(report.patterns, top_n),
        )
    return result
