#!/usr/bin/env python3
"""Investigating a UI hang: the paper's §5.2.4 hard-fault case.

An AppNonResponsive burst freezes for seconds.  A CPU profiler sees
almost nothing (the UI thread is *waiting*, not running); a per-lock view
shows the GPU context lock but cannot say why its holder stalled.  The
Wait Graph pipeline walks the chain: the UI waits on graphics.sys's GPU
context, held by a system routine that hard-faulted, whose page-in went
through fs.sys and se.sys to a slow disk.

Run:  python examples/hard_fault_investigation.py
"""

from repro.baselines import analyze_lock_contention, profile_corpus
from repro.causality import CausalityAnalysis
from repro.report.figures import render_wait_graph
from repro.report.tables import Table, fmt_pct, fmt_us
from repro.sim.casestudy import (
    HARDFAULT_SCENARIO,
    HARDFAULT_T_FAST,
    HARDFAULT_T_SLOW,
    run_hardfault_case,
)
from repro.trace.signatures import ALL_DRIVERS
from repro.waitgraph.builder import build_wait_graph


def main() -> None:
    print("Simulating the incident (encrypted storage, slow disk, large")
    print("pageable graphics structure) ...\n")
    result = run_hardfault_case()
    hang = result.slow_instance
    print(f"{len(result.instances)} AppNonResponsive bursts; one hung for "
          f"{hang.duration / 1e6:.2f} s (paper's case: about 4.7 s).\n")

    # ------------------------------------------------------------------
    # What the baselines can tell us
    # ------------------------------------------------------------------
    profile = profile_corpus([result.stream])
    locks = analyze_lock_contention([result.stream])
    table = Table(["Tool", "What it reports"], title="Baseline views")
    table.add_row(
        "CPU profiler",
        f"drivers use {fmt_pct(profile.component_cpu_share(ALL_DRIVERS))} "
        "of CPU - nothing looks wrong",
    )
    top_lock = locks.top_locks(1)
    if top_lock:
        table.add_row(
            "Lock profiler",
            f"{top_lock[0].resource} waited "
            f"{fmt_us(top_lock[0].total_wait)} - but why?",
        )
    print(table.render())
    print()

    # ------------------------------------------------------------------
    # What the Wait Graph shows
    # ------------------------------------------------------------------
    print("The hanging instance's Wait Graph (who waited on whom):")
    print(render_wait_graph(build_wait_graph(hang), max_depth=7))
    print()

    # ------------------------------------------------------------------
    # What causality analysis distills
    # ------------------------------------------------------------------
    report = CausalityAnalysis(["*.sys"]).analyze(
        result.instances,
        HARDFAULT_T_FAST,
        HARDFAULT_T_SLOW,
        scenario=HARDFAULT_SCENARIO,
    )
    print("Top discovered contrast pattern:")
    print(report.patterns[0].sst.render(indent="  "))
    print("\ngraphics.sys appearing with the storage stack is the paper's")
    print("hard-fault signature: the driver paged, and solving the fault")
    print("cost seconds of disk and decryption time. The fix the paper")
    print("suggests: drivers should minimize pageable memory.")


if __name__ == "__main__":
    main()
