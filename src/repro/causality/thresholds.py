"""Threshold suggestion for contrast classification.

The paper requires developers to specify ``T_fast`` and ``T_slow`` per
scenario as part of the performance specification.  When no specification
exists yet (a new scenario, an unfamiliar codebase), analysts need a
starting point; this module derives candidate thresholds from the
observed duration distribution while preserving the paper's requirements:
``T_fast < T_slow`` with a wide gap (``T_slow - T_fast >> 0``) so the
contrast classes stay unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from repro.errors import AnalysisError
from repro.trace.stream import ScenarioInstance


@dataclass(frozen=True)
class ThresholdSuggestion:
    """Suggested performance thresholds with their provenance."""

    scenario: str
    t_fast: int
    t_slow: int
    sample_size: int
    fast_fraction: float   # instances below t_fast in the sample
    slow_fraction: float   # instances above t_slow in the sample

    @property
    def gap(self) -> int:
        return self.t_slow - self.t_fast


def _percentile(ordered: Sequence[int], fraction: float) -> int:
    index = min(len(ordered) - 1, int(len(ordered) * fraction))
    return ordered[index]


def suggest_thresholds(
    durations: Iterable[int],
    scenario: str = "",
    fast_quantile: float = 0.40,
    slow_quantile: float = 0.70,
    min_gap_ratio: float = 1.5,
) -> ThresholdSuggestion:
    """Suggest ``(T_fast, T_slow)`` from observed durations.

    ``T_fast`` lands at the ``fast_quantile`` of the distribution (the
    bulk of normal executions fall below it) and ``T_slow`` at the
    ``slow_quantile``, then is pushed up until ``T_slow >= min_gap_ratio
    * T_fast`` so the classes cannot blur together on a tight
    distribution.
    """
    ordered = sorted(durations)
    if len(ordered) < 10:
        raise AnalysisError(
            f"threshold suggestion needs at least 10 durations, got "
            f"{len(ordered)}"
        )
    if not 0.0 < fast_quantile < slow_quantile < 1.0:
        raise AnalysisError(
            "quantiles must satisfy 0 < fast < slow < 1, got "
            f"{fast_quantile}/{slow_quantile}"
        )
    t_fast = max(1, _percentile(ordered, fast_quantile))
    t_slow = max(
        _percentile(ordered, slow_quantile),
        round(t_fast * min_gap_ratio),
    )
    if t_slow <= t_fast:  # defensive: degenerate distributions
        t_slow = t_fast + max(1, t_fast // 2)
    fast_count = sum(1 for value in ordered if value < t_fast)
    slow_count = sum(1 for value in ordered if value > t_slow)
    return ThresholdSuggestion(
        scenario=scenario,
        t_fast=t_fast,
        t_slow=t_slow,
        sample_size=len(ordered),
        fast_fraction=fast_count / len(ordered),
        slow_fraction=slow_count / len(ordered),
    )


def suggest_for_instances(
    instances: Sequence[ScenarioInstance],
    fast_quantile: float = 0.40,
    slow_quantile: float = 0.70,
) -> ThresholdSuggestion:
    """Suggest thresholds for one scenario's instances."""
    if not instances:
        raise AnalysisError("no instances to derive thresholds from")
    scenarios = {instance.scenario for instance in instances}
    if len(scenarios) != 1:
        raise AnalysisError(
            f"instances span multiple scenarios: {sorted(scenarios)}"
        )
    return suggest_thresholds(
        (instance.duration for instance in instances),
        scenario=instances[0].scenario,
        fast_quantile=fast_quantile,
        slow_quantile=slow_quantile,
    )


def suggest_for_corpus(
    streams,
    fast_quantile: float = 0.40,
    slow_quantile: float = 0.70,
    min_samples: int = 10,
) -> List[ThresholdSuggestion]:
    """Suggest thresholds for every sufficiently-sampled scenario."""
    durations = {}
    for stream in streams:
        for instance in stream.instances:
            durations.setdefault(instance.scenario, []).append(
                instance.duration
            )
    suggestions = []
    for scenario in sorted(durations):
        values = durations[scenario]
        if len(values) < min_samples:
            continue
        suggestions.append(
            suggest_thresholds(
                values,
                scenario=scenario,
                fast_quantile=fast_quantile,
                slow_quantile=slow_quantile,
            )
        )
    return suggestions
