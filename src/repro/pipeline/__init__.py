"""Parallel map–reduce analysis pipeline.

Scales the paper-scale workload (≈19,500 trace streams, 339 compute
hours) by partitioned graph construction with a cheap merge step: corpus
sources are chunked, workers build Wait Graphs and *partial* Aggregated
Wait Graphs per chunk (map), and the partials merge deterministically
into results identical to a sequential run (reduce).  See
``docs/PIPELINE.md`` for the architecture and knobs.
"""

from repro.pipeline.api import (
    CorpusSource,
    MapPhaseStats,
    StoreInput,
    open_store,
    parallel_causality,
    parallel_impact,
    parallel_study,
    prewarm_store,
)
from repro.pipeline.chunking import chunk_sources, default_chunk_size
from repro.pipeline.executor import (
    fork_available,
    process_map,
    process_map_resilient,
)
from repro.pipeline.worker import (
    ChunkPartial,
    ChunkTask,
    InstanceRef,
    ScenarioPartial,
    analyze_chunk,
    merge_chunk_partials,
    merge_scenario_partials,
)

__all__ = [
    "ChunkPartial",
    "ChunkTask",
    "CorpusSource",
    "InstanceRef",
    "MapPhaseStats",
    "ScenarioPartial",
    "StoreInput",
    "analyze_chunk",
    "chunk_sources",
    "default_chunk_size",
    "fork_available",
    "merge_chunk_partials",
    "merge_scenario_partials",
    "open_store",
    "parallel_causality",
    "parallel_impact",
    "parallel_study",
    "prewarm_store",
    "process_map",
    "process_map_resilient",
]
