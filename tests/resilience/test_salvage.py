"""Lenient ingestion: salvage/skip policies and diagnosable RTB errors."""

import pytest

from repro.errors import SerializationError, TraceError, TraceSalvageError
from repro.resilience import RunHealth
from repro.trace import (
    dump_stream,
    dump_stream_binary,
    load_corpus,
    load_stream,
    validate_stream,
)


@pytest.fixture()
def jsonl_path(propagation_stream, tmp_path):
    path = tmp_path / "prop.jsonl"
    dump_stream(propagation_stream, path)
    return path


@pytest.fixture()
def rtb_path(small_corpus, tmp_path):
    path = tmp_path / "big.rtb"
    dump_stream_binary(small_corpus[0], path)
    return path


class TestJsonlSalvage:
    def test_intact_file_loads_unmarked(self, jsonl_path):
        stream = load_stream(jsonl_path, on_error="salvage")
        assert not getattr(stream, "salvaged", False)

    def test_truncated_file_salvages_prefix(self, jsonl_path, propagation_stream):
        data = jsonl_path.read_bytes()
        jsonl_path.write_bytes(data[: int(len(data) * 0.6)])
        with pytest.raises(TraceError):
            load_stream(jsonl_path)
        stream = load_stream(jsonl_path, on_error="salvage")
        assert stream.salvaged
        assert 0 < len(stream.events) < len(propagation_stream.events)
        validate_stream(stream)

    def test_garbage_line_is_dropped(self, jsonl_path):
        lines = jsonl_path.read_bytes().split(b"\n")
        lines.insert(3, b"{not json at all")
        jsonl_path.write_bytes(b"\n".join(lines))
        stream = load_stream(jsonl_path, on_error="salvage")
        assert stream.salvaged
        assert stream.salvage_dropped >= 1
        validate_stream(stream)

    def test_destroyed_header_is_unrecoverable(self, jsonl_path):
        lines = jsonl_path.read_bytes().split(b"\n")
        jsonl_path.write_bytes(b"\n".join([b"???"] + lines[1:]))
        with pytest.raises(TraceSalvageError):
            load_stream(jsonl_path, on_error="salvage")

    def test_empty_file_is_unrecoverable(self, jsonl_path):
        jsonl_path.write_bytes(b"")
        with pytest.raises(TraceSalvageError):
            load_stream(jsonl_path, on_error="salvage")

    def test_skip_policy_still_raises_per_file(self, jsonl_path):
        # Skipping happens at the corpus level; a single-file load under
        # "skip" is as strict as "strict".
        jsonl_path.write_bytes(b"")
        with pytest.raises(TraceError):
            load_stream(jsonl_path, on_error="skip")

    def test_unknown_policy_rejected(self, jsonl_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="--on-error"):
            load_stream(jsonl_path, on_error="lenient")


class TestRtbSalvage:
    def test_truncated_file_salvages_prefix(self, rtb_path, small_corpus):
        # Cut inside the trailing instance/thread sections: the event
        # columns survive, the damaged tail is dropped.
        data = rtb_path.read_bytes()
        rtb_path.write_bytes(data[: int(len(data) * 0.99)])
        with pytest.raises(SerializationError):
            load_stream(rtb_path)
        stream = load_stream(rtb_path, on_error="salvage")
        assert stream.salvaged
        assert 0 < len(stream.events) <= len(small_corpus[0].events)
        validate_stream(stream)

    def test_bytes_salvage_matches_file_salvage(self, rtb_path):
        from repro.trace.binary import loads_stream_binary

        data = rtb_path.read_bytes()[: int(rtb_path.stat().st_size * 0.99)]
        rtb_path.write_bytes(data)
        from_file = load_stream(rtb_path, on_error="salvage")
        from_bytes = loads_stream_binary(data, on_error="salvage")
        assert from_bytes.salvaged
        assert list(from_bytes.events) == list(from_file.events)

    def test_wrecked_header_is_unrecoverable(self, rtb_path):
        rtb_path.write_bytes(b"\x00" * 64)
        with pytest.raises(TraceSalvageError):
            load_stream(rtb_path, on_error="salvage")


class TestRtbStrictDiagnostics:
    """Satellite: damaged RTB files raise SerializationError (never a bare
    ValueError/struct.error) and the message says which file and where."""

    def test_truncated_meta_names_file_and_offset(self, rtb_path):
        rtb_path.write_bytes(rtb_path.read_bytes()[:40])
        with pytest.raises(SerializationError) as excinfo:
            load_stream(rtb_path)
        message = str(excinfo.value)
        assert str(rtb_path) in message
        assert "offset" in message

    def test_short_body_names_file_and_bounds(self, rtb_path):
        data = rtb_path.read_bytes()
        rtb_path.write_bytes(data[: int(len(data) * 0.8)])
        with pytest.raises(SerializationError) as excinfo:
            load_stream(rtb_path)
        message = str(excinfo.value)
        assert str(rtb_path) in message
        assert "bounds" in message or "offset" in message or "count" in message

    def test_mangled_body_never_leaks_bare_errors(self, rtb_path):
        data = bytearray(rtb_path.read_bytes())
        body = len(data) // 2
        data[body : body + 64] = b"\xff" * 64
        rtb_path.write_bytes(bytes(data))
        try:
            load_stream(rtb_path)
        except SerializationError as error:
            assert str(rtb_path) in str(error)
        # A flip that lands in slack space may leave the file readable —
        # that is fine; the assertion is it never raises anything else.

    def test_zero_byte_file_is_a_serialization_error(self, rtb_path):
        rtb_path.write_bytes(b"")
        with pytest.raises(SerializationError):
            from repro.trace.binary import load_stream_binary

            load_stream_binary(rtb_path)


class TestLoadCorpusPolicies:
    def _corpus(self, tmp_path, propagation_stream):
        good = tmp_path / "a_good.jsonl"
        bad = tmp_path / "b_bad.jsonl"
        dump_stream(propagation_stream, good)
        bad.write_bytes(b"{broken\n")
        return tmp_path

    def test_strict_raises_on_first_bad_file(self, tmp_path, propagation_stream):
        corpus = self._corpus(tmp_path, propagation_stream)
        with pytest.raises(TraceError):
            list(load_corpus(corpus))

    def test_skip_drops_and_records(self, tmp_path, propagation_stream):
        corpus = self._corpus(tmp_path, propagation_stream)
        health = RunHealth()
        streams = list(load_corpus(corpus, on_error="skip", health=health))
        assert [s.stream_id for s in streams] == [propagation_stream.stream_id]
        assert health.skipped == 1
        assert health.failures[0].action == "skipped"
        assert "b_bad" in health.failures[0].source

    def test_salvage_records_salvaged_streams(self, tmp_path, propagation_stream):
        corpus = self._corpus(tmp_path, propagation_stream)
        # Make the broken file salvageable: valid header, one bad line.
        good_lines = (corpus / "a_good.jsonl").read_bytes().split(b"\n")
        (corpus / "b_bad.jsonl").write_bytes(
            b"\n".join(good_lines[:1] + [b"{broken"] + good_lines[1:])
        )
        health = RunHealth()
        streams = list(load_corpus(corpus, on_error="salvage", health=health))
        assert len(streams) == 2
        assert health.salvaged == 1
        assert health.skipped == 0
