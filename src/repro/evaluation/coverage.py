"""Execution-time coverage metrics (paper §5.2.1–5.2.2, Table 2).

For each scenario's slow class:

* **driver cost share** — distinct driver execution time (wait + run,
  each trace event counted once, as measured by impact analysis over the
  slow instances) over the class's total execution time (the "Driver
  Cost" column);
* **ITC** (impactful-time coverage) — summed ``P.C`` of the high-impact
  contrast patterns over the slow class's total represented driver time;
* **TTC** (total-time coverage) — summed ``P.C`` of all contrast patterns
  over the same total;
* **non-optimizable share** — driver cost removed by Algorithm 1's
  reduction (direct hardware service without propagation) over the same
  total (the paper's BrowserTabSwitch 66.6% observation).

The ITC/TTC denominator is the slow Aggregated Wait Graph's own
accounting — the summed cost of its leaf nodes plus the hardware cost the
reduction removed — so numerator and denominator count cost-propagation
multiplicity identically and the coverages are true fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.causality.analyzer import CausalityReport
from repro.impact.metrics import ImpactAccumulator, ImpactResult
from repro.trace.signatures import ComponentFilter
from repro.waitgraph.builder import build_wait_graph
from repro.waitgraph.graph import WaitGraph


@dataclass(frozen=True)
class CoverageResult:
    """Table 2 row (plus the non-optimizable share) for one scenario."""

    scenario: str
    slow_instances: int
    slow_total_time: int
    distinct_driver_time: int
    driver_time: int
    itc_time: int
    ttc_time: int
    reduced_hw_time: int
    pattern_count: int
    high_impact_count: int

    @property
    def driver_cost_share(self) -> float:
        """Distinct driver time over total slow-class execution time."""
        if not self.slow_total_time:
            return 0.0
        return self.distinct_driver_time / self.slow_total_time

    @property
    def itc(self) -> float:
        """Impactful-time coverage over the total driver time."""
        return self.itc_time / self.driver_time if self.driver_time else 0.0

    @property
    def ttc(self) -> float:
        """Total-time coverage over the total driver time."""
        return self.ttc_time / self.driver_time if self.driver_time else 0.0

    @property
    def non_optimizable_share(self) -> float:
        """Share of driver time pruned as direct hardware service."""
        return (
            self.reduced_hw_time / self.driver_time if self.driver_time else 0.0
        )


def evaluate_coverage(
    report: CausalityReport,
    component_filter: ComponentFilter,
    graph_cache: Optional[Dict[tuple, WaitGraph]] = None,
) -> CoverageResult:
    """Compute the Table 2 coverages for one scenario's causality report."""
    accumulator = ImpactAccumulator(component_filter)
    for instance in report.classes.slow:
        if graph_cache is not None and instance.key in graph_cache:
            graph = graph_cache[instance.key]
        else:
            graph = build_wait_graph(instance)
            if graph_cache is not None:
                graph_cache[instance.key] = graph
        accumulator.add_graph(graph)
    impact = accumulator.result() if accumulator.graphs else None
    return coverage_from_impact(report, impact)


def coverage_from_impact(
    report: CausalityReport, slow_impact: Optional[ImpactResult]
) -> CoverageResult:
    """Assemble the Table 2 coverages from pre-computed slow-class impact.

    ``slow_impact`` is the impact-analysis result over exactly the slow
    class's Wait Graphs (``None`` when the class is empty).  The parallel
    pipeline merges per-chunk accumulators and calls this directly, so a
    distributed run computes byte-identical coverages to
    :func:`evaluate_coverage` without re-building any graphs.
    """
    distinct_driver_time = (
        (slow_impact.d_waitdist + slow_impact.d_rundist) if slow_impact else 0
    )
    slow_total = slow_impact.d_scn if slow_impact else 0
    # The coverage denominator: everything the slow AWG represents —
    # leaf costs (what full-path patterns can cover) plus the direct
    # hardware cost Algorithm 1 reduced away.
    leaf_total = sum(leaf.cost for leaf in report.slow_awg.leaves())
    represented = leaf_total + report.slow_awg.reduced_hw_cost
    high_impact = report.high_impact_patterns()
    itc_time = sum(pattern.cost for pattern in high_impact)
    ttc_time = sum(pattern.cost for pattern in report.patterns)
    return CoverageResult(
        scenario=report.scenario,
        slow_instances=len(report.classes.slow),
        slow_total_time=slow_total,
        distinct_driver_time=distinct_driver_time,
        driver_time=represented,
        itc_time=itc_time,
        ttc_time=ttc_time,
        reduced_hw_time=report.slow_awg.reduced_hw_cost,
        pattern_count=report.pattern_count,
        high_impact_count=len(high_impact),
    )
