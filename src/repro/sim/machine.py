"""Machine assembly: one simulated Windows-like box per trace stream.

A :class:`Machine` wires together the engine, tracer, hardware devices,
the driver stack and pageable memory according to a :class:`MachineConfig`.
Workloads (:mod:`repro.sim.workloads`) then spawn application threads onto
the machine; :meth:`Machine.run_and_trace` drains the simulation and
returns the finished :class:`~repro.trace.stream.TraceStream`.

Config fields model deployment-site diversity (the paper's corpus spans
thousands of real machines): disk speed, encryption on/off, disk
protection, lock granularity, fault rates, interference levels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.errors import ConfigError
from repro.sim.devices import QueuedDevice
from repro.sim.drivers import (
    ACPIDriver,
    AntiVirusFilterDriver,
    DiskProtectionDriver,
    FileSystemDriver,
    FileVirtualizationDriver,
    GraphicsDriver,
    IOCacheDriver,
    MouseDriver,
    NetworkDriver,
    PlainStorageDriver,
    StorageBackupDriver,
    StorageEncryptionDriver,
)
from repro.sim.engine import Engine, Program, SimThread
from repro.sim.memory import PagedMemory
from repro.sim.sched import POLICY_NAMES, make_policy
from repro.sim.services import WorkerService
from repro.sim.tracer import Tracer
from repro.trace.stream import TraceStream
from repro.units import DEFAULT_SAMPLE_INTERVAL_US


@dataclass(frozen=True)
class MachineConfig:
    """Per-machine hardware/software configuration.

    The defaults describe a mid-range encrypted laptop; the corpus
    generator perturbs them per machine.
    """

    seed: int = 0
    cores: int = 8
    sample_interval_us: int = DEFAULT_SAMPLE_INTERVAL_US
    # Software configuration.
    encryption_enabled: bool = True
    disk_protection_enabled: bool = False
    io_cache_enabled: bool = True
    # Hardware speeds.
    disk_read_median_us: int = 3_000
    disk_capacity: int = 1
    network_latency_median_us: int = 12_000
    network_capacity: int = 4
    gpu_render_median_us: int = 6_000
    # Driver behaviour.
    decrypt_median_us: int = 1_200
    mdu_lock_count: int = 3
    file_table_lock_count: int = 2
    av_scan_median_us: int = 1_500
    av_database_miss_rate: float = 0.25
    network_congestion_rate: float = 0.15
    # Memory behaviour.
    hard_fault_rate: float = 0.03
    page_read_size: float = 6.0
    # Scheduling.  ``scheduler`` names a policy from
    # :data:`repro.sim.sched.POLICY_NAMES`; ``scheduler_seed`` seeds its
    # private RNG (defaults to ``seed`` when left ``None``).
    scheduler: str = "fifo"
    scheduler_seed: Optional[int] = None

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range values."""
        if self.cores < 1:
            raise ConfigError("cores must be >= 1")
        if self.scheduler not in POLICY_NAMES:
            known = ", ".join(POLICY_NAMES)
            raise ConfigError(
                f"unknown scheduler policy {self.scheduler!r}; known: {known}"
            )
        if self.disk_capacity < 1 or self.network_capacity < 1:
            raise ConfigError("device capacities must be >= 1")
        if self.mdu_lock_count < 1 or self.file_table_lock_count < 1:
            raise ConfigError("lock counts must be >= 1")
        for name in ("hard_fault_rate", "av_database_miss_rate",
                     "network_congestion_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be a probability, got {value}")
        for name in ("disk_read_median_us", "network_latency_median_us",
                     "gpu_render_median_us", "decrypt_median_us",
                     "av_scan_median_us", "sample_interval_us"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1 microsecond")

    def with_seed(self, seed: int) -> "MachineConfig":
        """Copy of this config with a different seed."""
        return replace(self, seed=seed)


class Machine:
    """A fully wired simulated machine."""

    def __init__(self, stream_id: str, config: Optional[MachineConfig] = None):
        self.config = config if config is not None else MachineConfig()
        self.config.validate()
        self.stream_id = stream_id
        self.rng = random.Random(self.config.seed)
        self.tracer = Tracer(stream_id, self.config.sample_interval_us)
        scheduler_seed = (
            self.config.scheduler_seed
            if self.config.scheduler_seed is not None
            else self.config.seed
        )
        self.policy = make_policy(self.config.scheduler, seed=scheduler_seed)
        self.engine = Engine(
            cores=self.config.cores,
            tracer=self.tracer,
            rng=self.rng,
            policy=self.policy,
        )

        # Hardware.
        self.disk = QueuedDevice(self.engine, "Disk", self.config.disk_capacity)
        self.network = QueuedDevice(
            self.engine, "Network", self.config.network_capacity
        )
        self.gpu = QueuedDevice(self.engine, "Gpu", capacity=1)

        # Storage stack (bottom-up).
        if self.config.encryption_enabled:
            self.storage = StorageEncryptionDriver(
                self.disk,
                self.rng,
                read_median_us=self.config.disk_read_median_us,
                decrypt_median_us=self.config.decrypt_median_us,
            )
        else:
            self.storage = PlainStorageDriver(
                self.disk, self.rng, read_median_us=self.config.disk_read_median_us
            )
        self.dp = (
            DiskProtectionDriver(self.rng)
            if self.config.disk_protection_enabled
            else None
        )
        self.fs = FileSystemDriver(
            self.storage,
            self.rng,
            mdu_lock_count=self.config.mdu_lock_count,
            disk_protection=self.dp,
        )
        self.fv = FileVirtualizationDriver(
            self.fs,
            self.rng,
            file_table_lock_count=self.config.file_table_lock_count,
        )

        # Filters and peripherals.
        self.av = AntiVirusFilterDriver(
            self.fs,
            self.rng,
            scan_median_us=self.config.av_scan_median_us,
            database_miss_rate=self.config.av_database_miss_rate,
        )
        self.iocache = IOCacheDriver(self.rng) if self.config.io_cache_enabled else None
        self.bkup = StorageBackupDriver(self.fs, self.rng)
        self.net = NetworkDriver(
            self.network,
            self.rng,
            latency_median_us=self.config.network_latency_median_us,
            congestion_rate=self.config.network_congestion_rate,
        )
        self.memory = PagedMemory(
            self.engine,
            self.fs,
            self.rng,
            fault_rate=self.config.hard_fault_rate,
            page_read_size=self.config.page_read_size,
        )
        self.graphics = GraphicsDriver(
            self.gpu,
            self.memory,
            self.rng,
            render_median_us=self.config.gpu_render_median_us,
        )
        self.mouse = MouseDriver(self.rng)
        self.acpi = ACPIDriver(self.rng)

        # Shared IPC services.  Single workers serialize requests — the
        # paper's security-software architecture ("a single process and
        # database for security inspection") — so one slow driver call
        # inside a service propagates to every queued requester.
        self.security_service = WorkerService(
            self.engine,
            "SecuritySvc",
            workers=1,
            handler_frame="SecuritySvc!InspectRequest",
        )
        self.render_service = WorkerService(
            self.engine,
            "RenderSvc",
            workers=1,
            handler_frame="RenderSvc!ProcessBatch",
        )
        self.browser_io_service = WorkerService(
            self.engine,
            "BrowserIo",
            workers=2,
            handler_frame="BrowserIo!HandleRequest",
        )
        self.fetch_service = WorkerService(
            self.engine,
            "NetSvc",
            workers=2,
            handler_frame="NetSvc!Fetch",
        )

    def spawn(
        self,
        program: Program,
        process: str,
        name: str,
        start_at: Optional[int] = None,
    ) -> SimThread:
        """Spawn a thread onto this machine's engine."""
        return self.engine.spawn(program, process, name, start_at=start_at)

    def run_and_trace(self, until: Optional[int] = None) -> TraceStream:
        """Drain the simulation and return the recorded trace stream."""
        self.engine.run(until=until)
        self.engine.shutdown()
        return self.tracer.finalize()
