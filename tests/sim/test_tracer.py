"""Tests for the ETW-like tracer."""

import pytest

from repro.errors import SimulationError
from repro.sim.tracer import Tracer
from repro.trace.events import EventKind
from repro.trace.stream import ThreadInfo


class TestSampling:
    def test_compute_sampled_at_interval(self):
        tracer = Tracer("t", sample_interval=1_000)
        tracer.on_compute(1, ("a!b",), start=0, duration=3_500)
        stream = tracer.finalize()
        costs = [event.cost for event in stream.events]
        assert costs == [1_000, 1_000, 1_000, 500]
        assert sum(costs) == 3_500
        assert [event.timestamp for event in stream.events] == [
            0, 1_000, 2_000, 3_000,
        ]

    def test_short_compute_single_sample(self):
        tracer = Tracer("t")
        tracer.on_compute(1, ("a!b",), start=10, duration=200)
        stream = tracer.finalize()
        assert len(stream.events) == 1
        assert stream.events[0].cost == 200

    def test_zero_compute_no_samples(self):
        tracer = Tracer("t")
        tracer.on_compute(1, ("a!b",), start=0, duration=0)
        assert tracer.finalize().events == []

    def test_invalid_interval(self):
        with pytest.raises(SimulationError):
            Tracer("t", sample_interval=0)


class TestWaits:
    def test_zero_duration_wait_skipped(self):
        tracer = Tracer("t")
        tracer.on_wait(1, ("a!b",), start=100, end=100, resource=None)
        assert tracer.finalize().events == []

    def test_wait_cost_restored(self):
        tracer = Tracer("t")
        tracer.on_wait(1, ("a!b",), start=100, end=400, resource="lock:x")
        event = tracer.finalize().events[0]
        assert event.kind is EventKind.WAIT
        assert event.timestamp == 100
        assert event.cost == 300
        assert event.resource == "lock:x"


class TestFinalization:
    def test_events_sorted_regardless_of_emission_order(self):
        tracer = Tracer("t")
        tracer.on_unwait(2, ("x!y",), timestamp=500, wtid=1, resource=None)
        tracer.on_wait(1, ("a!b",), start=0, end=500, resource=None)
        stream = tracer.finalize()
        assert [event.timestamp for event in stream.events] == [0, 500]

    def test_finalize_idempotent(self):
        tracer = Tracer("t")
        tracer.on_compute(1, ("a!b",), 0, 100)
        assert tracer.finalize() is tracer.finalize()

    def test_append_after_finalize_raises(self):
        tracer = Tracer("t")
        tracer.finalize()
        with pytest.raises(SimulationError, match="finalized"):
            tracer.on_compute(1, ("a!b",), 0, 100)

    def test_threads_and_scenarios_recorded(self):
        tracer = Tracer("t")
        tracer.on_thread_created(ThreadInfo(1, "App", "UI"))
        tracer.on_compute(1, ("a!b",), 0, 100_000)
        tracer.on_scenario("Demo", tid=1, t0=0, t1=50_000)
        stream = tracer.finalize()
        assert stream.thread_info(1).process == "App"
        assert stream.instances[0].scenario == "Demo"
