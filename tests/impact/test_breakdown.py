"""Tests for the per-module impact breakdown."""

from repro.impact.analyzer import ImpactAnalysis
from repro.impact.breakdown import ImpactBreakdown, breakdown_by_module
from repro.trace.events import EventKind
from repro.trace.signatures import ComponentFilter
from repro.waitgraph.builder import build_wait_graph
from tests.conftest import make_event, make_stream


def chain_instance(stream_id="s"):
    """UI waits in fv.sys; holder waits in fs.sys below it."""
    events = [
        make_event(EventKind.WAIT,
                   ("App!X", "fv.sys!Query", "kernel!AcquireLock"),
                   timestamp=0, cost=9_000, tid=1),
        make_event(EventKind.WAIT,
                   ("App!Y", "fs.sys!Read", "kernel!WaitForHardware"),
                   timestamp=0, cost=8_000, tid=2),
        make_event(EventKind.RUNNING, ("App!Y", "fs.sys!Read"),
                   timestamp=8_000, cost=1_000, tid=2),
        make_event(EventKind.UNWAIT, ("App!Z",), timestamp=8_000,
                   cost=0, tid=3, wtid=2),
        make_event(EventKind.UNWAIT, ("App!Y", "fs.sys!Read"),
                   timestamp=9_000, cost=0, tid=2, wtid=1),
    ]
    stream = make_stream(stream_id, events)
    return stream.add_instance("S", tid=1, t0=0, t1=9_000)


class TestPerModuleCounting:
    def test_each_module_counts_its_topmost_wait(self):
        breakdown = ImpactBreakdown()
        breakdown.add_graph(build_wait_graph(chain_instance()))
        fv = breakdown.modules["fv.sys"]
        fs = breakdown.modules["fs.sys"]
        # fv counts the outer wait; fs counts the *inner* wait (its own
        # topmost), even though the single-scope *.sys analysis would
        # have stopped at the outer one.
        assert fv.wait_time == 9_000
        assert fs.wait_time == 8_000
        assert fs.run_time == 1_000

    def test_nested_same_module_not_double_counted(self):
        events = [
            make_event(EventKind.WAIT,
                       ("App!X", "fv.sys!Query", "kernel!AcquireLock"),
                       timestamp=0, cost=9_000, tid=1),
            make_event(EventKind.WAIT,
                       ("App!Y", "fv.sys!Other", "kernel!AcquireLock"),
                       timestamp=0, cost=8_000, tid=2),
            make_event(EventKind.UNWAIT, ("App!Z",), timestamp=8_000,
                       cost=0, tid=3, wtid=2),
            make_event(EventKind.UNWAIT, ("App!Y",), timestamp=9_000,
                       cost=0, tid=2, wtid=1),
        ]
        stream = make_stream(events=events)
        instance = stream.add_instance("S", tid=1, t0=0, t1=9_000)
        breakdown = ImpactBreakdown()
        breakdown.add_graph(build_wait_graph(instance))
        assert breakdown.modules["fv.sys"].wait_time == 9_000

    def test_distinct_wait_dedup_across_graphs(self):
        instance = chain_instance()
        graph = build_wait_graph(instance)
        breakdown = ImpactBreakdown()
        breakdown.add_graph(graph)
        breakdown.add_graph(graph)
        fv = breakdown.modules["fv.sys"]
        assert fv.wait_time == 18_000
        assert fv.distinct_wait_time == 9_000
        assert fv.wait_multiplicity == 2.0

    def test_scenarios_recorded(self):
        breakdown = ImpactBreakdown()
        breakdown.add_graph(build_wait_graph(chain_instance()))
        assert breakdown.modules["fs.sys"].scenarios == {"S"}


class TestOnCorpus:
    def test_breakdown_consistent_with_single_scope(self, small_corpus):
        """A module's breakdown wait time equals a dedicated single-module
        impact analysis."""
        breakdown = breakdown_by_module(small_corpus)
        heaviest = breakdown.ranked()[0]
        single = ImpactAnalysis([heaviest.module]).analyze_corpus(small_corpus)
        assert heaviest.wait_time == single.d_wait
        assert heaviest.distinct_wait_time == single.d_waitdist

    def test_ranked_order(self, small_corpus):
        breakdown = breakdown_by_module(small_corpus)
        ranked = breakdown.ranked()
        assert len(ranked) >= 3
        waits = [entry.wait_time for entry in ranked]
        assert waits == sorted(waits, reverse=True)

    def test_wait_share(self, small_corpus):
        breakdown = breakdown_by_module(small_corpus)
        heaviest = breakdown.ranked()[0]
        share = breakdown.wait_share_of(heaviest.module)
        assert 0 < share
        assert breakdown.wait_share_of("nope.sys") == 0.0
