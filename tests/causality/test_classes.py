"""Tests for contrast-class classification."""

import pytest

from repro.causality.classes import classify_instances
from repro.errors import AnalysisError
from tests.conftest import make_event, make_stream


def instances_with_durations(durations, scenario="S"):
    stream = make_stream(events=[make_event(cost=10_000_000)])
    return [
        stream.add_instance(scenario, tid=1, t0=0, t1=duration)
        for duration in durations
    ]


class TestClassification:
    def test_split(self):
        instances = instances_with_durations([50, 150, 250, 400, 90])
        classes = classify_instances(instances, t_fast=100, t_slow=300)
        assert len(classes.fast) == 2
        assert len(classes.slow) == 1
        assert len(classes.between) == 2
        assert classes.total == 5

    def test_boundary_values_are_between(self):
        instances = instances_with_durations([100, 300])
        classes = classify_instances(instances, t_fast=100, t_slow=300)
        assert len(classes.between) == 2

    def test_thresholds_must_be_ordered(self):
        with pytest.raises(AnalysisError):
            classify_instances([], t_fast=300, t_slow=100)

    def test_wrong_scenario_rejected(self):
        instances = instances_with_durations([50], scenario="A")
        with pytest.raises(AnalysisError, match="passed to"):
            classify_instances(instances, 100, 300, scenario="B")

    def test_summary_mentions_counts(self):
        instances = instances_with_durations([50, 400], scenario="S")
        classes = classify_instances(instances, 100, 300, scenario="S")
        text = classes.summary()
        assert "1 fast" in text
        assert "1 slow" in text
