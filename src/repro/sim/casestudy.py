"""The motivating example of the paper's §2.2, as a deterministic scenario.

Reconstructs Figure 1: three device drivers (fv.sys file-virtualization
filter, fs.sys file system, se.sys storage encryption) form a hierarchy;
two lock-contention regions (File Table entries, Meta Data Units) chained
by hierarchical dependencies propagate a storage delay through six
threads to the browser UI thread, making one ``BrowserTabCreate`` take
well over 800 ms while uncontended ones finish in tens of milliseconds.

Thread cast (paper notation → here):

* ``T_{B,UI}``  — Browser/UI, the initiating thread
* ``T_{B,W0}``  — Browser/W0, worker contending the File Table lock
* ``T_{B,W1}``  — Browser/W1, worker holding the File Table lock while
  blocked on the MDU lock
* ``T_{A,W0}``  — AntiVirus/W0, queued on the MDU lock
* ``T_{C,W0}``  — ConfigMgr/W0, holding the MDU lock across the read
* ``T_{S,W0}``  — the storage service: the disk pseudo-thread plus the
  se.sys decrypt running on the reader (our storage model performs the
  read on the caller; the hardware pseudo-thread plays the system
  worker's role in the Wait Graph)

``run_case_study`` runs several quiet (fast) tab creations around one
contended (slow) one, so the causality analysis has both contrast classes
and discovers the §2.3 Signature Set Tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

from repro.sim.machine import Machine, MachineConfig
from repro.trace.stream import ScenarioInstance, TraceStream
from repro.units import MILLISECONDS as MS

SCENARIO = "BrowserTabCreate"
T_FAST = 300 * MS
T_SLOW = 500 * MS

#: The shared "virtual" file every thread touches during the incident —
#: all requests land on the same File Table entry and the same MDU.
HOT_FILE = 0

#: When the contended iteration starts (quiet iterations surround it).
_INCIDENT_ITERATION = 5
_ITERATION_GAP = 1_200 * MS


def build_case_machine(seed: int = 2014) -> Machine:
    """A machine configured like the incident site: encrypted, slow disk,
    coarse locks (single File Table lock, single MDU lock)."""
    return Machine(
        "figure1",
        MachineConfig(
            seed=seed,
            cores=8,
            encryption_enabled=True,
            disk_protection_enabled=False,
            disk_read_median_us=90 * MS,
            decrypt_median_us=15 * MS,
            mdu_lock_count=1,
            file_table_lock_count=1,
            hard_fault_rate=0.0,
            network_congestion_rate=0.0,
        ),
    )


def _ui_program(machine: Machine, iterations: int) -> Generator:
    def program(ctx):
        with ctx.frame("Browser!Main"):
            for iteration in range(iterations):
                yield from ctx.delay(_ITERATION_GAP)
                with ctx.scenario(SCENARIO):
                    with ctx.frame("Browser!TabCreate"):
                        yield from machine.mouse.process_input(ctx)
                        with ctx.frame("kernel!OpenFile"):
                            yield from machine.fv.query_file_table(
                                ctx,
                                HOT_FILE,
                                resolve=(iteration == _INCIDENT_ITERATION),
                                cached=(iteration != _INCIDENT_ITERATION),
                            )
                        yield from ctx.compute(8 * MS)
                        yield from machine.graphics.render(ctx, 0.5)

    return program


def _browser_worker(machine: Machine, start: int, resolve: bool) -> Generator:
    def program(ctx):
        yield from ctx.delay(start)
        with ctx.frame("Browser!Worker"):
            with ctx.frame("kernel!CreateFile"):
                yield from machine.fv.query_file_table(
                    ctx, HOT_FILE, resolve=resolve, cached=False,
                    size_factor=3.0,
                )

    return program


def _mdu_client(machine: Machine, process: str, start: int) -> Generator:
    def program(ctx):
        yield from ctx.delay(start)
        with ctx.frame(f"{process}!Worker"):
            with ctx.frame("kernel!OpenFile"):
                yield from machine.fs.read_file(
                    ctx, HOT_FILE, size_factor=4.5, cached=False
                )

    return program


@dataclass
class CaseStudyResult:
    """The reconstructed incident: trace, instances, the slow one."""

    stream: TraceStream
    instances: List[ScenarioInstance]
    slow_instance: ScenarioInstance
    fast_instances: List[ScenarioInstance]


def run_case_study(iterations: int = 10, seed: int = 2014) -> CaseStudyResult:
    """Simulate the Figure 1 incident and return the trace + instances."""
    machine = build_case_machine(seed)
    incident_start = _INCIDENT_ITERATION * _ITERATION_GAP

    machine.spawn(_ui_program(machine, iterations), "Browser", "UI")
    # The UI thread reaches the File Table on its incident iteration at
    # roughly (incident + 1) gaps plus the earlier iterations' work; the
    # cast is staggered shortly before that so the lock queues look
    # exactly like Figure 1 when the UI thread arrives.
    ui_arrival = incident_start + _ITERATION_GAP + 80 * MS
    machine.spawn(
        _mdu_client(machine, "ConfigMgr", ui_arrival - 300 * MS),
        "ConfigMgr", "W0",
    )
    machine.spawn(
        _mdu_client(machine, "AntiVirus", ui_arrival - 280 * MS),
        "AntiVirus", "W0",
    )
    machine.spawn(
        _browser_worker(machine, ui_arrival - 260 * MS, resolve=True),
        "Browser", "W1",
    )
    machine.spawn(
        _browser_worker(machine, ui_arrival - 240 * MS, resolve=False),
        "Browser", "W0",
    )

    stream = machine.run_and_trace(until=(iterations + 4) * _ITERATION_GAP)
    instances = [
        instance
        for instance in stream.instances
        if instance.scenario == SCENARIO
    ]
    slow_instance = max(instances, key=lambda instance: instance.duration)
    fast_instances = [
        instance
        for instance in instances
        if instance.duration < T_FAST
    ]
    return CaseStudyResult(
        stream=stream,
        instances=instances,
        slow_instance=slow_instance,
        fast_instances=fast_instances,
    )


# ---------------------------------------------------------------------------
# The §5.2.4 hard-fault case: graphics.sys + fs.sys + se.sys, seconds-long
# ---------------------------------------------------------------------------

HARDFAULT_SCENARIO = "AppNonResponsive"
HARDFAULT_T_FAST = 110 * MS
HARDFAULT_T_SLOW = 160 * MS


def build_hardfault_machine(seed: int = 424) -> Machine:
    """An encrypted machine with a slow disk and a huge pageable section.

    ``page_read_size`` is set so one page-in reads for multiple seconds
    (the paper's incident took about 4.7 s to complete the page read).
    """
    machine = Machine(
        "hardfault",
        MachineConfig(
            seed=seed,
            encryption_enabled=True,
            disk_read_median_us=100 * MS,
            decrypt_median_us=25 * MS,
            mdu_lock_count=1,
            hard_fault_rate=0.0,  # faults are injected explicitly below
            network_congestion_rate=0.0,
        ),
    )
    machine.memory.page_read_size = 42.0
    machine.memory.severe_fault_rate = 0.0
    return machine


def run_hardfault_case(iterations: int = 8, seed: int = 424) -> CaseStudyResult:
    """Reproduce §5.2.4: a system graphics routine hard-faults while
    holding the GPU context, freezing the UI for seconds.

    Cast: ``T_{U,UI}`` (App/UI) pumps messages and renders;
    ``T_{S,W0}`` (System/GfxWorker) runs a graphics system-event routine
    that faults during surface initialization; ``T_{S,W1}`` (the pager)
    performs the multi-second page read through fs.sys and se.sys.
    """
    machine = build_hardfault_machine(seed)
    gap = 800 * MS
    incident = 4

    def ui_program(ctx):
        with ctx.frame("App!Main"):
            for _ in range(iterations):
                yield from ctx.delay(gap)
                with ctx.scenario(HARDFAULT_SCENARIO):
                    with ctx.frame("App!MessagePump"):
                        for _ in range(3):
                            yield from machine.graphics.render(ctx, 0.6)
                        yield from ctx.compute(40 * MS)

    def system_worker(ctx):
        # Arrive just before the incident iteration's renders.
        yield from ctx.delay((incident + 1) * gap + 30 * MS)
        with ctx.frame("System!Worker"):
            machine.memory.fault_rate = 1.0
            yield from machine.graphics.system_routine(ctx)
            machine.memory.fault_rate = 0.0

    machine.spawn(ui_program, "App", "UI")
    machine.spawn(system_worker, "System", "GfxWorker")
    stream = machine.run_and_trace(until=(iterations + 10) * gap)
    instances = [
        instance
        for instance in stream.instances
        if instance.scenario == HARDFAULT_SCENARIO
    ]
    slow_instance = max(instances, key=lambda instance: instance.duration)
    fast_instances = [
        instance
        for instance in instances
        if instance.duration < HARDFAULT_T_FAST
    ]
    return CaseStudyResult(
        stream=stream,
        instances=instances,
        slow_instance=slow_instance,
        fast_instances=fast_instances,
    )
