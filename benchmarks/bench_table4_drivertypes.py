"""Table 4 — Driver types involved in the top-10 patterns per scenario.

Shape assertions follow the paper's three observations (§5.2.4):

1. file-system and filter drivers dominate most scenarios, especially
   AppAccessControl;
2. MenuDisplay is dominated by network drivers;
3. graphics patterns in AppNonResponsive co-occur with storage drivers
   (the hard-fault signature).
"""

from benchmarks.conftest import print_banner
from repro.evaluation.drivertypes import DRIVER_TYPE_ORDER
from repro.report.tables import Table

PAPER_ROWS = {
    "AppAccessControl": {"FileSystem/GeneralStorage": 9, "FileSystemFilter": 9, "IOCache": 1},
    "AppNonResponsive": {"FileSystem/GeneralStorage": 6, "FileSystemFilter": 2,
                          "Network": 1, "StorageEncryption": 2,
                          "DiskProtection": 1, "Graphics": 1, "ACPI": 1},
    "BrowserFrameCreate": {"FileSystem/GeneralStorage": 7, "FileSystemFilter": 4,
                            "Network": 2, "DiskProtection": 1},
    "BrowserTabClose": {"FileSystem/GeneralStorage": 5, "FileSystemFilter": 6,
                         "StorageEncryption": 2, "StorageBackup": 2},
    "BrowserTabCreate": {"FileSystem/GeneralStorage": 5, "FileSystemFilter": 6,
                          "Network": 3, "StorageEncryption": 2,
                          "Graphics": 1, "Mouse": 1},
    "BrowserTabSwitch": {"FileSystem/GeneralStorage": 6, "FileSystemFilter": 5,
                          "Network": 3, "StorageEncryption": 1},
    "MenuDisplay": {"FileSystem/GeneralStorage": 2, "FileSystemFilter": 3,
                     "Network": 7, "DiskProtection": 2},
    "WebPageNavigation": {"FileSystem/GeneralStorage": 7, "FileSystemFilter": 3,
                           "Network": 3, "StorageEncryption": 1,
                           "DiskProtection": 1},
}

_SHORT = {
    "FileSystem/GeneralStorage": "FS/Stor",
    "FileSystemFilter": "Filter",
    "Network": "Net",
    "StorageEncryption": "Encr",
    "DiskProtection": "DiskProt",
    "Graphics": "Gfx",
    "StorageBackup": "Bkup",
    "IOCache": "IOCache",
    "Mouse": "Mouse",
    "ACPI": "ACPI",
}


def test_bench_table4_driver_types(benchmark, bench_study):
    from repro.evaluation.drivertypes import categorize_top_patterns

    all_reports = list(bench_study.scenarios.values())

    def categorize_all():
        return [
            categorize_top_patterns(study.report.patterns, top_n=10)
            for study in all_reports
        ]

    benchmark(categorize_all)

    print_banner(
        "Table 4 - Driver types in top-10 patterns (paper values in brackets)"
    )
    headers = ["Scenario"] + [_SHORT[t] for t in DRIVER_TYPE_ORDER]
    table = Table(headers)
    rows = bench_study.table4_rows()
    for name in sorted(rows):
        counts = rows[name]
        paper = PAPER_ROWS.get(name, {})
        cells = [name]
        for driver_type in DRIVER_TYPE_ORDER:
            measured = counts.get(driver_type, 0)
            expected = paper.get(driver_type, 0)
            cells.append(f"{measured} [{expected}]" if expected else str(measured))
        table.add_row(*cells)
    print(table.render())

    # Observation 1: storage + filter drivers dominate AppAccessControl.
    access = rows.get("AppAccessControl", {})
    storage_and_filter = (
        access.get("FileSystem/GeneralStorage", 0)
        + access.get("FileSystemFilter", 0)
    )
    other = sum(
        count
        for driver_type, count in access.items()
        if driver_type not in ("FileSystem/GeneralStorage", "FileSystemFilter")
    )
    assert storage_and_filter >= other

    # Observation 2: MenuDisplay is the most network-heavy scenario.
    menu_net = rows.get("MenuDisplay", {}).get("Network", 0)
    assert menu_net >= 1
    for name, counts in rows.items():
        if name not in ("MenuDisplay", "WebPageNavigation",
                        "BrowserFrameCreate"):
            assert counts.get("Network", 0) <= max(menu_net, 3)

    # Observation 3: when graphics appears in AppNonResponsive patterns,
    # storage drivers appear alongside (the hard-fault chain).
    nonresp = rows.get("AppNonResponsive", {})
    if nonresp.get("Graphics", 0):
        assert (
            nonresp.get("FileSystem/GeneralStorage", 0)
            + nonresp.get("StorageEncryption", 0)
        ) > 0
