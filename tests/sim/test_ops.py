"""Tests for the service request factories."""

from repro.sim.machine import Machine, MachineConfig
from repro.sim.ops import (
    fetch_resources,
    flush_files,
    open_virtual_files,
    render_batch,
    security_inspection,
)
from repro.trace.signatures import module_of


def run_factory(factory_builder, config=None):
    machine = Machine("ops", config or MachineConfig(seed=13))
    factory = factory_builder(machine)

    def program(ctx):
        with ctx.frame("Test!Run"):
            yield from factory(ctx)

    machine.spawn(program, "Test", "T")
    stream = machine.run_and_trace(until=60_000_000)
    modules = {
        module_of(frame)
        for event in stream.events
        for frame in event.stack
    }
    return stream, machine, modules


class TestOpenVirtualFiles:
    def test_goes_through_fv(self):
        _, machine, modules = run_factory(
            lambda m: open_virtual_files(m, [1, 2], resolve_prob=1.0,
                                         cache_prob=0.0)
        )
        assert "fv.sys" in modules
        assert machine.disk.request_count >= 2

    def test_empty_list_is_noop_for_fv(self):
        _, machine, modules = run_factory(
            lambda m: open_virtual_files(m, [])
        )
        assert machine.disk.request_count == 0


class TestFlushFiles:
    def test_writes_through_fs(self):
        _, machine, modules = run_factory(lambda m: flush_files(m, [1, 2, 3]))
        assert "fs.sys" in modules
        assert machine.disk.request_count == 3


class TestSecurityInspection:
    def test_uses_av_and_iocache(self):
        _, _, modules = run_factory(
            lambda m: security_inspection(m, 1, resolve_prob=0.0)
        )
        assert "av.sys" in modules
        assert "iocache.sys" in modules

    def test_without_iocache(self):
        _, _, modules = run_factory(
            lambda m: security_inspection(m, 1, resolve_prob=0.0),
            config=MachineConfig(seed=13, io_cache_enabled=False),
        )
        assert "av.sys" in modules
        assert "iocache.sys" not in modules


class TestRenderBatch:
    def test_renders_on_gpu(self):
        _, machine, modules = run_factory(
            lambda m: render_batch(m, 1.0, surface_prob=0.0)
        )
        assert "graphics.sys" in modules
        assert machine.gpu.request_count == 1

    def test_surface_path_can_fault(self):
        config = MachineConfig(seed=13, hard_fault_rate=1.0)
        _, machine, modules = run_factory(
            lambda m: render_batch(m, 1.0, surface_prob=1.0), config
        )
        assert machine.memory.fault_count == 1
        assert "fs.sys" in modules  # the pager's paging read


class TestFetchResources:
    def test_count_respected(self):
        _, machine, modules = run_factory(
            lambda m: fetch_resources(m, 3, 0.5, 1.0)
        )
        assert machine.network.request_count == 3
        assert "net.sys" in modules
