"""Tests for the extra (non-evaluation) scenarios and parallel generation."""

import pytest

from repro.sim.corpus import CorpusConfig, generate_corpus, generate_stream
from repro.sim.machine import Machine, MachineConfig
from repro.sim.workloads.extra import EXTRA_WORKLOAD_CLASSES
from repro.sim.workloads.registry import (
    EXTRA_SCENARIO_NAMES,
    SCENARIO_NAMES,
    scenario_spec,
    workload_class,
)
from repro.units import SECONDS


class TestRegistry:
    def test_extras_not_in_selected_eight(self):
        assert len(SCENARIO_NAMES) == 8
        assert not set(EXTRA_SCENARIO_NAMES) & set(SCENARIO_NAMES)

    def test_extras_resolvable(self):
        for name in EXTRA_SCENARIO_NAMES:
            assert workload_class(name).spec.name == name
            assert scenario_spec(name).t_fast < scenario_spec(name).t_slow


@pytest.mark.parametrize("cls", EXTRA_WORKLOAD_CLASSES)
def test_extra_workload_produces_instances(cls):
    machine = Machine(f"extra-{cls.spec.name}", MachineConfig(seed=21))
    workload = cls(repeats=3, think_median_us=40_000, intensity=0.5)
    workload.install(machine)
    stream = machine.run_and_trace(until=30 * SECONDS)
    own = [i for i in stream.instances if i.scenario == cls.spec.name]
    assert len(own) >= 3
    assert all(i.duration > 0 for i in own)


class TestCorpusWithExtras:
    def test_extras_allowed_in_config(self):
        config = CorpusConfig(
            streams=1,
            seed=4,
            scenarios=tuple(SCENARIO_NAMES) + tuple(EXTRA_SCENARIO_NAMES),
            workloads_per_stream=(5, 8),
        )
        config.validate()
        stream = generate_stream(0, config)
        assert stream.instances


class TestParallelGeneration:
    def test_parallel_equals_serial(self):
        config = CorpusConfig(streams=3, seed=17)
        serial = generate_corpus(config)
        parallel = generate_corpus(config, workers=3)
        for a, b in zip(serial, parallel):
            assert a.events == b.events
            assert len(a.instances) == len(b.instances)
