"""Tests for Aggregated Wait Graphs and Algorithm 1."""

from repro.trace.events import EventKind
from repro.trace.signatures import ALL_DRIVERS, HARDWARE_SIGNATURE, ComponentFilter
from repro.trace.stream import ThreadInfo
from repro.waitgraph.aggregate import (
    HARDWARE,
    RUNNING,
    WAITING,
    AggregatedWaitGraph,
    aggregate_wait_graphs,
)
from repro.waitgraph.builder import build_wait_graph
from tests.conftest import make_event, make_stream


def propagation_instance(stream_id="s"):
    """A stream like the conftest fixture, reusable with varying ids."""
    threads = [
        ThreadInfo(1, "App", "UI"),
        ThreadInfo(2, "App", "Worker"),
        ThreadInfo(3, "Hardware", "Disk"),
    ]
    events = [
        make_event(EventKind.RUNNING, ("App!Click", "fv.sys!Query"),
                   timestamp=0, cost=1000, tid=1),
        make_event(EventKind.WAIT,
                   ("App!Click", "fv.sys!Query", "kernel!AcquireLock"),
                   timestamp=1000, cost=8000, tid=1),
        make_event(EventKind.RUNNING, ("App!Job", "fs.sys!Read"),
                   timestamp=1000, cost=1000, tid=2),
        make_event(EventKind.WAIT,
                   ("App!Job", "fs.sys!Read", "kernel!WaitForHardware"),
                   timestamp=2000, cost=5000, tid=2),
        make_event(EventKind.HW_SERVICE, (), timestamp=2000, cost=5000, tid=3),
        make_event(EventKind.UNWAIT, ("Hardware!DiskService",),
                   timestamp=7000, cost=0, tid=3, wtid=2),
        make_event(EventKind.RUNNING, ("App!Job", "fs.sys!Read"),
                   timestamp=7000, cost=2000, tid=2),
        make_event(EventKind.UNWAIT,
                   ("App!Job", "fs.sys!Read", "kernel!ReleaseLock"),
                   timestamp=9000, cost=0, tid=2, wtid=1),
        make_event(EventKind.RUNNING, ("App!Click", "fv.sys!Query"),
                   timestamp=9000, cost=1000, tid=1),
    ]
    stream = make_stream(stream_id, events, threads)
    return stream.add_instance("Click", tid=1, t0=0, t1=10_000)


class TestAlgorithm1:
    def test_waiting_node_merges_wait_and_unwait_signatures(self):
        graph = build_wait_graph(propagation_instance())
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        root_keys = set(awg.roots)
        # The UI wait: wait sig fv.sys!Query, unwait sig fs.sys!Read.
        assert (WAITING, "fv.sys!Query", "fs.sys!Read") in root_keys

    def test_irrelevant_roots_eliminated_but_driver_runnings_kept(self):
        graph = build_wait_graph(propagation_instance())
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        # The UI's driver running events (fv.sys!Query) are roots too.
        assert (RUNNING, "fv.sys!Query") in awg.roots

    def test_non_driver_roots_dropped(self):
        # Use a filter that matches nothing on the UI stack: roots must be
        # promoted/dropped until component-relevant events remain.
        only_fs = ComponentFilter(["fs.sys"])
        graph = build_wait_graph(propagation_instance())
        awg = aggregate_wait_graphs([graph], only_fs, reduce_hw=False)
        # fv running roots are gone; the promoted roots are the worker's
        # fs.sys events (children of the eliminated UI wait).
        for key, node in awg.roots.items():
            signatures = [s for s in key[1:] if s]
            assert any("fs.sys" in s or s == HARDWARE_SIGNATURE for s in signatures)

    def test_hardware_leaf_under_disk_wait(self):
        graph = build_wait_graph(propagation_instance())
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        ui_wait = awg.roots[(WAITING, "fv.sys!Query", "fs.sys!Read")]
        disk_wait = ui_wait.children[
            (WAITING, "fs.sys!Read", HARDWARE_SIGNATURE)
        ]
        assert (HARDWARE, HARDWARE_SIGNATURE) in disk_wait.children
        hw = disk_wait.children[(HARDWARE, HARDWARE_SIGNATURE)]
        assert hw.cost == 5000
        assert not hw.children

    def test_aggregation_sums_costs_and_counts(self):
        graphs = [
            build_wait_graph(propagation_instance("a")),
            build_wait_graph(propagation_instance("b")),
        ]
        awg = aggregate_wait_graphs(graphs, ALL_DRIVERS, reduce_hw=False)
        ui_wait = awg.roots[(WAITING, "fv.sys!Query", "fs.sys!Read")]
        assert ui_wait.count == 2
        assert ui_wait.cost == 16_000
        assert ui_wait.max_single == 8_000
        assert awg.source_graphs == 2

    def test_mean_cost(self):
        graphs = [build_wait_graph(propagation_instance())]
        awg = aggregate_wait_graphs(graphs, ALL_DRIVERS, reduce_hw=False)
        ui_wait = awg.roots[(WAITING, "fv.sys!Query", "fs.sys!Read")]
        assert ui_wait.mean_cost == 8_000


class TestReduction:
    def build_direct_hw_instance(self):
        """A root wait whose only child is a hardware leaf."""
        threads = [ThreadInfo(3, "Hardware", "Disk")]
        events = [
            make_event(EventKind.WAIT,
                       ("App!X", "fs.sys!Read", "kernel!WaitForHardware"),
                       timestamp=0, cost=3_000, tid=1),
            make_event(EventKind.HW_SERVICE, (), timestamp=0, cost=3_000, tid=3),
            make_event(EventKind.UNWAIT, ("Hardware!DiskService",),
                       timestamp=3_000, cost=0, tid=3, wtid=1),
        ]
        stream = make_stream("hw", events, threads)
        return stream.add_instance("S", tid=1, t0=0, t1=3_000)

    def test_direct_hw_root_pruned(self):
        graph = build_wait_graph(self.build_direct_hw_instance())
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=True)
        assert awg.roots == {}
        assert awg.reduced_hw_cost == 3_000
        assert awg.reduced_hw_count == 1

    def test_reduction_optional(self):
        graph = build_wait_graph(self.build_direct_hw_instance())
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        assert len(awg.roots) == 1
        assert awg.reduced_hw_cost == 0

    def test_propagated_hw_not_pruned(self):
        # In the propagation fixture, the hw leaf sits under an inner wait
        # (not a root), so reduction must keep it.
        graph = build_wait_graph(propagation_instance())
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=True)
        assert (WAITING, "fv.sys!Query", "fs.sys!Read") in awg.roots
        assert awg.reduced_hw_cost == 0


class TestQueries:
    def test_nodes_and_leaves(self):
        graph = build_wait_graph(propagation_instance())
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        nodes = list(awg.nodes())
        leaves = list(awg.leaves())
        assert len(leaves) >= 1
        assert all(not leaf.children for leaf in leaves)
        assert len(nodes) == awg.node_count()

    def test_total_cost_is_root_sum(self):
        graph = build_wait_graph(propagation_instance())
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        assert awg.total_cost() == sum(root.cost for root in awg.roots.values())

    def test_labels(self):
        graph = build_wait_graph(propagation_instance())
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        labels = {node.label for node in awg.nodes()}
        assert "fv.sys!Query -> fs.sys!Read" in labels
        assert any(label.startswith("[hw]") for label in labels)
        assert any(label.startswith("[run]") for label in labels)

    def test_parent_links(self):
        graph = build_wait_graph(propagation_instance())
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        for root in awg.roots.values():
            assert root.parent is None
            for child in root.children.values():
                assert child.parent is root
