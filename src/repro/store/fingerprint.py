"""Analysis fingerprints: cache keys for the configuration half of the store.

A store entry is addressed by ``(trace content hash, analysis
fingerprint)``.  The content hash covers the trace *bytes*; the
fingerprint covers everything else that shapes a per-trace partial:

* the component-filter patterns (they decide which waits are counted and
  which AWG nodes exist);
* the scenario thresholds (they decide the fast/slow contrast split);
* whether corpus-wide impact is accumulated, and over which scenarios;
* the store schema version (so a change to the entry format or to the
  pickled partial classes invalidates every old entry), and the trace
  format version (a new trace schema would parse differently).

Reduce-time knobs — ``segment_bound``, ``reduce_hw``, ranking fractions —
deliberately do **not** participate: they act on the merged structures
after the store is consulted, so partials stay valid across them.

The digest is a SHA-256 over a canonical JSON rendering (sorted keys,
sorted scenario lists), making it stable across processes, machines and
dict orderings.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Sequence, Tuple

#: Version of the on-disk entry layout *and* of the pickled partial
#: payloads.  Bump whenever either changes shape; old entries then miss
#: cleanly (their fingerprints embed the old version) and are reclaimed
#: by ``repro store gc``.
#:
#: Migration note — v1 → v2 (binary trace format release): the content
#: half of the cache key became the *format-independent* logical hash
#: (canonical-JSONL digest, read from RTB headers), and
#: ``ChunkPartial`` grew an ``events`` counter for map-phase
#: throughput reporting.  v1 entries were keyed by raw JSONL byte
#: hashes under fingerprints embedding ``store_schema: 1``; they miss
#: cleanly against v2 fingerprints and are dead weight — reclaim them
#: with ``repro store gc``.
STORE_SCHEMA_VERSION = 2

#: Trace file format version the partials were computed from (mirrors
#: ``repro.trace.serialization._FORMAT_VERSION`` without importing the
#: private name at call time).
TRACE_FORMAT_VERSION = 1

#: Binary columnar (RTB) layout version (mirrors
#: ``repro.trace.binary.RTB_FORMAT_VERSION``).  A codec change reshapes
#: what the map phase reads, so it must invalidate cached partials even
#: though the logical content hash is format-independent.
RTB_FORMAT_VERSION = 1


def analysis_fingerprint(
    component_patterns: Sequence[str],
    thresholds: Dict[str, Tuple[int, int]],
    want_impact: bool,
    impact_scenarios: Optional[Sequence[str]] = None,
) -> str:
    """Digest the map-phase analysis configuration into a cache key part.

    Scenario order is canonicalized (sorted) because the per-trace
    partials do not depend on it: scenarios appear in a partial in
    *instance appearance* order, and threshold lookup is by name.
    """
    payload = {
        "store_schema": STORE_SCHEMA_VERSION,
        "trace_format": TRACE_FORMAT_VERSION,
        "rtb_format": RTB_FORMAT_VERSION,
        "components": list(component_patterns),
        "thresholds": sorted(
            (name, int(t_fast), int(t_slow))
            for name, (t_fast, t_slow) in thresholds.items()
        ),
        "want_impact": bool(want_impact),
        "impact_scenarios": (
            sorted(impact_scenarios) if impact_scenarios is not None else None
        ),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
