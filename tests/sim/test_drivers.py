"""Tests for the device-driver models (running on a real Machine)."""

import pytest

from repro.sim.machine import Machine, MachineConfig
from repro.trace.events import EventKind
from repro.trace.signatures import module_of


def run_program(program, config=None, until=None):
    machine = Machine("test", config or MachineConfig(seed=5))
    machine.spawn(program(machine), "App", "Main")
    return machine.run_and_trace(until=until), machine


def modules_seen(stream):
    modules = set()
    for event in stream.events:
        for frame in event.stack:
            modules.add(module_of(frame))
    return modules


class TestStorageStack:
    def test_uncached_read_reaches_disk_through_encryption(self):
        def program(machine):
            def inner(ctx):
                with ctx.frame("App!Work"):
                    yield from machine.fs.read_file(ctx, 1, cached=False)

            return inner

        stream, machine = run_program(program)
        modules = modules_seen(stream)
        assert "fs.sys" in modules
        assert "se.sys" in modules
        assert machine.disk.request_count == 1

    def test_cached_read_skips_disk(self):
        def program(machine):
            def inner(ctx):
                with ctx.frame("App!Work"):
                    yield from machine.fs.read_file(ctx, 1, cached=True)

            return inner

        stream, machine = run_program(program)
        assert machine.disk.request_count == 0

    def test_plain_storage_when_encryption_disabled(self):
        config = MachineConfig(seed=5, encryption_enabled=False)

        def program(machine):
            def inner(ctx):
                with ctx.frame("App!Work"):
                    yield from machine.fs.read_file(ctx, 1)

            return inner

        stream, _ = run_program(program, config)
        modules = modules_seen(stream)
        assert "stor.sys" in modules
        assert "se.sys" not in modules

    def test_write_reaches_disk(self):
        def program(machine):
            def inner(ctx):
                with ctx.frame("App!Work"):
                    yield from machine.fs.write_file(ctx, 1)

            return inner

        _, machine = run_program(program)
        assert machine.disk.request_count == 1

    def test_decrypt_compute_emitted(self):
        def program(machine):
            def inner(ctx):
                with ctx.frame("App!Work"):
                    yield from machine.fs.read_file(ctx, 1, cached=False)

            return inner

        stream, _ = run_program(program)
        leaves = {
            event.leaf
            for event in stream.events_of_kind(EventKind.RUNNING)
        }
        assert "se.sys!Decrypt" in leaves

    def test_mdu_contention_propagates(self):
        """Two threads reading the same file contend the same MDU lock."""
        machine = Machine("test", MachineConfig(seed=5))

        def reader(ctx):
            with ctx.frame("App!Work"):
                yield from machine.fs.read_file(ctx, 7, cached=False)

        machine.spawn(reader, "App", "A")
        machine.spawn(reader, "App", "B", start_at=100)
        stream = machine.run_and_trace()
        waits = stream.events_of_kind(EventKind.WAIT)
        lock_waits = [
            event for event in waits
            if event.resource and event.resource.startswith("lock:fs.sys/MDU")
        ]
        assert len(lock_waits) == 1
        assert "fs.sys!AcquireMDU" in lock_waits[0].stack

    def test_query_metadata_no_storage(self):
        def program(machine):
            def inner(ctx):
                with ctx.frame("App!Work"):
                    yield from machine.fs.query_metadata(ctx, 3)

            return inner

        _, machine = run_program(program)
        assert machine.disk.request_count == 0

    def test_mdu_lock_count_validation(self):
        from repro.sim.drivers import FileSystemDriver

        with pytest.raises(ValueError):
            FileSystemDriver(storage=None, rng=None, mdu_lock_count=0)


class TestFilterDrivers:
    def test_fv_resolve_calls_fs(self):
        def program(machine):
            def inner(ctx):
                with ctx.frame("App!Work"):
                    yield from machine.fv.query_file_table(
                        ctx, 1, resolve=True, cached=False
                    )

            return inner

        stream, machine = run_program(program)
        assert "fv.sys" in modules_seen(stream)
        assert machine.disk.request_count == 1
        # IoCallDriver connects the two drivers on some stack.
        assert any(
            "kernel!IoCallDriver" in event.stack for event in stream.events
        )

    def test_fv_no_resolve_skips_fs(self):
        def program(machine):
            def inner(ctx):
                with ctx.frame("App!Work"):
                    yield from machine.fv.query_file_table(ctx, 1, resolve=False)

            return inner

        _, machine = run_program(program)
        assert machine.disk.request_count == 0

    def test_av_scan_serializes_on_database_lock(self):
        machine = Machine("test", MachineConfig(seed=5, av_database_miss_rate=0.0))

        def scanner(ctx):
            with ctx.frame("AV!Scan"):
                yield from machine.av.scan_file(ctx, 1)

        machine.spawn(scanner, "AV", "A")
        machine.spawn(scanner, "AV", "B", start_at=10)
        stream = machine.run_and_trace()
        db_waits = [
            event
            for event in stream.events_of_kind(EventKind.WAIT)
            if event.resource == "lock:av.sys/SignatureDatabase"
        ]
        assert len(db_waits) == 1

    def test_disk_protection_gate_blocks_reads(self):
        config = MachineConfig(seed=5, disk_protection_enabled=True)
        machine = Machine("test", config)

        def protector(ctx):
            with ctx.frame("System!Monitor"):
                yield from machine.dp.engage(ctx, 50_000)

        def reader(ctx):
            with ctx.frame("App!Work"):
                yield from machine.fs.read_file(ctx, 1, cached=False)

        machine.spawn(protector, "System", "Dp")
        machine.spawn(reader, "App", "A", start_at=1_000)
        stream = machine.run_and_trace()
        gate_waits = [
            event
            for event in stream.events_of_kind(EventKind.WAIT)
            if event.resource == "lock:dp.sys/MotionGate"
        ]
        assert len(gate_waits) == 1
        assert gate_waits[0].cost > 40_000

    def test_backup_pass_reads_files(self):
        def program(machine):
            def inner(ctx):
                with ctx.frame("Backup!Sweep"):
                    yield from machine.bkup.backup_pass(ctx, [1, 2, 3])

            return inner

        stream, machine = run_program(program)
        assert machine.disk.request_count == 3
        assert "bkup.sys" in modules_seen(stream)

    def test_iocache_lookup(self):
        def program(machine):
            def inner(ctx):
                with ctx.frame("App!Work"):
                    yield from machine.iocache.lookup(ctx)

            return inner

        stream, _ = run_program(program)
        assert "iocache.sys" in modules_seen(stream)


class TestPeripheralDrivers:
    def test_network_transfer_uses_network_device(self):
        def program(machine):
            def inner(ctx):
                with ctx.frame("App!Fetch"):
                    yield from machine.net.transfer(ctx)

            return inner

        stream, machine = run_program(program)
        assert machine.network.request_count == 1
        assert "net.sys" in modules_seen(stream)

    def test_network_wait_resolved_by_protocol_dpc(self):
        """The caller blocks in net.sys!Receive; a DPC thread with
        net.sys!ProtocolReceive frames performs the NIC wait and the
        protocol processing — so network delays appear as propagated
        driver behaviour, not a bare hardware leaf."""

        def program(machine):
            def inner(ctx):
                with ctx.frame("App!Fetch"):
                    yield from machine.net.transfer(ctx)

            return inner

        stream, machine = run_program(program)
        waits = stream.events_of_kind(EventKind.WAIT)
        receive_waits = [
            event for event in waits if "net.sys!Receive" in event.stack
        ]
        assert len(receive_waits) == 1
        dpc_threads = [
            info for info in stream.threads.values()
            if info.name.startswith("NetDpc")
        ]
        assert len(dpc_threads) == 1
        dpc_waits = [
            event for event in waits
            if "net.sys!ProtocolReceive" in event.stack
        ]
        assert len(dpc_waits) == 1

    def test_render_holds_gpu_lock_across_hardware(self):
        machine = Machine("test", MachineConfig(seed=5))

        def renderer(ctx):
            with ctx.frame("App!Paint"):
                yield from machine.graphics.render(ctx)

        machine.spawn(renderer, "App", "A")
        machine.spawn(renderer, "App", "B", start_at=10)
        stream = machine.run_and_trace()
        gpu_waits = [
            event
            for event in stream.events_of_kind(EventKind.WAIT)
            if event.resource == "lock:graphics.sys/GpuContext"
        ]
        assert len(gpu_waits) == 1

    def test_mouse_is_cpu_only(self):
        def program(machine):
            def inner(ctx):
                yield from machine.mouse.process_input(ctx)

            return inner

        stream, machine = run_program(program)
        assert machine.disk.request_count == 0
        assert all(
            event.kind is EventKind.RUNNING for event in stream.events
        )

    def test_acpi_power_transition_blocks_queries(self):
        machine = Machine("test", MachineConfig(seed=5))

        def transitioner(ctx):
            with ctx.frame("System!Power"):
                yield from machine.acpi.power_transition(ctx, 20_000)

        def querier(ctx):
            with ctx.frame("App!Check"):
                yield from machine.acpi.query_power_state(ctx)

        machine.spawn(transitioner, "System", "P")
        machine.spawn(querier, "App", "Q", start_at=1_000)
        stream = machine.run_and_trace()
        firmware_waits = [
            event
            for event in stream.events_of_kind(EventKind.WAIT)
            if event.resource == "lock:acpi.sys/Firmware"
        ]
        assert len(firmware_waits) == 1
