"""Impact analysis driver (paper §3).

Takes scenario instances over trace streams plus the component name(s) to
measure, constructs Wait Graphs and reports the three output metrics.
Analyses can be scoped to a subset of scenarios and can reuse pre-built
Wait Graphs (the causality analysis consumes the same graphs).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import AnalysisError
from repro.impact.metrics import ImpactAccumulator, ImpactResult
from repro.trace.signatures import ComponentFilter
from repro.trace.stream import ScenarioInstance, TraceStream
from repro.waitgraph.builder import build_wait_graph
from repro.waitgraph.graph import WaitGraph


def collect_instances(
    streams: Iterable[TraceStream],
    scenarios: Optional[Sequence[str]] = None,
) -> List[ScenarioInstance]:
    """All scenario instances of a corpus, optionally filtered by name."""
    wanted = set(scenarios) if scenarios is not None else None
    instances: List[ScenarioInstance] = []
    for stream in streams:
        for instance in stream.instances:
            if wanted is None or instance.scenario in wanted:
                instances.append(instance)
    return instances


class ImpactAnalysis:
    """Measures performance impact of chosen components over instances.

    Parameters
    ----------
    component_patterns:
        Component name patterns, e.g. ``["*.sys"]`` for all device drivers.
    """

    def __init__(self, component_patterns: Sequence[str]):
        self.component_filter = ComponentFilter(component_patterns)
        self._graph_cache: Dict[tuple, WaitGraph] = {}

    @property
    def graph_cache(self) -> Dict[tuple, WaitGraph]:
        """The instance-key → WaitGraph cache (shareable across analyses)."""
        return self._graph_cache

    def graph_for(self, instance: ScenarioInstance) -> WaitGraph:
        """Build (or fetch from cache) the Wait Graph of an instance."""
        key = instance.key
        graph = self._graph_cache.get(key)
        if graph is None:
            graph = build_wait_graph(instance)
            self._graph_cache[key] = graph
        return graph

    def analyze_instances(
        self, instances: Iterable[ScenarioInstance]
    ) -> ImpactResult:
        """Run impact analysis over the given scenario instances."""
        accumulator = ImpactAccumulator(self.component_filter)
        count = 0
        for instance in instances:
            accumulator.add_graph(self.graph_for(instance))
            count += 1
        if count == 0:
            raise AnalysisError("impact analysis needs at least one instance")
        return accumulator.result()

    def analyze_corpus(
        self,
        streams: Iterable[TraceStream],
        scenarios: Optional[Sequence[str]] = None,
    ) -> ImpactResult:
        """Run impact analysis over every instance in a corpus."""
        return self.analyze_instances(collect_instances(streams, scenarios))

    def analyze_per_scenario(
        self, streams: Iterable[TraceStream]
    ) -> Dict[str, ImpactResult]:
        """Per-scenario impact results over a corpus."""
        streams = list(streams)
        by_scenario: Dict[str, List[ScenarioInstance]] = {}
        for instance in collect_instances(streams):
            by_scenario.setdefault(instance.scenario, []).append(instance)
        return {
            name: self.analyze_instances(instances)
            for name, instances in sorted(by_scenario.items())
        }
