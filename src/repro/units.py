"""Time units used throughout the library.

All timestamps and durations are **integer microseconds** so that arithmetic
is exact and traces serialize without floating-point drift.  The constants
and helpers below keep call sites readable (``5 * MILLISECONDS`` instead of
``5000``).
"""

from __future__ import annotations

MICROSECONDS = 1
MILLISECONDS = 1_000
SECONDS = 1_000_000
MINUTES = 60 * SECONDS
HOURS = 60 * MINUTES

#: ETW and DTrace sample CPU usage at a constant 1 ms interval (paper §2.1).
DEFAULT_SAMPLE_INTERVAL_US = 1 * MILLISECONDS


def us_from_ms(milliseconds: float) -> int:
    """Convert milliseconds to integer microseconds (round to nearest)."""
    return round(milliseconds * MILLISECONDS)


def ms_from_us(microseconds: int) -> float:
    """Convert integer microseconds to (float) milliseconds."""
    return microseconds / MILLISECONDS


def format_duration(microseconds: int) -> str:
    """Render a duration human-readably (``'482.3ms'``, ``'4.73s'``).

    >>> format_duration(800)
    '800us'
    >>> format_duration(482_300)
    '482.3ms'
    >>> format_duration(4_730_000)
    '4.73s'
    """
    if microseconds < MILLISECONDS:
        return f"{microseconds}us"
    if microseconds < SECONDS:
        value = microseconds / MILLISECONDS
        return f"{value:.4g}ms"
    value = microseconds / SECONDS
    return f"{value:.4g}s"
