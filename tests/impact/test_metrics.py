"""Tests for impact-analysis metric accumulation."""

from repro.impact.metrics import ImpactAccumulator
from repro.trace.events import EventKind
from repro.trace.signatures import ALL_DRIVERS, ComponentFilter
from repro.trace.stream import ThreadInfo
from repro.waitgraph.builder import build_wait_graph
from tests.conftest import make_event, make_stream


def single_wait_instance(stream_id="s", driver_wait=True):
    stack = (
        ("App!X", "fv.sys!Query", "kernel!AcquireLock")
        if driver_wait
        else ("App!X", "kernel!AcquireLock")
    )
    events = [
        make_event(EventKind.RUNNING, ("App!X",), timestamp=0, cost=1_000, tid=1),
        make_event(EventKind.WAIT, stack, timestamp=1_000, cost=4_000, tid=1),
        make_event(EventKind.UNWAIT, ("App!Y",), timestamp=5_000, cost=0,
                   tid=2, wtid=1),
    ]
    stream = make_stream(stream_id, events)
    return stream.add_instance("S", tid=1, t0=0, t1=5_000)


class TestBasicCounting:
    def test_d_scn_is_top_level_sum(self):
        accumulator = ImpactAccumulator(ALL_DRIVERS)
        accumulator.add_graph(build_wait_graph(single_wait_instance()))
        assert accumulator.d_scn == 5_000

    def test_driver_wait_counted(self):
        accumulator = ImpactAccumulator(ALL_DRIVERS)
        accumulator.add_graph(build_wait_graph(single_wait_instance()))
        assert accumulator.d_wait == 4_000
        assert accumulator.counted_waits == 1

    def test_non_driver_wait_not_counted(self):
        accumulator = ImpactAccumulator(ALL_DRIVERS)
        accumulator.add_graph(
            build_wait_graph(single_wait_instance(driver_wait=False))
        )
        assert accumulator.d_wait == 0

    def test_nested_driver_wait_not_double_counted(self):
        """A driver wait under a counted driver wait adds nothing."""
        events = [
            make_event(EventKind.WAIT,
                       ("App!X", "fv.sys!Query", "kernel!AcquireLock"),
                       timestamp=0, cost=9_000, tid=1),
            make_event(EventKind.WAIT,
                       ("App!Y", "fs.sys!Read", "kernel!WaitForHardware"),
                       timestamp=0, cost=8_000, tid=2),
            make_event(EventKind.UNWAIT, ("App!Z",), timestamp=8_000,
                       cost=0, tid=3, wtid=2),
            make_event(EventKind.UNWAIT, ("App!Y", "fs.sys!Read"),
                       timestamp=9_000, cost=0, tid=2, wtid=1),
        ]
        stream = make_stream("s", events)
        instance = stream.add_instance("S", tid=1, t0=0, t1=9_000)
        accumulator = ImpactAccumulator(ALL_DRIVERS)
        accumulator.add_graph(build_wait_graph(instance))
        assert accumulator.d_wait == 9_000  # outer only

    def test_driver_wait_under_non_driver_wait_counted(self):
        events = [
            make_event(EventKind.WAIT, ("App!X", "kernel!WaitForObject"),
                       timestamp=0, cost=9_000, tid=1),
            make_event(EventKind.WAIT,
                       ("Svc!Y", "fs.sys!Read", "kernel!WaitForHardware"),
                       timestamp=0, cost=8_000, tid=2),
            make_event(EventKind.UNWAIT, ("App!Z",), timestamp=8_000,
                       cost=0, tid=3, wtid=2),
            make_event(EventKind.UNWAIT, ("Svc!Y",), timestamp=9_000,
                       cost=0, tid=2, wtid=1),
        ]
        stream = make_stream("s", events)
        instance = stream.add_instance("S", tid=1, t0=0, t1=9_000)
        accumulator = ImpactAccumulator(ALL_DRIVERS)
        accumulator.add_graph(build_wait_graph(instance))
        assert accumulator.d_wait == 8_000  # inner driver wait

    def test_running_events_counted_when_matching(self, propagation_stream):
        accumulator = ImpactAccumulator(ALL_DRIVERS)
        accumulator.add_graph(
            build_wait_graph(propagation_stream.instances[0])
        )
        # UI driver runnings (1000+1000) + worker fs runnings (1000+2000).
        assert accumulator.d_run == 5_000


class TestDistinctWaits:
    def test_same_graph_twice_shares_waits(self):
        instance = single_wait_instance()
        graph = build_wait_graph(instance)
        accumulator = ImpactAccumulator(ALL_DRIVERS)
        accumulator.add_graph(graph)
        accumulator.add_graph(graph)
        assert accumulator.d_wait == 8_000
        assert accumulator.d_waitdist == 4_000
        result = accumulator.result()
        assert result.wait_multiplicity == 2.0

    def test_different_streams_distinct(self):
        accumulator = ImpactAccumulator(ALL_DRIVERS)
        accumulator.add_graph(build_wait_graph(single_wait_instance("a")))
        accumulator.add_graph(build_wait_graph(single_wait_instance("b")))
        assert accumulator.d_wait == 8_000
        assert accumulator.d_waitdist == 8_000


class TestResultProperties:
    def test_ratios(self):
        accumulator = ImpactAccumulator(ALL_DRIVERS)
        accumulator.add_graph(build_wait_graph(single_wait_instance()))
        result = accumulator.result()
        assert result.ia_wait == 4_000 / 5_000
        assert result.ia_run == 0.0
        assert result.ia_opt == 0.0
        assert "IA_wait" in result.summary()

    def test_empty_result_is_zero(self):
        result = ImpactAccumulator(ALL_DRIVERS).result()
        assert result.ia_wait == 0.0
        assert result.ia_run == 0.0
        assert result.ia_opt == 0.0
        assert result.wait_multiplicity == 0.0

    def test_patterns_recorded(self):
        component = ComponentFilter(["fv.sys"])
        result = ImpactAccumulator(component).result()
        assert result.patterns == ("fv.sys",)


class TestMerge:
    def test_merge_equals_single_accumulator(self):
        graphs = [
            build_wait_graph(single_wait_instance("a")),
            build_wait_graph(single_wait_instance("b")),
            build_wait_graph(single_wait_instance("c", driver_wait=False)),
        ]
        combined = ImpactAccumulator(ALL_DRIVERS)
        for graph in graphs:
            combined.add_graph(graph)

        left = ImpactAccumulator(ALL_DRIVERS)
        left.add_graph(graphs[0])
        right = ImpactAccumulator(ALL_DRIVERS)
        right.add_graph(graphs[1])
        right.add_graph(graphs[2])
        left.merge(right)

        assert left.result() == combined.result()
        assert left.counted_waits == combined.counted_waits

    def test_merge_deduplicates_shared_waits(self):
        # The same graph seen by both halves must not double-count the
        # distinct-wait denominator, mirroring sequential re-adds.
        graph = build_wait_graph(single_wait_instance("shared"))
        combined = ImpactAccumulator(ALL_DRIVERS)
        combined.add_graph(graph)
        combined.add_graph(graph)

        left = ImpactAccumulator(ALL_DRIVERS)
        left.add_graph(graph)
        right = ImpactAccumulator(ALL_DRIVERS)
        right.add_graph(graph)
        left.merge(right)

        assert left.d_waitdist == combined.d_waitdist
        assert left.d_wait == combined.d_wait

    def test_merge_empty_is_noop(self):
        accumulator = ImpactAccumulator(ALL_DRIVERS)
        accumulator.add_graph(build_wait_graph(single_wait_instance()))
        before = accumulator.result()
        accumulator.merge(ImpactAccumulator(ALL_DRIVERS))
        assert accumulator.result() == before
