"""Tests for deterministic corpus chunking."""

import pytest

from repro.errors import ConfigError
from repro.pipeline.chunking import chunk_sources, default_chunk_size


class TestChunkSources:
    def test_contiguous_and_order_preserving(self):
        items = list(range(10))
        chunks = chunk_sources(items, 3)
        assert chunks == [[0, 1, 2], [3, 4, 5], [6, 7, 8], [9]]
        flattened = [item for chunk in chunks for item in chunk]
        assert flattened == items

    def test_chunk_size_one(self):
        assert chunk_sources(["a", "b"], 1) == [["a"], ["b"]]

    def test_oversized_chunk(self):
        assert chunk_sources([1, 2], 100) == [[1, 2]]

    def test_empty_sources(self):
        assert chunk_sources([], 4) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigError):
            chunk_sources([1], 0)


class TestDefaultChunkSize:
    def test_sequential_gets_one_chunk(self):
        assert default_chunk_size(40, 1) == 40

    def test_parallel_splits_for_load_balance(self):
        size = default_chunk_size(40, 4)
        assert 1 <= size <= 10
        # Enough chunks for every worker to stay busy.
        assert 40 / size >= 4

    def test_small_corpus_never_zero(self):
        assert default_chunk_size(1, 8) == 1
        assert default_chunk_size(0, 8) == 1


class TestProcessMap:
    def test_sequential_path_preserves_order(self):
        from repro.pipeline.executor import process_map

        assert process_map(_double, [1, 2, 3], workers=1) == [2, 4, 6]

    def test_parallel_path_preserves_order(self):
        from repro.pipeline.executor import fork_available, process_map

        if not fork_available():
            pytest.skip("fork start method unavailable")
        assert process_map(_double, list(range(8)), workers=4) == [
            0, 2, 4, 6, 8, 10, 12, 14,
        ]

    def test_falls_back_without_fork(self, monkeypatch):
        import repro.pipeline.executor as executor

        monkeypatch.setattr(executor, "fork_context", lambda: None)
        assert executor.process_map(_double, [3, 5], workers=4) == [6, 10]


def _double(x):
    return x * 2
