"""Tests for cross-corpus comparison."""

import pytest

from repro.causality.mining import ContrastPattern
from repro.causality.sst import SignatureSetTuple
from repro.errors import AnalysisError
from repro.evaluation.compare import (
    compare_impact,
    compare_patterns,
)
from repro.impact.metrics import ImpactResult


def pattern(tag, cost, count=1):
    return ContrastPattern(
        sst=SignatureSetTuple(frozenset({f"{tag}!f"}), frozenset(), frozenset()),
        cost=cost,
        count=count,
        max_single=cost,
        matched_meta_patterns=1,
    )


def impact(ia_wait=0.4, ia_run=0.02, d_scn=1_000_000):
    d_wait = round(d_scn * ia_wait)
    d_run = round(d_scn * ia_run)
    return ImpactResult(
        d_scn=d_scn,
        d_wait=d_wait,
        d_run=d_run,
        d_waitdist=d_wait,
        d_rundist=d_run,
        graphs=10,
        counted_waits=10,
        distinct_waits=10,
        patterns=("*.sys",),
    )


class TestComparePatterns:
    def test_emerged_and_resolved(self):
        baseline = [pattern("old", 100)]
        current = [pattern("new", 200)]
        comparison = compare_patterns(baseline, current)
        assert [p.sst for p in comparison.emerged] == [current[0].sst]
        assert [p.sst for p in comparison.resolved] == [baseline[0].sst]
        assert comparison.has_regressions

    def test_regressed(self):
        baseline = [pattern("x", 100)]
        current = [pattern("x", 500)]
        comparison = compare_patterns(baseline, current)
        assert len(comparison.regressed) == 1
        assert comparison.regressed[0].ratio == 5.0
        assert comparison.has_regressions

    def test_improved(self):
        baseline = [pattern("x", 500)]
        current = [pattern("x", 100)]
        comparison = compare_patterns(baseline, current)
        assert len(comparison.improved) == 1
        assert not comparison.has_regressions

    def test_stable(self):
        baseline = [pattern("x", 100)]
        current = [pattern("x", 120)]
        comparison = compare_patterns(baseline, current)
        assert comparison.stable == 1
        assert not comparison.has_regressions

    def test_factor_validation(self):
        with pytest.raises(AnalysisError):
            compare_patterns([], [], regression_factor=1.0)

    def test_emerged_sorted_by_impact(self):
        current = [pattern("a", 10), pattern("b", 1000)]
        comparison = compare_patterns([], current)
        assert comparison.emerged[0].impact >= comparison.emerged[1].impact

    def test_summary(self):
        comparison = compare_patterns([pattern("x", 100)], [pattern("x", 100)])
        assert "stable" in comparison.summary()

    def test_zero_baseline_impact_counts_as_regression(self):
        zero = pattern("x", 0)
        nonzero = pattern("x", 100)
        comparison = compare_patterns([zero], [nonzero])
        assert comparison.regressed[0].ratio == float("inf")


class TestCompareImpact:
    def test_deltas(self):
        delta = compare_impact(impact(ia_wait=0.3), impact(ia_wait=0.5))
        assert delta.ia_wait_delta == pytest.approx(0.2)
        assert "+20.0%" in delta.summary()

    def test_negative_delta(self):
        delta = compare_impact(impact(ia_run=0.05), impact(ia_run=0.01))
        assert delta.ia_run_delta == pytest.approx(-0.04)


class TestEndToEndComparison:
    def test_lock_granularity_change_detected(self):
        """Coarsening MDU locks should not *improve* things — the compare
        tool run on two simulated 'builds' sees the movement."""
        from repro.causality import CausalityAnalysis
        from repro.sim.casestudy import T_FAST, T_SLOW, run_case_study

        baseline_result = run_case_study(seed=5)
        current_result = run_case_study(seed=6)
        analysis = CausalityAnalysis(["*.sys"])
        baseline = analysis.analyze(
            baseline_result.instances, T_FAST, T_SLOW, "BrowserTabCreate"
        )
        current = analysis.analyze(
            current_result.instances, T_FAST, T_SLOW, "BrowserTabCreate"
        )
        comparison = compare_patterns(baseline.patterns, current.patterns)
        total = (
            len(comparison.emerged)
            + len(comparison.regressed)
            + len(comparison.improved)
            + comparison.stable
        )
        assert total >= 1
