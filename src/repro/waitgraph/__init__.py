"""Wait Graphs and Aggregated Wait Graphs (paper §3.1, §4.1)."""

from repro.waitgraph.aggregate import (
    HARDWARE,
    RUNNING,
    WAITING,
    AggregatedWaitGraph,
    AwgNode,
    aggregate_wait_graphs,
    merge_awgs,
)
from repro.waitgraph.builder import build_wait_graph, build_wait_graphs
from repro.waitgraph.graph import WaitGraph
from repro.waitgraph.paths import CriticalPath, PropagationHop, critical_path

__all__ = [
    "AggregatedWaitGraph",
    "AwgNode",
    "HARDWARE",
    "RUNNING",
    "WAITING",
    "CriticalPath",
    "PropagationHop",
    "WaitGraph",
    "aggregate_wait_graphs",
    "merge_awgs",
    "critical_path",
    "build_wait_graph",
    "build_wait_graphs",
]
