"""Tests for the deterministic paper case studies."""

import pytest

from repro.causality import CausalityAnalysis
from repro.sim.casestudy import (
    HARDFAULT_SCENARIO,
    HARDFAULT_T_FAST,
    HARDFAULT_T_SLOW,
    SCENARIO,
    T_FAST,
    T_SLOW,
    run_case_study,
    run_hardfault_case,
)
from repro.trace.signatures import module_of
from repro.trace.validate import validate_stream
from repro.units import MILLISECONDS, SECONDS


@pytest.fixture(scope="module")
def figure1():
    return run_case_study()


@pytest.fixture(scope="module")
def hardfault():
    return run_hardfault_case()


class TestFigure1Case:
    def test_trace_is_valid(self, figure1):
        validate_stream(figure1.stream)

    def test_one_slow_many_fast(self, figure1):
        assert figure1.slow_instance.duration > 800 * MILLISECONDS
        assert len(figure1.fast_instances) >= 5

    def test_six_thread_cast_present(self, figure1):
        labels = {info.label for info in figure1.stream.threads.values()}
        assert "Browser/UI" in labels
        assert "Browser/W0" in labels
        assert "Browser/W1" in labels
        assert "AntiVirus/W0" in labels
        assert "ConfigMgr/W0" in labels

    def test_section23_pattern_discovered(self, figure1):
        report = CausalityAnalysis(["*.sys"]).analyze(
            figure1.instances, T_FAST, T_SLOW, scenario=SCENARIO
        )
        top = report.patterns[0]
        assert "fv.sys!QueryFileTable" in top.sst.wait_signatures
        assert "fs.sys!AcquireMDU" in top.sst.wait_signatures
        assert top.is_high_impact(T_SLOW)

    def test_deterministic(self):
        first = run_case_study(iterations=7, seed=9)
        second = run_case_study(iterations=7, seed=9)
        assert first.slow_instance.duration == second.slow_instance.duration


class TestHardFaultCase:
    def test_trace_is_valid(self, hardfault):
        validate_stream(hardfault.stream)

    def test_multi_second_hang(self, hardfault):
        assert hardfault.slow_instance.duration > 2 * SECONDS
        assert len(hardfault.fast_instances) >= 4

    def test_pattern_joins_graphics_and_storage(self, hardfault):
        report = CausalityAnalysis(["*.sys"]).analyze(
            hardfault.instances,
            HARDFAULT_T_FAST,
            HARDFAULT_T_SLOW,
            scenario=HARDFAULT_SCENARIO,
        )
        assert report.patterns
        modules = set()
        for pattern in report.patterns:
            modules |= {module_of(s) for s in pattern.sst.all_signatures}
        assert "graphics.sys" in modules
        assert {"fs.sys", "se.sys"} & modules

    def test_pager_thread_did_the_read(self, hardfault):
        pagers = [
            info
            for info in hardfault.stream.threads.values()
            if info.name.startswith("Pager")
        ]
        assert pagers
