"""Tests for external trace importers."""

import pytest

from repro.errors import SerializationError
from repro.trace.events import EventKind
from repro.trace.importers import (
    FieldMap,
    import_csv,
    import_csv_text,
    import_json_events,
    import_records,
)

CSV_SAMPLE = """kind,timestamp,cost,tid,wtid,stack,resource
running,0,1000,1,,app!Main;fv.sys!Query,
wait,1000,500,1,,app!Main;fv.sys!Query;kernel!AcquireLock,lock:ft
unwait,1500,0,2,1,app!Job;kernel!ReleaseLock,lock:ft
hw,2000,300,3,,,
"""


class TestCsvImport:
    def test_round_shape(self):
        stream = import_csv_text(CSV_SAMPLE, stream_id="etl")
        assert stream.stream_id == "etl"
        assert len(stream.events) == 4
        kinds = [event.kind for event in stream.events]
        assert kinds == [
            EventKind.RUNNING, EventKind.WAIT, EventKind.UNWAIT,
            EventKind.HW_SERVICE,
        ]

    def test_stack_split(self):
        stream = import_csv_text(CSV_SAMPLE, stream_id="etl")
        assert stream.events[0].stack == ("app!Main", "fv.sys!Query")

    def test_resource_preserved(self):
        stream = import_csv_text(CSV_SAMPLE, stream_id="etl")
        assert stream.events[1].resource == "lock:ft"

    def test_file_import_uses_basename(self, tmp_path):
        path = tmp_path / "machine42.csv"
        path.write_text(CSV_SAMPLE)
        stream = import_csv(path)
        assert stream.stream_id == "machine42"

    def test_missing_columns_rejected(self):
        with pytest.raises(SerializationError, match="required columns"):
            import_csv_text("a,b\n1,2\n", stream_id="x")

    def test_unknown_kind_rejected(self):
        bad = "kind,timestamp,cost,tid\nteleport,0,1,1\n"
        with pytest.raises(SerializationError, match="unknown event kind"):
            import_csv_text(bad, stream_id="x")

    def test_bad_number_rejected(self):
        bad = "kind,timestamp,cost,tid\nrunning,zero,1,1\n"
        with pytest.raises(SerializationError, match="not a number"):
            import_csv_text(bad, stream_id="x")

    def test_unwait_requires_wtid(self):
        bad = "kind,timestamp,cost,tid,stack\nunwait,0,0,1,a!b\n"
        with pytest.raises(SerializationError, match="missing required"):
            import_csv_text(bad, stream_id="x")

    def test_custom_field_map(self):
        csv_text = "type,ts,dur,thread,frames\nrun,0,100,1,a!b|c!d\n"
        stream = import_csv_text(
            csv_text,
            stream_id="x",
            fields=FieldMap(
                kind="type", timestamp="ts", cost="dur", tid="thread",
                stack="frames", stack_separator="|",
            ),
        )
        assert stream.events[0].stack == ("a!b", "c!d")

    def test_kind_aliases(self):
        text = (
            "kind,timestamp,cost,tid,wtid,stack\n"
            "cpu,0,100,1,,a!b\n"
            "blocked,100,50,1,,a!b\n"
            "readythread,150,0,2,1,c!d\n"
            "diskio,200,10,3,,\n"
        )
        stream = import_csv_text(text, stream_id="x")
        assert [event.kind for event in stream.events] == [
            EventKind.RUNNING, EventKind.WAIT, EventKind.UNWAIT,
            EventKind.HW_SERVICE,
        ]


class TestJsonImport:
    def test_list_stacks(self):
        records = [
            {"kind": "running", "timestamp": 0, "cost": 100, "tid": 1,
             "stack": ["a!b", "c!d"]},
        ]
        stream = import_json_events(records)
        assert stream.events[0].stack == ("a!b", "c!d")

    def test_validation_optional(self):
        # A lone wait without its unwait is invalid; validate=False admits it.
        records = [
            {"kind": "wait", "timestamp": 0, "cost": 100, "tid": 1,
             "stack": "a!b"},
        ]
        with pytest.raises(Exception):
            import_json_events(records)
        stream = import_json_events(records, validate=False)
        assert len(stream.events) == 1


class TestWaitRestoration:
    def test_zero_cost_waits_restored_from_unwaits(self):
        records = [
            {"kind": "wait", "timestamp": 100, "cost": 0, "tid": 1,
             "stack": "a!b"},
            {"kind": "unwait", "timestamp": 900, "cost": 0, "tid": 2,
             "wtid": 1, "stack": "c!d"},
        ]
        stream = import_records(
            records, "x", restore_wait_durations=True
        )
        wait = stream.events_of_kind(EventKind.WAIT)[0]
        assert wait.cost == 800

    def test_each_unwait_used_once(self):
        records = [
            {"kind": "wait", "timestamp": 0, "cost": 0, "tid": 1,
             "stack": "a!b"},
            {"kind": "unwait", "timestamp": 100, "cost": 0, "tid": 2,
             "wtid": 1, "stack": "c!d"},
            {"kind": "wait", "timestamp": 200, "cost": 0, "tid": 1,
             "stack": "a!b"},
            {"kind": "unwait", "timestamp": 500, "cost": 0, "tid": 2,
             "wtid": 1, "stack": "c!d"},
        ]
        stream = import_records(records, "x", restore_wait_durations=True)
        waits = stream.events_of_kind(EventKind.WAIT)
        assert [wait.cost for wait in waits] == [100, 300]


class TestAnalysisOnImported:
    def test_imported_trace_feeds_wait_graph(self):
        stream = import_csv_text(CSV_SAMPLE, stream_id="etl")
        instance = stream.add_instance("S", tid=1, t0=0, t1=2_500)
        from repro.waitgraph.builder import build_wait_graph

        graph = build_wait_graph(instance)
        assert len(graph.roots) == 2
        lock_wait = graph.roots[1]
        unwait = graph.unwait_of(lock_wait)
        assert unwait is not None
        assert unwait.tid == 2
