"""The hostile-corpus property, exercised corruptor × format × workers.

The resilience layer's contract: analyzing a fuzzed corpus under a
non-strict policy equals the strict analysis of exactly the traces that
survive that policy's ingestion — for every corruptor, both trace
encodings, and any worker count.
"""

import pytest

from repro.errors import TraceError, TraceSalvageError
from repro.evaluation.study import run_study
from repro.impact import ImpactAnalysis
from repro.pipeline import parallel_impact, parallel_study
from repro.report.markdown import study_to_markdown
from repro.resilience import CORRUPTORS, RunHealth, fuzz_corpus
from repro.sim.corpus import CorpusConfig, generate_corpus
from repro.trace import dump_corpus, iter_corpus_paths, load_stream

FUZZ_SEED = 20140301
WORKER_COUNTS = (1, 2, 4)

#: Small streams keep the cross product affordable; the corpus is still
#: large enough that fraction=0.5 leaves survivors for every corruptor.
TINY = CorpusConfig(
    streams=6, seed=4242, workloads_per_stream=(1, 2), repeats_range=(2, 3)
)


@pytest.fixture(scope="module")
def tiny_corpus():
    return generate_corpus(TINY)


def _fuzzed_dir(tmp_path_factory, corpus, format, corruptor):
    directory = tmp_path_factory.mktemp(f"fuzz-{format}-{corruptor}")
    dump_corpus(corpus, directory, format=format)
    fuzz_corpus(
        directory, seed=FUZZ_SEED, fraction=0.5, corruptors=[corruptor]
    )
    return directory


def _survivors(directory, policy):
    """The streams a policy keeps, loaded eagerly — the strict baseline.

    Survival means what it means inside a worker: the stream loads under
    the policy *and* its per-instance analysis completes — a corrupted
    file can parse fine yet blow up in wait-graph construction, and the
    pipeline confines that to the one trace too.
    """
    from repro.impact.metrics import ImpactAccumulator
    from repro.trace.signatures import ComponentFilter
    from repro.waitgraph.builder import build_wait_graph

    kept = []
    for path in iter_corpus_paths(directory):
        try:
            stream = load_stream(path, on_error=policy)
            probe = ImpactAccumulator(ComponentFilter(("*.sys",)))
            for instance in stream.instances:
                probe.add_graph(build_wait_graph(instance))
        except Exception:
            continue
        kept.append(stream)
    return kept


@pytest.mark.parametrize("corruptor", sorted(CORRUPTORS))
@pytest.mark.parametrize("format", ["jsonl", "rtb"])
def test_impact_equals_strict_analysis_of_survivors(
    tiny_corpus, tmp_path_factory, format, corruptor
):
    directory = _fuzzed_dir(tmp_path_factory, tiny_corpus, format, corruptor)
    paths = iter_corpus_paths(directory)
    for policy in ("skip", "salvage"):
        survivors = _survivors(directory, policy)
        assert survivors, f"{corruptor} left no survivors at fraction 0.5"
        expected = ImpactAnalysis(["*.sys"]).analyze_corpus(survivors)
        for workers in WORKER_COUNTS:
            health = RunHealth()
            result = parallel_impact(
                paths, workers=workers, on_error=policy, health=health
            )
            assert result == expected, (
                f"{corruptor}/{format}/{policy} diverged at workers={workers}"
            )
            assert health.analyzed == len(survivors)
            assert health.analyzed + health.skipped == len(paths)


def test_study_markdown_is_byte_identical_to_survivor_study(
    tiny_corpus, tmp_path_factory
):
    directory = _fuzzed_dir(tmp_path_factory, tiny_corpus, "jsonl", "truncate")
    paths = iter_corpus_paths(directory)
    survivors = _survivors(directory, "salvage")
    expected = study_to_markdown(run_study(survivors))
    for workers in WORKER_COUNTS:
        study = parallel_study(paths, workers=workers, on_error="salvage")
        assert study_to_markdown(study) == expected


def test_health_counts_are_reproducible(tiny_corpus, tmp_path_factory):
    first = _fuzzed_dir(tmp_path_factory, tiny_corpus, "jsonl", "zero-length")
    second = _fuzzed_dir(tmp_path_factory, tiny_corpus, "jsonl", "zero-length")
    healths = []
    for directory in (first, second):
        health = RunHealth()
        parallel_impact(
            iter_corpus_paths(directory),
            workers=2,
            on_error="skip",
            health=health,
        )
        healths.append(health)
    assert healths[0].to_json()["skipped"] == healths[1].to_json()["skipped"]
    assert [f.error_type for f in healths[0].failures] == [
        f.error_type for f in healths[1].failures
    ]
