"""Shared fixtures for the benchmark harness.

The benches regenerate every table and figure of the paper's evaluation
(§5) on a synthetic corpus.  Corpus size is controlled by the
``REPRO_BENCH_STREAMS`` environment variable (default 32 streams; the
paper used ≈19,500 — scale up when you have the time budget).

The corpus and the full study result are session-scoped: the expensive
end-to-end evaluation runs once, and each bench times one representative
unit of its pipeline stage while printing its table from the shared
result.
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation.study import run_study
from repro.sim.corpus import CorpusConfig, generate_corpus

BENCH_STREAMS = int(os.environ.get("REPRO_BENCH_STREAMS", "32"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20140301"))


@pytest.fixture(scope="session")
def bench_corpus():
    return generate_corpus(
        CorpusConfig(streams=BENCH_STREAMS, seed=BENCH_SEED)
    )


@pytest.fixture(scope="session")
def bench_study(bench_corpus):
    return run_study(bench_corpus)


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
