"""The content-addressed artifact store.

Layout (all under one user-chosen directory)::

    store/
      store.json                  # informational: schema version
      objects/<hh>/<content_hash>-<fingerprint>.partial
      quarantine/                 # corrupt entries, moved aside for autopsy

``<hh>`` is the first two hex digits of the content hash — a standard
fan-out so no single directory grows unboundedly.  The two halves of an
entry's address are the SHA-256 of the trace file's bytes and the
:func:`~repro.store.fingerprint.analysis_fingerprint` of the map-phase
configuration; identical trace content therefore shares cache entries
regardless of file name, and any configuration or schema change misses
cleanly into a recompute.

Entries are self-verifying::

    magic | header length | header JSON | payload

where the header records the address, payload codec, payload length and
payload SHA-256.  ``load`` re-derives the checksum before unpickling;
*any* mismatch — truncation, bit rot, a partial write from a killed
process, garbage — moves the file into ``quarantine/`` and reports a
miss, so the caller transparently recomputes.  Writes go through a
temporary file in the same directory followed by an atomic ``os.replace``,
which makes concurrent writers (pipeline workers) idempotent: last
rename wins and every version is byte-identical by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import StoreError
from repro.store.fingerprint import STORE_SCHEMA_VERSION

_MAGIC = b"repro-store\x01"
_CODEC = "pickle+zlib"
_SUFFIX = ".partial"
_HEX_DIGITS = set("0123456789abcdef")


@dataclass(frozen=True)
class EntryInfo:
    """One on-disk entry, as seen by stats/verify/gc walks."""

    path: str
    content_hash: str
    fingerprint: str
    size: int


@dataclass
class StoreStats:
    """Aggregate numbers for ``repro store stats``."""

    entries: int = 0
    total_bytes: int = 0
    distinct_traces: int = 0
    distinct_fingerprints: int = 0
    quarantined: int = 0
    quarantined_bytes: int = 0
    fingerprints: Dict[str, int] = field(default_factory=dict)


@dataclass
class VerifyReport:
    """Outcome of a full-store integrity check."""

    checked: int = 0
    ok: int = 0
    corrupt: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return not self.corrupt


@dataclass
class GcReport:
    """What a garbage-collection pass reclaimed."""

    removed_entries: int = 0
    removed_bytes: int = 0
    removed_quarantined: int = 0
    kept_entries: int = 0


class ArtifactStore:
    """A persistent map ``(content hash, fingerprint) -> analysis partial``.

    Instances are cheap handles over a directory; every worker process
    opens its own.  Per-instance ``hits`` / ``misses`` / ``writes`` /
    ``quarantined`` counters cover this handle only; the pipeline sums
    worker-side counts into the parent handle via :meth:`record_session`.
    """

    def __init__(self, directory: "os.PathLike | str"):
        self.directory = os.fspath(directory)
        if os.path.exists(self.directory) and not os.path.isdir(self.directory):
            raise StoreError(
                f"store path {self.directory!r} exists and is not a directory"
            )
        self.objects_dir = os.path.join(self.directory, "objects")
        self.quarantine_dir = os.path.join(self.directory, "quarantine")
        os.makedirs(self.objects_dir, exist_ok=True)
        os.makedirs(self.quarantine_dir, exist_ok=True)
        self._write_meta()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0

    # -- layout ---------------------------------------------------------------

    def _write_meta(self) -> None:
        meta_path = os.path.join(self.directory, "store.json")
        if os.path.exists(meta_path):
            return
        meta = {"store_schema": STORE_SCHEMA_VERSION, "codec": _CODEC}
        with open(meta_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle, sort_keys=True)
            handle.write("\n")

    def entry_path(self, content_hash: str, fingerprint: str) -> str:
        return os.path.join(
            self.objects_dir,
            content_hash[:2],
            f"{content_hash}-{fingerprint}{_SUFFIX}",
        )

    @staticmethod
    def _parse_name(name: str) -> Optional[Tuple[str, str]]:
        """``(content_hash, fingerprint)`` from an entry file name, or None."""
        if not name.endswith(_SUFFIX):
            return None
        stem = name[: -len(_SUFFIX)]
        content_hash, sep, fingerprint = stem.partition("-")
        if not sep or len(content_hash) != 64 or len(fingerprint) != 64:
            return None
        if not (_HEX_DIGITS >= set(content_hash) and _HEX_DIGITS >= set(fingerprint)):
            return None
        return content_hash, fingerprint

    def entries(self) -> Iterator[EntryInfo]:
        """Walk every well-named entry, in deterministic (sorted) order."""
        if not os.path.isdir(self.objects_dir):
            return
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                parsed = self._parse_name(name)
                if parsed is None:
                    continue
                path = os.path.join(shard_dir, name)
                try:
                    size = os.path.getsize(path)
                except OSError:
                    continue
                yield EntryInfo(
                    path=path,
                    content_hash=parsed[0],
                    fingerprint=parsed[1],
                    size=size,
                )

    # -- read/write -----------------------------------------------------------

    def save(self, content_hash: str, fingerprint: str, partial: object) -> str:
        """Serialize and atomically publish one partial; returns its path."""
        payload = zlib.compress(
            pickle.dumps(partial, protocol=pickle.HIGHEST_PROTOCOL)
        )
        header = json.dumps(
            {
                "schema": STORE_SCHEMA_VERSION,
                "codec": _CODEC,
                "content_hash": content_hash,
                "fingerprint": fingerprint,
                "payload_len": len(payload),
                "payload_sha256": hashlib.sha256(payload).hexdigest(),
            },
            sort_keys=True,
        ).encode("utf-8")
        path = self.entry_path(content_hash, fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        blob = b"".join(
            (_MAGIC, len(header).to_bytes(4, "big"), header, payload)
        )
        temporary = f"{path}.tmp.{os.getpid()}"
        try:
            with open(temporary, "wb") as handle:
                handle.write(blob)
            os.replace(temporary, path)
        finally:
            if os.path.exists(temporary):  # pragma: no cover - failure path
                os.unlink(temporary)
        self.writes += 1
        return path

    def _check_blob(
        self, blob: bytes, content_hash: str, fingerprint: str
    ) -> bytes:
        """Validate one entry's bytes; return the payload or raise StoreError."""
        if not blob.startswith(_MAGIC):
            raise StoreError("bad magic")
        offset = len(_MAGIC)
        if len(blob) < offset + 4:
            raise StoreError("truncated header length")
        header_len = int.from_bytes(blob[offset : offset + 4], "big")
        offset += 4
        header_bytes = blob[offset : offset + header_len]
        if len(header_bytes) != header_len:
            raise StoreError("truncated header")
        try:
            header = json.loads(header_bytes)
        except json.JSONDecodeError as exc:
            raise StoreError(f"unparseable header: {exc}") from None
        if header.get("schema") != STORE_SCHEMA_VERSION:
            raise StoreError(f"schema {header.get('schema')!r} != {STORE_SCHEMA_VERSION}")
        if header.get("codec") != _CODEC:
            raise StoreError(f"unknown codec {header.get('codec')!r}")
        if header.get("content_hash") != content_hash:
            raise StoreError("content hash mismatch between name and header")
        if header.get("fingerprint") != fingerprint:
            raise StoreError("fingerprint mismatch between name and header")
        payload = blob[offset + header_len :]
        if len(payload) != header.get("payload_len"):
            raise StoreError(
                f"payload length {len(payload)} != {header.get('payload_len')}"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("payload_sha256"):
            raise StoreError("payload checksum mismatch")
        return payload

    def load(self, content_hash: str, fingerprint: str) -> Optional[object]:
        """The stored partial, or ``None`` on a miss.

        Corrupt entries count as misses: the damaged file is moved to
        ``quarantine/`` and the caller recomputes (and re-saves) the
        partial, healing the store in place.
        """
        path = self.entry_path(content_hash, fingerprint)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        try:
            payload = self._check_blob(blob, content_hash, fingerprint)
            partial = pickle.loads(zlib.decompress(payload))
        except (StoreError, zlib.error, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError) as exc:
            self._quarantine(path, reason=str(exc))
            self.misses += 1
            return None
        self.hits += 1
        return partial

    def _quarantine(self, path: str, reason: str) -> None:
        """Move a damaged entry aside; never raises on housekeeping failure."""
        del reason  # diagnosis happens on the quarantined bytes themselves
        name = os.path.basename(path)
        destination = os.path.join(self.quarantine_dir, name)
        suffix = 0
        while os.path.exists(destination):
            suffix += 1
            destination = os.path.join(
                self.quarantine_dir, f"{name}.{suffix}"
            )
        try:
            os.replace(path, destination)
        except OSError:  # pragma: no cover - racing workers both quarantining
            pass
        self.quarantined += 1

    def quarantine_trace(self, trace_path: str, reason: str) -> Optional[str]:
        """Copy a persistently-failing trace file into ``quarantine/``.

        Used by the resilient executor for poison traces — ones that
        kept crashing workers through the retry/bisection budget.  The
        original corpus file is **copied, never moved**: the store does
        not own the corpus, so the evidence is preserved here (with a
        ``.reason.txt`` sidecar saying why) while the user decides what
        to do with the original.  Returns the quarantined copy's path,
        or ``None`` when the bytes could not be read (nothing to keep).
        """
        name = os.path.basename(os.fspath(trace_path))
        destination = os.path.join(self.quarantine_dir, name)
        suffix = 0
        while os.path.exists(destination):
            suffix += 1
            destination = os.path.join(self.quarantine_dir, f"{name}.{suffix}")
        try:
            with open(os.fspath(trace_path), "rb") as source:
                data = source.read()
        except OSError:
            return None
        with open(destination, "wb") as target:
            target.write(data)
        with open(f"{destination}.reason.txt", "w", encoding="utf-8") as note:
            note.write(reason.rstrip("\n") + "\n")
        self.quarantined += 1
        return destination

    # -- session accounting ---------------------------------------------------

    def record_session(self, hits: int, misses: int) -> None:
        """Fold worker-side hit/miss counts into this (parent) handle."""
        self.hits += hits
        self.misses += misses

    @property
    def session_lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.session_lookups
        return self.hits / lookups if lookups else 0.0

    # -- maintenance ----------------------------------------------------------

    def stats(self) -> StoreStats:
        stats = StoreStats()
        traces: Set[str] = set()
        for entry in self.entries():
            stats.entries += 1
            stats.total_bytes += entry.size
            traces.add(entry.content_hash)
            stats.fingerprints[entry.fingerprint] = (
                stats.fingerprints.get(entry.fingerprint, 0) + 1
            )
        stats.distinct_traces = len(traces)
        stats.distinct_fingerprints = len(stats.fingerprints)
        if os.path.isdir(self.quarantine_dir):
            for name in os.listdir(self.quarantine_dir):
                path = os.path.join(self.quarantine_dir, name)
                try:
                    stats.quarantined_bytes += os.path.getsize(path)
                    stats.quarantined += 1
                except OSError:  # pragma: no cover
                    continue
        return stats

    def verify(self, deep: bool = False) -> VerifyReport:
        """Integrity-check every entry; quarantine the ones that fail.

        The default check validates framing and the payload checksum;
        ``deep=True`` additionally unpickles each payload, catching
        entries whose bytes are intact but whose pickled classes no
        longer load.
        """
        report = VerifyReport()
        for entry in list(self.entries()):
            report.checked += 1
            try:
                with open(entry.path, "rb") as handle:
                    blob = handle.read()
                payload = self._check_blob(
                    blob, entry.content_hash, entry.fingerprint
                )
                if deep:
                    pickle.loads(zlib.decompress(payload))
            except Exception as exc:  # noqa: BLE001 - quarantine anything bad
                report.corrupt.append((entry.path, str(exc)))
                self._quarantine(entry.path, reason=str(exc))
                continue
            report.ok += 1
        return report

    def gc(
        self,
        live_content_hashes: Optional[Set[str]] = None,
        keep_fingerprints: Optional[Set[str]] = None,
        drop_quarantine: bool = True,
    ) -> GcReport:
        """Reclaim space: drop quarantined files and dead entries.

        An entry is dead when ``live_content_hashes`` is given and its
        trace is no longer in the corpus, or ``keep_fingerprints`` is
        given and its configuration is no longer of interest.  With
        neither constraint, only quarantine and malformed names are
        reclaimed — gc never guesses at liveness.
        """
        report = GcReport()
        for entry in list(self.entries()):
            dead = (
                live_content_hashes is not None
                and entry.content_hash not in live_content_hashes
            ) or (
                keep_fingerprints is not None
                and entry.fingerprint not in keep_fingerprints
            )
            if not dead:
                report.kept_entries += 1
                continue
            try:
                os.unlink(entry.path)
                report.removed_entries += 1
                report.removed_bytes += entry.size
            except OSError:  # pragma: no cover
                continue
        # Malformed file names in objects/ can only come from outside
        # interference; sweep them with the dead entries.
        for shard in sorted(os.listdir(self.objects_dir)):
            shard_dir = os.path.join(self.objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if self._parse_name(name) is None and not name.endswith(".tmp"):
                    path = os.path.join(shard_dir, name)
                    try:
                        size = os.path.getsize(path)
                        os.unlink(path)
                        report.removed_entries += 1
                        report.removed_bytes += size
                    except OSError:  # pragma: no cover
                        continue
        if drop_quarantine and os.path.isdir(self.quarantine_dir):
            for name in sorted(os.listdir(self.quarantine_dir)):
                path = os.path.join(self.quarantine_dir, name)
                try:
                    os.unlink(path)
                    report.removed_quarantined += 1
                except OSError:  # pragma: no cover
                    continue
        return report
