"""Shared fixtures: hand-crafted streams and small simulated corpora."""

from __future__ import annotations

import pytest
from hypothesis import settings as hypothesis_settings

from repro.sim.corpus import CorpusConfig, generate_corpus
from repro.trace.events import Event, EventKind
from repro.trace.stream import ThreadInfo, TraceStream

# Property tests run simulations; wall-clock deadlines would flake on
# loaded machines, so disable them globally.
hypothesis_settings.register_profile("repro", deadline=None)
hypothesis_settings.load_profile("repro")


def make_event(
    kind=EventKind.RUNNING,
    stack=("app!Main",),
    timestamp=0,
    cost=1000,
    tid=1,
    seq=0,
    wtid=None,
    resource=None,
):
    """Build an event with convenient defaults."""
    return Event(
        kind=kind,
        stack=tuple(stack),
        timestamp=timestamp,
        cost=cost,
        tid=tid,
        seq=seq,
        wtid=wtid,
        resource=resource,
    )


def make_stream(stream_id="test", events=(), threads=()):
    """Build a stream from unordered events (renumbering seq)."""
    return TraceStream.from_events(stream_id, events, threads)


@pytest.fixture
def simple_threads():
    return [
        ThreadInfo(tid=1, process="App", name="UI"),
        ThreadInfo(tid=2, process="App", name="Worker"),
        ThreadInfo(tid=3, process="Hardware", name="Disk"),
    ]


@pytest.fixture
def propagation_stream(simple_threads):
    """A hand-crafted stream with one propagation chain.

    Thread 1 (UI) waits on a lock held by thread 2 (Worker); the worker
    runs in a driver, waits on disk (thread 3), then releases.  The UI
    thread's instance window covers the whole chain.
    """
    events = [
        # UI runs briefly, then blocks on the lock from t=1000 to t=9000.
        make_event(EventKind.RUNNING, ("App!Click", "fv.sys!QueryFileTable"),
                   timestamp=0, cost=1000, tid=1),
        make_event(EventKind.WAIT,
                   ("App!Click", "fv.sys!QueryFileTable", "kernel!AcquireLock"),
                   timestamp=1000, cost=8000, tid=1, resource="lock:ft"),
        # Worker holds the lock: runs, waits on disk, runs, releases.
        make_event(EventKind.RUNNING, ("App!Job", "fs.sys!Read"),
                   timestamp=1000, cost=1000, tid=2),
        make_event(EventKind.WAIT,
                   ("App!Job", "fs.sys!Read", "kernel!WaitForHardware"),
                   timestamp=2000, cost=5000, tid=2, resource="device:Disk"),
        make_event(EventKind.HW_SERVICE, (), timestamp=2000, cost=5000, tid=3,
                   resource="device:Disk"),
        make_event(EventKind.UNWAIT, ("Hardware!DiskService",),
                   timestamp=7000, cost=0, tid=3, wtid=2,
                   resource="device:Disk"),
        make_event(EventKind.RUNNING, ("App!Job", "fs.sys!Read"),
                   timestamp=7000, cost=2000, tid=2),
        make_event(EventKind.UNWAIT,
                   ("App!Job", "fs.sys!Read", "kernel!ReleaseLock"),
                   timestamp=9000, cost=0, tid=2, wtid=1, resource="lock:ft"),
        # UI finishes its work.
        make_event(EventKind.RUNNING, ("App!Click", "fv.sys!QueryFileTable"),
                   timestamp=9000, cost=1000, tid=1),
    ]
    stream = make_stream("prop", events, simple_threads)
    stream.add_instance("Click", tid=1, t0=0, t1=10_000)
    return stream


@pytest.fixture(scope="session")
def small_corpus():
    """A small deterministic corpus shared by integration-style tests."""
    return generate_corpus(CorpusConfig(streams=4, seed=1234))


@pytest.fixture(scope="session")
def medium_corpus():
    """A slightly larger corpus for evaluation-level tests."""
    return generate_corpus(CorpusConfig(streams=8, seed=77))
