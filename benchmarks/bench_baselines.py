"""Baselines — what call-graph profiling and per-lock analysis miss (§1).

1. A gprof-style CPU profile reports device drivers as a small CPU
   consumer (the paper's IA_run ≈ 1.6%), saying nothing about the 36%+
   wait impact the impact analysis exposes.
2. A per-lock contention analysis sees each lock's direct wait total, but
   the motivating case's UI delay exceeds what any single lock explains —
   the chain across locks plus hardware is only visible to the Wait
   Graph / causality pipeline.
"""

from benchmarks.conftest import print_banner
from repro.baselines import analyze_lock_contention, profile_corpus
from repro.impact import ImpactAnalysis
from repro.report.tables import Table, fmt_pct, fmt_us
from repro.sim.casestudy import run_case_study
from repro.trace.signatures import ALL_DRIVERS


def test_bench_callgraph_blindspot(benchmark, bench_corpus):
    profile = benchmark.pedantic(
        lambda: profile_corpus(bench_corpus), rounds=1, iterations=1
    )
    impact = ImpactAnalysis(["*.sys"]).analyze_corpus(bench_corpus)
    cpu_share = profile.component_cpu_share(ALL_DRIVERS)

    print_banner("Baseline 1 - Call-graph CPU profile vs impact analysis")
    table = Table(["View", "Driver impact it reports"])
    table.add_row("gprof-style CPU profile", fmt_pct(cpu_share))
    table.add_row("impact analysis IA_run", fmt_pct(impact.ia_run))
    table.add_row("impact analysis IA_wait", fmt_pct(impact.ia_wait))
    print(table.render())
    print("\nTop driver functions by CPU (all the profiler can say):")
    shown = 0
    for entry in profile.top_exclusive(40):
        if ALL_DRIVERS.matches_signature(entry.signature):
            print(f"  {fmt_us(entry.exclusive):>10}  {entry.signature}")
            shown += 1
            if shown == 5:
                break

    # The blind spot: CPU-only attribution misses the wait impact by a
    # large factor.
    assert cpu_share < impact.ia_wait / 3


def test_bench_single_lock_blindspot(benchmark):
    result = run_case_study()
    analysis = benchmark(
        lambda: analyze_lock_contention([result.stream])
    )

    print_banner("Baseline 2 - Per-lock contention vs the propagation chain")
    table = Table(["Lock", "Total wait", "Waits", "Max wait"])
    for profile in analysis.top_locks(5):
        table.add_row(
            profile.resource,
            fmt_us(profile.total_wait),
            profile.waits,
            fmt_us(profile.max_wait),
        )
    print(table.render())

    ui_delay = result.slow_instance.duration
    combined, biggest_single = analysis.isolated_view_of(
        ["lock:fv.sys/FileTable0", "lock:fs.sys/MDU0"]
    )
    print(
        f"\nUI-perceived delay: {fmt_us(ui_delay)}; "
        f"largest single-lock total: {fmt_us(biggest_single)}; "
        f"cross-lock combined: {fmt_us(combined)}"
    )
    # No single lock's own direct waiting explains the combined chain the
    # causality analysis surfaces: both contention regions contribute.
    fv = analysis.lock("lock:fv.sys/FileTable0")
    mdu = analysis.lock("lock:fs.sys/MDU0")
    assert fv is not None and mdu is not None, "both regions must exist"
    assert fv.total_wait > 0 and mdu.total_wait > 0
    assert biggest_single < combined
