"""Tests for JSONL trace serialization."""

import io

import pytest

from repro.errors import SerializationError
from repro.trace.events import EventKind
from repro.trace.serialization import (
    dump_corpus,
    dump_stream,
    dumps_stream,
    iter_corpus_paths,
    load_corpus,
    load_stream,
    loads_stream,
    stream_content_hash,
)
from repro.trace.stream import ThreadInfo
from tests.conftest import make_event, make_stream


def build_sample_stream():
    events = [
        make_event(EventKind.RUNNING, ("app!Main",), timestamp=0, cost=1000, tid=1),
        make_event(
            EventKind.WAIT,
            ("app!Main", "kernel!AcquireLock"),
            timestamp=1000,
            cost=500,
            tid=1,
            resource="lock:x",
        ),
        make_event(
            EventKind.UNWAIT,
            ("app!Job",),
            timestamp=1500,
            cost=0,
            tid=2,
            wtid=1,
            resource="lock:x",
        ),
        make_event(EventKind.HW_SERVICE, (), timestamp=2000, cost=300, tid=3),
    ]
    threads = [
        ThreadInfo(1, "App", "UI"),
        ThreadInfo(2, "App", "Worker"),
        ThreadInfo(3, "Hardware", "Disk"),
    ]
    stream = make_stream("sample", events, threads)
    stream.add_instance("Demo", tid=1, t0=0, t1=2300)
    return stream


class TestRoundTrip:
    def test_string_round_trip(self):
        original = build_sample_stream()
        restored = loads_stream(dumps_stream(original))
        assert restored.stream_id == original.stream_id
        assert restored.events == original.events
        assert restored.threads == original.threads
        assert [i.key for i in restored.instances] == [
            i.key for i in original.instances
        ]

    def test_file_round_trip(self, tmp_path):
        original = build_sample_stream()
        path = tmp_path / "trace.jsonl"
        dump_stream(original, path)
        restored = load_stream(path)
        assert restored.events == original.events

    def test_handle_round_trip(self):
        original = build_sample_stream()
        buffer = io.StringIO()
        dump_stream(original, buffer)
        buffer.seek(0)
        restored = load_stream(buffer)
        assert restored.events == original.events

    def test_corpus_round_trip(self, tmp_path):
        streams = [build_sample_stream() for _ in range(3)]
        for index, stream in enumerate(streams):
            stream.stream_id = f"s{index}"
        paths = dump_corpus(streams, tmp_path / "corpus")
        assert len(paths) == 3
        restored = list(load_corpus(tmp_path / "corpus"))
        assert [stream.stream_id for stream in restored] == ["s0", "s1", "s2"]
        assert restored[0].events == streams[0].events

    def test_resource_field_preserved(self):
        original = build_sample_stream()
        restored = loads_stream(dumps_stream(original))
        assert restored.events[1].resource == "lock:x"


class TestMalformedInput:
    def test_empty_file(self):
        with pytest.raises(SerializationError, match="empty"):
            loads_stream("")

    def test_header_not_json(self):
        with pytest.raises(SerializationError, match="not valid JSON"):
            loads_stream("not-json\n")

    def test_missing_header(self):
        with pytest.raises(SerializationError, match="header"):
            loads_stream('{"k": "running"}\n')

    def test_bad_version(self):
        with pytest.raises(SerializationError, match="version"):
            loads_stream('{"type": "header", "version": 99, "stream_id": "x"}\n')

    def test_bad_event_record(self):
        text = (
            '{"type": "header", "version": 1, "stream_id": "x", "threads": []}\n'
            '{"k": "nope", "s": [], "t": 0, "c": 0, "tid": 1}\n'
        )
        with pytest.raises(SerializationError, match="malformed event"):
            loads_stream(text)

    def test_bad_event_json_line(self):
        text = (
            '{"type": "header", "version": 1, "stream_id": "x", "threads": []}\n'
            "{{{\n"
        )
        with pytest.raises(SerializationError, match="line 2"):
            loads_stream(text)

    def test_bad_instance_record(self):
        text = (
            '{"type": "header", "version": 1, "stream_id": "x", "threads": []}\n'
            '{"type": "instance", "scenario": "Demo"}\n'
        )
        with pytest.raises(SerializationError, match="instance"):
            loads_stream(text)

    def test_blank_lines_ignored(self):
        text = (
            '{"type": "header", "version": 1, "stream_id": "x", "threads": []}\n'
            "\n"
        )
        stream = loads_stream(text)
        assert len(stream) == 0


class TestCorpusSerializationOfSimOutput:
    def test_simulated_stream_round_trips(self, small_corpus):
        stream = small_corpus[0]
        restored = loads_stream(dumps_stream(stream))
        assert restored.events == stream.events
        assert len(restored.instances) == len(stream.instances)


class TestCorpusPaths:
    def _write_corpus(self, tmp_path, ids):
        streams = []
        for stream_id in ids:
            events = [make_event(timestamp=0, cost=10, tid=1)]
            streams.append(make_stream(stream_id, events))
        dump_corpus(streams, tmp_path)
        return streams

    def test_paths_sorted_by_file_name(self, tmp_path):
        self._write_corpus(tmp_path, ["zeta", "alpha", "mid"])
        names = [path.rsplit("/", 1)[-1] for path in iter_corpus_paths(tmp_path)]
        assert names == ["alpha.jsonl", "mid.jsonl", "zeta.jsonl"]

    def test_non_jsonl_files_ignored(self, tmp_path):
        self._write_corpus(tmp_path, ["one"])
        (tmp_path / "notes.txt").write_text("not a trace")
        assert len(iter_corpus_paths(tmp_path)) == 1

    def test_load_corpus_follows_path_order(self, tmp_path):
        self._write_corpus(tmp_path, ["b", "a", "c"])
        loaded = [stream.stream_id for stream in load_corpus(tmp_path)]
        assert loaded == ["a", "b", "c"]

    def test_load_corpus_is_lazy(self, tmp_path):
        """Streams deserialize one at a time as the iterator is pulled."""
        self._write_corpus(tmp_path, ["a", "b"])
        iterator = load_corpus(tmp_path)
        first = next(iterator)
        assert first.stream_id == "a"
        # Corrupt the remaining file: a non-lazy loader would have
        # already parsed it successfully.
        (tmp_path / "b.jsonl").write_text("not json\n")
        with pytest.raises(SerializationError):
            next(iterator)

class TestStreamContentHash:
    def test_hashes_file_bytes(self, tmp_path):
        import hashlib

        stream = build_sample_stream()
        path = tmp_path / "s.jsonl"
        dump_stream(stream, path)
        expected = hashlib.sha256(path.read_bytes()).hexdigest()
        assert stream_content_hash(path) == expected

    def test_identical_content_different_names_hash_equal(self, tmp_path):
        stream = build_sample_stream()
        first = tmp_path / "first.jsonl"
        second = tmp_path / "second.jsonl"
        dump_stream(stream, first)
        dump_stream(stream, second)
        assert stream_content_hash(first) == stream_content_hash(second)

    def test_different_content_hashes_differ(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        dump_stream(make_stream("a", [make_event(cost=1)]), a)
        dump_stream(make_stream("b", [make_event(cost=2)]), b)
        assert stream_content_hash(a) != stream_content_hash(b)


class TestDumpCorpusSkipsUnchanged:
    def test_unchanged_streams_are_not_rewritten(self, tmp_path):
        import os

        streams = [
            make_stream("s1", [make_event(cost=10)]),
            make_stream("s2", [make_event(cost=20)]),
        ]
        paths = dump_corpus(streams, tmp_path)
        before = {path: os.stat(path).st_mtime_ns for path in paths}
        os.utime(paths[0], ns=(1, 1))  # make any rewrite detectable
        os.utime(paths[1], ns=(1, 1))
        again = dump_corpus(streams, tmp_path)
        assert again == paths
        after = {path: os.stat(path).st_mtime_ns for path in paths}
        assert all(after[path] == 1 for path in paths), (before, after)

    def test_changed_stream_is_rewritten(self, tmp_path):
        import os

        dump_corpus([make_stream("s1", [make_event(cost=10)])], tmp_path)
        (path,) = iter_corpus_paths(tmp_path)
        os.utime(path, ns=(1, 1))
        dump_corpus([make_stream("s1", [make_event(cost=99)])], tmp_path)
        assert os.stat(path).st_mtime_ns != 1
        (loaded,) = list(load_corpus(tmp_path))
        assert loaded.events[0].cost == 99

    def test_growing_a_corpus_only_writes_new_files(self, tmp_path):
        import os

        base = [make_stream("s1", [make_event(cost=10)])]
        dump_corpus(base, tmp_path)
        (first,) = iter_corpus_paths(tmp_path)
        os.utime(first, ns=(1, 1))
        grown = base + [make_stream("s2", [make_event(cost=20)])]
        paths = dump_corpus(grown, tmp_path)
        assert len(paths) == 2
        assert os.stat(first).st_mtime_ns == 1


class TestMixedFormatCorpus:
    def test_mixed_corpus_loads_in_name_order(self, tmp_path):
        from repro.trace.binary import ColumnarTraceStream, dump_stream_binary

        dump_stream(make_stream("a", [make_event(cost=1)]), tmp_path / "a.jsonl")
        dump_stream_binary(
            make_stream("b", [make_event(cost=2)]), tmp_path / "b.rtb"
        )
        dump_stream(make_stream("c", [make_event(cost=3)]), tmp_path / "c.jsonl")
        names = [path.rsplit("/", 1)[-1] for path in iter_corpus_paths(tmp_path)]
        assert names == ["a.jsonl", "b.rtb", "c.jsonl"]
        loaded = list(load_corpus(tmp_path))
        assert [stream.stream_id for stream in loaded] == ["a", "b", "c"]
        assert isinstance(loaded[1], ColumnarTraceStream)
        assert not isinstance(loaded[0], ColumnarTraceStream)

    def test_duplicate_stem_rejected(self, tmp_path):
        from repro.trace.binary import dump_stream_binary

        stream = build_sample_stream()
        dump_stream(stream, tmp_path / "sample.jsonl")
        dump_stream_binary(stream, tmp_path / "sample.rtb")
        with pytest.raises(SerializationError, match="two formats"):
            iter_corpus_paths(tmp_path)

    def test_dump_corpus_rtb_round_trips(self, tmp_path):
        streams = [build_sample_stream() for _ in range(2)]
        for index, stream in enumerate(streams):
            stream.stream_id = f"s{index}"
        paths = dump_corpus(streams, tmp_path, format="rtb")
        assert all(path.endswith(".rtb") for path in paths)
        restored = list(load_corpus(tmp_path))
        assert [s.stream_id for s in restored] == ["s0", "s1"]
        assert list(restored[0].events) == list(streams[0].events)

    def test_dump_corpus_rtb_skips_unchanged(self, tmp_path):
        import os

        streams = [make_stream("s1", [make_event(cost=10)])]
        (path,) = dump_corpus(streams, tmp_path, format="rtb")
        os.utime(path, ns=(1, 1))
        assert dump_corpus(streams, tmp_path, format="rtb") == [path]
        assert os.stat(path).st_mtime_ns == 1

    def test_dump_corpus_rejects_unknown_format(self, tmp_path):
        with pytest.raises(SerializationError, match="unknown corpus format"):
            dump_corpus([build_sample_stream()], tmp_path, format="xml")

    def test_content_hash_is_format_independent(self, tmp_path):
        from repro.trace.binary import dump_stream_binary

        stream = build_sample_stream()
        dump_stream(stream, tmp_path / "a.jsonl")
        dump_stream_binary(stream, tmp_path / "b.rtb")
        assert stream_content_hash(tmp_path / "a.jsonl") == (
            stream_content_hash(tmp_path / "b.rtb")
        )


class TestLoadedStacks:
    def test_loaded_stack_frames_are_interned(self, tmp_path):
        events = [
            make_event(stack=("app!Main", "fv.sys!Query"), timestamp=0,
                       cost=10, tid=1),
            make_event(stack=("app!Main", "fv.sys!Query"), timestamp=10,
                       cost=10, tid=1),
        ]
        dump_corpus([make_stream("s", events)], tmp_path)
        (loaded,) = list(load_corpus(tmp_path))
        first, second = loaded.events
        assert first.stack[0] is second.stack[0]
        assert first.stack[1] is second.stack[1]
