"""Tests for machine assembly and configuration validation."""

import pytest

from repro.errors import ConfigError
from repro.sim.machine import Machine, MachineConfig


class TestMachineConfig:
    def test_defaults_valid(self):
        MachineConfig().validate()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("cores", 0),
            ("disk_capacity", 0),
            ("network_capacity", 0),
            ("mdu_lock_count", 0),
            ("file_table_lock_count", 0),
            ("hard_fault_rate", 1.5),
            ("hard_fault_rate", -0.1),
            ("av_database_miss_rate", 2.0),
            ("network_congestion_rate", -1.0),
            ("disk_read_median_us", 0),
            ("sample_interval_us", 0),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        from dataclasses import replace

        config = replace(MachineConfig(), **{field: value})
        with pytest.raises(ConfigError):
            config.validate()

    def test_with_seed(self):
        config = MachineConfig(seed=1).with_seed(99)
        assert config.seed == 99


class TestMachineAssembly:
    def test_default_assembly(self):
        machine = Machine("m")
        assert machine.fs is not None
        assert machine.fv.fs is machine.fs
        assert machine.storage.module == "se.sys"
        assert machine.dp is None
        assert machine.iocache is not None

    def test_without_encryption(self):
        machine = Machine("m", MachineConfig(encryption_enabled=False))
        assert machine.storage.module == "stor.sys"

    def test_with_disk_protection(self):
        machine = Machine("m", MachineConfig(disk_protection_enabled=True))
        assert machine.dp is not None
        assert machine.fs.disk_protection is machine.dp

    def test_without_io_cache(self):
        machine = Machine("m", MachineConfig(io_cache_enabled=False))
        assert machine.iocache is None

    def test_lock_granularity_respected(self):
        machine = Machine(
            "m", MachineConfig(mdu_lock_count=7, file_table_lock_count=3)
        )
        assert len(machine.fs.mdu_locks) == 7
        assert len(machine.fv.file_table_locks) == 3

    def test_invalid_config_rejected_at_construction(self):
        with pytest.raises(ConfigError):
            Machine("m", MachineConfig(cores=0))

    def test_run_and_trace_returns_stream(self):
        machine = Machine("m", MachineConfig(seed=9))

        def program(ctx):
            with ctx.frame("App!X"):
                yield from ctx.compute(1_000)

        machine.spawn(program, "App", "Main")
        stream = machine.run_and_trace(until=100_000)
        assert stream.stream_id == "m"
        assert len(stream.events) >= 1

    def test_deterministic_given_seed(self):
        def run_once():
            machine = Machine("m", MachineConfig(seed=42))

            def program(ctx):
                with ctx.frame("App!X"):
                    yield from machine.fs.read_file(ctx, 1)

            machine.spawn(program, "App", "Main")
            return machine.run_and_trace(until=1_000_000)

        first, second = run_once(), run_once()
        assert first.events == second.events
