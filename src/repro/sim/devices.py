"""Hardware device models.

A device serves hardware requests with a queueing discipline and produces
HW_SERVICE trace events attributed to a *pseudo-thread* (process
``Hardware``).  When a request completes, the device pseudo-thread emits the
unwait that resumes the blocked thread — exactly how ETW attributes IO
completions to DPC activity, and what lets Wait Graph construction hang a
hardware-service node under the waiting node (paper Figure 2).

Two disciplines cover the paper's hardware:

* :class:`QueuedDevice` — ``capacity`` parallel servers with FIFO overflow
  (disk with one spindle, GPU with one engine, network with several flows).
* Service time is supplied by the caller per request; device-level
  variability (seek vs sequential, congested link) lives in the driver and
  workload models that choose the durations.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.errors import SimulationError
from repro.sim.engine import DevicePort, Engine
from repro.trace.signatures import make_signature
from repro.trace.stream import ThreadInfo


class QueuedDevice(DevicePort):
    """A device with ``capacity`` parallel servers and FIFO queueing.

    ``service_window(now, duration)`` picks the earliest server available
    at or after ``now`` and books it for ``duration`` microseconds.
    """

    def __init__(self, engine: Engine, name: str, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"device {name!r} needs capacity >= 1")
        self.name = name
        self.capacity = capacity
        self.pseudo_tid = engine.allocate_tid()
        self.completion_stack: Tuple[str, ...] = (
            make_signature("Hardware", f"{name}Service"),
        )
        # Min-heap of times at which each server becomes free.
        self._server_free: List[int] = [0] * capacity
        heapq.heapify(self._server_free)
        self.total_service_time = 0
        self.request_count = 0
        engine.tracer.on_thread_created(
            ThreadInfo(tid=self.pseudo_tid, process="Hardware", name=name)
        )

    def service_window(self, now: int, duration: int) -> Tuple[int, int]:
        if duration < 0:
            raise SimulationError(
                f"negative service time {duration} on device {self.name!r}"
            )
        earliest_free = heapq.heappop(self._server_free)
        start = max(now, earliest_free)
        end = start + duration
        heapq.heappush(self._server_free, end)
        self.total_service_time += duration
        self.request_count += 1
        return (start, end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QueuedDevice({self.name!r}, capacity={self.capacity}, "
            f"requests={self.request_count})"
        )
