"""Unit tests for the content-addressed artifact store."""

import hashlib
import os

import pytest

from repro.errors import StoreError
from repro.store import (
    ArtifactStore,
    STORE_SCHEMA_VERSION,
    analysis_fingerprint,
)

HASH_A = hashlib.sha256(b"trace-a").hexdigest()
HASH_B = hashlib.sha256(b"trace-b").hexdigest()
FP = analysis_fingerprint(["*.sys"], {"Scn": (1, 2)}, True)
FP_OTHER = analysis_fingerprint(["fv.sys"], {"Scn": (1, 2)}, True)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestRoundtrip:
    def test_save_then_load(self, store):
        payload = {"graphs": 3, "refs": [("s", 1, 2)]}
        store.save(HASH_A, FP, payload)
        assert store.load(HASH_A, FP) == payload
        assert store.hits == 1
        assert store.writes == 1

    def test_missing_entry_is_a_miss(self, store):
        assert store.load(HASH_A, FP) is None
        assert store.misses == 1

    def test_keys_are_independent(self, store):
        store.save(HASH_A, FP, "a")
        assert store.load(HASH_A, FP_OTHER) is None
        assert store.load(HASH_B, FP) is None
        assert store.load(HASH_A, FP) == "a"

    def test_overwrite_same_key(self, store):
        store.save(HASH_A, FP, "first")
        store.save(HASH_A, FP, "second")
        assert store.load(HASH_A, FP) == "second"

    def test_reopen_persists(self, tmp_path):
        first = ArtifactStore(tmp_path / "store")
        first.save(HASH_A, FP, [1, 2, 3])
        second = ArtifactStore(tmp_path / "store")
        assert second.load(HASH_A, FP) == [1, 2, 3]

    def test_store_path_must_be_directory(self, tmp_path):
        as_file = tmp_path / "not-a-dir"
        as_file.write_text("hello")
        with pytest.raises(StoreError):
            ArtifactStore(as_file)


class TestFingerprint:
    def test_deterministic(self):
        assert FP == analysis_fingerprint(["*.sys"], {"Scn": (1, 2)}, True)

    def test_scenario_order_canonicalized(self):
        thresholds_ab = {"A": (1, 2), "B": (3, 4)}
        thresholds_ba = {"B": (3, 4), "A": (1, 2)}
        assert analysis_fingerprint(
            ["*.sys"], thresholds_ab, True
        ) == analysis_fingerprint(["*.sys"], thresholds_ba, True)

    @pytest.mark.parametrize(
        "other",
        [
            analysis_fingerprint(["fv.sys"], {"Scn": (1, 2)}, True),
            analysis_fingerprint(["*.sys"], {"Scn": (1, 3)}, True),
            analysis_fingerprint(["*.sys"], {"Other": (1, 2)}, True),
            analysis_fingerprint(["*.sys"], {"Scn": (1, 2)}, False),
            analysis_fingerprint(["*.sys"], {"Scn": (1, 2)}, True, ["Scn"]),
        ],
    )
    def test_config_changes_change_the_key(self, other):
        assert other != FP

    def test_schema_version_participates(self, monkeypatch):
        import repro.store.fingerprint as fingerprint_module

        monkeypatch.setattr(
            fingerprint_module, "STORE_SCHEMA_VERSION", STORE_SCHEMA_VERSION + 1
        )
        bumped = fingerprint_module.analysis_fingerprint(
            ["*.sys"], {"Scn": (1, 2)}, True
        )
        assert bumped != FP


def _entry_paths(store):
    return [entry.path for entry in store.entries()]


def _quarantined(store):
    return os.listdir(store.quarantine_dir)


class TestCorruption:
    @pytest.mark.parametrize(
        "damage",
        [
            lambda blob: blob[:10],                      # truncated magic/header
            lambda blob: blob[:-5],                      # truncated payload
            lambda blob: b"",                            # emptied
            lambda blob: b"not-a-store-entry" + blob,    # bad magic
            lambda blob: blob[:40] + b"\x00" + blob[41:],  # header bit rot
            lambda blob: blob[:-3] + b"xyz",             # payload bit rot
        ],
    )
    def test_damaged_entry_quarantined_and_misses(self, store, damage):
        store.save(HASH_A, FP, {"value": 42})
        (path,) = _entry_paths(store)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(damage(blob))
        assert store.load(HASH_A, FP) is None
        assert store.quarantined == 1
        assert not os.path.exists(path)
        assert len(_quarantined(store)) == 1
        # A recompute-and-save heals the slot.
        store.save(HASH_A, FP, {"value": 42})
        assert store.load(HASH_A, FP) == {"value": 42}

    def test_entry_under_wrong_name_quarantined(self, store):
        store.save(HASH_A, FP, "payload")
        (path,) = _entry_paths(store)
        wrong = store.entry_path(HASH_B, FP)
        os.makedirs(os.path.dirname(wrong), exist_ok=True)
        os.rename(path, wrong)
        assert store.load(HASH_B, FP) is None
        assert len(_quarantined(store)) == 1


class TestVerify:
    def test_all_ok(self, store):
        store.save(HASH_A, FP, 1)
        store.save(HASH_B, FP, 2)
        report = store.verify()
        assert report.all_ok
        assert (report.checked, report.ok) == (2, 2)

    def test_corrupt_entries_reported_and_quarantined(self, store):
        store.save(HASH_A, FP, 1)
        store.save(HASH_B, FP, 2)
        victim = store.entry_path(HASH_A, FP)
        with open(victim, "r+b") as handle:
            handle.seek(30)
            handle.write(b"\xff\xff\xff\xff")
        report = store.verify()
        assert not report.all_ok
        assert report.ok == 1
        assert [path for path, _ in report.corrupt] == [victim]
        assert not os.path.exists(victim)
        assert len(_quarantined(store)) == 1
        # The survivor still loads.
        assert store.load(HASH_B, FP) == 2

    def test_deep_verify_checks_payload_decodes(self, store):
        store.save(HASH_A, FP, {"fine": True})
        assert store.verify(deep=True).all_ok


class TestGcAndStats:
    def test_gc_without_constraints_keeps_entries(self, store):
        store.save(HASH_A, FP, 1)
        report = store.gc()
        assert report.kept_entries == 1
        assert store.load(HASH_A, FP) == 1

    def test_gc_drops_dead_traces(self, store):
        store.save(HASH_A, FP, 1)
        store.save(HASH_B, FP, 2)
        report = store.gc(live_content_hashes={HASH_A})
        assert report.removed_entries == 1
        assert report.kept_entries == 1
        assert store.load(HASH_A, FP) == 1
        store.misses = 0
        assert store.load(HASH_B, FP) is None

    def test_gc_drops_dead_fingerprints(self, store):
        store.save(HASH_A, FP, 1)
        store.save(HASH_A, FP_OTHER, 2)
        report = store.gc(keep_fingerprints={FP})
        assert report.removed_entries == 1
        assert store.load(HASH_A, FP) == 1

    def test_gc_empties_quarantine(self, store):
        store.save(HASH_A, FP, 1)
        (path,) = _entry_paths(store)
        with open(path, "wb") as handle:
            handle.write(b"junk")
        assert store.load(HASH_A, FP) is None
        assert len(_quarantined(store)) == 1
        report = store.gc()
        assert report.removed_quarantined == 1
        assert not _quarantined(store)

    def test_stats(self, store):
        store.save(HASH_A, FP, "x" * 1000)
        store.save(HASH_B, FP, 2)
        store.save(HASH_A, FP_OTHER, 3)
        stats = store.stats()
        assert stats.entries == 3
        assert stats.distinct_traces == 2
        assert stats.distinct_fingerprints == 2
        assert stats.fingerprints == {FP: 2, FP_OTHER: 1}
        assert stats.total_bytes > 0
        assert stats.quarantined == 0
