"""The map phase: per-chunk analysis executed inside worker processes.

A worker receives a :class:`ChunkTask` — a contiguous slice of corpus
sources plus the analysis configuration — and returns a
:class:`ChunkPartial` holding everything the reduce phase needs:

* a partial :class:`~repro.impact.metrics.ImpactAccumulator` over the
  chunk's scenario instances;
* per scenario, the contrast-class split (as lightweight
  :class:`InstanceRef` descriptors), partial *un-reduced* Aggregated
  Wait Graphs for the fast and slow classes, and a partial slow-class
  impact accumulator for coverage evaluation.

Each instance's Wait Graph is built exactly once per chunk and shared by
every consumer, mirroring the sequential study's shared graph cache.
Partials are plain picklable values; streams themselves never travel
back through the pool.

Sources are either paths (the worker deserializes its own chunk — the
streaming loader) or indices into an in-memory corpus registry inherited
across ``fork``.

When a task names an artifact store (``store_dir`` + fingerprint), the
worker analyzes path sources **one stream at a time** through a
read-through/write-back layer: before building any Wait Graph it asks
the store for the per-stream partial keyed by the trace's content hash
and the analysis fingerprint, and on a miss it computes the partial and
appends it to the store.  Per-source partials then fold — in source
order, via the same merge operations the reduce phase uses — into the
one :class:`ChunkPartial` the parent expects, so cached and computed
chunks are indistinguishable downstream.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, ResilienceError, TraceError
from repro.impact.metrics import ImpactAccumulator
from repro.resilience.health import TraceFailure, failure_from_exception
from repro.store import ArtifactStore
from repro.trace.serialization import load_stream, stream_content_hash
from repro.trace.signatures import ComponentFilter
from repro.trace.stream import ScenarioInstance, TraceStream
from repro.waitgraph.aggregate import AggregatedWaitGraph, merge_awgs
from repro.waitgraph.builder import build_wait_graph
from repro.waitgraph.graph import WaitGraph

#: A corpus source as carried inside a task: a trace-file path, or an
#: index into the fork-inherited in-memory corpus registry.
TaskSource = Union[str, int]

#: In-memory corpus registry.  The api layer installs the corpus here
#: *before* the pool forks, so worker processes inherit it by address
#: space instead of pickling whole streams through the pool.
_INHERITED_STREAMS: List[TraceStream] = []


def set_inherited_corpus(streams: Sequence[TraceStream]) -> List[TraceStream]:
    """Install the in-memory corpus workers will inherit; returns the old one."""
    global _INHERITED_STREAMS
    previous = _INHERITED_STREAMS
    _INHERITED_STREAMS = list(streams)
    return previous


def restore_inherited_corpus(streams: List[TraceStream]) -> None:
    """Put back a previously active in-memory corpus registry."""
    global _INHERITED_STREAMS
    _INHERITED_STREAMS = streams


def resolve_source(
    source: TaskSource, on_error: str = "strict"
) -> TraceStream:
    """Materialize one task source into a loaded trace stream.

    ``on_error`` is forwarded to the loaders for path sources; in-memory
    sources are already loaded, so no policy applies to them.
    """
    if isinstance(source, int):
        try:
            return _INHERITED_STREAMS[source]
        except IndexError:
            raise ConfigError(
                f"in-memory corpus index {source} is out of range; "
                "was the registry installed before forking?"
            ) from None
    return load_stream(os.fspath(source), on_error=on_error)


def source_label(source: TaskSource) -> str:
    """How one task source is named in failure records and error text."""
    if isinstance(source, int):
        return f"<memory:{source}>"
    return str(source)


@dataclass(frozen=True)
class InstanceRef:
    """A scenario instance detached from its (heavy) owning stream.

    Carries exactly the identity and duration the reduce phase needs for
    contrast-class accounting, with the same ``key``/``duration`` shape
    as :class:`~repro.trace.stream.ScenarioInstance`.
    """

    scenario: str
    stream_id: str
    tid: int
    t0: int
    t1: int

    @property
    def duration(self) -> int:
        return self.t1 - self.t0

    @property
    def key(self) -> Tuple[str, str, int, int, int]:
        return (self.stream_id, self.scenario, self.tid, self.t0, self.t1)

    @classmethod
    def of(cls, instance: ScenarioInstance) -> "InstanceRef":
        return cls(
            scenario=instance.scenario,
            stream_id=instance.stream.stream_id,
            tid=instance.tid,
            t0=instance.t0,
            t1=instance.t1,
        )


@dataclass
class ScenarioPartial:
    """One chunk's contribution to one scenario's causality analysis."""

    scenario: str
    t_fast: int
    t_slow: int
    fast_refs: List[InstanceRef] = field(default_factory=list)
    slow_refs: List[InstanceRef] = field(default_factory=list)
    between_refs: List[InstanceRef] = field(default_factory=list)
    fast_awg: Optional[AggregatedWaitGraph] = None
    slow_awg: Optional[AggregatedWaitGraph] = None
    slow_impact: Optional[ImpactAccumulator] = None

    def _ensure_parts(self, component_filter: ComponentFilter) -> None:
        if self.fast_awg is None:
            # Partial AWGs stay un-reduced: Algorithm 1's step 4 inspects
            # complete root structures, so reduction happens post-merge.
            self.fast_awg = AggregatedWaitGraph(component_filter)
            self.slow_awg = AggregatedWaitGraph(component_filter)
            self.slow_impact = ImpactAccumulator(component_filter)

    def add_instance(
        self,
        instance: ScenarioInstance,
        graph: WaitGraph,
        component_filter: ComponentFilter,
    ) -> None:
        """Classify one instance and fold its graph into the partials."""
        self._ensure_parts(component_filter)
        ref = InstanceRef.of(instance)
        duration = instance.duration
        if duration < self.t_fast:
            self.fast_refs.append(ref)
            self.fast_awg.add_graph(graph)
        elif duration > self.t_slow:
            self.slow_refs.append(ref)
            self.slow_awg.add_graph(graph)
            self.slow_impact.add_graph(graph)
        else:
            self.between_refs.append(ref)


def merge_scenario_partials(
    parts: Sequence[ScenarioPartial],
) -> ScenarioPartial:
    """Fold per-source scenario partials, in order, into one.

    Reference lists concatenate, partial AWGs union (un-reduced — the
    hardware reduction still runs once, post-reduce) and the slow-class
    impact accumulators merge, all exactly as the reduce phase folds
    chunk partials, so the result is indistinguishable from a single
    pass over the concatenated sources.
    """
    first = parts[0]
    merged = ScenarioPartial(
        scenario=first.scenario, t_fast=first.t_fast, t_slow=first.t_slow
    )
    for part in parts:
        merged.fast_refs.extend(part.fast_refs)
        merged.slow_refs.extend(part.slow_refs)
        merged.between_refs.extend(part.between_refs)
    merged.fast_awg = merge_awgs([part.fast_awg for part in parts])
    merged.slow_awg = merge_awgs([part.slow_awg for part in parts])
    merged.slow_impact = ImpactAccumulator(merged.fast_awg.component_filter)
    for part in parts:
        merged.slow_impact.merge(part.slow_impact)
    return merged


@dataclass(frozen=True)
class ChunkTask:
    """Everything one worker needs to analyze one corpus chunk."""

    sources: Tuple[TaskSource, ...]
    component_patterns: Tuple[str, ...]
    #: scenario name -> (t_fast, t_slow); scenarios to classify and
    #: build partial AWGs for.
    thresholds: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: accumulate corpus-wide impact metrics?
    want_impact: bool = False
    #: restrict impact accumulation to these scenarios (None = all).
    impact_scenarios: Optional[Tuple[str, ...]] = None
    #: artifact-store directory for read-through/write-back caching of
    #: per-stream partials (None = no store).
    store_dir: Optional[str] = None
    #: pre-computed analysis fingerprint; set iff ``store_dir`` is.
    store_fingerprint: Optional[str] = None
    #: ingestion/error policy (``repro.resilience``): ``"strict"`` raises
    #: on the first damaged trace, ``"skip"`` drops damaged traces,
    #: ``"salvage"`` recovers their valid portion first.  Non-strict
    #: policies also confine per-trace *analysis* exceptions to the
    #: failing trace.
    on_error: str = "strict"


@dataclass
class ChunkPartial:
    """A worker's mergeable result for one chunk."""

    impact: Optional[ImpactAccumulator]
    scenarios: Dict[str, ScenarioPartial]
    #: every scenario name seen in the chunk, first-appearance order —
    #: lets the reduce phase reproduce sequential scenario ordering and
    #: report unknown scenarios exactly like a sequential run.
    present: List[str]
    streams: int = 0
    instances: int = 0
    #: total tracing events across the chunk's streams — the numerator
    #: of the map-phase events/sec throughput report.
    events: int = 0
    #: artifact-store lookups resolved from / missing in the store while
    #: mapping this chunk (0/0 for storeless runs).
    store_hits: int = 0
    store_misses: int = 0
    #: trace-level incidents under a non-strict policy (skipped damaged
    #: traces, salvage records, executor quarantines) — folded into the
    #: run's :class:`~repro.resilience.RunHealth` by the api layer.
    failures: List[TraceFailure] = field(default_factory=list)


def merge_chunk_partials(
    partials: Sequence[ChunkPartial], task: ChunkTask
) -> ChunkPartial:
    """Fold per-source partials, in source order, into one chunk partial.

    Mirrors the parent's reduce fold so a chunk assembled from cached
    per-stream partials equals the same chunk analyzed in one pass:
    impact accumulators merge, ``present`` keeps first-appearance order,
    and each scenario's partials fold via :func:`merge_scenario_partials`.
    """
    component_filter = ComponentFilter(task.component_patterns)
    merged = ChunkPartial(
        impact=(
            ImpactAccumulator(component_filter) if task.want_impact else None
        ),
        scenarios={},
        present=[],
    )
    seen = set()
    per_scenario: Dict[str, List[ScenarioPartial]] = {}
    for partial in partials:
        if merged.impact is not None and partial.impact is not None:
            merged.impact.merge(partial.impact)
        merged.streams += partial.streams
        merged.instances += partial.instances
        merged.events += partial.events
        merged.store_hits += partial.store_hits
        merged.store_misses += partial.store_misses
        merged.failures.extend(partial.failures)
        for name in partial.present:
            if name not in seen:
                seen.add(name)
                merged.present.append(name)
        for name, scenario_partial in partial.scenarios.items():
            per_scenario.setdefault(name, []).append(scenario_partial)
    for name, parts in per_scenario.items():
        merged.scenarios[name] = merge_scenario_partials(parts)
    return merged


def _isolated_partial(task: ChunkTask, source: TaskSource) -> ChunkPartial:
    """Analyze one source with its failure confined to that source.

    The fault-isolation unit of a non-strict chunk: whatever the trace
    does — fails to parse, fails to salvage, raises from Wait Graph
    construction — the damage is one empty partial carrying a
    :class:`TraceFailure`, and the chunk's other traces are unaffected.
    """
    try:
        return _analyze_sources(task, (source,))
    except Exception as exc:
        stage = (
            "ingest"
            if isinstance(
                exc, (TraceError, ResilienceError, OSError, UnicodeDecodeError)
            )
            else "analysis"
        )
        partial = ChunkPartial(impact=None, scenarios={}, present=[])
        partial.failures.append(
            failure_from_exception(source_label(source), stage, "skipped", exc)
        )
        return partial


def analyze_chunk(task: ChunkTask) -> ChunkPartial:
    """Map one chunk of corpus sources to its partial analysis results.

    Storeless strict tasks analyze the whole chunk in one pass.  Under a
    non-strict policy every source is analyzed in isolation (so one
    damaged trace costs exactly that trace) and the per-source partials
    fold — the same merge the reduce phase uses, so the result is
    indistinguishable from the one-pass analysis of the surviving
    sources.

    Tasks carrying a store analyze path sources stream-by-stream through
    the store (read-through on the content hash + fingerprint key,
    write-back on miss) and fold the per-stream partials; in-memory
    sources have no bytes to address, so they are always computed.
    Partials touched by any failure or salvage are **never written
    back**: a salvaged or skipped rendering of a damaged file must not
    be served as a cache hit to a run under a different policy.
    """
    if task.store_dir is None:
        if task.on_error == "strict":
            return _analyze_sources(task, task.sources)
        per_source = [
            _isolated_partial(task, source) for source in task.sources
        ]
        return merge_chunk_partials(per_source, task)
    store = ArtifactStore(task.store_dir)
    per_source = []
    for source in task.sources:
        if isinstance(source, int):
            partial = (
                _analyze_sources(task, (source,))
                if task.on_error == "strict"
                else _isolated_partial(task, source)
            )
            per_source.append(partial)
            continue
        try:
            content_hash = stream_content_hash(source)
        except (TraceError, OSError, UnicodeDecodeError) as exc:
            if task.on_error == "strict":
                raise
            # Unaddressable bytes (e.g. an RTB header too damaged to
            # carry its hash) bypass the store entirely; salvage may
            # still recover the trace.
            per_source.append(_isolated_partial(task, source))
            continue
        cached = store.load(content_hash, task.store_fingerprint)
        if cached is None or not isinstance(cached, ChunkPartial):
            cached = (
                _analyze_sources(task, (source,))
                if task.on_error == "strict"
                else _isolated_partial(task, source)
            )
            if not cached.failures:
                store.save(content_hash, task.store_fingerprint, cached)
        per_source.append(cached)
    merged = merge_chunk_partials(per_source, task)
    merged.store_hits = store.hits
    merged.store_misses = store.misses
    return merged


def _analyze_sources(
    task: ChunkTask, sources: Sequence[TaskSource]
) -> ChunkPartial:
    """One-pass analysis of ``sources`` under ``task``'s configuration."""
    component_filter = ComponentFilter(task.component_patterns)
    impact = (
        ImpactAccumulator(component_filter) if task.want_impact else None
    )
    impact_wanted = (
        set(task.impact_scenarios)
        if task.impact_scenarios is not None
        else None
    )
    partial = ChunkPartial(impact=impact, scenarios={}, present=[])
    seen = set()
    for source in sources:
        stream = resolve_source(source, task.on_error)
        if getattr(stream, "salvaged", False):
            partial.failures.append(
                TraceFailure(
                    source=source_label(source),
                    stage="ingest",
                    action="salvaged",
                    error=(
                        f"recovered {len(stream.events)} events, "
                        f"{len(stream.instances)} instances (dropped "
                        f"{getattr(stream, 'salvage_dropped', 0)} damaged "
                        "records)"
                    ),
                    error_type="TraceSalvageError",
                )
            )
        partial.streams += 1
        partial.events += len(stream)
        graphs: Dict[tuple, WaitGraph] = {}
        for instance in stream.instances:
            partial.instances += 1
            name = instance.scenario
            if name not in seen:
                seen.add(name)
                partial.present.append(name)
            thresholds = task.thresholds.get(name)
            count_impact = impact is not None and (
                impact_wanted is None or name in impact_wanted
            )
            if not count_impact and thresholds is None:
                continue
            graph = graphs.get(instance.key)
            if graph is None:
                graph = build_wait_graph(instance)
                graphs[instance.key] = graph
            if count_impact:
                impact.add_graph(graph)
            if thresholds is not None:
                scenario_partial = partial.scenarios.get(name)
                if scenario_partial is None:
                    scenario_partial = ScenarioPartial(
                        scenario=name,
                        t_fast=thresholds[0],
                        t_slow=thresholds[1],
                    )
                    partial.scenarios[name] = scenario_partial
                scenario_partial.add_instance(
                    instance, graph, component_filter
                )
    return partial
