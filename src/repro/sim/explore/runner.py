"""Schedule-exploration sweeps: policy × seed grids with coverage reports.

One *cell* of an exploration grid runs a single pathology (or any
registered scenario) under one scheduling policy with one policy seed,
across a spread of workload intensities.  Cells are completely
independent and derive every random decision from their grid
coordinates, so a sweep is reproducible decision-for-decision: the same
grid produces the byte-identical coverage report at any worker count
(:func:`~repro.pipeline.executor.process_map` returns results in task
order).

Coverage is measured in *distinct contention shapes*
(:func:`~repro.sim.explore.fingerprint.shape_fingerprint`), not runs:
the report shows, per scenario and policy, how many distinct wait-graph
shapes the policy reached and how many of them the deterministic FIFO
baseline never produces — the value added by exploring.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.pipeline.executor import process_map
from repro.report.tables import Table
from repro.sim.explore.fingerprint import shape_fingerprint
from repro.sim.machine import Machine, MachineConfig
from repro.sim.sched import POLICY_NAMES
from repro.sim.workloads.registry import (
    PATHOLOGY_SCENARIO_NAMES,
    WORKLOADS_BY_NAME,
    workload_class,
)
from repro.trace.events import EventKind
from repro.trace.stream import TraceStream
from repro.waitgraph.builder import build_wait_graph


def stable_seed(*parts) -> int:
    """Deterministic 30-bit seed from grid coordinates.

    Derived via SHA-256 of the joined coordinate string, so it is
    identical across processes and Python hash randomization — the
    property the whole sweep's reproducibility rests on.
    """
    key = "/".join(str(part) for part in parts)
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % (1 << 30)


@dataclass(frozen=True)
class ExploreCell:
    """One grid cell: a scenario under one policy with one policy seed."""

    scenario: str
    policy: str
    seed: int
    intensities: Tuple[float, ...]
    repeats: int
    cores: int
    think_median_us: int


@dataclass(frozen=True)
class CellResult:
    """What one exploration cell observed."""

    scenario: str
    policy: str
    seed: int
    instances: int
    durations: Tuple[int, ...]
    fingerprints: Tuple[str, ...]  # distinct, sorted
    planted_wait_us: int
    total_wait_us: int


@dataclass(frozen=True)
class ExploreConfig:
    """An exploration grid: scenarios × policies × policy seeds.

    Every cell additionally sweeps ``intensities`` so each scenario
    contributes both calm and loaded executions; ``repeats`` scenario
    instances run per (cell, intensity).
    """

    scenarios: Tuple[str, ...] = tuple(PATHOLOGY_SCENARIO_NAMES)
    policies: Tuple[str, ...] = tuple(POLICY_NAMES)
    seeds: Tuple[int, ...] = (0, 1, 2)
    intensities: Tuple[float, ...] = (0.2, 0.5, 0.8)
    repeats: int = 4
    cores: int = 8
    think_median_us: int = 25_000

    def validate(self) -> None:
        """Raise :class:`ConfigError` on an unusable grid."""
        if not self.scenarios:
            raise ConfigError("exploration needs at least one scenario")
        for name in self.scenarios:
            if name not in WORKLOADS_BY_NAME:
                known = ", ".join(sorted(WORKLOADS_BY_NAME))
                raise ConfigError(
                    f"unknown scenario {name!r}; known: {known}"
                )
        if not self.policies:
            raise ConfigError("exploration needs at least one policy")
        for name in self.policies:
            if name not in POLICY_NAMES:
                known = ", ".join(POLICY_NAMES)
                raise ConfigError(
                    f"unknown scheduler policy {name!r}; known: {known}"
                )
        if not self.seeds:
            raise ConfigError("exploration needs at least one seed")
        if self.repeats < 1:
            raise ConfigError("repeats must be >= 1")
        if not self.intensities:
            raise ConfigError("exploration needs at least one intensity")
        for intensity in self.intensities:
            if not 0.0 <= intensity <= 1.0:
                raise ConfigError(
                    f"intensity must be in [0, 1], got {intensity}"
                )
        if self.cores < 1:
            raise ConfigError("cores must be >= 1")

    def cells(self) -> List[ExploreCell]:
        """The grid in deterministic scenario-major order."""
        return [
            ExploreCell(
                scenario=scenario,
                policy=policy,
                seed=seed,
                intensities=self.intensities,
                repeats=self.repeats,
                cores=self.cores,
                think_median_us=self.think_median_us,
            )
            for scenario in self.scenarios
            for policy in self.policies
            for seed in self.seeds
        ]


def smoke_config() -> ExploreConfig:
    """The small CI grid: every pathology, three policies, one seed."""
    return ExploreConfig(
        policies=("fifo", "convoy", "shuffle"),
        seeds=(0,),
        intensities=(0.3, 0.8),
        repeats=3,
    )


def run_cell_streams(cell: ExploreCell) -> List[TraceStream]:
    """Run one cell's machines (one per intensity) and return the streams."""
    cls = workload_class(cell.scenario)
    streams = []
    for intensity in cell.intensities:
        machine_seed = stable_seed(
            "explore", cell.scenario, cell.policy, cell.seed, intensity
        )
        config = MachineConfig(
            seed=machine_seed,
            cores=cell.cores,
            scheduler=cell.policy,
            scheduler_seed=cell.seed,
        )
        machine = Machine(
            f"{cell.scenario}-{cell.policy}-s{cell.seed}-i{intensity}",
            config,
        )
        workload = cls(
            repeats=cell.repeats,
            intensity=intensity,
            think_median_us=cell.think_median_us,
        )
        workload.install(machine)
        streams.append(machine.run_and_trace())
    return streams


def run_cell(cell: ExploreCell) -> CellResult:
    """Execute one grid cell and summarize what it observed."""
    cls = workload_class(cell.scenario)
    planted = getattr(cls, "planted_signatures", frozenset())
    durations: List[int] = []
    fingerprints = set()
    planted_wait_us = 0
    total_wait_us = 0
    for stream in run_cell_streams(cell):
        for event in stream.events_of_kind(EventKind.WAIT):
            total_wait_us += event.cost
            if any(signature in event.stack for signature in planted):
                planted_wait_us += event.cost
        for instance in stream.instances:
            if instance.scenario != cell.scenario:
                continue
            durations.append(instance.duration)
            fingerprints.add(shape_fingerprint(build_wait_graph(instance)))
    return CellResult(
        scenario=cell.scenario,
        policy=cell.policy,
        seed=cell.seed,
        instances=len(durations),
        durations=tuple(durations),
        fingerprints=tuple(sorted(fingerprints)),
        planted_wait_us=planted_wait_us,
        total_wait_us=total_wait_us,
    )


@dataclass(frozen=True)
class CoverageReport:
    """What an exploration sweep found, cell by cell.

    Deterministic in content *and* rendering for a given grid — the
    acceptance property "identical grids produce byte-identical reports
    at any worker count" is asserted against :meth:`to_json`.
    """

    cells: Tuple[CellResult, ...]

    def shapes_by_scenario(self) -> Dict[str, Tuple[str, ...]]:
        """Distinct shape fingerprints per scenario, across all policies."""
        shapes: Dict[str, set] = {}
        for cell in self.cells:
            shapes.setdefault(cell.scenario, set()).update(cell.fingerprints)
        return {
            scenario: tuple(sorted(found))
            for scenario, found in sorted(shapes.items())
        }

    def novel_shapes(self) -> Dict[Tuple[str, str], Tuple[str, ...]]:
        """Per (scenario, policy): shapes the FIFO baseline never produced."""
        baseline: Dict[str, set] = {}
        for cell in self.cells:
            if cell.policy == "fifo":
                baseline.setdefault(cell.scenario, set()).update(
                    cell.fingerprints
                )
        novel: Dict[Tuple[str, str], set] = {}
        for cell in self.cells:
            if cell.policy == "fifo":
                continue
            key = (cell.scenario, cell.policy)
            fresh = set(cell.fingerprints) - baseline.get(cell.scenario, set())
            novel.setdefault(key, set()).update(fresh)
        return {
            key: tuple(sorted(found)) for key, found in sorted(novel.items())
        }

    @property
    def total_distinct_shapes(self) -> int:
        return len(
            {
                fingerprint
                for cell in self.cells
                for fingerprint in cell.fingerprints
            }
        )

    def render(self) -> str:
        """Human-readable coverage table."""
        table = Table(
            ["Scenario", "Policy", "Cells", "Inst", "Shapes", "Novel",
             "PlantedWait%"],
            title="Schedule exploration coverage",
        )
        novel = self.novel_shapes()
        grouped: Dict[Tuple[str, str], List[CellResult]] = {}
        for cell in self.cells:
            grouped.setdefault((cell.scenario, cell.policy), []).append(cell)
        for (scenario, policy), cells in sorted(grouped.items()):
            shapes = {f for cell in cells for f in cell.fingerprints}
            instances = sum(cell.instances for cell in cells)
            planted = sum(cell.planted_wait_us for cell in cells)
            total = sum(cell.total_wait_us for cell in cells)
            share = f"{100.0 * planted / total:.1f}" if total else "-"
            table.add_row(
                scenario,
                policy,
                len(cells),
                instances,
                len(shapes),
                len(novel.get((scenario, policy), ())),
                share,
            )
        lines = [table.render()]
        lines.append(
            f"total distinct contention shapes: {self.total_distinct_shapes}"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Canonical JSON rendering (sorted keys, no whitespace drift)."""
        payload = {
            "cells": [asdict(cell) for cell in self.cells],
            "shapes_by_scenario": {
                scenario: list(shapes)
                for scenario, shapes in self.shapes_by_scenario().items()
            },
            "novel_shapes": {
                f"{scenario}/{policy}": list(shapes)
                for (scenario, policy), shapes in self.novel_shapes().items()
            },
            "total_distinct_shapes": self.total_distinct_shapes,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def explore_schedules(
    config: ExploreConfig = ExploreConfig(), workers: int = 1
) -> CoverageReport:
    """Sweep the policy × seed grid and report contention-shape coverage.

    Cells run in parallel via the pipeline's fork-pool executor when
    ``workers > 1``; results fold in task order, so the report is
    byte-identical at any worker count.
    """
    config.validate()
    results = process_map(run_cell, config.cells(), workers)
    return CoverageReport(cells=tuple(results))
