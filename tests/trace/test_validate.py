"""Tests for trace-stream validation."""

import pytest

from repro.errors import TraceValidationError
from repro.trace.events import EventKind
from repro.trace.stream import ThreadInfo
from repro.trace.validate import collect_violations, validate_stream
from tests.conftest import make_event, make_stream


def paired_wait_events(tid=1, waker=2, start=0, duration=100):
    return [
        make_event(EventKind.WAIT, timestamp=start, cost=duration, tid=tid),
        make_event(
            EventKind.UNWAIT,
            timestamp=start + duration,
            cost=0,
            tid=waker,
            wtid=tid,
        ),
    ]


class TestValidStreams:
    def test_empty_stream_valid(self):
        validate_stream(make_stream())

    def test_paired_wait_valid(self):
        stream = make_stream(events=paired_wait_events())
        assert collect_violations(stream) == []

    def test_simulated_streams_valid(self, small_corpus):
        for stream in small_corpus:
            validate_stream(stream)


class TestViolations:
    def test_wait_without_unwait(self):
        stream = make_stream(events=[
            make_event(EventKind.WAIT, timestamp=0, cost=100, tid=1),
        ])
        problems = collect_violations(stream)
        assert any("no unwait" in problem for problem in problems)

    def test_unwait_at_wrong_time(self):
        stream = make_stream(events=[
            make_event(EventKind.WAIT, timestamp=0, cost=100, tid=1),
            make_event(EventKind.UNWAIT, timestamp=50, cost=0, tid=2, wtid=1),
        ])
        problems = collect_violations(stream)
        assert any("no unwait" in problem for problem in problems)

    def test_self_unwait(self):
        stream = make_stream(events=[
            make_event(EventKind.UNWAIT, timestamp=0, cost=0, tid=1, wtid=1),
        ])
        problems = collect_violations(stream)
        assert any("unwaits itself" in problem for problem in problems)

    def test_zero_duration_wait(self):
        stream = make_stream(events=[
            make_event(EventKind.WAIT, timestamp=0, cost=0, tid=1),
            make_event(EventKind.UNWAIT, timestamp=0, cost=0, tid=2, wtid=1),
        ])
        problems = collect_violations(stream)
        assert any("zero duration" in problem for problem in problems)

    def test_instance_outside_span(self):
        stream = make_stream(events=[make_event(cost=100)])
        stream.add_instance("Demo", tid=1, t0=5_000, t1=999_999)
        problems = collect_violations(stream)
        assert any("outside" in problem for problem in problems)

    def test_instance_overlapping_span_edge_ok(self):
        stream = make_stream(events=[make_event(cost=100)])
        stream.add_instance("Demo", tid=1, t0=0, t1=999)
        assert collect_violations(stream) == []

    def test_instance_unknown_thread(self):
        stream = make_stream(
            events=[make_event(cost=100_000)],
            threads=[ThreadInfo(1, "App", "UI")],
        )
        stream.add_instance("Demo", tid=42, t0=0, t1=100)
        problems = collect_violations(stream)
        assert any("unknown thread" in problem for problem in problems)

    def test_validate_stream_raises(self):
        stream = make_stream(events=[
            make_event(EventKind.WAIT, timestamp=0, cost=100, tid=1),
        ])
        with pytest.raises(TraceValidationError):
            validate_stream(stream)

    def test_violation_list_truncated_in_message(self):
        events = []
        for index in range(40):
            events.append(
                make_event(EventKind.WAIT, timestamp=index * 10, cost=5, tid=1)
            )
        stream = make_stream(events=events)
        with pytest.raises(TraceValidationError, match="more"):
            validate_stream(stream)
