"""Tests for RTB, the binary columnar trace format.

The bar for the codec is losslessness: every stream must round-trip
JSONL ↔ RTB with identical events, threads and instances — down to the
canonical JSONL serialization of the restored stream being byte-equal —
and the lazy :class:`ColumnarTraceStream` must answer every
``TraceStream`` query exactly like the object-backed stream does.
"""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.trace.binary import (
    KIND_CODES,
    RTB_FORMAT_VERSION,
    RTB_MAGIC,
    ColumnarTraceStream,
    dump_stream_binary,
    dumps_stream_binary,
    is_rtb_bytes,
    is_rtb_file,
    load_stream_binary,
    loads_stream_binary,
    logical_content_hash,
    read_content_hash,
)
from repro.trace.events import EventKind
from repro.trace.serialization import (
    dump_stream,
    dumps_stream,
    load_stream,
    stream_content_hash,
)
from repro.trace.stream import ThreadInfo
from tests.conftest import make_event, make_stream
from tests.trace.test_serialization import build_sample_stream


def assert_streams_equal(restored, original):
    assert restored.stream_id == original.stream_id
    assert list(restored.events) == list(original.events)
    assert restored.threads == original.threads
    assert [i.key for i in restored.instances] == [
        i.key for i in original.instances
    ]
    # The strongest form: both serialize to the same canonical JSONL.
    assert dumps_stream(restored) == dumps_stream(original)


class TestRoundTrip:
    def test_bytes_round_trip(self):
        original = build_sample_stream()
        restored = loads_stream_binary(dumps_stream_binary(original))
        assert_streams_equal(restored, original)

    def test_file_round_trip(self, tmp_path):
        original = build_sample_stream()
        path = tmp_path / "trace.rtb"
        dump_stream_binary(original, path)
        assert is_rtb_file(path)
        restored = load_stream_binary(path)
        assert_streams_equal(restored, original)

    def test_load_stream_detects_rtb_suffix(self, tmp_path):
        original = build_sample_stream()
        path = tmp_path / "trace.rtb"
        dump_stream_binary(original, path)
        restored = load_stream(path)
        assert isinstance(restored, ColumnarTraceStream)
        assert_streams_equal(restored, original)

    def test_load_stream_detects_rtb_magic_despite_name(self, tmp_path):
        original = build_sample_stream()
        path = tmp_path / "mislabeled.jsonl"
        dump_stream_binary(original, path)
        restored = load_stream(path)
        assert isinstance(restored, ColumnarTraceStream)
        assert_streams_equal(restored, original)

    def test_simulated_stream_round_trips(self, small_corpus):
        original = small_corpus[0]
        restored = loads_stream_binary(dumps_stream_binary(original))
        assert_streams_equal(restored, original)

    def test_double_conversion_is_identity(self, tmp_path):
        """jsonl -> rtb -> jsonl reproduces the canonical bytes."""
        original = build_sample_stream()
        jsonl_path = tmp_path / "a.jsonl"
        dump_stream(original, jsonl_path)
        rtb = loads_stream_binary(dumps_stream_binary(load_stream(jsonl_path)))
        back = tmp_path / "b.jsonl"
        dump_stream(rtb, back)
        assert back.read_bytes() == jsonl_path.read_bytes()

    def test_resource_and_wtid_preserved(self):
        original = build_sample_stream()
        restored = loads_stream_binary(dumps_stream_binary(original))
        assert restored.events[1].resource == "lock:x"
        assert restored.events[2].wtid == 1
        assert restored.events[3].stack == ()
        assert restored.events[3].resource is None

    def test_empty_stream_round_trips(self):
        original = make_stream("empty")
        restored = loads_stream_binary(dumps_stream_binary(original))
        assert_streams_equal(restored, original)
        assert len(restored) == 0
        assert restored.span == (0, 0)


# A small vocabulary keeps the interner paths (dedup, reuse across
# events) well exercised without blowing up example sizes.
_FRAMES = ["app!Main", "fv.sys!Query", "kernel!Lock", "net.sys!Send"]
_EVENT_SPECS = st.tuples(
    st.sampled_from(list(EventKind)),
    st.lists(st.sampled_from(_FRAMES), min_size=1, max_size=3).map(tuple),
    st.integers(0, 500),  # timestamp delta
    st.integers(0, 1000),  # cost
    st.integers(1, 4),  # tid
    st.integers(1, 4),  # wtid (unwaits only)
    st.one_of(st.none(), st.sampled_from(["lock:a", "device:Disk"])),
)


class TestRoundTripProperty:
    @given(st.lists(_EVENT_SPECS, max_size=30))
    def test_any_stream_round_trips(self, specs):
        events = []
        now = 0
        for kind, stack, delta, cost, tid, wtid, resource in specs:
            now += delta
            events.append(
                make_event(
                    kind,
                    stack if kind is not EventKind.HW_SERVICE else (),
                    timestamp=now,
                    cost=cost,
                    tid=tid,
                    wtid=wtid if kind is EventKind.UNWAIT else None,
                    resource=resource,
                )
            )
        threads = [
            ThreadInfo(1, "App", "UI"),
            ThreadInfo(2, "App", "Worker"),
            ThreadInfo(3, "App", "Pool"),
            ThreadInfo(4, "Hardware", "Disk"),
        ]
        stream = make_stream("prop", events, threads)
        if events:
            stream.add_instance("Scn", tid=1, t0=0, t1=now + 2000)
        restored = loads_stream_binary(dumps_stream_binary(stream))
        assert_streams_equal(restored, stream)


class TestContentHash:
    def test_header_hash_is_canonical_jsonl_digest(self):
        import hashlib

        stream = build_sample_stream()
        expected = hashlib.sha256(
            dumps_stream(stream).encode("utf-8")
        ).hexdigest()
        assert logical_content_hash(stream) == expected
        restored = loads_stream_binary(dumps_stream_binary(stream))
        assert restored.content_hash == expected

    def test_read_content_hash_without_full_parse(self, tmp_path):
        stream = build_sample_stream()
        path = tmp_path / "t.rtb"
        dump_stream_binary(stream, path)
        assert read_content_hash(path) == logical_content_hash(stream)

    def test_hash_format_independent(self, tmp_path):
        stream = build_sample_stream()
        jsonl_path = tmp_path / "t.jsonl"
        rtb_path = tmp_path / "t.rtb"
        dump_stream(stream, jsonl_path)
        dump_stream_binary(stream, rtb_path)
        assert stream_content_hash(jsonl_path) == stream_content_hash(rtb_path)

    def test_fingerprint_module_mirrors_codec_version(self):
        from repro.store import fingerprint

        assert fingerprint.RTB_FORMAT_VERSION == RTB_FORMAT_VERSION


class TestColumnarAPIEquivalence:
    """ColumnarTraceStream answers like the object-backed TraceStream."""

    @pytest.fixture(scope="class")
    def pair(self, small_corpus):
        baseline = small_corpus[0]
        columnar = loads_stream_binary(dumps_stream_binary(baseline))
        return baseline, columnar

    def test_len_and_iter(self, pair):
        baseline, columnar = pair
        assert len(columnar) == len(baseline)
        assert list(columnar) == list(baseline.events)

    def test_span(self, pair):
        baseline, columnar = pair
        assert columnar.span == baseline.span

    def test_events_of_thread_windows(self, pair):
        baseline, columnar = pair
        for instance in baseline.instances[:10]:
            expected = baseline.events_of_thread(
                instance.tid, instance.t0, instance.t1
            )
            actual = columnar.events_of_thread(
                instance.tid, instance.t0, instance.t1
            )
            assert actual == expected

    def test_events_of_thread_unbounded(self, pair):
        baseline, columnar = pair
        tid = baseline.events[0].tid
        assert columnar.events_of_thread(tid) == baseline.events_of_thread(tid)
        assert columnar.events_of_thread(-1) == []

    def test_thread_event_indices_match_object_path(self, pair):
        baseline, columnar = pair
        for instance in baseline.instances[:10]:
            expected = [
                event.seq
                for event in baseline.events_of_thread(
                    instance.tid, instance.t0, instance.t1
                )
            ]
            assert (
                columnar.thread_event_indices(
                    instance.tid, instance.t0, instance.t1
                )
                == expected
            )

    def test_unwaits_targeting(self, pair):
        baseline, columnar = pair
        unwaits = baseline.events_of_kind(EventKind.UNWAIT)
        targets = {event.wtid for event in unwaits[:20]}
        for tid in targets:
            assert columnar.unwaits_targeting(tid) == (
                baseline.unwaits_targeting(tid)
            )
        event = unwaits[0]
        assert columnar.unwaits_targeting(
            event.wtid, event.timestamp, event.timestamp
        ) == baseline.unwaits_targeting(
            event.wtid, event.timestamp, event.timestamp
        )

    def test_unwait_index_at_finds_first_match(self, pair):
        baseline, columnar = pair
        for event in baseline.events_of_kind(EventKind.UNWAIT)[:20]:
            expected = next(
                candidate.seq
                for candidate in baseline.events
                if candidate.kind is EventKind.UNWAIT
                and candidate.wtid == event.wtid
                and candidate.timestamp == event.timestamp
            )
            assert (
                columnar.unwait_index_at(event.wtid, event.timestamp)
                == expected
            )
        assert columnar.unwait_index_at(-1, 0) is None

    def test_events_of_kind(self, pair):
        baseline, columnar = pair
        for kind in EventKind:
            assert columnar.events_of_kind(kind) == (
                baseline.events_of_kind(kind)
            )

    def test_hardware_tids(self, pair):
        baseline, columnar = pair
        expected = {
            tid
            for tid, info in baseline.threads.items()
            if info.process == "Hardware"
        }
        assert columnar.hardware_tids == expected

    def test_events_are_cached_by_index(self, pair):
        _, columnar = pair
        assert columnar.events[0] is columnar.events[0]

    def test_events_are_read_only(self, pair):
        _, columnar = pair
        with pytest.raises(AttributeError):
            columnar.events = []

    def test_negative_and_slice_indexing(self, pair):
        baseline, columnar = pair
        assert columnar.events[-1] == baseline.events[-1]
        assert columnar.events[2:5] == list(baseline.events[2:5])
        with pytest.raises(IndexError):
            columnar.events[len(baseline.events)]


def _sections_of(data: bytes):
    meta_len = int.from_bytes(data[8:12], "little")
    meta = json.loads(data[12 : 12 + meta_len])
    body_start = 12 + meta_len + (-(12 + meta_len) % 8)
    return meta, body_start


class TestMalformedInput:
    def test_bad_magic(self):
        with pytest.raises(SerializationError, match="magic"):
            loads_stream_binary(b"NOPE" + b"\x00" * 32)
        assert not is_rtb_bytes(b"NOPE")

    def test_truncated_preamble(self):
        with pytest.raises(SerializationError, match="magic"):
            loads_stream_binary(RTB_MAGIC)

    def test_unsupported_version(self):
        data = bytearray(dumps_stream_binary(build_sample_stream()))
        data[4:6] = (99).to_bytes(2, "little")
        with pytest.raises(SerializationError, match="version"):
            loads_stream_binary(bytes(data))

    def test_truncated_meta_block(self):
        data = dumps_stream_binary(build_sample_stream())
        with pytest.raises(SerializationError, match="meta"):
            loads_stream_binary(data[:16])

    def test_unsorted_timestamps_rejected(self):
        stream = make_stream(
            "s",
            [
                make_event(timestamp=0, cost=10, tid=1),
                make_event(timestamp=100, cost=10, tid=1),
            ],
        )
        data = bytearray(dumps_stream_binary(stream))
        meta, body_start = _sections_of(bytes(data))
        offset, _ = meta["sections"]["timestamp"]
        start = body_start + offset
        first = data[start : start + 8]
        second = data[start + 8 : start + 16]
        data[start : start + 8] = second
        data[start + 8 : start + 16] = first
        with pytest.raises(SerializationError, match="sorted"):
            loads_stream_binary(bytes(data))

    def test_out_of_bounds_section_rejected(self):
        data = bytearray(dumps_stream_binary(build_sample_stream()))
        meta, _ = _sections_of(bytes(data))
        # Grow one section's recorded length past the buffer end.
        text = json.dumps(meta, sort_keys=True, separators=(",", ":"))
        meta["sections"]["kind"][1] = 1 << 30
        tampered = json.dumps(meta, sort_keys=True, separators=(",", ":"))
        assert len(tampered) >= len(text)
        with pytest.raises(SerializationError, match="out of bounds|missing"):
            loads_stream_binary(
                bytes(data[:8])
                + len(tampered).to_bytes(4, "little")
                + tampered.encode("utf-8")
                + b"\x00" * (-(12 + len(tampered)) % 8)
                + bytes(data[12 + len(text) + (-(12 + len(text)) % 8) :])
            )

    def test_read_content_hash_rejects_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        dump_stream(build_sample_stream(), path)
        with pytest.raises(SerializationError, match="not an RTB"):
            read_content_hash(path)

    def test_load_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.rtb"
        path.write_bytes(RTB_MAGIC + b"\x00" * 4)
        with pytest.raises(SerializationError, match="bad.rtb"):
            load_stream_binary(path)


class TestKindCodes:
    def test_codes_are_stable(self):
        # On-disk codes are a format contract: changing them without a
        # version bump would silently reinterpret existing files.
        assert KIND_CODES[EventKind.RUNNING] == 0
        assert KIND_CODES[EventKind.WAIT] == 1
        assert KIND_CODES[EventKind.UNWAIT] == 2
        assert KIND_CODES[EventKind.HW_SERVICE] == 3
        assert RTB_FORMAT_VERSION == 1
