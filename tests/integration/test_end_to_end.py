"""End-to-end integration: simulate -> validate -> serialize -> analyze."""

import pytest

from repro.baselines import analyze_lock_contention, profile_corpus
from repro.causality import CausalityAnalysis
from repro.evaluation import run_study
from repro.impact import ImpactAnalysis
from repro.sim.workloads.registry import scenario_spec
from repro.trace import (
    ALL_DRIVERS,
    dumps_stream,
    loads_stream,
    validate_stream,
)
from repro.waitgraph import aggregate_wait_graphs, build_wait_graph


class TestPipeline:
    def test_full_pipeline_on_serialized_corpus(self, small_corpus):
        """The analyses produce identical results on round-tripped traces."""
        restored = [loads_stream(dumps_stream(s)) for s in small_corpus]
        for stream in restored:
            validate_stream(stream)
        original = ImpactAnalysis(["*.sys"]).analyze_corpus(small_corpus)
        reloaded = ImpactAnalysis(["*.sys"]).analyze_corpus(restored)
        assert original.d_scn == reloaded.d_scn
        assert original.d_wait == reloaded.d_wait
        assert original.d_waitdist == reloaded.d_waitdist

    def test_paper_shape_holds(self, medium_corpus):
        """§5.1 qualitative findings on the synthetic corpus."""
        impact = ImpactAnalysis(["*.sys"]).analyze_corpus(medium_corpus)
        # Drivers dominate wait time, not run time.
        assert impact.ia_wait > 0.2
        assert impact.ia_run < impact.ia_wait / 3
        # Cost propagation shares waits across instances.
        assert impact.wait_multiplicity > 1.0
        assert 0 < impact.ia_opt < impact.ia_wait

    def test_causality_finds_driver_patterns(self, medium_corpus):
        grouped = {}
        for stream in medium_corpus:
            for instance in stream.instances:
                grouped.setdefault(instance.scenario, []).append(instance)
        name, instances = max(grouped.items(), key=lambda kv: len(kv[1]))
        spec = scenario_spec(name)
        report = CausalityAnalysis(["*.sys"]).analyze(
            instances, spec.t_fast, spec.t_slow, scenario=name
        )
        if report.classes.slow:
            assert report.patterns
            top = report.patterns[0]
            assert any(
                signature.split("!")[0].endswith(".sys")
                for signature in top.sst.all_signatures
            )

    def test_baselines_and_core_agree_on_cpu(self, small_corpus):
        """The profiler's driver CPU share matches IA_run to first order
        (both count the same running samples; the graph view may count a
        shared sample more than once)."""
        profile = profile_corpus(small_corpus)
        cpu_share = profile.component_cpu_share(ALL_DRIVERS)
        impact = ImpactAnalysis(["*.sys"]).analyze_corpus(small_corpus)
        assert cpu_share < 0.3
        assert impact.ia_run < 0.3

    def test_lock_baseline_sees_simulated_locks(self, small_corpus):
        analysis = analyze_lock_contention(small_corpus)
        assert analysis.total_wait >= 0

    def test_awg_aggregates_whole_corpus_scenario(self, small_corpus):
        instances = [
            instance
            for stream in small_corpus
            for instance in stream.instances
        ]
        graphs = [build_wait_graph(instance) for instance in instances[:40]]
        awg = aggregate_wait_graphs(graphs, ALL_DRIVERS)
        assert awg.source_graphs == len(graphs)

    @pytest.mark.slow
    def test_run_study_smoke(self, medium_corpus):
        result = run_study(medium_corpus)
        assert result.scenarios
