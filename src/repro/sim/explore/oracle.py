"""Mining oracle: assert the analysis stack rediscovers planted causes.

Every pathology workload (:mod:`repro.sim.workloads.pathology`) labels
the contention it injects with distinctive ``*.sys`` frames.  The oracle
closes the loop: it generates a corpus of the pathology across policies,
seeds and intensities, derives fast/slow thresholds from the observed
duration distribution, runs the full causality pipeline — wait-graph
construction, AWG aggregation, impact metrics, contrast-pattern mining —
and checks three facts against the ground truth:

* **graph**: slow instances' wait graphs actually contain waits on the
  planted resources (construction didn't lose the pathology);
* **impact**: the planted waits carry more cost in the slow class than
  the fast class (the impact metric points at the injection);
* **mining**: a top-k ranked contrast pattern contains a planted
  signature (the miner names the cause).

A negative control runs the same check against a scenario with nothing
planted and requires the opposite answer, guarding against an oracle
that "finds" everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.causality.analyzer import CausalityAnalysis, CausalityReport
from repro.causality.thresholds import suggest_thresholds
from repro.errors import ConfigError
from repro.sim.explore.runner import ExploreCell, run_cell_streams
from repro.sim.workloads.registry import (
    PATHOLOGY_SCENARIO_NAMES,
    workload_class,
)
from repro.trace.events import EventKind
from repro.waitgraph.builder import build_wait_graph

#: The exploration policy that most directly drives each pathology,
#: paired with the FIFO baseline so the corpus spans both regimes.
DEFAULT_ORACLE_POLICIES: Dict[str, Tuple[str, ...]] = {
    "LockConvoy": ("fifo", "convoy"),
    "PriorityInversion": ("fifo", "pct"),
    "DeadlockCycle": ("fifo", "random"),
    "WakeupStorm": ("fifo", "shuffle"),
}


@dataclass(frozen=True)
class OracleVerdict:
    """Outcome of holding the analysis stack against one planted cause."""

    scenario: str
    planted_signatures: Tuple[str, ...]
    found: bool  # a top-k pattern contains a planted signature
    rank: Optional[int]  # 1-based rank of the first such pattern
    top_k: int
    graph_ok: bool  # slow wait graphs reach the planted resources
    impact_ok: bool  # planted wait cost concentrates in the slow class
    pattern_count: int
    t_fast: int
    t_slow: int
    instances: int

    @property
    def passed(self) -> bool:
        """All three oracle facts hold."""
        return self.found and self.graph_ok and self.impact_ok

    def summary(self) -> str:
        rank = f"#{self.rank}" if self.rank is not None else "none"
        return (
            f"{self.scenario}: mined={rank}/top-{self.top_k} "
            f"graph={'ok' if self.graph_ok else 'MISS'} "
            f"impact={'ok' if self.impact_ok else 'MISS'} "
            f"({self.instances} instances, {self.pattern_count} patterns)"
        )


def _pathology_corpus(
    scenario: str,
    policies: Sequence[str],
    seeds: Sequence[int],
    intensities: Sequence[float],
    repeats: int,
    cores: int,
):
    """All streams of the oracle corpus for one pathology."""
    streams = []
    for policy in policies:
        for seed in seeds:
            cell = ExploreCell(
                scenario=scenario,
                policy=policy,
                seed=seed,
                intensities=tuple(intensities),
                repeats=repeats,
                cores=cores,
                think_median_us=25_000,
            )
            streams.extend(run_cell_streams(cell))
    return streams


def _planted_wait_cost(instances, planted: frozenset) -> int:
    """Summed planted-signature wait cost across instances' wait graphs."""
    total = 0
    for instance in instances:
        graph = build_wait_graph(instance)
        for event in graph.events():
            if event.kind is not EventKind.WAIT:
                continue
            if any(signature in event.stack for signature in planted):
                total += event.cost
    return total


def verify_pathology(
    scenario: str,
    policies: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    intensities: Sequence[float] = (0.15, 0.5, 0.85),
    repeats: int = 6,
    cores: int = 8,
    top_k: int = 5,
) -> OracleVerdict:
    """Run the full analysis stack against one planted pathology.

    Thresholds are derived from the observed duration distribution
    (quantiles), not the scenario spec, so the check holds wherever the
    absolute durations land — what matters is that the *slow tail* is
    explained by the planted cause.
    """
    cls = workload_class(scenario)
    planted = getattr(cls, "planted_signatures", frozenset())
    if not planted:
        raise ConfigError(
            f"scenario {scenario!r} plants no signatures; the oracle needs "
            f"one of: {', '.join(PATHOLOGY_SCENARIO_NAMES)}"
        )
    if policies is None:
        policies = DEFAULT_ORACLE_POLICIES.get(scenario, ("fifo", "random"))

    streams = _pathology_corpus(
        scenario, policies, seeds, intensities, repeats, cores
    )
    instances = [
        instance
        for stream in streams
        for instance in stream.instances
        if instance.scenario == scenario
    ]
    suggestion = suggest_thresholds(
        (instance.duration for instance in instances), scenario=scenario
    )
    report = CausalityAnalysis(["*.sys"]).analyze(
        instances, suggestion.t_fast, suggestion.t_slow, scenario=scenario
    )
    return judge_report(report, planted, top_k=top_k)


def judge_report(
    report: CausalityReport, planted: frozenset, top_k: int = 5
) -> OracleVerdict:
    """Score a finished causality report against planted ground truth."""
    rank = None
    for position, pattern in enumerate(report.top(top_k), start=1):
        if pattern.sst.all_signatures & planted:
            rank = position
            break

    slow = list(report.classes.slow)
    fast = list(report.classes.fast)
    slow_planted = _planted_wait_cost(slow, planted)
    fast_planted = _planted_wait_cost(fast, planted)
    graph_ok = slow_planted > 0
    # Impact: the slow class must carry strictly more planted wait cost
    # per instance than the fast class (the injection explains slowness).
    slow_per = slow_planted / len(slow) if slow else 0.0
    fast_per = fast_planted / len(fast) if fast else 0.0
    impact_ok = slow_per > fast_per

    return OracleVerdict(
        scenario=report.scenario,
        planted_signatures=tuple(sorted(planted)),
        found=rank is not None,
        rank=rank,
        top_k=top_k,
        graph_ok=graph_ok,
        impact_ok=impact_ok,
        pattern_count=report.pattern_count,
        t_fast=report.t_fast,
        t_slow=report.t_slow,
        instances=len(slow) + len(fast) + len(report.classes.between),
    )


def verify_all_pathologies(
    seeds: Sequence[int] = (0, 1, 2),
    intensities: Sequence[float] = (0.15, 0.5, 0.85),
    repeats: int = 6,
    top_k: int = 5,
) -> List[OracleVerdict]:
    """Oracle verdicts for every registered pathology scenario."""
    return [
        verify_pathology(
            scenario,
            seeds=seeds,
            intensities=intensities,
            repeats=repeats,
            top_k=top_k,
        )
        for scenario in PATHOLOGY_SCENARIO_NAMES
    ]


def negative_control(
    scenario: str = "FileCopy",
    seeds: Sequence[int] = (0, 1),
    intensities: Sequence[float] = (0.2, 0.8),
    repeats: int = 6,
    top_k: int = 5,
) -> bool:
    """True when an unplanted scenario reports *no* planted signature.

    Mines a corpus of a standard (non-pathology) scenario and checks
    that no pathology's planted signature appears in any mined pattern —
    the oracle must not find causes that were never injected.
    """
    all_planted = frozenset(
        signature
        for name in PATHOLOGY_SCENARIO_NAMES
        for signature in workload_class(name).planted_signatures
    )
    streams = _pathology_corpus(
        scenario, ("fifo", "random"), seeds, intensities, repeats, cores=8
    )
    instances = [
        instance
        for stream in streams
        for instance in stream.instances
        if instance.scenario == scenario
    ]
    suggestion = suggest_thresholds(
        (instance.duration for instance in instances), scenario=scenario
    )
    report = CausalityAnalysis(["*.sys"]).analyze(
        instances, suggestion.t_fast, suggestion.t_slow, scenario=scenario
    )
    return not any(
        pattern.sst.all_signatures & all_planted
        for pattern in report.patterns
    )
