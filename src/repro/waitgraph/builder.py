"""Wait Graph construction from trace streams (paper §3.1).

Construction follows the StackMine recipe the paper builds on:

1. the roots are the initiating thread's top-level events (running and
   wait) inside the instance window;
2. each wait event is paired with the unwait event that ended it — the
   unwait targeting the waiter (``wtid``) timestamped at the wait's end;
3. the children of a wait are the events the *unwaiting* thread triggered
   during the wait interval: its running samples, its own (recursively
   expanded) waits, and — when the unwaiter is a device pseudo-thread —
   the specific hardware service whose completion fired the unwait.

The expansion over-approximates on purpose (the unwaiter's whole activity
in the window is attributed to the wait, as in the paper), except for
hardware: HW_SERVICE events carry per-request completion correlation in
real ETW, so we attach only the service that ends at the unwait instant.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import WaitGraphError
from repro.trace.binary import (
    KIND_HW_SERVICE,
    KIND_RUNNING,
    KIND_WAIT,
    ColumnarTraceStream,
)
from repro.trace.events import Event, EventKind
from repro.trace.stream import HARDWARE_PROCESS, ScenarioInstance, TraceStream
from repro.waitgraph.graph import IndexedWaitGraph, WaitGraph


def _find_unwait(stream: TraceStream, wait: Event) -> Optional[Event]:
    """The unwait that ended ``wait``: targets its tid at its end time."""
    for candidate in stream.unwaits_targeting(wait.tid, wait.end, wait.end):
        if candidate.timestamp == wait.end:
            return candidate
    return None


def _is_hardware_thread(stream: TraceStream, tid: int) -> bool:
    return stream.thread_info(tid).process == HARDWARE_PROCESS


def _build_wait_graph_indexed(
    instance: ScenarioInstance, strict: bool
) -> IndexedWaitGraph:
    """Array-backed construction over a columnar stream.

    Mirrors :func:`build_wait_graph` step for step — same window
    queries, same expansion order, same unwait pairing — but every node
    is a column index: the whole graph is built from the ``kind``/
    ``timestamp``/``cost``/``tid`` columns without materializing one
    :class:`Event`.  Because ``seq`` equals the column index by format
    construction, the resulting structure is node-for-node identical to
    the object-based build.
    """
    stream: ColumnarTraceStream = instance.stream
    kinds = stream.kind_col
    timestamps = stream.timestamp_col
    costs = stream.cost_col
    tids = stream.tid_col
    hardware_tids = stream.hardware_tids

    roots = [
        index
        for index in stream.thread_event_indices(
            instance.tid, instance.t0, instance.t1
        )
        if kinds[index] == KIND_WAIT or kinds[index] == KIND_RUNNING
    ]

    children: Dict[int, List[int]] = {}
    unwait_of: Dict[int, int] = {}
    pending = [index for index in roots if kinds[index] == KIND_WAIT]

    while pending:
        wait = pending.pop()
        if wait in children:
            continue
        wait_end = timestamps[wait] + costs[wait]
        unwait = stream.unwait_index_at(tids[wait], wait_end)
        if unwait is None:
            if strict:
                raise WaitGraphError(
                    f"wait event #{wait} of thread {tids[wait]} in stream "
                    f"{stream.stream_id!r} has no matching unwait"
                )
            children[wait] = []
            continue
        unwait_of[wait] = unwait

        unwaiter = tids[unwait]
        if unwaiter in hardware_tids:
            # Attach exactly the hardware service completed by this unwait.
            child_indices = [
                index
                for index in stream.thread_event_indices(
                    unwaiter, timestamps[wait], wait_end + 1
                )
                if kinds[index] == KIND_HW_SERVICE
                and timestamps[index] + costs[index] == wait_end
            ]
        else:
            child_indices = [
                index
                for index in stream.thread_event_indices(
                    unwaiter, timestamps[wait], wait_end
                )
                if kinds[index] == KIND_WAIT or kinds[index] == KIND_RUNNING
            ]
        children[wait] = child_indices
        for child in child_indices:
            if kinds[child] == KIND_WAIT and child not in children:
                pending.append(child)

    return IndexedWaitGraph(instance, roots, children, unwait_of)


def build_wait_graph(
    instance: ScenarioInstance, strict: bool = False
) -> WaitGraph:
    """Construct the Wait Graph of one scenario instance.

    ``strict`` raises :class:`WaitGraphError` when a wait event cannot be
    paired with an unwait; the default leaves such waits as leaves (real
    traces are lossy at their edges).

    Columnar streams (RTB, ``repro.trace.binary``) take the array-backed
    fast path and return an :class:`IndexedWaitGraph`; the result is
    interchangeable with the object-based graph.
    """
    stream = instance.stream
    if isinstance(stream, ColumnarTraceStream):
        return _build_wait_graph_indexed(instance, strict)
    roots = [
        event
        for event in stream.events_of_thread(
            instance.tid, instance.t0, instance.t1
        )
        if event.kind in (EventKind.WAIT, EventKind.RUNNING)
    ]

    children: Dict[int, List[Event]] = {}
    unwait_of: Dict[int, Event] = {}
    pending = [event for event in roots if event.kind is EventKind.WAIT]

    while pending:
        wait = pending.pop()
        if wait.seq in children:
            continue
        unwait = _find_unwait(stream, wait)
        if unwait is None:
            if strict:
                raise WaitGraphError(
                    f"wait event #{wait.seq} of thread {wait.tid} in stream "
                    f"{stream.stream_id!r} has no matching unwait"
                )
            children[wait.seq] = []
            continue
        unwait_of[wait.seq] = unwait

        if _is_hardware_thread(stream, unwait.tid):
            # Attach exactly the hardware service completed by this unwait.
            child_events = [
                event
                for event in stream.events_of_thread(
                    unwait.tid, wait.timestamp, wait.end + 1
                )
                if event.kind is EventKind.HW_SERVICE
                and event.end == wait.end
            ]
        else:
            child_events = [
                event
                for event in stream.events_of_thread(
                    unwait.tid, wait.timestamp, wait.end
                )
                if event.kind in (EventKind.WAIT, EventKind.RUNNING)
            ]
        children[wait.seq] = child_events
        for child in child_events:
            if child.kind is EventKind.WAIT and child.seq not in children:
                pending.append(child)

    return WaitGraph(instance, roots, children, unwait_of)


def build_wait_graphs(
    instances, strict: bool = False
) -> List[WaitGraph]:
    """Construct Wait Graphs for a collection of scenario instances."""
    return [build_wait_graph(instance, strict=strict) for instance in instances]
