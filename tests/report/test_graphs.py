"""Tests for networkx export of graph structures."""

import networkx as nx

from repro.report.graphs import (
    awg_to_networkx,
    propagation_hubs,
    wait_graph_to_networkx,
)
from repro.trace.signatures import ALL_DRIVERS
from repro.waitgraph.aggregate import aggregate_wait_graphs
from repro.waitgraph.builder import build_wait_graph


class TestWaitGraphExport:
    def test_nodes_and_edges(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        dag = wait_graph_to_networkx(graph)
        assert dag.number_of_nodes() == graph.node_count()
        assert nx.is_directed_acyclic_graph(dag)
        assert dag.graph["scenario"] == "Click"
        assert set(dag.graph["roots"]) <= set(dag.nodes)

    def test_node_attributes(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        dag = wait_graph_to_networkx(graph)
        root = dag.graph["roots"][0]
        attrs = dag.nodes[root]
        assert {"kind", "cost", "tid", "frame"} <= set(attrs)

    def test_propagation_hubs(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        hubs = propagation_hubs(graph, top=3)
        assert hubs
        # The chokepoint is the worker's activity inside the lock wait.
        events = [event for event, _ in hubs]
        assert any(event.tid == 2 for event in events)


class TestAwgExport:
    def test_structure_preserved(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        dag = awg_to_networkx(awg)
        assert dag.number_of_nodes() == awg.node_count()
        assert nx.is_directed_acyclic_graph(dag)
        assert dag.graph["source_graphs"] == 1

    def test_attributes(self, propagation_stream):
        graph = build_wait_graph(propagation_stream.instances[0])
        awg = aggregate_wait_graphs([graph], ALL_DRIVERS, reduce_hw=False)
        dag = awg_to_networkx(awg)
        for _, attrs in dag.nodes(data=True):
            assert attrs["count"] >= 1
            assert attrs["status"] in ("waiting", "running", "hardware")
