"""Trace-stream data model: events, callstacks, streams, scenario instances.

This package implements the abstracted trace schema of the paper's §2.1,
compatible in shape with what ETW or DTrace produce: running, wait, unwait
and hardware-service events carrying callstacks, timestamps and costs.
"""

from repro.trace.events import Event, EventKind
from repro.trace.signatures import (
    ALL_DRIVERS,
    HARDWARE_SIGNATURE,
    ComponentFilter,
    function_of,
    make_signature,
    module_of,
)
from repro.trace.stream import ScenarioInstance, ThreadInfo, TraceStream
from repro.trace.serialization import (
    dump_corpus,
    dump_stream,
    dumps_stream,
    iter_corpus_paths,
    load_corpus,
    load_stream,
    loads_stream,
    stream_content_hash,
)
from repro.trace.binary import (
    RTB_FORMAT_VERSION,
    ColumnarTraceStream,
    dump_stream_binary,
    dumps_stream_binary,
    is_rtb_file,
    load_stream_binary,
    loads_stream_binary,
    logical_content_hash,
)
from repro.trace.importers import (
    FieldMap,
    import_csv,
    import_csv_text,
    import_json_events,
    import_records,
)
from repro.trace.validate import collect_violations, validate_stream

__all__ = [
    "ALL_DRIVERS",
    "HARDWARE_SIGNATURE",
    "RTB_FORMAT_VERSION",
    "ColumnarTraceStream",
    "ComponentFilter",
    "Event",
    "EventKind",
    "FieldMap",
    "ScenarioInstance",
    "ThreadInfo",
    "TraceStream",
    "collect_violations",
    "dump_corpus",
    "dump_stream",
    "dump_stream_binary",
    "dumps_stream",
    "dumps_stream_binary",
    "function_of",
    "is_rtb_file",
    "import_csv",
    "import_csv_text",
    "import_json_events",
    "import_records",
    "iter_corpus_paths",
    "load_corpus",
    "load_stream",
    "load_stream_binary",
    "loads_stream",
    "loads_stream_binary",
    "logical_content_hash",
    "stream_content_hash",
    "make_signature",
    "module_of",
    "validate_stream",
]
